#include "fl/simulation.h"

#include <algorithm>
#include <atomic>

#include "metrics/evaluation.h"
#include "tensor/serialize.h"

namespace goldfish::fl {

FederatedSim::FederatedSim(nn::Model global,
                           std::vector<data::Dataset> client_data,
                           data::Dataset server_test, FlConfig cfg)
    : global_(std::move(global)),
      clients_(std::move(client_data)),
      test_(std::move(server_test)),
      cfg_(std::move(cfg)),
      aggregator_(make_aggregator(cfg_.aggregator)),
      sched_(&runtime::scheduler_for(cfg_.threads, owned_sched_)) {
  GOLDFISH_CHECK(!clients_.empty(), "simulation needs clients");
  GOLDFISH_CHECK(!test_.empty(), "simulation needs a server test set");
  // Default behaviour: Algorithm 1's LocalTraining.
  update_fn_ = [this](std::size_t cid, nn::Model& model,
                      const data::Dataset& ds, long round) {
    TrainOptions opts = cfg_.local;
    opts.seed = cfg_.seed ^ (0x9E3779B9u * (cid + 1)) ^
                static_cast<std::uint64_t>(round);
    train_local(model, ds, opts);
  };
}

void FederatedSim::set_client_data(std::size_t c, data::Dataset ds) {
  GOLDFISH_CHECK(c < clients_.size(), "client id out of range");
  clients_[c] = std::move(ds);
}

RoundResult FederatedSim::run_round() {
  const std::size_t n = clients_.size();
  std::vector<ClientUpdate> updates(n);
  std::vector<double> local_acc(n, 0.0);
  std::atomic<std::size_t> bytes{0};

  sched_->parallel_map(n, [&](std::size_t c) {
    nn::Model local = global_;  // broadcast: deep copy of global weights
    update_fn_(c, local, clients_[c], round_);
    // Upload path: serialize → wire → deserialize, counting bytes.
    std::size_t wire = 0;
    updates[c].params = roundtrip_through_bytes(local.snapshot(), &wire);
    updates[c].dataset_size = clients_[c].size();
    bytes.fetch_add(wire, std::memory_order_relaxed);
    local_acc[c] = metrics::accuracy(local, test_);
  });

  // Server-side MSE scoring (Eq. 12 operates on the server's test set).
  if (aggregator_->name() == "adaptive") {
    sched_->parallel_map(n, [&](std::size_t c) {
      nn::Model scratch = global_;
      scratch.load(updates[c].params);
      updates[c].mse = metrics::mse(scratch, test_);
    });
  }

  global_.load(aggregator_->aggregate(updates));

  RoundResult r;
  r.round = round_++;
  r.global_accuracy = metrics::accuracy(global_, test_);
  r.bytes_uplinked = bytes.load();
  r.min_local_accuracy = *std::min_element(local_acc.begin(), local_acc.end());
  r.max_local_accuracy = *std::max_element(local_acc.begin(), local_acc.end());
  double mean = 0.0;
  for (double a : local_acc) mean += a;
  r.mean_local_accuracy = mean / double(n);
  return r;
}

std::vector<RoundResult> FederatedSim::run(long rounds) {
  std::vector<RoundResult> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (long i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

}  // namespace goldfish::fl
