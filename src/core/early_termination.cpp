#include "core/early_termination.h"

#include <cmath>
#include <limits>

#include "tensor/check.h"

namespace goldfish::core {

ExcessRiskTracker::ExcessRiskTracker(float reference_loss, float delta)
    : reference_(reference_loss), delta_(delta) {
  GOLDFISH_CHECK(delta >= 0.0f, "delta must be non-negative");
  GOLDFISH_CHECK(std::isfinite(reference_loss), "non-finite reference loss");
}

void ExcessRiskTracker::record_epoch(float loss) {
  GOLDFISH_CHECK(std::isfinite(loss), "non-finite epoch loss");
  losses_.push_back(loss);
}

float ExcessRiskTracker::excess_risk() const {
  if (losses_.empty()) return std::numeric_limits<float>::infinity();
  double mean = 0.0;
  for (float l : losses_) mean += l;
  mean /= double(losses_.size());
  return static_cast<float>(std::fabs(mean - double(reference_)));
}

bool ExcessRiskTracker::should_stop() const {
  return excess_risk() <= delta_;
}

}  // namespace goldfish::core
