// Single blocked GEMM backbone: every matrix product in the library — all
// four transpose combinations — lowers to this one kernel.
//
// Algorithm (BLIS-style three-level blocking over row-major storage):
//   for each NC-wide column panel of C:
//     for each KC-deep slice of the inner dimension:
//       pack op(B) slice into contiguous NR-wide micro-panels (zero-padded)
//       for each MC-tall row panel of C (parallel across the Scheduler):
//         pack op(A) slice into contiguous MR-tall micro-panels
//         for each MR×NR tile: register-tiled microkernel, accumulating the
//         full KC product into local registers before touching C
//
// Packing makes the microkernel's loads unit-stride regardless of the
// transpose flags, so transposes are never materialized. Packing buffers are
// thread_local and grow monotonically, so steady-state calls never touch the
// heap.
//
// Determinism: the k-dimension is reduced in a fixed order (KC blocks outer,
// packed k inner) and parallelism only splits independent output tiles of C
// (row panels when C is tall, NR-wide column tiles when C is short-fat), so
// results are bit-identical for any thread count.
#pragma once

namespace goldfish::runtime {

class Scheduler;

/// Fused transform applied to each element of C in the microkernel's final
/// writeback (the last KC slice of the k reduction), replacing what would
/// otherwise be one or two extra passes over C:
///
///   kNone         C[i,j] = beta·C[i,j] + P[i,j]
///   kBiasCol      C[i,j] = beta·C[i,j] + P[i,j] + bias[j]   (linear layers)
///   kBiasColRelu  C[i,j] = relu(beta·C[i,j] + P[i,j] + bias[j])
///   kBiasRow      C[i,j] = beta·C[i,j] + P[i,j] + bias[i]   (conv channels)
///   kBiasRowRelu  C[i,j] = relu(beta·C[i,j] + P[i,j] + bias[i])
///
/// where P = op(A)·op(B). Bias is broadcast per column (length n) or per row
/// (length m); relu(x) is `x > 0 ? x : 0` (exactly the two-pass ReLU,
/// including -0.0 → +0.0), so a fused product is bit-identical to the
/// unfused product followed by separate bias-add and ReLU passes.
enum class Epilogue { kNone, kBiasCol, kBiasColRelu, kBiasRow, kBiasRowRelu };

/// C(m×n) = beta·C + op(A)·op(B), epilogue-fused, with op(X) = Xᵀ when the
/// flag is set. All matrices row-major; `lda`/`ldb`/`ldc` are the stored row
/// lengths (A is stored k×m when `transa`, likewise B is stored n×k when
/// `transb`). C must not alias A, B, or `bias`.
///
/// `beta` selects the writeback mode of the *first* KC slice and must be
/// exactly 0 or 1: 0 overwrites C (its prior contents are never read — pair
/// with Tensor::uninit to skip the zero-fill entirely), 1 accumulates into C
/// (the gradient hot path). Later slices always accumulate the partial
/// product; the epilogue is applied once, on the final slice.
///
/// `bias` must be non-null (length n for the column variants, m for the row
/// variants) whenever `epilogue != kNone`, and is ignored otherwise.
/// `sched == nullptr` uses the process-wide Scheduler.
void sgemm(bool transa, bool transb, long m, long n, long k, const float* A,
           long lda, const float* B, long ldb, float* C, long ldc, float beta,
           Epilogue epilogue, const float* bias, Scheduler* sched = nullptr);

/// C += op(A)·op(B): the historical accumulate-only entry point
/// (beta = 1, no epilogue).
void sgemm(bool transa, bool transb, long m, long n, long k, const float* A,
           long lda, const float* B, long ldb, float* C, long ldc,
           Scheduler* sched = nullptr);

}  // namespace goldfish::runtime
