#!/usr/bin/env python3
"""Bench ratchet: fail CI when a tracked kernel or the FL round regresses.

Usage: check_bench_ratchet.py RESULTS_JSON [RESULTS_JSON...] BASELINE_JSON
       check_bench_ratchet.py --validate-only BASELINE_JSON

Each RESULTS_JSON is --benchmark_format=json output (bench_micro_kernels,
bench_fl_round, ...); results from all files are merged by benchmark name.
BASELINE_JSON (bench/baseline_ci.json, checked in) holds:
  * "gflops": per-benchmark GFLOP/s floors. A run fails when a tracked
    benchmark drops more than "tolerance" (fraction, default 0.20) below its
    floor. Floors are set for the slowest hardware class CI runs on; they
    catch structural regressions (lost vectorization, a serialized loop, an
    accidental O(n^4)), not single-digit-percent noise.
  * "ratios": machine-independent gates, each {"fast": name, "slow": name,
    "min_ratio": r} requiring items_per_second(fast) >= r * (slow). This is
    how the fused-epilogue and pooled-round wins are locked in regardless of
    runner speed. An optional "fast_scale" multiplies the fast side first,
    normalizing benchmarks whose items differ in unit — e.g. the async FL
    bench counts aggregations (K updates each) while the round benches count
    rounds (C updates each), so fast_scale = K/C compares update throughput.
  * "counters_max": exact gates on reported benchmark counters, each
    {"bench": name, "counter": name, "max": v}. The zero-allocation round
    gate: bench_fl_round's allocs_per_round counter (FloatBuffer heap
    allocations in one steady-state round) must stay at 0. An optional
    "max_times_counter": name makes the gate relative — the limit becomes
    max * the named counter's value on the same bench. The population
    memory gate uses this: resident_bytes <= 0.05 * cold_bytes pins the
    cohort-proportional (not population-proportional) resident footprint
    regardless of how the bench's dataset sizes evolve.
  * "counters_min": the same, but a floor — {"bench": name, "counter": name,
    "min": v} requires the counter to be >= v. The wire-policy gate uses
    this to pin "uploads report real, nonzero byte counts".

The baseline is schema-validated before any gate runs: an unknown top-level
section or a typo'd gate field ("min_ration", "benchs") is a hard failure,
never a silently-skipped gate. Keys starting with "_" are commentary and
exempt everywhere. `--validate-only BASELINE_JSON` runs just the schema
check (the CI lint job uses this; no bench results needed).
"""

import json
import numbers
import sys

TOP_LEVEL_KEYS = {"tolerance", "gflops", "ratios", "counters_max",
                  "counters_min"}
GATE_FIELDS = {
    "ratios": ({"fast": str, "slow": str, "min_ratio": numbers.Real},
               {"fast_scale": numbers.Real}),
    "counters_max": ({"bench": str, "counter": str, "max": numbers.Real},
                     {"max_times_counter": str}),
    "counters_min": ({"bench": str, "counter": str, "min": numbers.Real}, {}),
}


def validate_baseline(baseline) -> list:
    """Schema errors in a ratchet baseline, [] when well-formed."""
    errors = []
    if not isinstance(baseline, dict):
        return ["baseline must be a JSON object"]
    for key in baseline:
        if not key.startswith("_") and key not in TOP_LEVEL_KEYS:
            errors.append(f"unknown top-level key {key!r} (known: "
                          f"{', '.join(sorted(TOP_LEVEL_KEYS))})")

    tolerance = baseline.get("tolerance", 0.20)
    if not isinstance(tolerance, numbers.Real) or isinstance(tolerance, bool) \
            or not 0.0 <= float(tolerance) < 1.0:
        errors.append(f"tolerance must be a number in [0, 1), got "
                      f"{tolerance!r}")

    gflops = baseline.get("gflops", {})
    if not isinstance(gflops, dict):
        errors.append("gflops must be an object of benchmark -> floor")
    else:
        for name, floor in gflops.items():
            if name.startswith("_"):
                continue
            if not isinstance(floor, numbers.Real) or isinstance(floor, bool) \
                    or float(floor) <= 0.0:
                errors.append(f"gflops[{name!r}] floor must be a positive "
                              f"number, got {floor!r}")

    for section, (required, optional) in GATE_FIELDS.items():
        gates = baseline.get(section, [])
        if not isinstance(gates, list):
            errors.append(f"{section} must be a list of gate objects")
            continue
        for i, gate in enumerate(gates):
            where = f"{section}[{i}]"
            if not isinstance(gate, dict):
                errors.append(f"{where} must be an object")
                continue
            for field, ftype in required.items():
                if field not in gate:
                    errors.append(f"{where} missing required field "
                                  f"{field!r}")
                elif not isinstance(gate[field], ftype) \
                        or isinstance(gate[field], bool):
                    errors.append(f"{where}.{field} must be "
                                  f"{ftype.__name__}, got {gate[field]!r}")
            for field, value in gate.items():
                if field.startswith("_") or field in required:
                    continue
                if field not in optional:
                    errors.append(
                        f"{where} has unknown field {field!r} (known: "
                        f"{', '.join(sorted({**required, **optional}))})")
                elif not isinstance(value, optional[field]) \
                        or isinstance(value, bool):
                    errors.append(f"{where}.{field} must be "
                                  f"{optional[field].__name__}, "
                                  f"got {value!r}")
    return errors


def load_and_validate(path):
    with open(path) as f:
        baseline = json.load(f)
    errors = validate_baseline(baseline)
    if errors:
        print(f"Baseline schema errors in {path}:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return None
    return baseline


def main() -> int:
    argv = sys.argv[1:]
    if len(argv) == 2 and argv[0] == "--validate-only":
        baseline = load_and_validate(argv[1])
        if baseline is None:
            return 2
        print(f"{argv[1]}: baseline schema ok")
        return 0
    if len(argv) < 2:
        print(__doc__)
        return 2
    baseline = load_and_validate(argv[-1])
    if baseline is None:
        return 2

    # items_per_second is flops/sec for the kernel benches (SetItemsProcessed
    # of 2*m*n*k) and rounds/sec for the FL round benches; index every
    # reported benchmark (and its custom counters) by name.
    measured = {}
    counters = {}
    for results_path in sys.argv[1:-1]:
        with open(results_path) as f:
            results = json.load(f)
        for bench in results.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            ips = bench.get("items_per_second")
            if ips is not None:
                measured[bench["name"]] = ips
            counters[bench["name"]] = bench

    tolerance = float(baseline.get("tolerance", 0.20))
    failures = []

    print(f"{'benchmark':40} {'measured':>12} {'floor':>10} {'status':>8}")
    for name, floor_gflops in sorted(baseline.get("gflops", {}).items()):
        if name.startswith("_"):  # inline commentary, not a gate
            continue
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from results")
            print(f"{name:40} {'—':>12} {floor_gflops:>10.2f}  MISSING")
            continue
        got_gflops = got / 1e9
        limit = (1.0 - tolerance) * floor_gflops
        ok = got_gflops >= limit
        print(f"{name:40} {got_gflops:>10.2f}G {floor_gflops:>9.2f}G"
              f" {'ok' if ok else 'FAIL':>8}")
        if not ok:
            failures.append(
                f"{name}: {got_gflops:.2f} GFLOP/s is more than "
                f"{tolerance:.0%} below the {floor_gflops:.2f} floor")

    for gate in baseline.get("ratios", []):
        fast, slow = measured.get(gate["fast"]), measured.get(gate["slow"])
        want = float(gate["min_ratio"])
        if fast is None or slow is None:
            failures.append(
                f"ratio {gate['fast']} / {gate['slow']}: missing benchmark")
            continue
        scale = float(gate.get("fast_scale", 1.0))
        ratio = fast * scale / slow
        ok = ratio >= want
        scaled = "" if scale == 1.0 else f" (fast x{scale:g})"
        print(f"{gate['fast']} / {gate['slow']}{scaled}: {ratio:.2f}x"
              f" (need >= {want:.2f}x) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{gate['fast']} is only {ratio:.2f}x {gate['slow']}"
                f" (need >= {want:.2f}x)")

    for gate in baseline.get("counters_max", []):
        bench = counters.get(gate["bench"])
        value = None if bench is None else bench.get(gate["counter"])
        limit = float(gate["max"])
        if value is None:
            failures.append(
                f"counter {gate['bench']}.{gate['counter']}: missing")
            continue
        relative_to = gate.get("max_times_counter")
        against = f"{limit:g}"
        if relative_to is not None:
            base = bench.get(relative_to)
            if base is None:
                failures.append(
                    f"counter {gate['bench']}.{relative_to}: missing "
                    f"(referenced by a max_times_counter gate)")
                continue
            limit *= float(base)
            against = (f"{limit:g} = {float(gate['max']):g} * "
                       f"{relative_to} ({float(base):g})")
        ok = value <= limit
        print(f"{gate['bench']}.{gate['counter']}: {value:g}"
              f" (need <= {against}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{gate['bench']}.{gate['counter']} is {value:g}"
                f" (need <= {against})")

    for gate in baseline.get("counters_min", []):
        bench = counters.get(gate["bench"])
        value = None if bench is None else bench.get(gate["counter"])
        limit = float(gate["min"])
        if value is None:
            failures.append(
                f"counter {gate['bench']}.{gate['counter']}: missing")
            continue
        ok = value >= limit
        print(f"{gate['bench']}.{gate['counter']}: {value:g}"
              f" (need >= {limit:g}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{gate['bench']}.{gate['counter']} is {value:g}"
                f" (need >= {limit:g})")

    if failures:
        print("\nBench ratchet FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nBench ratchet passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
