// The population subsystem (src/fl/population/): cold client-state store
// spill/materialize round trips, content-addressed snapshot dedup and
// refcounting, the two-tier hierarchical aggregator's bitwise equivalence
// with flat aggregation, cohort enumeration, and the population-mode
// engine's equivalence with the resident-mode engine — including the
// deletion-on-a-cold-client eviction that must not force a materialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "fl/population/hierarchical.h"
#include "fl/population/population.h"
#include "nn/models.h"
#include "tensor/serialize.h"

namespace goldfish {
namespace {

bool snapshots_bitwise_equal(const std::vector<Tensor>& a,
                             const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (!a[t].same_shape(b[t])) return false;
    if (std::memcmp(a[t].data(), b[t].data(),
                    a[t].numel() * sizeof(float)) != 0)
      return false;
  }
  return true;
}

bool datasets_bitwise_equal(const data::Dataset& a, const data::Dataset& b) {
  return a.num_classes == b.num_classes &&
         a.geom.channels == b.geom.channels &&
         a.geom.height == b.geom.height && a.geom.width == b.geom.width &&
         a.labels == b.labels && a.features.same_shape(b.features) &&
         std::memcmp(a.features.data(), b.features.data(),
                     a.features.numel() * sizeof(float)) == 0;
}

struct Fed {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;
};

Fed make_fed(long clients, long train_rows, long test_rows,
             std::uint64_t seed) {
  auto tt = data::make_synthetic(data::default_spec(
      data::DatasetKind::Mnist, seed, train_rows, test_rows));
  Rng rng(seed + 1);
  Fed fed;
  fed.parts = data::partition_iid(tt.train, clients, rng);
  fed.test = std::move(tt.test);
  fed.global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  return fed;
}

fl::FlConfig fast_cfg() {
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  return cfg;
}

fl::population::Population make_population(
    const std::vector<data::Dataset>& parts) {
  fl::population::Population pop;
  for (const data::Dataset& p : parts) pop.clients.add(p);
  return pop;
}

// -- cold client-state store -----------------------------------------------

TEST(ClientStore, SpillMaterializeRoundTripIsByteIdentical) {
  Fed fed = make_fed(3, 120, 30, 1101);
  fl::population::ClientStateStore store;
  for (const data::Dataset& p : fed.parts) store.add(p);
  ASSERT_EQ(store.num_clients(), 3u);
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_GT(store.cold_bytes(), 0u);

  for (std::size_t c = 0; c < 3; ++c) {
    const data::Dataset& m = store.materialize(c);
    EXPECT_TRUE(store.resident(c));
    ASSERT_TRUE(datasets_bitwise_equal(m, fed.parts[c]));
    // Byte-identity of the embedded GFT1 record: serializing the
    // round-tripped features reproduces the original bytes exactly.
    std::string a, b;
    serialize_tensors({fed.parts[c].features}, a);
    serialize_tensors({m.features}, b);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(store.resident_clients(), 3u);
  EXPECT_GT(store.resident_bytes(), 0u);
  EXPECT_EQ(store.materializations(), 3u);
  // Idempotent while resident: same slot, no new decode.
  store.materialize(1);
  EXPECT_EQ(store.materializations(), 3u);

  store.release_all();
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_EQ(store.resident_clients(), 0u);
  EXPECT_GT(store.peak_resident_bytes(), 0u);
  // Re-materialization after release decodes the same bytes again.
  EXPECT_TRUE(datasets_bitwise_equal(store.materialize(0), fed.parts[0]));
}

TEST(ClientStore, TelemetryPatchesInPlaceAndSurvivesReplace) {
  Fed fed = make_fed(2, 80, 20, 1102);
  fl::population::ClientStateStore store;
  store.add(fed.parts[0]);
  const std::size_t before = store.record_bytes(0);

  store.bump_tasks_started(0, 3);
  store.bump_updates_aggregated(0, 2);
  store.bump_bytes_uplinked(0, 4096);
  store.set_last_version(0, 7);
  // Telemetry patches never touch the tensor payload.
  EXPECT_EQ(store.record_bytes(0), before);
  auto t = store.telemetry(0);
  EXPECT_EQ(t.tasks_started, 3);
  EXPECT_EQ(t.updates_aggregated, 2);
  EXPECT_EQ(t.bytes_uplinked, 4096u);
  EXPECT_EQ(t.last_version, 7);

  // replace() swaps the data but keeps the audit trail — without decoding
  // the old record (the client is cold; materializations() stays 0).
  store.replace(0, fed.parts[1]);
  EXPECT_EQ(store.materializations(), 0u);
  t = store.telemetry(0);
  EXPECT_EQ(t.tasks_started, 3);
  EXPECT_EQ(t.last_version, 7);
  EXPECT_TRUE(datasets_bitwise_equal(store.materialize(0), fed.parts[1]));
}

// -- content-addressed snapshot store --------------------------------------

TEST(SnapshotStore, DedupsIdenticalSnapshotsAndFreesAtZeroRefs) {
  Rng rng(1201);
  nn::Model m = nn::make_mlp({1, 4, 4}, 8, 2, rng);
  const std::vector<Tensor> params = m.snapshot();

  fl::population::SnapshotStore store;
  const auto h1 = store.intern(params);
  const auto h2 = store.intern(params);
  EXPECT_EQ(h1.hash, h2.hash);
  EXPECT_EQ(store.unique_snapshots(), 1u);
  EXPECT_EQ(store.total_references(), 2u);
  EXPECT_EQ(store.refcount(h1), 2);
  EXPECT_EQ(store.interned_total(), 2u);
  EXPECT_TRUE(snapshots_bitwise_equal(store.materialize(h1), params));

  // Different content stores separately.
  nn::Model other = nn::make_mlp({1, 4, 4}, 8, 2, rng);
  const auto h3 = store.intern(other.snapshot());
  EXPECT_EQ(store.unique_snapshots(), 2u);

  store.release(h1);
  EXPECT_EQ(store.refcount(h2), 1);
  EXPECT_EQ(store.unique_snapshots(), 2u);
  store.release(h2);
  store.release(h3);
  EXPECT_EQ(store.unique_snapshots(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.refcount(h2), 0);
  // Invalid handles are inert.
  store.release(fl::population::SnapshotStore::Handle{});
}

// -- hierarchical aggregation ----------------------------------------------

std::vector<fl::ClientUpdate> make_updates(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fl::ClientUpdate> ups(n);
  for (std::size_t i = 0; i < n; ++i) {
    nn::Model m = nn::make_mlp({1, 4, 4}, 8, 3, rng);
    ups[i].params = m.snapshot();
    ups[i].dataset_size = static_cast<long>(10 + 7 * i);
    ups[i].mse = 0.05 + 0.01 * double(i);
    ups[i].staleness = static_cast<long>(i % 3);
  }
  return ups;
}

TEST(HierarchicalAggregator, BitwiseEqualsFlatForEveryEdgeSize) {
  const auto ups = make_updates(7, 1301);
  const std::vector<float> mults = {1.0f, 0.5f, 1.0f, 0.25f,
                                    1.0f, 0.75f, 1.0f};
  for (const char* base : {"fedavg", "uniform", "adaptive"}) {
    const auto flat = fl::make_aggregator(base);
    for (long edge : {1L, 2L, 3L, 8L, 64L}) {
      fl::population::HierarchicalAggregator hier(fl::make_aggregator(base),
                                                  edge);
      EXPECT_TRUE(snapshots_bitwise_equal(hier.aggregate(ups),
                                          flat->aggregate(ups)))
          << base << " edge=" << edge;
      EXPECT_TRUE(snapshots_bitwise_equal(hier.aggregate(ups, &mults),
                                          flat->aggregate(ups, &mults)))
          << base << " edge=" << edge << " (multipliers)";
      EXPECT_GT(hier.edge_reductions(), 0u);
    }
  }
}

TEST(HierarchicalAggregator, RobustBasesDelegateWholesaleToTheRoot) {
  const auto ups = make_updates(6, 1302);
  fl::RobustConfig rc;
  for (const char* base : {"krum", "trimmed-mean", "median", "norm-clip"}) {
    const auto flat = fl::make_aggregator(base, rc);
    rc.hier_edge = 2;
    const auto hier = fl::make_aggregator(std::string("hier+") + base, rc);
    EXPECT_TRUE(hier->capabilities().robust);
    EXPECT_TRUE(
        snapshots_bitwise_equal(hier->aggregate(ups), flat->aggregate(ups)))
        << base;
    // Selection/order statistics do not decompose per edge: the wrapper
    // must not have run any edge reductions.
    const auto& h =
        dynamic_cast<const fl::population::HierarchicalAggregator&>(*hier);
    EXPECT_EQ(h.edge_reductions(), 0u);
  }
}

TEST(HierarchicalAggregator, RegistryComposesAndValidates) {
  EXPECT_EQ(fl::make_aggregator("hier+fedavg")->name(), "hier+fedavg");
  EXPECT_EQ(fl::make_aggregator("hier+hier+uniform")->name(),
            "hier+hier+uniform");
  EXPECT_THROW(fl::make_aggregator("hier+bogus"), CheckError);

  Fed fed = make_fed(3, 90, 30, 1303);
  fl::FlConfig cfg = fast_cfg();
  cfg.aggregator = "hier+bogus";
  EXPECT_THROW(fl::Engine(fed.global, fed.parts, fed.test, cfg),
               std::invalid_argument);
  cfg.aggregator = "hier+fedavg";
  cfg.robust.hier_edge = 0;
  EXPECT_THROW(fl::Engine(fed.global, fed.parts, fed.test, cfg),
               std::invalid_argument);
}

// Engine-level: "hier+<base>" runs produce bit-identical models to the flat
// base at 1/2/8 threads, across sampled, async and robust configurations.
TEST(HierarchicalEngine, BitIdenticalToFlatAcrossThreadCounts) {
  struct Config {
    const char* base;
    bool sampled;
    double jitter;
    double alpha;
    long buffer;
  };
  const Config configs[] = {
      {"fedavg", false, 0.0, 0.0, 0},    // synchronous barrier rounds
      {"adaptive", true, 0.25, 0.5, 3},  // sampled + async + staleness
      {"krum", false, 0.25, 0.5, 5},     // robust base, async
  };
  for (const Config& c : configs) {
    for (std::size_t threads : {1u, 2u, 8u}) {
      Fed flat_fed = make_fed(6, 180, 40, 1401);
      Fed hier_fed = make_fed(6, 180, 40, 1401);
      fl::FlConfig cfg = fast_cfg();
      cfg.threads = threads;
      cfg.async.buffer_size = c.buffer;
      cfg.async.staleness_alpha = c.alpha;
      cfg.async.duration_log_jitter = c.jitter;
      cfg.robust.hier_edge = 2;

      cfg.aggregator = c.base;
      fl::Engine flat(flat_fed.global, flat_fed.parts, flat_fed.test, cfg);
      cfg.aggregator = std::string("hier+") + c.base;
      fl::Engine hier(hier_fed.global, hier_fed.parts, hier_fed.test, cfg);

      const auto scenario = [&](const fl::Engine& e) {
        fl::Scenario s = e.async_scenario(4);
        if (c.sampled)
          s.participation =
              std::make_unique<fl::SampledParticipation>(0.7, 99);
        return s;
      };
      const auto a = flat.collect(scenario(flat));
      const auto b = hier.collect(scenario(hier));
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a[i].global_accuracy, &b[i].global_accuracy,
                              sizeof(double)),
                  0);
        EXPECT_EQ(a[i].updates_consumed, b[i].updates_consumed);
      }
      EXPECT_TRUE(snapshots_bitwise_equal(flat.global_model().snapshot(),
                                          hier.global_model().snapshot()))
          << c.base << " threads=" << threads;
    }
  }
}

// -- cohort participation --------------------------------------------------

TEST(CohortParticipation, DeterministicSortedDistinctAndConsistent) {
  fl::CohortParticipation pol(8, 4242);
  EXPECT_TRUE(pol.enumerates_cohort());
  const std::vector<std::size_t> first = pol.cohort(3, 100);
  ASSERT_EQ(first.size(), 8u);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  EXPECT_EQ(std::adjacent_find(first.begin(), first.end()), first.end());
  // Cached and stable for the version.
  EXPECT_EQ(pol.cohort(3, 100), first);
  for (std::size_t c = 0; c < 100; ++c)
    EXPECT_EQ(pol.participates(c, 3, 0.0),
              std::binary_search(first.begin(), first.end(), c));
  // A fresh policy with the same seed draws the same cohorts.
  fl::CohortParticipation again(8, 4242);
  EXPECT_EQ(again.cohort(3, 100), first);
  // Different versions draw different cohorts (overwhelmingly likely).
  EXPECT_NE(again.cohort(4, 100), first);
  // Cohort clamps to the population.
  fl::CohortParticipation wide(64, 7);
  EXPECT_EQ(wide.cohort(0, 5).size(), 5u);
  // Non-enumerating policies reject cohort().
  fl::FullParticipation full;
  EXPECT_FALSE(full.enumerates_cohort());
  EXPECT_THROW(full.cohort(0, 10), std::logic_error);
}

/// The same membership function as CohortParticipation, exposed only
/// through participates() — forcing the engine down its O(population)
/// parked-rescan path. Used to pin that cohort *enumeration* changes the
/// scheduling cost, never the schedule.
class NonEnumeratingCohort final : public fl::ParticipationPolicy {
 public:
  NonEnumeratingCohort(std::size_t cohort_size, std::uint64_t seed,
                       std::size_t num_clients)
      : inner_(cohort_size, seed), n_(num_clients) {}
  bool participates(std::size_t client, long version, double) override {
    const auto& co = inner_.cohort(version, n_);
    return std::binary_search(co.begin(), co.end(), client);
  }
  std::string name() const override { return "cohort-scan"; }

 private:
  fl::CohortParticipation inner_;
  std::size_t n_;
};

TEST(CohortParticipation, EnumeratedScheduleMatchesMembershipScan) {
  Fed a = make_fed(10, 200, 40, 1501);
  Fed b = make_fed(10, 200, 40, 1501);
  fl::FlConfig cfg = fast_cfg();
  cfg.async.buffer_size = 3;
  cfg.async.duration_log_jitter = 0.25;

  fl::Engine enumerated(a.global, a.parts, a.test, cfg);
  fl::Scenario s1 = enumerated.async_scenario(4);
  s1.participation = std::make_unique<fl::CohortParticipation>(4, 77);
  const auto r1 = enumerated.collect(std::move(s1));

  fl::Engine scanned(b.global, b.parts, b.test, cfg);
  fl::Scenario s2 = scanned.async_scenario(4);
  s2.participation = std::make_unique<NonEnumeratingCohort>(4, 77, 10);
  const auto r2 = scanned.collect(std::move(s2));

  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].updates_consumed, r2[i].updates_consumed);
    EXPECT_EQ(std::memcmp(&r1[i].global_accuracy, &r2[i].global_accuracy,
                          sizeof(double)),
              0);
  }
  EXPECT_TRUE(snapshots_bitwise_equal(enumerated.global_model().snapshot(),
                                      scanned.global_model().snapshot()));
}

// -- population-mode engine ------------------------------------------------

TEST(PopulationEngine, MatchesResidentEngineBitForBit) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    Fed ra = make_fed(6, 180, 40, 1601);
    Fed rb = make_fed(6, 180, 40, 1601);
    fl::FlConfig cfg = fast_cfg();
    cfg.threads = threads;
    cfg.async.buffer_size = 3;
    cfg.async.duration_log_jitter = 0.25;
    cfg.async.staleness_alpha = 0.5;

    fl::Engine resident(ra.global, ra.parts, ra.test, cfg);
    fl::Engine populated(rb.global, make_population(rb.parts), rb.test, cfg);
    EXPECT_EQ(populated.num_clients(), 6u);

    const auto scenario = [&](const fl::Engine& e) {
      fl::Scenario s = e.async_scenario(4);
      s.participation = std::make_unique<fl::CohortParticipation>(4, 11);
      return s;
    };
    const auto a = resident.collect(scenario(resident));
    const auto b = populated.collect(scenario(populated));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::memcmp(&a[i].global_accuracy, &b[i].global_accuracy,
                            sizeof(double)),
                0);
      EXPECT_EQ(a[i].updates_consumed, b[i].updates_consumed);
      EXPECT_EQ(a[i].bytes_uplinked, b[i].bytes_uplinked);
    }
    EXPECT_TRUE(snapshots_bitwise_equal(resident.global_model().snapshot(),
                                        populated.global_model().snapshot()))
        << "threads=" << threads;

    // End of run: every cohort slot returned, only referenced versions
    // remain pinned in the snapshot store.
    auto* pop = populated.population();
    ASSERT_NE(pop, nullptr);
    EXPECT_EQ(pop->clients.resident_bytes(), 0u);
    EXPECT_GT(pop->clients.materializations(), 0u);
    EXPECT_GE(pop->snapshots.total_references(), 1u);
  }
}

TEST(PopulationEngine, DurableStateAndTelemetryCommit) {
  Fed fed = make_fed(5, 150, 40, 1602);
  fl::FlConfig cfg = fast_cfg();
  fl::Engine eng(fed.global, make_population(fed.parts), fed.test, cfg);
  auto steps = eng.collect(eng.sync_scenario(2));
  ASSERT_EQ(steps.size(), 2u);

  auto* pop = eng.population();
  std::size_t started = 0, aggregated = 0;
  for (std::size_t c = 0; c < eng.num_clients(); ++c) {
    const auto t = pop->clients.telemetry(c);
    started += static_cast<std::size_t>(t.tasks_started);
    aggregated += static_cast<std::size_t>(t.updates_aggregated);
    EXPECT_GT(t.bytes_uplinked, 0u);
    EXPECT_GE(t.last_version, 1L);
  }
  EXPECT_EQ(aggregated, 10u);  // 2 barrier rounds × 5 clients
  EXPECT_GE(started, aggregated);
  // All five clients downloaded the same final version: one deduped
  // snapshot, five references.
  EXPECT_EQ(pop->snapshots.unique_snapshots(), 1u);
  EXPECT_EQ(pop->snapshots.total_references(), 5u);
  // client_data() is a resident-mode API.
  EXPECT_THROW(eng.client_data(0), CheckError);
}

TEST(PopulationEngine, DeletionOnColdClientEvictsWithoutMaterializing) {
  Fed fed = make_fed(6, 180, 40, 1603);
  fl::FlConfig cfg = fast_cfg();
  fl::Engine eng(fed.global, make_population(fed.parts), fed.test, cfg);
  auto* pop = eng.population();

  // Round 1: a 3-client cohort trains; the other clients stay cold.
  fl::Scenario s = eng.async_scenario(1);
  s.participation = std::make_unique<fl::CohortParticipation>(3, 5);
  s.buffer = std::make_unique<fl::FixedBuffer>(3);
  eng.collect(std::move(s));
  const std::size_t decoded = pop->clients.materializations();
  EXPECT_EQ(decoded, 3u);

  // Find a client that never materialized.
  std::size_t cold = 0;
  for (std::size_t c = 0; c < eng.num_clients(); ++c)
    if (pop->clients.telemetry(c).tasks_started == 0) cold = c;
  const std::size_t bytes_before = pop->clients.record_bytes(cold);

  // A zero-aggregation run whose only event deletes the cold client's rows:
  // the record is re-spilled and its snapshot references dropped WITHOUT
  // decoding a single tensor.
  fl::Scenario del;
  del.aggregations = 0;
  del.deletions.push_back(
      {0.0, cold, fed.parts[cold].subset({0, 1, 2, 3, 4})});
  eng.collect(std::move(del));
  EXPECT_EQ(pop->clients.materializations(), decoded);  // no new decodes
  EXPECT_LT(pop->clients.record_bytes(cold), bytes_before);
  EXPECT_TRUE(datasets_bitwise_equal(pop->clients.materialize(cold),
                                     fed.parts[cold].subset({0, 1, 2, 3, 4})));
}

TEST(PopulationEngine, SnapshotRefcountsReachZeroAfterDeletionEvents) {
  Fed fed = make_fed(4, 120, 30, 1604);
  fl::FlConfig cfg = fast_cfg();
  fl::Engine eng(fed.global, make_population(fed.parts), fed.test, cfg);
  auto* pop = eng.population();
  eng.collect(eng.sync_scenario(1));
  EXPECT_EQ(pop->snapshots.unique_snapshots(), 1u);
  EXPECT_EQ(pop->snapshots.total_references(), 4u);

  // Delete every client's data: each commit drops the departed replica's
  // reference, and the last drop frees the deduped buffer entirely.
  fl::Scenario del;
  del.aggregations = 0;
  for (std::size_t c = 0; c < 4; ++c)
    del.deletions.push_back({0.0, c, fed.parts[c].subset({0, 1, 2})});
  eng.collect(std::move(del));
  EXPECT_EQ(pop->snapshots.total_references(), 0u);
  EXPECT_EQ(pop->snapshots.unique_snapshots(), 0u);
  EXPECT_EQ(pop->snapshots.stored_bytes(), 0u);
}

TEST(PopulationEngine, JoinsFlipsAndLeavesMatchResidentMode) {
  Fed ra = make_fed(4, 160, 40, 1605);
  Fed rb = make_fed(4, 160, 40, 1605);
  auto joiner_a = ra.parts[0].subset({0, 1, 2, 3, 4, 5});
  auto joiner_b = rb.parts[0].subset({0, 1, 2, 3, 4, 5});
  fl::FlConfig cfg = fast_cfg();

  fl::Engine resident(ra.global, ra.parts, ra.test, cfg);
  fl::Engine populated(rb.global, make_population(rb.parts), rb.test, cfg);

  const auto scenario = [](const fl::Engine& e, data::Dataset joiner) {
    fl::Scenario s = e.sync_scenario(3, /*local_accuracy=*/false);
    s.joins.push_back({1.5, std::move(joiner)});
    s.label_flips.push_back({1.5, 1});
    s.leaves.push_back({2.5, 2});
    return s;
  };
  const auto a = resident.collect(scenario(resident, std::move(joiner_a)));
  const auto b = populated.collect(scenario(populated, std::move(joiner_b)));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(std::memcmp(&a[i].global_accuracy, &b[i].global_accuracy,
                          sizeof(double)),
              0);
  EXPECT_TRUE(snapshots_bitwise_equal(resident.global_model().snapshot(),
                                      populated.global_model().snapshot()));
  // Joins are durable in both modes; the flipped dataset committed to the
  // cold store matches the resident engine's durable copy bit for bit.
  ASSERT_EQ(populated.num_clients(), resident.num_clients());
  auto* pop = populated.population();
  for (std::size_t c = 0; c < resident.num_clients(); ++c)
    EXPECT_TRUE(datasets_bitwise_equal(pop->clients.materialize(c),
                                       resident.client_data(c)))
        << "client " << c;
}

}  // namespace
}  // namespace goldfish
