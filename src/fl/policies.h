// Pluggable server policies for the event-driven fl::Engine: who trains
// toward each server version (ParticipationPolicy), how many buffered
// updates trigger an aggregation (BufferPolicy), and how long each local
// training task takes on the virtual timeline (ClockPolicy).
//
// Determinism contract (what makes Engine runs bit-identical at any thread
// count): every policy is consulted only while the Engine builds its event
// schedule — before any training runs — and must be a pure function of its
// arguments plus construction-time state. Policies must not read wall-clock
// time, thread ids, or training results; stateful policies (AdaptiveBuffer)
// may only depend on the sequence of calls the schedule builder makes, which
// is itself deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace goldfish::fl {

/// Decides whether a client trains toward a given server version. Consulted
/// whenever a client is free: at run start, after each of its completions,
/// and again for parked clients whenever the server version advances.
class ParticipationPolicy {
 public:
  virtual ~ParticipationPolicy() = default;

  /// Does `client` start a local-training task toward server `version` at
  /// virtual time `time`? Must answer identically for identical arguments.
  virtual bool participates(std::size_t client, long version,
                            double time) = 0;

  /// When a refused client should ask again without waiting for the version
  /// to change: the next virtual time (> `time`) at which participates()
  /// may flip to true, or a negative value when only a version change can
  /// re-admit the client (the Engine re-checks every parked client after
  /// each aggregation regardless).
  virtual double retry_at(std::size_t client, long version, double time) {
    (void)client;
    (void)version;
    (void)time;
    return -1.0;
  }

  virtual std::string name() const = 0;
};

/// Every client trains continuously — the legacy run_round / run_async
/// behaviour.
class FullParticipation final : public ParticipationPolicy {
 public:
  bool participates(std::size_t, long, double) override { return true; }
  std::string name() const override { return "full"; }
};

/// Seeded uniform sampling per server version: client c is in version v's
/// cohort with probability `fraction`, decided by a single draw from the
/// collision-free mix_seed(seed, c, v) stream. Independent of time, event
/// order, and thread count, so sampled runs are bit-reproducible.
///
/// Progress note: a version whose cohort happens to be empty cannot stall
/// the server — when nothing is in flight and the buffer cannot fill, the
/// Engine re-admits every parked client at that instant (documented in
/// src/fl/README.md).
class SampledParticipation final : public ParticipationPolicy {
 public:
  SampledParticipation(double fraction, std::uint64_t seed);

  bool participates(std::size_t client, long version, double time) override;
  std::string name() const override { return "sampled"; }

 private:
  double fraction_;
  std::uint64_t seed_;
};

/// Periodic per-client availability windows in virtual time: client c is
/// available while fmod(time + c·phase, period) < on_fraction·period —
/// a crude model of devices that are only reachable while charging/idle.
/// Refusals schedule a wake inside the client's next window (at its
/// midpoint, which is robust to floating-point boundary rounding).
class AvailabilityWindows final : public ParticipationPolicy {
 public:
  /// `period` > 0; `on_fraction` in (0, 1]; `phase` staggers clients so the
  /// federation is never synchronously offline.
  AvailabilityWindows(double period, double on_fraction, double phase);

  bool participates(std::size_t client, long version, double time) override;
  double retry_at(std::size_t client, long version, double time) override;
  std::string name() const override { return "windows"; }

 private:
  double period_;
  double on_;  // on_fraction · period
  double phase_;
};

/// Decides the buffer size K for each aggregation. Called once per
/// aggregation index, in order, while the schedule is built.
class BufferPolicy {
 public:
  virtual ~BufferPolicy() = default;

  /// K for aggregation `agg` (0-based). `prev_mean_staleness` and
  /// `prev_max_staleness` describe the updates consumed by aggregation
  /// agg−1 (both 0 for agg 0); `active_clients` is the current federation
  /// size after joins/leaves. Must return ≥ 1 (the Engine clamps).
  virtual long size(long agg, double prev_mean_staleness,
                    long prev_max_staleness, std::size_t active_clients) = 0;

  virtual std::string name() const = 0;
};

/// Fixed K; 0 means "all currently active clients" (the synchronous round).
class FixedBuffer final : public BufferPolicy {
 public:
  explicit FixedBuffer(long k) : k_(k) {}

  long size(long, double, long, std::size_t active_clients) override {
    return k_ > 0 ? k_ : static_cast<long>(active_clients);
  }
  std::string name() const override { return "fixed"; }

 private:
  long k_;
};

/// Adaptive K(t) driven by observed staleness: when the previous buffer
/// consumed an update more than `target_max_staleness` versions stale, grow
/// K by one (fewer version bumps per unit time → less lag for stragglers);
/// when every consumed update was fresh, shrink K by one (aggregate more
/// often → faster model refresh). K stays within [min_size, max_size].
class AdaptiveBuffer final : public BufferPolicy {
 public:
  AdaptiveBuffer(long initial, long min_size, long max_size,
                 long target_max_staleness = 1);

  long size(long agg, double prev_mean_staleness, long prev_max_staleness,
            std::size_t active_clients) override;
  std::string name() const override { return "adaptive"; }

  long current() const { return k_; }

 private:
  long k_;
  long min_;
  long max_;
  long target_;
};

/// Supplies the virtual duration of each local-training task. `index` is the
/// client's per-run task sequence number (its RNG stream step).
class ClockPolicy {
 public:
  virtual ~ClockPolicy() = default;

  /// Duration (> 0) of client `client`'s `index`-th task. Pure function of
  /// its arguments and construction-time state.
  virtual double duration(std::size_t client, long index) = 0;

  virtual std::string name() const = 0;
};

/// The deterministic virtual clock (the legacy run_async behaviour):
/// duration = mean · exp(log_jitter · N(0,1)), drawn from the seeded
/// per-(client, task) stream mix_seed(seed ^ salt, client, index). With
/// log_jitter = 0 every task takes exactly `mean`, which reproduces the
/// synchronous schedule.
class VirtualClock final : public ClockPolicy {
 public:
  VirtualClock(std::uint64_t seed, double mean, double log_jitter);

  double duration(std::size_t client, long index) override;
  std::string name() const override { return "virtual"; }

 private:
  std::uint64_t seed_;
  double mean_;
  double jitter_;
};

/// Wall-clock replay: per-client measured task durations (e.g. recorded
/// from a real deployment trace), replayed cyclically — task `index` of
/// client c takes traces[c % traces.size()][index % trace.size()]. The
/// timeline stays virtual (and therefore thread-count independent); only
/// the durations come from measurements.
class TraceClock final : public ClockPolicy {
 public:
  explicit TraceClock(std::vector<std::vector<double>> traces);

  double duration(std::size_t client, long index) override;
  std::string name() const override { return "trace"; }

 private:
  std::vector<std::vector<double>> traces_;
};

}  // namespace goldfish::fl
