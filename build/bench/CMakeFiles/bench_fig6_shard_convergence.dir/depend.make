# Empty dependencies file for bench_fig6_shard_convergence.
# This may be replaced when dependencies are built.
