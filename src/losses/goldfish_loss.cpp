#include "losses/goldfish_loss.h"

#include "tensor/check.h"

namespace goldfish::losses {

GoldfishLoss::GoldfishLoss(GoldfishLossConfig cfg)
    : cfg_(std::move(cfg)), hard_(make_hard_loss(cfg_.hard_loss_name)) {}

GoldfishLoss::GoldfishLoss(const GoldfishLoss& other)
    : cfg_(other.cfg_), hard_(other.hard_->clone()) {}

GoldfishLoss& GoldfishLoss::operator=(const GoldfishLoss& other) {
  if (this == &other) return *this;
  cfg_ = other.cfg_;
  hard_ = other.hard_->clone();
  return *this;
}

GoldfishBatchLoss GoldfishLoss::eval(const Tensor& student_logits_r,
                                     const std::vector<long>& labels_r,
                                     const Tensor& teacher_logits_r) const {
  return eval(student_logits_r, labels_r, teacher_logits_r, Tensor(), {});
}

GoldfishBatchLoss GoldfishLoss::eval_remaining(
    const Tensor& student_logits_r, const std::vector<long>& labels_r,
    const Tensor& teacher_logits_r) const {
  return eval(student_logits_r, labels_r, teacher_logits_r, Tensor(), {});
}

GoldfishBatchLoss GoldfishLoss::eval_forget(
    const Tensor& student_logits_f, const std::vector<long>& labels_f) const {
  GOLDFISH_CHECK(!student_logits_f.empty(), "forget batch is required");
  GoldfishBatchLoss out;
  LossResult hf = hard_->eval(student_logits_f, labels_f);
  out.hard_f = hf.value;
  out.grad_f = Tensor(student_logits_f.shape());
  if (cfg_.use_forget_term) {
    out.total -= hf.value;
    if (hf.value < cfg_.forget_cap) {
      out.grad_f = hf.grad_logits;
      out.grad_f *= -1.0f;
    }
  }
  if (cfg_.use_confusion) {
    LossResult c = confusion_loss(student_logits_f);
    out.confusion = c.value;
    out.total += cfg_.mu_c * c.value;
    out.grad_f.add_scaled(c.grad_logits, cfg_.mu_c);
  }
  return out;
}

GoldfishBatchLoss GoldfishLoss::eval(const Tensor& student_logits_r,
                                     const std::vector<long>& labels_r,
                                     const Tensor& teacher_logits_r,
                                     const Tensor& student_logits_f,
                                     const std::vector<long>& labels_f) const {
  GOLDFISH_CHECK(!student_logits_r.empty(), "remaining batch is required");
  GoldfishBatchLoss out;

  // L_r — hard loss on the remaining data. Always on: it is what keeps the
  // student learning the retained knowledge.
  LossResult hr = hard_->eval(student_logits_r, labels_r);
  out.hard_r = hr.value;
  out.grad_r = std::move(hr.grad_logits);
  out.total = hr.value;

  // µ_d·L_d — distillation against the teacher on remaining data only
  // (the basic-model module's "knowledge transfer happens exclusively on
  // D_r" guarantee).
  if (cfg_.use_distillation) {
    GOLDFISH_CHECK(!teacher_logits_r.empty(),
                   "distillation requires teacher logits");
    LossResult d =
        distillation_loss(teacher_logits_r, student_logits_r,
                          cfg_.temperature);
    out.distillation = d.value;
    out.total += cfg_.mu_d * d.value;
    out.grad_r.add_scaled(d.grad_logits, cfg_.mu_d);
  }

  const bool have_forget = !student_logits_f.empty();
  if (have_forget) {
    // −L_f — push the student's predictions on D_f away from the true
    // labels (Eq. 1), saturated at forget_cap (see config comment).
    LossResult hf = hard_->eval(student_logits_f, labels_f);
    out.hard_f = hf.value;
    if (cfg_.use_forget_term) {
      out.total -= hf.value;
      if (hf.value < cfg_.forget_cap) {
        out.grad_f = hf.grad_logits;
        out.grad_f *= -1.0f;
      } else {
        out.grad_f = Tensor(student_logits_f.shape());
      }
    } else {
      out.grad_f = Tensor(student_logits_f.shape());
    }

    // µ_c·L_c — confusion loss flattens prediction confidence on D_f.
    if (cfg_.use_confusion) {
      LossResult c = confusion_loss(student_logits_f);
      out.confusion = c.value;
      out.total += cfg_.mu_c * c.value;
      out.grad_f.add_scaled(c.grad_logits, cfg_.mu_c);
    }
  }
  return out;
}

}  // namespace goldfish::losses
