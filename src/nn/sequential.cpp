#include "nn/sequential.h"

#include <sstream>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"

namespace goldfish::nn {

Sequential::Sequential(const Sequential& other) : Layer(other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  GOLDFISH_CHECK(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
}

void Sequential::attach_workspace(Workspace* ws, std::size_t& next_key) {
  Layer::attach_workspace(ws, next_key);  // claims 0 slots for the container
  for (auto& l : layers_) l->attach_workspace(ws, next_key);
}

// Peephole: a Linear directly followed by a ReLU runs as one fused GEMM
// (bias + ReLU in the writeback); the standalone ReLU layer is skipped in
// both passes and the Linear applies the mask in its own backward. Results
// are bit-identical to running the pair unfused.
bool Sequential::fused_pair_at(std::size_t i) const {
  return i + 1 < layers_.size() &&
         dynamic_cast<const Linear*>(layers_[i].get()) != nullptr &&
         dynamic_cast<const ReLU*>(layers_[i + 1].get()) != nullptr;
}

const Tensor& Sequential::forward(const Tensor& x, bool train) {
  const Tensor* h = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (auto* lin = dynamic_cast<Linear*>(layers_[i].get())) {
      const bool fuse = fused_pair_at(i);
      lin->set_fuse_relu(fuse);
      h = &lin->forward(*h, train);
      if (fuse) ++i;  // the ReLU ran inside the GEMM writeback
    } else {
      h = &layers_[i]->forward(*h, train);
    }
  }
  return *h;
}

const Tensor& Sequential::backward(const Tensor& grad_output) {
  const Tensor* g = &grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    if (i > 0 && fused_pair_at(i - 1) &&
        static_cast<const Linear*>(layers_[i - 1].get())->fuse_relu()) {
      --i;  // skip the folded ReLU; the Linear applies its mask
    }
    g = &layers_[i]->backward(*g);
  }
  return *g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (ParamRef p : layers_[i]->params()) {
      p.name = std::to_string(i) + "." + p.name;
      out.push_back(p);
    }
  }
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) os << ", ";
    os << layers_[i]->name();
  }
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------

ResidualBlock::ResidualBlock(long in_channels, long out_channels, long stride,
                             long in_h, long in_w, Rng& rng) {
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                    in_h, in_w, rng);
  const long oh = (in_h + 2 - 3) / stride + 1;
  const long ow = (in_w + 2 - 3) / stride + 1;
  bn1_ = std::make_unique<BatchNorm2d>(out_channels);
  relu1_ = std::make_unique<ReLU>();
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, oh,
                                    ow, rng);
  bn2_ = std::make_unique<BatchNorm2d>(out_channels);
  has_projection_ = (stride != 1) || (in_channels != out_channels);
  if (has_projection_) {
    short_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                           stride, 0, in_h, in_w, rng);
    short_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

ResidualBlock::ResidualBlock(const ResidualBlock& other)
    : Layer(other),
      conv1_(other.conv1_->clone()),
      bn1_(other.bn1_->clone()),
      relu1_(other.relu1_->clone()),
      conv2_(other.conv2_->clone()),
      bn2_(other.bn2_->clone()),
      has_projection_(other.has_projection_) {
  if (has_projection_) {
    short_conv_ = other.short_conv_->clone();
    short_bn_ = other.short_bn_->clone();
  }
}

ResidualBlock& ResidualBlock::operator=(const ResidualBlock& other) {
  if (this == &other) return *this;
  ResidualBlock tmp(other);
  std::swap(conv1_, tmp.conv1_);
  std::swap(bn1_, tmp.bn1_);
  std::swap(relu1_, tmp.relu1_);
  std::swap(conv2_, tmp.conv2_);
  std::swap(bn2_, tmp.bn2_);
  std::swap(short_conv_, tmp.short_conv_);
  std::swap(short_bn_, tmp.short_bn_);
  has_projection_ = tmp.has_projection_;
  return *this;
}

void ResidualBlock::attach_workspace(Workspace* ws, std::size_t& next_key) {
  Layer::attach_workspace(ws, next_key);  // claims the block's own 2 slots
  conv1_->attach_workspace(ws, next_key);
  bn1_->attach_workspace(ws, next_key);
  relu1_->attach_workspace(ws, next_key);
  conv2_->attach_workspace(ws, next_key);
  bn2_->attach_workspace(ws, next_key);
  if (has_projection_) {
    short_conv_->attach_workspace(ws, next_key);
    short_bn_->attach_workspace(ws, next_key);
  }
}

const Tensor& ResidualBlock::forward(const Tensor& x, bool train) {
  // The main branch lands in bn2_'s output slot; the block owns its
  // sublayers, so finishing the residual sum + ReLU in that slot is safe
  // (bn2_'s backward never reads its own output).
  Tensor& main = const_cast<Tensor&>(bn2_->forward(
      conv2_->forward(relu1_->forward(bn1_->forward(conv1_->forward(x, train),
                                                    train),
                                      train),
                      train),
      train));

  const Tensor* shortcut = &x;
  if (has_projection_)
    shortcut = &short_bn_->forward(short_conv_->forward(x, train), train);
  main += *shortcut;

  // Final ReLU done inline so we can keep its mask for backward.
  out_shape_ = main.shape();
  Tensor& mask = slot(0, out_shape_);
  float* md = mask.data();
  float* yd = main.data();
  for (std::size_t i = 0; i < main.numel(); ++i) {
    if (yd[i] > 0.0f) {
      md[i] = 1.0f;
    } else {
      yd[i] = 0.0f;
      md[i] = 0.0f;
    }
  }
  return main;
}

const Tensor& ResidualBlock::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(grad_output.shape() == out_shape_, "residual grad shape");
  const Tensor& mask = slot(0, out_shape_);  // same shape: contents intact
  Tensor& g = slot(1, out_shape_);
  {
    const float* gd_in = grad_output.data();
    const float* md = mask.data();
    float* gd = g.data();
    for (std::size_t i = 0; i < g.numel(); ++i) gd[i] = gd_in[i] * md[i];
  }
  // Branch gradients: the post-add gradient flows into both paths. The main
  // chain's result is conv1_'s input-gradient slot — block-owned, so the
  // shortcut gradient is summed into it in place.
  Tensor& g_main = const_cast<Tensor&>(conv1_->backward(bn1_->backward(
      relu1_->backward(conv2_->backward(bn2_->backward(g))))));

  const Tensor* g_short = &g;
  if (has_projection_)
    g_short = &short_conv_->backward(short_bn_->backward(g));
  g_main += *g_short;
  return g_main;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> out;
  const auto absorb = [&out](const char* prefix, Layer& l) {
    for (ParamRef p : l.params()) {
      p.name = std::string(prefix) + "." + p.name;
      out.push_back(p);
    }
  };
  absorb("conv1", *conv1_);
  absorb("bn1", *bn1_);
  absorb("conv2", *conv2_);
  absorb("bn2", *bn2_);
  if (has_projection_) {
    absorb("short_conv", *short_conv_);
    absorb("short_bn", *short_bn_);
  }
  return out;
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  return std::make_unique<ResidualBlock>(*this);
}

std::string ResidualBlock::name() const {
  std::ostringstream os;
  os << "residual(" << conv1_->name() << (has_projection_ ? ", proj" : "")
     << ")";
  return os.str();
}

}  // namespace goldfish::nn
