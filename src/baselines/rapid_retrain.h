// Baseline B2: rapid retraining (Liu et al., INFOCOM'22) — retraining from
// scratch accelerated by curvature information preserved from the original
// training run. The original method builds a diagonal empirical Fisher
// information matrix (FIM) and uses a first-order Taylor / natural-gradient
// approximation to take bigger, better-scaled steps.
//
// Substitution note (DESIGN.md §2): we reproduce the method's structure at
// simulator scale — a diagonal empirical FIM captured from the trained
// model on the remaining data preconditions SGD during the from-scratch
// retrain. Like the paper's B2, it retrains from scratch (no D_f influence)
// but converges faster than plain B1.
#pragma once

#include "fl/simulation.h"
#include "losses/hard_loss.h"

namespace goldfish::baselines {

/// Diagonal empirical Fisher: E[g ⊙ g] of the per-batch hard-loss gradient,
/// one entry per trainable parameter scalar, in params() order (running-stat
/// tensors get zero entries).
std::vector<Tensor> diagonal_fim(nn::Model& model, const data::Dataset& ds,
                                 const losses::HardLoss& loss,
                                 long batch_size = 100);

struct RapidRetrainConfig {
  fl::FlConfig fl;
  /// Damping λ in the preconditioner 1/(F̂ᵢᵢ + λ).
  float damping = 1e-3f;
  /// Cap on the per-coordinate step amplification.
  float max_boost = 10.0f;
};

/// Federated rapid retraining: fresh init, FIM-preconditioned local SGD on
/// remaining data, FedAvg aggregation.
std::vector<fl::RoundResult> rapid_retrain(
    const nn::Model& fresh_init, nn::Model& trained_model,
    std::vector<data::Dataset> remaining, data::Dataset server_test,
    const RapidRetrainConfig& cfg, long rounds,
    nn::Model* model_out = nullptr);

}  // namespace goldfish::baselines
