// Baseline B1: federated retraining from scratch on the remaining data
// (the reference unlearning method every comparison in §IV is anchored to —
// FedRecovery-style exact retraining at the protocol level).
#pragma once

#include "fl/simulation.h"

namespace goldfish::baselines {

/// Retrain a fresh model federatedly (FedAvg) over the clients' remaining
/// datasets. Returns per-round telemetry; the final model lands in `sim_out`
/// if provided.
std::vector<fl::RoundResult> retrain_from_scratch(
    const nn::Model& fresh_init, std::vector<data::Dataset> remaining,
    data::Dataset server_test, const fl::FlConfig& cfg, long rounds,
    nn::Model* model_out = nullptr);

}  // namespace goldfish::baselines
