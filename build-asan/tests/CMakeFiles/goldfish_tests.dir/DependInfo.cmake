
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fl_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/fl_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/fl_test.cpp.o.d"
  "/root/repo/tests/gemm_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/gemm_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/gemm_test.cpp.o.d"
  "/root/repo/tests/losses_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/losses_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/losses_test.cpp.o.d"
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/nn_gradcheck_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/nn_gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/nn_gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn_layers_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/nn_layers_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/nn_layers_test.cpp.o.d"
  "/root/repo/tests/nn_model_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/nn_model_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/nn_model_test.cpp.o.d"
  "/root/repo/tests/ops_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/ops_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/ops_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/unlearn_integration_test.cpp" "tests/CMakeFiles/goldfish_tests.dir/unlearn_integration_test.cpp.o" "gcc" "tests/CMakeFiles/goldfish_tests.dir/unlearn_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/goldfish.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
