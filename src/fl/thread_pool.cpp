#include "fl/thread_pool.h"

#include <algorithm>

namespace goldfish::fl {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::min<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()), 16);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace goldfish::fl
