#include "nn/conv.h"

#include <cmath>
#include <sstream>

namespace goldfish::nn {

Conv2d::Conv2d(long in_channels, long out_channels, long kernel, long stride,
               long pad, long in_h, long in_w, Rng& rng)
    : geom_{in_channels, in_h, in_w, kernel, stride, pad},
      out_channels_(out_channels) {
  GOLDFISH_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
                 "bad conv dims");
  GOLDFISH_CHECK(geom_.out_h() > 0 && geom_.out_w() > 0,
                 "conv output collapses to zero");
  const long fan_in = geom_.patch_size();
  weight_ = Tensor::randn({out_channels, fan_in}, rng, 0.0f,
                          std::sqrt(2.0f / static_cast<float>(fan_in)));
  bias_ = Tensor::zeros({out_channels});
  grad_weight_ = Tensor::zeros({out_channels, fan_in});
  grad_bias_ = Tensor::zeros({out_channels});
}

Tensor& Conv2d::pack_output(const Tensor& flat, long batch) {
  const long oh = geom_.out_h(), ow = geom_.out_w();
  Tensor& img = slot(1, {batch, out_channels_, oh, ow});
  // flat is (outC, N·oh·ow) with columns ordered (n, y, x).
  for (long c = 0; c < out_channels_; ++c) {
    const float* row = flat.data() + c * batch * oh * ow;
    for (long n = 0; n < batch; ++n)
      for (long y = 0; y < oh; ++y)
        for (long x = 0; x < ow; ++x)
          img.at4(n, c, y, x) = row[(n * oh + y) * ow + x];
  }
  return img;
}

Tensor& Conv2d::unpack_grad(const Tensor& grad_img) {
  const long batch = grad_img.dim(0);
  const long oh = geom_.out_h(), ow = geom_.out_w();
  Tensor& flat = slot(2, {out_channels_, batch * oh * ow});
  for (long c = 0; c < out_channels_; ++c) {
    float* row = flat.data() + c * batch * oh * ow;
    for (long n = 0; n < batch; ++n)
      for (long y = 0; y < oh; ++y)
        for (long x = 0; x < ow; ++x)
          row[(n * oh + y) * ow + x] = grad_img.at4(n, c, y, x);
  }
  return flat;
}

const Tensor& Conv2d::forward(const Tensor& x, bool /*train*/) {
  GOLDFISH_CHECK(x.rank() == 4, "conv expects (N,C,H,W)");
  cached_batch_ = x.dim(0);
  im2col_into(x, geom_, cached_cols_);
  // Per-channel bias = one value per row of the (outC, N·oh·ow) product,
  // fused into the GEMM writeback instead of a second pass over the output.
  Tensor& flat = slot(0, {out_channels_, cached_cols_.dim(1)});
  gemm_fused_into(flat, weight_, cached_cols_, false, false,
                  runtime::Epilogue::kBiasRow, bias_);
  return pack_output(flat, cached_batch_);
}

const Tensor& Conv2d::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(!cached_cols_.empty(), "backward before forward");
  const Tensor& g = unpack_grad(grad_output);  // (outC, N·oh·ow)
  gemm_acc(grad_weight_, g, cached_cols_, false, true);
  const long cols = g.dim(1);
  for (long c = 0; c < out_channels_; ++c) {
    const float* row = g.data() + c * cols;
    double acc = 0.0;
    for (long j = 0; j < cols; ++j) acc += row[j];
    grad_bias_[std::size_t(c)] += static_cast<float>(acc);
  }
  Tensor& grad_cols = slot(3, {geom_.patch_size(), cols});
  gemm_into(grad_cols, weight_, g, true, false);  // (patch, N·oh·ow)
  Tensor& gin = slot(4, {cached_batch_, geom_.in_channels, geom_.in_h,
                         geom_.in_w});
  col2im_into(grad_cols, cached_batch_, geom_, gin);
  return gin;
}

std::vector<ParamRef> Conv2d::params() {
  return {{"weight", &weight_, &grad_weight_},
          {"bias", &bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::make_unique<Conv2d>(*this);
  copy->grad_weight_.zero();
  copy->grad_bias_.zero();
  copy->cached_cols_ = Tensor();
  return copy;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "conv(" << geom_.in_channels << "->" << out_channels_ << ", k"
     << geom_.kernel << ", s" << geom_.stride << ", p" << geom_.pad << ")";
  return os.str();
}

}  // namespace goldfish::nn
