#include "nn/batchnorm.h"

#include <cmath>
#include <sstream>

#include "runtime/scheduler.h"

namespace goldfish::nn {

BatchNorm2d::BatchNorm2d(long channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::ones({channels})),
      beta_(Tensor::zeros({channels})),
      grad_gamma_(Tensor::zeros({channels})),
      grad_beta_(Tensor::zeros({channels})),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {
  GOLDFISH_CHECK(channels > 0, "bad batchnorm channels");
}

const Tensor& BatchNorm2d::forward(const Tensor& x, bool train) {
  GOLDFISH_CHECK(x.rank() == 4 && x.dim(1) == channels_,
                 "batchnorm input shape " + x.shape_str());
  in_shape_ = x.shape();
  const long N = x.dim(0), C = channels_, H = x.dim(2), W = x.dim(3);
  const long per_channel = N * H * W;
  Tensor& out = slot(0, x.shape());

  if (train) {
    Tensor& xhat = slot(1, x.shape());
    cached_inv_std_.resize_uninit({C});
    has_train_cache_ = true;
    // Channels are independent (each writes its own slice of out/x̂ and its
    // own running-stat entries) → parallel over c on the shared runtime.
    parallel_for(C, [&](long c_lo, long c_hi) {
    for (long c = c_lo; c < c_hi; ++c) {
      double mean = 0.0;
      for (long n = 0; n < N; ++n)
        for (long y = 0; y < H; ++y)
          for (long xo = 0; xo < W; ++xo) mean += x.at4(n, c, y, xo);
      mean /= per_channel;
      double var = 0.0;
      for (long n = 0; n < N; ++n)
        for (long y = 0; y < H; ++y)
          for (long xo = 0; xo < W; ++xo) {
            const double d = x.at4(n, c, y, xo) - mean;
            var += d * d;
          }
      var /= per_channel;
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[std::size_t(c)] = inv_std;
      const float g = gamma_[std::size_t(c)], b = beta_[std::size_t(c)];
      for (long n = 0; n < N; ++n)
        for (long y = 0; y < H; ++y)
          for (long xo = 0; xo < W; ++xo) {
            const float xh =
                (x.at4(n, c, y, xo) - static_cast<float>(mean)) * inv_std;
            xhat.at4(n, c, y, xo) = xh;
            out.at4(n, c, y, xo) = g * xh + b;
          }
      running_mean_[std::size_t(c)] =
          (1.0f - momentum_) * running_mean_[std::size_t(c)] +
          momentum_ * static_cast<float>(mean);
      running_var_[std::size_t(c)] =
          (1.0f - momentum_) * running_var_[std::size_t(c)] +
          momentum_ * static_cast<float>(var);
    }
    }, /*grain=*/1);
  } else {
    parallel_for(C, [&](long c_lo, long c_hi) {
    for (long c = c_lo; c < c_hi; ++c) {
      const float mean = running_mean_[std::size_t(c)];
      const float inv_std =
          1.0f / std::sqrt(running_var_[std::size_t(c)] + eps_);
      const float g = gamma_[std::size_t(c)], b = beta_[std::size_t(c)];
      for (long n = 0; n < N; ++n)
        for (long y = 0; y < H; ++y)
          for (long xo = 0; xo < W; ++xo)
            out.at4(n, c, y, xo) =
                g * (x.at4(n, c, y, xo) - mean) * inv_std + b;
    }
    }, /*grain=*/1);
  }
  return out;
}

const Tensor& BatchNorm2d::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(has_train_cache_,
                 "batchnorm backward requires a training forward");
  GOLDFISH_CHECK(grad_output.shape() == in_shape_, "batchnorm grad shape");
  const long N = in_shape_[0], C = channels_, H = in_shape_[2],
             W = in_shape_[3];
  const long m = N * H * W;
  const Tensor& xhat = slot(1, in_shape_);  // same shape: contents intact
  Tensor& gin = slot(2, in_shape_);
  parallel_for(C, [&](long c_lo, long c_hi) {
  for (long c = c_lo; c < c_hi; ++c) {
    // Standard batch-norm backward:
    // dx = (gamma·inv_std/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (long n = 0; n < N; ++n)
      for (long y = 0; y < H; ++y)
        for (long xo = 0; xo < W; ++xo) {
          const float dy = grad_output.at4(n, c, y, xo);
          sum_dy += dy;
          sum_dy_xhat += double(dy) * xhat.at4(n, c, y, xo);
        }
    grad_beta_[std::size_t(c)] += static_cast<float>(sum_dy);
    grad_gamma_[std::size_t(c)] += static_cast<float>(sum_dy_xhat);
    const float g = gamma_[std::size_t(c)];
    const float inv_std = cached_inv_std_[std::size_t(c)];
    const float scale = g * inv_std / static_cast<float>(m);
    for (long n = 0; n < N; ++n)
      for (long y = 0; y < H; ++y)
        for (long xo = 0; xo < W; ++xo) {
          const float dy = grad_output.at4(n, c, y, xo);
          const float xh = xhat.at4(n, c, y, xo);
          gin.at4(n, c, y, xo) =
              scale * (static_cast<float>(m) * dy -
                       static_cast<float>(sum_dy) -
                       xh * static_cast<float>(sum_dy_xhat));
        }
  }
  }, /*grain=*/1);
  return gin;
}

std::vector<ParamRef> BatchNorm2d::params() {
  // Running stats are exposed as parameters with null gradients so that
  // model snapshot/aggregation code moves them with the weights (FedAvg
  // averages running stats across clients exactly like PyTorch-based FL
  // implementations that average full state_dicts).
  return {{"gamma", &gamma_, &grad_gamma_},
          {"beta", &beta_, &grad_beta_},
          {"running_mean", &running_mean_, nullptr},
          {"running_var", &running_var_, nullptr}};
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  auto copy = std::make_unique<BatchNorm2d>(*this);
  copy->grad_gamma_.zero();
  copy->grad_beta_.zero();
  copy->cached_inv_std_ = Tensor();
  copy->has_train_cache_ = false;
  copy->in_shape_.clear();
  return copy;
}

std::string BatchNorm2d::name() const {
  std::ostringstream os;
  os << "batchnorm(" << channels_ << ")";
  return os.str();
}

}  // namespace goldfish::nn
