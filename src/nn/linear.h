// Fully connected layer: y = x·Wᵀ + b.
#pragma once

#include "nn/layer.h"

namespace goldfish::nn {

class Linear final : public Layer {
 public:
  /// He-initialized weights (suits the ReLU networks all paper models use).
  Linear(long in_features, long out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;

  long in_features() const { return in_; }
  long out_features() const { return out_; }

 private:
  long in_ = 0, out_ = 0;
  Tensor weight_;  // (out, in)
  Tensor bias_;    // (out)
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;  // (N, in) from the last forward
};

}  // namespace goldfish::nn
