# Empty dependencies file for backdoor_unlearning.
# This may be replaced when dependencies are built.
