#include "fl/population/client_store.h"

#include <cstring>

#include "tensor/check.h"
#include "tensor/serialize.h"

namespace goldfish::fl::population {

namespace {

// "GFP1" little-endian, mirroring the GFT1/GFQ1/GFK1 magic convention.
constexpr std::uint32_t kMagic = 0x31504647;

// Fixed header offsets (see the layout table in client_store.h). Telemetry
// patches depend on these never moving.
constexpr std::size_t kOffNumClasses = 8;
constexpr std::size_t kOffGeom = 16;
constexpr std::size_t kOffTasksStarted = 40;
constexpr std::size_t kOffUpdatesAggregated = 48;
constexpr std::size_t kOffBytesUplinked = 56;
constexpr std::size_t kOffLastVersion = 64;
constexpr std::size_t kHeaderBytes = 72;

template <typename T>
void append_raw(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void patch_raw(std::string& bytes, std::size_t offset, T v) {
  GOLDFISH_CHECK(offset + sizeof v <= bytes.size(), "header patch out of range");
  std::memcpy(&bytes[offset], &v, sizeof v);
}

template <typename T>
T read_raw(const std::string& bytes, std::size_t offset) {
  GOLDFISH_CHECK(offset + sizeof(T) <= bytes.size(), "header read out of range");
  T v;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return v;
}

}  // namespace

GOLDFISH_HOT void ClientStateStore::spill(const data::Dataset& ds,
                                          const Telemetry& t,
                                          std::string& out) {
  out.clear();
  append_raw(out, kMagic);
  append_raw(out, std::uint32_t{0});  // reserved
  append_raw(out, static_cast<std::int64_t>(ds.num_classes));
  append_raw(out, static_cast<std::int64_t>(ds.geom.channels));
  append_raw(out, static_cast<std::int64_t>(ds.geom.height));
  append_raw(out, static_cast<std::int64_t>(ds.geom.width));
  append_raw(out, static_cast<std::int64_t>(t.tasks_started));
  append_raw(out, static_cast<std::int64_t>(t.updates_aggregated));
  append_raw(out, static_cast<std::uint64_t>(t.bytes_uplinked));
  append_raw(out, static_cast<std::int64_t>(t.last_version));
  append_tensor_record(out, ds.features);
  // Labels ride as a float GFT1 record (class ids are exact below 2^24),
  // so the whole record parses with the one tensor reader.
  label_tensor_.resize_uninit({static_cast<long>(ds.labels.size())});
  float* lp = label_tensor_.data();
  for (std::size_t i = 0; i < ds.labels.size(); ++i)
    lp[i] = static_cast<float>(ds.labels[i]);
  append_tensor_record(out, label_tensor_);
}

std::size_t ClientStateStore::add(const data::Dataset& ds) {
  const std::size_t id = records_.size();
  records_.emplace_back();
  spill(ds, Telemetry{}, records_.back().bytes);
  cold_bytes_ += records_.back().bytes.size();
  return id;
}

GOLDFISH_HOT const data::Dataset& ClientStateStore::materialize(
    std::size_t id) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  Record& r = records_[id];
  if (r.slot >= 0) return slots_[r.slot].ds;

  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int>(slots_.size());
    // goldfish-lint: allow(ALLOC002) the slot pool grows to the cohort
    // high-water mark once, then every later materialization reuses a slot
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  data::Dataset& ds = s.ds;

  const std::string& bytes = r.bytes;
  GOLDFISH_CHECK(read_raw<std::uint32_t>(bytes, 0) == kMagic,
                 "bad client record magic");
  ds.num_classes = static_cast<long>(read_raw<std::int64_t>(bytes,
                                                            kOffNumClasses));
  ds.geom.channels = static_cast<long>(read_raw<std::int64_t>(bytes, kOffGeom));
  ds.geom.height =
      static_cast<long>(read_raw<std::int64_t>(bytes, kOffGeom + 8));
  ds.geom.width =
      static_cast<long>(read_raw<std::int64_t>(bytes, kOffGeom + 16));

  std::size_t offset = kHeaderBytes;
  read_tensor_record_into(bytes.data(), bytes.size(), &offset, ds.features);
  read_tensor_record_into(bytes.data(), bytes.size(), &offset, label_tensor_);
  GOLDFISH_CHECK(offset == bytes.size(), "trailing bytes in client record");
  const std::size_t n = static_cast<std::size_t>(label_tensor_.numel());
  // goldfish-lint: allow(ALLOC002) label vector capacity is monotonic per
  // slot — steady-state cohort turnover reuses it without reallocating
  ds.labels.resize(n);
  const float* lp = label_tensor_.data();
  for (std::size_t i = 0; i < n; ++i) ds.labels[i] = static_cast<long>(lp[i]);

  r.slot = slot;
  s.owner = id;
  s.bytes = static_cast<std::size_t>(ds.features.numel()) * sizeof(float) +
            ds.labels.size() * sizeof(long);
  resident_bytes_ += s.bytes;
  if (resident_bytes_ > peak_resident_bytes_)
    peak_resident_bytes_ = resident_bytes_;
  ++resident_clients_;
  ++materializations_;
  return ds;
}

bool ClientStateStore::resident(std::size_t id) const {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  return records_[id].slot >= 0;
}

void ClientStateStore::release(std::size_t id) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  Record& r = records_[id];
  if (r.slot < 0) return;
  Slot& s = slots_[r.slot];
  resident_bytes_ -= s.bytes;
  s.bytes = 0;
  --resident_clients_;
  free_slots_.push_back(r.slot);
  r.slot = -1;
}

void ClientStateStore::release_all() {
  // Walk the slot pool (O(cohort)), not the records (O(population)).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.owner < records_.size() &&
        records_[s.owner].slot == static_cast<int>(i))
      release(s.owner);
  }
}

void ClientStateStore::replace(std::size_t id, const data::Dataset& ds) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  release(id);
  Record& r = records_[id];
  // Telemetry survives the data swap; the old tensor payload is never
  // decoded (deletion on a cold client must not force a materialization).
  const Telemetry t = telemetry(id);
  cold_bytes_ -= r.bytes.size();
  spill(ds, t, r.bytes);
  cold_bytes_ += r.bytes.size();
}

ClientStateStore::Telemetry ClientStateStore::telemetry(std::size_t id) const {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  const std::string& b = records_[id].bytes;
  Telemetry t;
  t.tasks_started = static_cast<long>(read_raw<std::int64_t>(b,
                                                             kOffTasksStarted));
  t.updates_aggregated =
      static_cast<long>(read_raw<std::int64_t>(b, kOffUpdatesAggregated));
  t.bytes_uplinked = read_raw<std::uint64_t>(b, kOffBytesUplinked);
  t.last_version = static_cast<long>(read_raw<std::int64_t>(b,
                                                            kOffLastVersion));
  return t;
}

void ClientStateStore::bump_tasks_started(std::size_t id, long n) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  std::string& b = records_[id].bytes;
  patch_raw(b, kOffTasksStarted,
            read_raw<std::int64_t>(b, kOffTasksStarted) + n);
}

void ClientStateStore::bump_updates_aggregated(std::size_t id, long n) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  std::string& b = records_[id].bytes;
  patch_raw(b, kOffUpdatesAggregated,
            read_raw<std::int64_t>(b, kOffUpdatesAggregated) + n);
}

void ClientStateStore::bump_bytes_uplinked(std::size_t id, std::uint64_t n) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  std::string& b = records_[id].bytes;
  patch_raw(b, kOffBytesUplinked,
            read_raw<std::uint64_t>(b, kOffBytesUplinked) + n);
}

void ClientStateStore::set_last_version(std::size_t id, long version) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  patch_raw(records_[id].bytes, kOffLastVersion,
            static_cast<std::int64_t>(version));
}

const SnapshotStore::Handle& ClientStateStore::reference(
    std::size_t id) const {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  return records_[id].reference;
}

void ClientStateStore::set_reference(std::size_t id,
                                     const SnapshotStore::Handle& h) {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  records_[id].reference = h;
}

std::size_t ClientStateStore::record_bytes(std::size_t id) const {
  GOLDFISH_CHECK(id < records_.size(), "unknown client id");
  return records_[id].bytes.size();
}

}  // namespace goldfish::fl::population
