// Semantics of the loss family (values, invariants, ablation switches).
#include <gtest/gtest.h>

#include <cmath>

#include "losses/goldfish_loss.h"
#include "tensor/ops.h"

namespace goldfish {
namespace {

using losses::LossResult;

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  losses::CrossEntropyLoss ce;
  Tensor z({2, 4});  // all-zero logits → uniform softmax
  LossResult r = ce.eval(z, {0, 3});
  EXPECT_NEAR(r.value, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, PerfectPredictionNearZero) {
  losses::CrossEntropyLoss ce;
  Tensor z({1, 3});
  z.at(0, 1) = 30.0f;
  LossResult r = ce.eval(z, {1});
  EXPECT_NEAR(r.value, 0.0f, 1e-4f);
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  losses::CrossEntropyLoss ce;
  Tensor z({1, 3});
  EXPECT_THROW(ce.eval(z, {3}), CheckError);
  EXPECT_THROW(ce.eval(z, {-1}), CheckError);
}

TEST(CrossEntropy, BatchSizeMismatchThrows) {
  losses::CrossEntropyLoss ce;
  Tensor z({2, 3});
  EXPECT_THROW(ce.eval(z, {0}), CheckError);
}

TEST(Focal, EqualsCEAtGammaZero) {
  Rng rng(1);
  Tensor z = Tensor::randn({4, 5}, rng, 0.0f, 2.0f);
  const std::vector<long> y{0, 1, 2, 3};
  losses::FocalLoss focal(0.0f);
  losses::CrossEntropyLoss ce;
  EXPECT_NEAR(focal.eval(z, y).value, ce.eval(z, y).value, 1e-4f);
}

TEST(Focal, DownweightsEasyExamples) {
  // A confidently-correct sample contributes much less under focal loss.
  Tensor easy({1, 2});
  easy.at(0, 0) = 6.0f;  // p_y ≈ 0.998
  losses::FocalLoss focal(2.0f);
  losses::CrossEntropyLoss ce;
  const float f = focal.eval(easy, {0}).value;
  const float c = ce.eval(easy, {0}).value;
  EXPECT_LT(f, 0.01f * c + 1e-8f);
}

TEST(Nll, MatchesCrossEntropyOnLogits) {
  Rng rng(2);
  Tensor z = Tensor::randn({5, 7}, rng, 0.0f, 3.0f);
  const std::vector<long> y{0, 1, 2, 3, 4};
  losses::NllLoss nll;
  losses::CrossEntropyLoss ce;
  EXPECT_NEAR(nll.eval(z, y).value, ce.eval(z, y).value, 1e-5f);
  // Gradients agree too.
  auto gn = nll.eval(z, y).grad_logits;
  auto gc = ce.eval(z, y).grad_logits;
  for (std::size_t i = 0; i < gn.numel(); ++i)
    EXPECT_NEAR(gn[i], gc[i], 1e-5f);
}

TEST(HardLossFactory, KnownAndUnknown) {
  EXPECT_EQ(losses::make_hard_loss("focal")->name(), "focal");
  EXPECT_THROW(losses::make_hard_loss("hinge"), CheckError);
}

TEST(Distillation, ZeroWhenStudentMatchesTeacherDistribution) {
  Rng rng(3);
  Tensor t = Tensor::randn({3, 4}, rng, 0.0f, 2.0f);
  // Identical logits → KL-style excess is exactly the teacher's entropy;
  // the *gradient* must vanish.
  auto r = losses::distillation_loss(t, t, 2.0f);
  for (std::size_t i = 0; i < r.grad_logits.numel(); ++i)
    EXPECT_NEAR(r.grad_logits[i], 0.0f, 1e-6f);
}

TEST(Distillation, LossIsTeacherEntropyAtMatch) {
  Tensor t({1, 2});
  t.at(0, 0) = 0.0f;
  t.at(0, 1) = 0.0f;  // uniform teacher
  auto r = losses::distillation_loss(t, t, 1.0f);
  EXPECT_NEAR(r.value, std::log(2.0f), 1e-5f);
}

TEST(Distillation, MismatchedShapesThrow) {
  Tensor a({2, 3}), b({2, 4});
  EXPECT_THROW(losses::distillation_loss(a, b, 1.0f), CheckError);
}

TEST(Distillation, HigherTemperatureShrinksGradient) {
  Rng rng(4);
  Tensor t = Tensor::randn({2, 5}, rng, 0.0f, 3.0f);
  Tensor s = Tensor::randn({2, 5}, rng, 0.0f, 3.0f);
  const auto g1 = losses::distillation_loss(t, s, 1.0f).grad_logits;
  const auto g5 = losses::distillation_loss(t, s, 5.0f).grad_logits;
  EXPECT_LT(g5.squared_norm(), g1.squared_norm());
}

TEST(Confusion, UniformPredictionIsMinimum) {
  Tensor uniform({2, 5});  // zero logits → uniform softmax → zero variance
  auto r = losses::confusion_loss(uniform);
  EXPECT_NEAR(r.value, 0.0f, 1e-6f);
  for (std::size_t i = 0; i < r.grad_logits.numel(); ++i)
    EXPECT_NEAR(r.grad_logits[i], 0.0f, 1e-6f);
}

TEST(Confusion, ConfidentPredictionIsPenalized) {
  Tensor confident({1, 5});
  confident.at(0, 2) = 10.0f;
  auto r = losses::confusion_loss(confident);
  EXPECT_GT(r.value, 0.1f);
}

TEST(Confusion, GradientDescentFlattensPrediction) {
  // Following the negative gradient should reduce the loss.
  Tensor z({1, 4});
  z.at(0, 0) = 3.0f;
  auto r0 = losses::confusion_loss(z);
  Tensor z2 = z;
  z2.add_scaled(r0.grad_logits, -1.0f);
  auto r1 = losses::confusion_loss(z2);
  EXPECT_LT(r1.value, r0.value);
}

// -- composite Goldfish loss ------------------------------------------------

losses::GoldfishLossConfig base_cfg() {
  losses::GoldfishLossConfig cfg;
  cfg.mu_c = 0.25f;
  cfg.mu_d = 1.0f;
  cfg.temperature = 3.0f;
  return cfg;
}

TEST(GoldfishLoss, CombinesAllTerms) {
  Rng rng(5);
  Tensor sr = Tensor::randn({4, 5}, rng);
  Tensor tr = Tensor::randn({4, 5}, rng);
  Tensor sf = Tensor::randn({2, 5}, rng);
  const std::vector<long> yr{0, 1, 2, 3}, yf{4, 0};
  losses::GoldfishLoss loss(base_cfg());
  auto full = loss.eval(sr, yr, tr, sf, yf);
  EXPECT_FALSE(full.grad_r.empty());
  EXPECT_FALSE(full.grad_f.empty());
  // total = hard_r − hard_f + µ_c·conf + µ_d·distill
  EXPECT_NEAR(full.total,
              full.hard_r - full.hard_f + 0.25f * full.confusion +
                  1.0f * full.distillation,
              1e-4f);
}

TEST(GoldfishLoss, SplitEvalMatchesCombined) {
  Rng rng(6);
  Tensor sr = Tensor::randn({4, 5}, rng);
  Tensor tr = Tensor::randn({4, 5}, rng);
  Tensor sf = Tensor::randn({2, 5}, rng);
  const std::vector<long> yr{0, 1, 2, 3}, yf{4, 0};
  losses::GoldfishLoss loss(base_cfg());
  auto full = loss.eval(sr, yr, tr, sf, yf);
  auto r_part = loss.eval_remaining(sr, yr, tr);
  auto f_part = loss.eval_forget(sf, yf);
  EXPECT_NEAR(full.total, r_part.total + f_part.total, 1e-4f);
  for (std::size_t i = 0; i < full.grad_r.numel(); ++i)
    EXPECT_NEAR(full.grad_r[i], r_part.grad_r[i], 1e-6f);
  for (std::size_t i = 0; i < full.grad_f.numel(); ++i)
    EXPECT_NEAR(full.grad_f[i], f_part.grad_f[i], 1e-6f);
}

TEST(GoldfishLoss, AblationWithoutDistillation) {
  auto cfg = base_cfg();
  cfg.use_distillation = false;
  losses::GoldfishLoss loss(cfg);
  Rng rng(7);
  Tensor sr = Tensor::randn({3, 4}, rng);
  auto r = loss.eval_remaining(sr, {0, 1, 2}, Tensor());
  EXPECT_FLOAT_EQ(r.distillation, 0.0f);
  EXPECT_NEAR(r.total, r.hard_r, 1e-6f);
}

TEST(GoldfishLoss, AblationWithoutConfusion) {
  auto cfg = base_cfg();
  cfg.use_confusion = false;
  losses::GoldfishLoss loss(cfg);
  Rng rng(8);
  Tensor sf = Tensor::randn({2, 4}, rng);
  auto r = loss.eval_forget(sf, {0, 1});
  EXPECT_FLOAT_EQ(r.confusion, 0.0f);
}

TEST(GoldfishLoss, ForgetCapSaturatesGradient) {
  auto cfg = base_cfg();
  cfg.use_confusion = false;
  cfg.forget_cap = 0.01f;  // absurdly low → always saturated
  losses::GoldfishLoss loss(cfg);
  Tensor sf({2, 4});
  sf.at(0, 1) = 5.0f;  // wrong-confident → hard_f large
  auto r = loss.eval_forget(sf, {0, 1});
  EXPECT_FLOAT_EQ(r.grad_f.squared_norm(), 0.0f);
}

TEST(GoldfishLoss, ForgetTermPushesAwayFromLabel) {
  auto cfg = base_cfg();
  cfg.use_confusion = false;
  cfg.forget_cap = 100.0f;
  losses::GoldfishLoss loss(cfg);
  Tensor sf({1, 3});
  sf.at(0, 0) = 2.0f;  // currently predicting the true (forgotten) label
  auto r = loss.eval_forget(sf, {0});
  // Gradient ascends the forget loss: positive gradient on the true logit
  // means SGD (which subtracts) will *reduce* confidence on it.
  EXPECT_GT(r.grad_f.at(0, 0), 0.0f);
}

TEST(GoldfishLoss, CopyPreservesBehaviour) {
  losses::GoldfishLoss a(base_cfg());
  losses::GoldfishLoss b = a;
  Rng rng(9);
  Tensor sr = Tensor::randn({2, 3}, rng);
  Tensor tr = Tensor::randn({2, 3}, rng);
  auto ra = a.eval_remaining(sr, {0, 1}, tr);
  auto rb = b.eval_remaining(sr, {0, 1}, tr);
  EXPECT_FLOAT_EQ(ra.total, rb.total);
}

TEST(GoldfishLoss, TemperatureOverrideTakesEffect) {
  auto cfg = base_cfg();
  losses::GoldfishLoss loss(cfg);
  Rng rng(10);
  Tensor sr = Tensor::randn({2, 4}, rng, 0.0f, 4.0f);
  Tensor tr = Tensor::randn({2, 4}, rng, 0.0f, 4.0f);
  auto r1 = loss.eval_remaining(sr, {0, 1}, tr);
  losses::GoldfishLoss hot(cfg);
  hot.set_temperature(9.0f);
  auto r2 = hot.eval_remaining(sr, {0, 1}, tr);
  EXPECT_NE(r1.distillation, r2.distillation);
}

}  // namespace
}  // namespace goldfish
