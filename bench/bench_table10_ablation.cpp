// Table X: ablation of the loss-function components on CIFAR-10 with a
// ResNet (32 at full scale, 8 at quick). Configurations: hard loss only /
// without distillation (hard+confusion) / without confusion (hard+distill) /
// total loss. Paper shape: w/o distillation forgets well but loses accuracy;
// w/o confusion keeps accuracy but retains backdoor; total loss gets both.
#include "bench/ablation_common.h"

int main() {
  using namespace goldfish;
  using namespace goldfish::bench;
  print_header("Table X: loss-component ablation (CIFAR-10, ResNet)");

  const bool full = metrics::full_scale();
  Scenario s = make_scenario(data::DatasetKind::Cifar10, 0.10f, 10100);
  {
    // Swap in the ResNet the paper uses for this study.
    s.prof.arch = full ? "resnet32" : "resnet8";
    s.prof.train_size = full ? 900 : 300;
    s.prof.batch = 32;
    auto spec = data::default_spec(
        data::DatasetKind::Cifar10, 10100, s.prof.train_size,
        s.prof.test_size);
    spec.noise_scale = full ? 1.0f : 0.35f;
    s.tt = data::make_synthetic(spec);
    Rng rng(10101);
    s.parts = data::partition_iid(s.tt.train, s.prof.clients, rng);
    auto poisoned = data::poison_dataset(s.parts[0], s.spec, 0.10f, rng);
    s.parts[0] = poisoned.poisoned;
    s.poisoned_rows = poisoned.poisoned_indices;
    s.probe = data::make_trigger_probe(s.tt.test, s.spec);
    Rng mrng(10102);
    s.fresh = nn::make_model(s.prof.arch, s.tt.train.geom,
                             s.tt.train.num_classes, mrng);
    s.trained = s.fresh;
    fl::FlConfig cfg;
    cfg.local.epochs = s.prof.local_epochs;
    cfg.local.batch_size = s.prof.batch;
    cfg.local.lr = s.prof.lr;
    fl::FederatedSim sim(s.trained, s.parts, s.tt.test, cfg);
    sim.run(full ? 6 : 3);
    s.trained = sim.global_model();
  }

  struct Config {
    const char* label;
    bool distill;
    bool confusion;
  };
  const std::vector<Config> configs = {
      {"Hard loss only", false, false},
      {"w/o Distillation", false, true},
      {"w/o Confusion", true, false},
      {"Total loss", true, true},
  };

  const auto checkpoints = study_checkpoints();
  // rows[config] = checkpointed results
  std::vector<std::vector<CheckpointRow>> results;
  for (const Config& c : configs) {
    losses::GoldfishLossConfig loss_cfg;
    loss_cfg.mu_c = 0.25f;
    loss_cfg.mu_d = 1.0f;
    loss_cfg.temperature = 3.0f;
    loss_cfg.use_distillation = c.distill;
    loss_cfg.use_confusion = c.confusion;
    results.push_back(run_loss_study(s, loss_cfg, checkpoints));
  }

  metrics::TableReporter table(
      "Table X — loss ablation (acc / backdoor per epoch)",
      {"epoch", "metric", "Hard only", "w/o Distill", "w/o Confusion",
       "Total"});
  for (std::size_t cp = 0; cp < checkpoints.size(); ++cp) {
    table.add_row({std::to_string(checkpoints[cp]), "acc",
                   metrics::fmt(results[0][cp].accuracy),
                   metrics::fmt(results[1][cp].accuracy),
                   metrics::fmt(results[2][cp].accuracy),
                   metrics::fmt(results[3][cp].accuracy)});
    table.add_row({std::to_string(checkpoints[cp]), "backdoor",
                   metrics::fmt(results[0][cp].asr),
                   metrics::fmt(results[1][cp].asr),
                   metrics::fmt(results[2][cp].asr),
                   metrics::fmt(results[3][cp].asr)});
  }
  table.print();
  table.write_csv(csv_dir() + "/tableX_ablation.csv");
  return 0;
}
