#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "tensor/check.h"

namespace goldfish {

namespace {

constexpr std::uint32_t kMagic = 0x31544647;  // "GFT1"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  GOLDFISH_CHECK(bool(is), "truncated tensor stream");
  return v;
}

void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  GOLDFISH_CHECK(bool(is), "truncated tensor stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u32(os, kMagic);
  write_u32(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i) write_i64(os, t.dim(i));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  GOLDFISH_CHECK(bool(os), "tensor write failed");
}

Tensor read_tensor(std::istream& is) {
  GOLDFISH_CHECK(read_u32(is) == kMagic, "bad tensor magic");
  const std::uint32_t rank = read_u32(is);
  GOLDFISH_CHECK(rank <= 8, "implausible tensor rank");
  Shape shape(rank);
  for (std::uint32_t i = 0; i < rank; ++i) {
    shape[i] = read_i64(is);
    GOLDFISH_CHECK(shape[i] >= 0 && shape[i] < (1L << 32), "bad dim");
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  GOLDFISH_CHECK(bool(is), "truncated tensor payload");
  return t;
}

void save_tensors(const std::string& path, const std::vector<Tensor>& ts) {
  std::ofstream os(path, std::ios::binary);
  GOLDFISH_CHECK(os.is_open(), "cannot open for write: " + path);
  write_u32(os, static_cast<std::uint32_t>(ts.size()));
  for (const Tensor& t : ts) write_tensor(os, t);
}

std::vector<Tensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GOLDFISH_CHECK(is.is_open(), "cannot open for read: " + path);
  const std::uint32_t n = read_u32(is);
  GOLDFISH_CHECK(n < (1u << 20), "implausible tensor count");
  std::vector<Tensor> ts;
  ts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ts.push_back(read_tensor(is));
  return ts;
}

std::vector<Tensor> roundtrip_through_bytes(const std::vector<Tensor>& ts,
                                            std::size_t* bytes_on_wire) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_u32(ss, static_cast<std::uint32_t>(ts.size()));
  for (const Tensor& t : ts) write_tensor(ss, t);
  const std::string buf = ss.str();
  if (bytes_on_wire != nullptr) *bytes_on_wire = buf.size();
  std::stringstream in(buf, std::ios::in | std::ios::binary);
  const std::uint32_t n = read_u32(in);
  std::vector<Tensor> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(read_tensor(in));
  return out;
}

}  // namespace goldfish
