# Empty dependencies file for bench_fig4_retrain_accuracy.
# This may be replaced when dependencies are built.
