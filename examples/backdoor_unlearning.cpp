// Scenario example: removing a backdoor attack via federated unlearning —
// the paper's validity experiment (§IV-B) as a standalone application.
//
// A malicious client poisons 20% of its local data with a pixel trigger that
// flips predictions to a target class. After federated training the global
// model carries the backdoor. The client's poisoned samples are then deleted
// via Goldfish, and we compare against B1 (retrain from scratch) and B3
// (incompetent teacher) on attack success rate and accuracy.
//
// Run: ./build/examples/backdoor_unlearning
#include <iostream>
#include <set>

#include "baselines/incompetent_teacher.h"
#include "baselines/retrain_scratch.h"
#include "core/unlearner.h"
#include "data/backdoor.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluation.h"
#include "metrics/report.h"
#include "nn/models.h"

int main() {
  using namespace goldfish;
  std::cout << "== Backdoor unlearning demo ==\n";

  // Federated dataset; client 0 is the attacker.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 7, 600, 200));
  Rng rng(8);
  auto clients = data::partition_iid(tt.train, 3, rng);

  data::BackdoorSpec attack;
  attack.target_label = 0;
  attack.patch = 4;
  auto poisoned = data::poison_dataset(clients[0], attack, 0.20f, rng);
  clients[0] = poisoned.poisoned;
  const data::Dataset probe = data::make_trigger_probe(tt.test, attack);
  std::cout << "client 0 poisoned " << poisoned.poisoned_indices.size()
            << " of " << clients[0].size() << " samples (target label "
            << attack.target_label << ")\n";

  // Train the (contaminated) global model.
  Rng mrng(9);
  nn::Model fresh = nn::make_mlp(tt.train.geom, 64, 10, mrng);
  nn::Model global = fresh;
  fl::FlConfig flcfg;
  flcfg.local.epochs = 4;
  flcfg.local.batch_size = 50;
  flcfg.local.lr = 0.05f;
  fl::FederatedSim sim(global, clients, tt.test, flcfg);
  sim.run(6);
  global = sim.global_model();

  const auto report = [&](const char* name, nn::Model& m) {
    std::cout << "  " << name << ": accuracy "
              << metrics::fmt(metrics::accuracy(m, tt.test)) << "%, ASR "
              << metrics::fmt(metrics::attack_success_rate(m, probe))
              << "%\n";
  };
  std::cout << "before unlearning:\n";
  report("origin (contaminated)", global);

  // Remaining/removed split for the baselines.
  std::vector<std::size_t> keep;
  {
    std::set<std::size_t> bad(poisoned.poisoned_indices.begin(),
                              poisoned.poisoned_indices.end());
    for (long i = 0; i < clients[0].size(); ++i)
      if (bad.count(static_cast<std::size_t>(i)) == 0)
        keep.push_back(static_cast<std::size_t>(i));
  }
  std::vector<data::Dataset> remaining = clients;
  remaining[0] = clients[0].subset(keep);
  std::vector<data::Dataset> removed(clients.size());
  removed[0] = clients[0].subset(poisoned.poisoned_indices);

  std::cout << "after unlearning:\n";

  // Goldfish (ours).
  core::UnlearnConfig cfg;
  cfg.distill.max_epochs = 5;
  cfg.distill.batch_size = 50;
  cfg.distill.lr = 0.05f;
  cfg.distill.use_early_termination = false;
  core::GoldfishUnlearner unlearner(global, fresh, clients, tt.test, cfg);
  unlearner.request_deletion({{0, poisoned.poisoned_indices}});
  // run(3) is a canned synchronous scenario on the unlearner's engine;
  // stream the per-round telemetry instead of collecting it silently.
  for (const auto& round : unlearner.run(3))
    std::cout << "    distill round " << round.round + 1 << ": accuracy "
              << metrics::fmt(round.global_accuracy) << "%, epochs "
              << round.total_epochs_run << "\n";
  report("Goldfish (ours)", unlearner.global_model());

  // B1: retrain from scratch.
  fl::FlConfig b1cfg = flcfg;
  nn::Model b1;
  baselines::retrain_from_scratch(fresh, remaining, tt.test, b1cfg, 6, &b1);
  report("B1 retrain", b1);

  // B3: incompetent teacher.
  baselines::IncompetentTeacherConfig b3cfg;
  b3cfg.fl.local.epochs = 4;
  b3cfg.fl.local.batch_size = 50;
  b3cfg.fl.local.lr = 0.05f;
  b3cfg.forget_weight = 2.0f;
  Rng irng(10);
  nn::Model incompetent = nn::make_mlp(tt.train.geom, 64, 10, irng);
  nn::Model b3;
  baselines::incompetent_teacher_unlearn(global, incompetent, remaining,
                                         removed, tt.test, b3cfg, 3, &b3);
  report("B3 incompetent teacher", b3);

  std::cout << "expected shape: origin keeps a high ASR; all three "
               "unlearning methods collapse it, Goldfish at the best "
               "accuracy/rounds trade-off.\n";
  return 0;
}
