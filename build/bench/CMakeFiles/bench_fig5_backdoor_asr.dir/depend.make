# Empty dependencies file for bench_fig5_backdoor_asr.
# This may be replaced when dependencies are built.
