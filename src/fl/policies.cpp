#include "fl/policies.h"

#include <cmath>

#include "tensor/check.h"

namespace goldfish::fl {

namespace {

/// Salt separating the participation-sampling RNG streams from the training
/// and duration streams (all hash (seed, stream, step) through mix_seed).
constexpr std::uint64_t kSamplingSalt = 0x2545F4914F6CDD1Dull;

/// Salt of the virtual-duration streams. The constant is load-bearing: it is
/// the salt the legacy FederatedSim::run_async used, so a VirtualClock built
/// from the same FlConfig draws bit-identical durations and replays the
/// legacy golden schedules exactly.
constexpr std::uint64_t kDurationSalt = 0x517CC1B727220A95ull;

}  // namespace

SampledParticipation::SampledParticipation(double fraction,
                                           std::uint64_t seed)
    : fraction_(fraction), seed_(seed) {
  GOLDFISH_CHECK(fraction > 0.0 && fraction <= 1.0,
                 "sampling fraction must be in (0, 1]");
}

bool SampledParticipation::participates(std::size_t client, long version,
                                        double) {
  Rng rng(mix_seed(seed_ ^ kSamplingSalt, client,
                   static_cast<std::uint64_t>(version)));
  return double(rng.uniform()) < fraction_;
}

AvailabilityWindows::AvailabilityWindows(double period, double on_fraction,
                                         double phase)
    : period_(period), on_(on_fraction * period), phase_(phase) {
  GOLDFISH_CHECK(period > 0.0, "availability period must be positive");
  GOLDFISH_CHECK(on_fraction > 0.0 && on_fraction <= 1.0,
                 "availability on_fraction must be in (0, 1]");
}

bool AvailabilityWindows::participates(std::size_t client, long,
                                       double time) {
  const double local = time + double(client) * phase_;
  const double pos = local - std::floor(local / period_) * period_;
  return pos < on_;
}

double AvailabilityWindows::retry_at(std::size_t client, long, double time) {
  // participates() was just false, so `pos >= on_` and the next window
  // opens one full period after the current one began (in the client's
  // shifted frame, mapped back to global virtual time). The wake targets
  // the *middle* of that window, not its leading edge: a wake landing
  // exactly on the FP-rounded boundary could still see pos ≈ period (still
  // off-window), recompute retry == now, and be dropped — half an
  // on-window of margin makes the re-check robustly succeed.
  const double local = time + double(client) * phase_;
  const double window_start = std::floor(local / period_) * period_;
  return window_start + period_ + 0.5 * on_ - double(client) * phase_;
}

AdaptiveBuffer::AdaptiveBuffer(long initial, long min_size, long max_size,
                               long target_max_staleness)
    : k_(initial), min_(min_size), max_(max_size),
      target_(target_max_staleness) {
  GOLDFISH_CHECK(min_size >= 1, "adaptive buffer min_size must be >= 1");
  GOLDFISH_CHECK(min_size <= initial && initial <= max_size,
                 "adaptive buffer needs min_size <= initial <= max_size");
  GOLDFISH_CHECK(target_max_staleness >= 0,
                 "adaptive buffer target staleness must be >= 0");
}

long AdaptiveBuffer::size(long agg, double, long prev_max_staleness,
                          std::size_t) {
  if (agg > 0) {
    if (prev_max_staleness > target_)
      k_ = std::min(k_ + 1, max_);
    else if (prev_max_staleness == 0)
      k_ = std::max(k_ - 1, min_);
  }
  return k_;
}

VirtualClock::VirtualClock(std::uint64_t seed, double mean,
                           double log_jitter)
    : seed_(seed), mean_(mean), jitter_(log_jitter) {
  GOLDFISH_CHECK(mean > 0.0, "virtual-clock mean duration must be positive");
}

double VirtualClock::duration(std::size_t client, long index) {
  // Bit-for-bit the legacy draw: one normal deviate from the per-(client,
  // task) stream, widened to double only after the float math.
  Rng rng(mix_seed(seed_ ^ kDurationSalt, client,
                   static_cast<std::uint64_t>(index)));
  return mean_ * std::exp(jitter_ * double(rng.normal()));
}

TraceClock::TraceClock(std::vector<std::vector<double>> traces)
    : traces_(std::move(traces)) {
  GOLDFISH_CHECK(!traces_.empty(), "trace clock needs at least one trace");
  for (const auto& trace : traces_) {
    GOLDFISH_CHECK(!trace.empty(), "trace clock: empty per-client trace");
    for (double d : trace)
      GOLDFISH_CHECK(d > 0.0, "trace clock: durations must be positive");
  }
}

double TraceClock::duration(std::size_t client, long index) {
  const auto& trace = traces_[client % traces_.size()];
  return trace[static_cast<std::size_t>(index) % trace.size()];
}

}  // namespace goldfish::fl
