// Unit tests for tensor kernels: matmul family, softmax, reductions,
// im2col/col2im.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace goldfish {
namespace {

TEST(Matmul, KnownProduct) {
  Tensor a = Tensor::from2d({{1, 2}, {3, 4}});
  Tensor b = Tensor::from2d({{5, 6}, {7, 8}});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, RectangularShapes) {
  Rng rng(1);
  Tensor a = Tensor::randn({3, 5}, rng);
  Tensor b = Tensor::randn({5, 7}, rng);
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.dim(0), 3);
  EXPECT_EQ(c.dim(1), 7);
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::randn({4, 3}, rng);  // will be used as aᵀ (3x4)
  Tensor b = Tensor::randn({4, 5}, rng);
  Tensor expect = matmul(transpose(a), b);
  Tensor got = matmul_tn(a, b);
  ASSERT_TRUE(got.same_shape(expect));
  for (std::size_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({5, 3}, rng);  // used as bᵀ (3x5)
  Tensor expect = matmul(a, transpose(b));
  Tensor got = matmul_nt(a, b);
  ASSERT_TRUE(got.same_shape(expect));
  for (std::size_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

TEST(Matmul, LargeParallelPathMatchesSmall) {
  // Whole-matrix product vs the same rows computed one at a time (which
  // take the minimal-tile path). Multi-panel and parallel GEMM coverage
  // lives in gemm_test.cpp (LargeShapeCrossesAllPanelBoundaries,
  // DeterministicAcrossThreadCounts).
  Rng rng(4);
  Tensor a = Tensor::randn({64, 33}, rng);
  Tensor b = Tensor::randn({33, 47}, rng);
  Tensor whole = matmul(a, b);
  for (long i : {0L, 17L, 63L}) {
    Tensor row({1, 33});
    for (long k = 0; k < 33; ++k) row.at(0, k) = a.at(i, k);
    Tensor expect = matmul(row, b);
    for (long j = 0; j < 47; ++j)
      EXPECT_NEAR(whole.at(i, j), expect.at(0, j), 1e-4f);
  }
}

TEST(Transpose, RoundTrip) {
  Rng rng(5);
  Tensor a = Tensor::randn({3, 6}, rng);
  Tensor tt = transpose(transpose(a));
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(tt[i], a[i]);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(6);
  Tensor logits = Tensor::randn({5, 9}, rng, 0.0f, 4.0f);
  Tensor p = softmax_rows(logits);
  for (long i = 0; i < 5; ++i) {
    double s = 0.0;
    for (long j = 0; j < 9; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, TemperatureSmooths) {
  Tensor logits = Tensor::from2d({{4.0f, 0.0f, 0.0f}});
  Tensor sharp = softmax_rows(logits, 1.0f);
  Tensor smooth = softmax_rows(logits, 5.0f);
  EXPECT_GT(sharp.at(0, 0), smooth.at(0, 0));
  EXPECT_LT(sharp.at(0, 1), smooth.at(0, 1));
}

TEST(Softmax, NumericalStabilityWithHugeLogits) {
  Tensor logits = Tensor::from2d({{1000.0f, 999.0f}});
  Tensor p = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0f, 1e-5f);
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(Softmax, NonPositiveTemperatureThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_rows(logits, 0.0f), CheckError);
  EXPECT_THROW(log_softmax_rows(logits, -1.0f), CheckError);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  Rng rng(7);
  Tensor logits = Tensor::randn({4, 6}, rng, 0.0f, 3.0f);
  Tensor p = softmax_rows(logits, 2.0f);
  Tensor lp = log_softmax_rows(logits, 2.0f);
  for (std::size_t i = 0; i < p.numel(); ++i)
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5f);
}

TEST(ArgmaxRows, PicksLargest) {
  Tensor t = Tensor::from2d({{1, 5, 2}, {9, 0, 3}});
  const auto idx = argmax_rows(t);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(RowVariance, UniformRowIsZero) {
  Tensor t = Tensor::from2d({{0.25f, 0.25f, 0.25f, 0.25f}});
  EXPECT_NEAR(row_variance(t)[0], 0.0f, 1e-9f);
}

TEST(RowVariance, KnownValue) {
  Tensor t = Tensor::from2d({{1.0f, 0.0f}});
  // mean 0.5, var = ((0.5)²+(0.5)²)/2 = 0.25
  EXPECT_NEAR(row_variance(t)[0], 0.25f, 1e-6f);
}

TEST(ClampMin, Relu) {
  Tensor t = Tensor::from({-1, 0, 2});
  Tensor r = clamp_min(t, 0.0f);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 2.0f);
}

TEST(Hadamard, Elementwise) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  Tensor c = hadamard(a, b);
  EXPECT_FLOAT_EQ(c[1], 10.0f);
}

TEST(Im2col, IdentityKernelGeometry) {
  // 1x1 kernel, stride 1: im2col should reproduce the image as rows.
  Conv2dGeom g{2, 3, 3, 1, 1, 0};
  Rng rng(8);
  Tensor img = Tensor::randn({2, 2, 3, 3}, rng);
  Tensor cols = im2col(img, g);
  EXPECT_EQ(cols.dim(0), 2);       // C·K·K = 2
  EXPECT_EQ(cols.dim(1), 2 * 9);   // N·oh·ow
  // Channel 0 of sample 0, pixel (1,2):
  EXPECT_FLOAT_EQ(cols.at(0, 1 * 3 + 2), img.at4(0, 0, 1, 2));
}

TEST(Im2col, PaddingProducesZeros) {
  Conv2dGeom g{1, 2, 2, 3, 1, 1};
  Tensor img = Tensor::ones({1, 1, 2, 2});
  Tensor cols = im2col(img, g);
  // Top-left output position, kernel cell (0,0) reads padded zero.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  // Center kernel cell (1,1) reads the actual pixel.
  EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0f);
}

TEST(Im2colCol2im, AdjointDotProductProperty) {
  // <im2col(x), y> == <x, col2im(y)> — the defining property of an adjoint
  // pair; guarantees conv backward is the true gradient of conv forward.
  Conv2dGeom g{3, 6, 5, 3, 2, 1};
  Rng rng(9);
  Tensor x = Tensor::randn({2, 3, 6, 5}, rng);
  Tensor cx = im2col(x, g);
  Tensor y = Tensor::randn(cx.shape(), rng);
  Tensor ay = col2im(y, 2, g);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cx.numel(); ++i)
    lhs += double(cx[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i)
    rhs += double(x[i]) * ay[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, GeometryMismatchThrows) {
  Conv2dGeom g{1, 4, 4, 3, 1, 0};
  Tensor img({1, 2, 4, 4});  // wrong channel count
  EXPECT_THROW(im2col(img, g), CheckError);
}

TEST(Conv2dGeom, OutputDims) {
  Conv2dGeom g{3, 32, 32, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 16);
  EXPECT_EQ(g.out_w(), 16);
  EXPECT_EQ(g.patch_size(), 27);
}

}  // namespace
}  // namespace goldfish
