// Plain local training (the LocalTraining procedure of Algorithm 1):
// mini-batch SGD with a pluggable hard loss. This is what normal clients run
// and what the retraining baselines build on.
#pragma once

#include "data/dataset.h"
#include "losses/hard_loss.h"
#include "nn/model.h"
#include "nn/sgd.h"

namespace goldfish::fl {

struct TrainOptions {
  long epochs = 1;
  long batch_size = 100;  // paper: B = 100
  float lr = 0.001f;      // paper: η = 0.001
  float momentum = 0.9f;  // paper: β = 0.9
  std::string loss = "cross_entropy";
  std::uint64_t seed = 1;
};

struct TrainStats {
  /// Mean loss per epoch.
  std::vector<float> epoch_losses;
  /// Total number of optimizer steps taken.
  long steps = 0;
};

/// Train in place; returns per-epoch losses.
TrainStats train_local(nn::Model& model, const data::Dataset& ds,
                       const TrainOptions& opts);

/// One evaluation-only pass: mean hard loss of the model over the dataset
/// (used for the empirical-risk reference L(ω^{t−1}) in Eq. 7).
float dataset_loss(nn::Model& model, const data::Dataset& ds,
                   const losses::HardLoss& loss, long batch_size = 256);

}  // namespace goldfish::fl
