// Tensor serialization: stream round-trips, file round-trips, corruption.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tensor/serialize.h"

namespace goldfish {
namespace {

TEST(Serialize, StreamRoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  Tensor u = read_tensor(ss);
  ASSERT_TRUE(u.same_shape(t));
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(u[i], t[i]);
}

TEST(Serialize, EmptyTensorRoundTrip) {
  Tensor t({0});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  Tensor u = read_tensor(ss);
  EXPECT_EQ(u.numel(), 0u);
  EXPECT_EQ(u.rank(), 1u);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t junk = 0xDEADBEEF;
  ss.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  ss.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  EXPECT_THROW(read_tensor(ss), CheckError);
}

TEST(Serialize, TruncatedPayloadThrows) {
  Rng rng(2);
  Tensor t = Tensor::randn({10}, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  std::string buf = ss.str();
  buf.resize(buf.size() - 8);  // chop the tail
  std::stringstream cut(buf, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_tensor(cut), CheckError);
}

TEST(Serialize, FileSaveLoad) {
  Rng rng(3);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({4, 4}, rng));
  ts.push_back(Tensor::from({1, 2, 3}));
  const std::string path = "/tmp/goldfish_serialize_test.bin";
  save_tensors(path, ts);
  auto back = load_tensors(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].same_shape(ts[0]));
  EXPECT_FLOAT_EQ(back[1][2], 3.0f);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/tmp/definitely_missing_goldfish.bin"),
               CheckError);
}

TEST(Serialize, BufferPathMatchesStreamBytes) {
  // serialize_tensors must emit exactly the bytes the stream writer does —
  // the wire format is shared with save_tensors files.
  Rng rng(9);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({3, 5}, rng));
  ts.push_back(Tensor::randn({7}, rng));
  ts.push_back(Tensor::zeros({0}));  // zero-row tensor on the wire

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t count = static_cast<std::uint32_t>(ts.size());
  ss.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& t : ts) write_tensor(ss, t);

  std::string buf;
  serialize_tensors(ts, buf);
  EXPECT_EQ(buf, ss.str());

  const auto back = deserialize_tensors(buf.data(), buf.size());
  ASSERT_EQ(back.size(), ts.size());
  for (std::size_t t = 0; t < ts.size(); ++t) {
    ASSERT_TRUE(back[t].same_shape(ts[t]));
    for (std::size_t i = 0; i < ts[t].numel(); ++i)
      EXPECT_EQ(back[t][i], ts[t][i]);
  }
}

TEST(Serialize, DeserializeRejectsCorruptBuffers) {
  Rng rng(10);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({4, 4}, rng));
  std::string buf;
  serialize_tensors(ts, buf);
  EXPECT_THROW(deserialize_tensors(buf.data(), buf.size() - 5), CheckError);
  std::string bad = buf;
  bad[4] ^= 0x5A;  // corrupt the first tensor's magic
  EXPECT_THROW(deserialize_tensors(bad.data(), bad.size()), CheckError);
}

TEST(Serialize, RoundtripThroughBytesCountsWire) {
  Rng rng(4);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({8, 8}, rng));
  std::size_t bytes = 0;
  auto back = roundtrip_through_bytes(ts, &bytes);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_GT(bytes, 64u * sizeof(float));  // payload plus headers
  for (std::size_t i = 0; i < ts[0].numel(); ++i)
    EXPECT_FLOAT_EQ(back[0][i], ts[0][i]);
}

}  // namespace
}  // namespace goldfish
