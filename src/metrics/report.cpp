#include "metrics/report.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "tensor/check.h"

namespace goldfish::metrics {

TableReporter::TableReporter(std::string title,
                             std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  GOLDFISH_CHECK(!columns_.empty(), "table needs columns");
}

void TableReporter::add_row(std::vector<std::string> cells) {
  GOLDFISH_CHECK(cells.size() == columns_.size(),
                 "row arity mismatch in table '" + title_ + "'");
  rows_.push_back(std::move(cells));
}

void TableReporter::print() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::cout << "\n== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      std::cout << "| " << std::setw(static_cast<int>(width[c])) << cells[c]
                << ' ';
    std::cout << "|\n";
  };
  print_row(columns_);
  std::size_t total = columns_.size() * 3 + 1;
  for (std::size_t w : width) total += w;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

void TableReporter::write_csv(const std::string& path) const {
  std::ofstream os(path);
  GOLDFISH_CHECK(os.is_open(), "cannot write csv: " + path);
  const auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << esc(columns_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << esc(row[c]);
    os << '\n';
  }
}

std::string fmt(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

bool full_scale() {
  const char* s = std::getenv("GOLDFISH_SCALE");
  return s != nullptr && std::string(s) == "full";
}

long scale_factor() { return full_scale() ? 4 : 1; }

}  // namespace goldfish::metrics
