#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace goldfish {

std::size_t Tensor::shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (long d : shape) {
    GOLDFISH_CHECK(d >= 0, "negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, FloatBuffer data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  GOLDFISH_CHECK(data_.size() == shape_numel(shape_),
                 "data size does not match shape");
}

Tensor Tensor::uninit(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  // resize without a fill value default-initializes the floats (see
  // DefaultInitAllocator) — allocation only, no memset.
  t.data_.resize(shape_numel(t.shape_));
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({static_cast<long>(values.size())},
                FloatBuffer(values.begin(), values.end()));
}

Tensor Tensor::from2d(
    std::initializer_list<std::initializer_list<float>> rows) {
  const long r = static_cast<long>(rows.size());
  GOLDFISH_CHECK(r > 0, "from2d needs at least one row");
  const long c = static_cast<long>(rows.begin()->size());
  FloatBuffer data;
  data.reserve(static_cast<std::size_t>(r * c));
  for (const auto& row : rows) {
    GOLDFISH_CHECK(static_cast<long>(row.size()) == c, "ragged rows");
    data.insert(data.end(), row.begin(), row.end());
  }
  return Tensor({r, c}, std::move(data));
}

void Tensor::resize_uninit(const Shape& shape) {
  if (shape_ == shape) return;
  const std::size_t n = shape_numel(shape);
  // Dropping the old contents before a growing resize avoids the element
  // copy a plain resize would do on reallocation.
  if (n > data_.capacity()) data_.clear();
  data_.resize(n);
  shape_ = shape;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  GOLDFISH_CHECK(shape_numel(new_shape) == numel(),
                 "reshape changes element count");
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor& Tensor::operator+=(const Tensor& other) {
  GOLDFISH_CHECK(same_shape(other), "shape mismatch in +=: " + shape_str() +
                                        " vs " + other.shape_str());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  GOLDFISH_CHECK(same_shape(other), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& x : data_) x *= scalar;
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& other, float scalar) {
  GOLDFISH_CHECK(same_shape(other), "shape mismatch in add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += scalar * other.data_[i];
  return *this;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

float Tensor::sum() const {
  // Accumulate in double: benches sum over 10^6-element activations and a
  // float accumulator drifts enough to flip early-termination comparisons.
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  GOLDFISH_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  GOLDFISH_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  GOLDFISH_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::squared_norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(acc);
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

Tensor operator*(float scalar, Tensor rhs) {
  rhs *= scalar;
  return rhs;
}

}  // namespace goldfish
