// The blocked GEMM backbone: product-set parameterized correctness against
// a naive reference over shapes spanning {1, odd, prime, > block-size} in
// every dimension and all four transpose combinations, plus thread-count
// determinism and the thin matmul wrappers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>

#include "runtime/gemm.h"
#include "runtime/scheduler.h"
#include "tensor/ops.h"

namespace goldfish {
namespace {

/// Naive triple loop over the same logical product, double-accumulated.
Tensor reference_gemm(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const long m = ta ? a.dim(1) : a.dim(0);
  const long k = ta ? a.dim(0) : a.dim(1);
  const long n = tb ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  for (long i = 0; i < m; ++i) {
    for (long j = 0; j < n; ++j) {
      double acc = 0.0;
      for (long p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += double(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

/// (m, k, n, trans_a, trans_b).
using GemmCase = std::tuple<long, long, long, bool, bool>;

class GemmProductSet : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmProductSet, MatchesNaiveReference) {
  const auto [m, k, n, ta, tb] = GetParam();
  Rng rng(0x9e3779b9ull ^ (m * 131 + k * 17 + n));
  Tensor a = ta ? Tensor::randn({k, m}, rng) : Tensor::randn({m, k}, rng);
  Tensor b = tb ? Tensor::randn({n, k}, rng) : Tensor::randn({k, n}, rng);

  const Tensor expect = reference_gemm(a, b, ta, tb);
  const Tensor got = gemm(a, b, ta, tb);
  ASSERT_TRUE(got.same_shape(expect));
  for (std::size_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-3f * (1.0f + std::abs(expect[i])))
        << "element " << i << " of " << m << "x" << k << "x" << n
        << " ta=" << ta << " tb=" << tb;
}

// Dimensions cross the microkernel tile (6/16), the panel blocks, and a
// prime that divides none of them; 1 exercises degenerate vectors.
INSTANTIATE_TEST_SUITE_P(
    ShapeByTranspose, GemmProductSet,
    ::testing::Combine(::testing::Values(1L, 3L, 7L, 32L, 97L),
                       ::testing::Values(1L, 5L, 17L, 64L),
                       ::testing::Values(1L, 2L, 19L, 33L, 97L),
                       ::testing::Bool(), ::testing::Bool()));

TEST(Gemm, LargeShapeCrossesAllPanelBoundaries) {
  // Bigger than MC, NC·… in no dimension a multiple of a block size.
  Rng rng(42);
  Tensor a = Tensor::randn({131, 300}, rng);
  Tensor b = Tensor::randn({300, 131}, rng);
  const Tensor expect = reference_gemm(a, b, false, false);
  const Tensor got = gemm(a, b, false, false);
  for (std::size_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], expect[i], 1e-2f * (1.0f + std::abs(expect[i])));
}

TEST(Gemm, DeterministicAcrossThreadCounts) {
  Rng rng(7);
  // Large enough to trigger the parallel path and multiple row panels.
  Tensor a = Tensor::randn({256, 256}, rng);
  Tensor b = Tensor::randn({256, 256}, rng);
  Tensor c1({256, 256});
  Tensor c8({256, 256});
  runtime::Scheduler one(1);
  runtime::Scheduler eight(8);
  runtime::sgemm(false, false, 256, 256, 256, a.data(), 256, b.data(), 256,
                 c1.data(), 256, &one);
  runtime::sgemm(false, false, 256, 256, 256, a.data(), 256, b.data(), 256,
                 c8.data(), 256, &eight);
  // Bit-identical, not merely close: parallelism only splits row panels,
  // never the k reduction.
  EXPECT_EQ(0, std::memcmp(c1.data(), c8.data(),
                           c1.numel() * sizeof(float)));
}

TEST(Gemm, AccumulatesInPlace) {
  Rng rng(11);
  Tensor a = Tensor::randn({9, 13}, rng);
  Tensor b = Tensor::randn({13, 5}, rng);
  Tensor c = Tensor::full({9, 5}, 2.0f);
  const Tensor prod = gemm(a, b, false, false);
  gemm_acc(c, a, b, false, false);
  for (std::size_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], prod[i] + 2.0f, 1e-4f);
}

TEST(Gemm, WrappersRouteThroughSingleEntryPoint) {
  Rng rng(13);
  Tensor a = Tensor::randn({8, 6}, rng);
  Tensor b = Tensor::randn({6, 7}, rng);
  Tensor at = transpose(a);
  Tensor bt = transpose(b);
  const Tensor base = matmul(a, b);
  const Tensor tn = matmul_tn(at, b);
  const Tensor nt = matmul_nt(a, bt);
  for (std::size_t i = 0; i < base.numel(); ++i) {
    EXPECT_FLOAT_EQ(tn[i], base[i]);
    EXPECT_FLOAT_EQ(nt[i], base[i]);
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(gemm(a, b, false, false), CheckError);
  Tensor ok({3, 2});
  Tensor c({2, 2});
  EXPECT_NO_THROW(gemm_acc(c, a, ok, false, false));
  Tensor bad({3, 3});
  EXPECT_THROW(gemm_acc(bad, a, ok, false, false), CheckError);
}

}  // namespace
}  // namespace goldfish
