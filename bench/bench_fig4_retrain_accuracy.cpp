// Fig. 4 (a–e): test accuracy per retraining epoch/round for Ours vs B1
// (retrain from scratch) vs B2 (rapid retraining) on each dataset/model
// combination. Paper shape: Ours highest, B2 second, B1 lowest at equal
// epoch budgets.
#include "bench/common.h"

namespace goldfish::bench {
namespace {

struct Fig4Entry {
  const char* label;
  data::DatasetKind kind;
  /// Architecture override for the two extra CIFAR sub-figures; empty →
  /// the profile default.
  std::string arch_override;
  long train_override = 0;
  /// Noise moderation for the narrow quick-scale ResNets (see DESIGN.md §2).
  float noise_scale = 1.0f;
};

void run_entry(const Fig4Entry& entry) {
  Scenario s = make_scenario(entry.kind, 0.06f, 7000);
  if (!entry.arch_override.empty()) {
    // Rebuild with the override architecture (Fig. 4d/e variants).
    s.prof.arch = entry.arch_override;
    s.prof.batch = 32;
    if (entry.train_override > 0) {
      s.prof.train_size = entry.train_override;
      auto spec = data::default_spec(entry.kind, 7000, s.prof.train_size,
                                     s.prof.test_size);
      spec.noise_scale = entry.noise_scale;
      s.tt = data::make_synthetic(spec);
      Rng rng(7001);
      s.parts = data::partition_iid(s.tt.train, s.prof.clients, rng);
      auto poisoned = data::poison_dataset(s.parts[0], s.spec, 0.06f, rng);
      s.parts[0] = poisoned.poisoned;
      s.poisoned_rows = poisoned.poisoned_indices;
      s.probe = data::make_trigger_probe(s.tt.test, s.spec);
    }
    Rng mrng(7002);
    s.fresh = nn::make_model(s.prof.arch, s.tt.train.geom,
                             s.tt.train.num_classes, mrng);
    s.trained = s.fresh;
    fl::FlConfig cfg;
    cfg.local.epochs = s.prof.local_epochs;
    cfg.local.batch_size = s.prof.batch;
    cfg.local.lr = s.prof.lr;
    fl::FederatedSim sim(s.trained, s.parts, s.tt.test, cfg);
    sim.run(std::max(3L, s.prof.fl_rounds / 2));
    s.trained = sim.global_model();
  }

  const long rounds = metrics::full_scale() ? 10 : 5;

  // Ours: per-round accuracy from the unlearner.
  core::UnlearnConfig ucfg;
  ucfg.distill.max_epochs = s.prof.local_epochs;
  ucfg.distill.batch_size = s.prof.batch;
  ucfg.distill.lr = s.prof.lr;
  ucfg.distill.use_early_termination = false;
  core::GoldfishUnlearner ul(s.trained, s.fresh, s.parts, s.tt.test, ucfg);
  ul.request_deletion({{0, s.poisoned_rows}});
  const auto ours = ul.run(rounds);

  // B1 / B2: per-round accuracy from their simulations.
  fl::FlConfig b1cfg;
  b1cfg.local.epochs = s.prof.local_epochs;
  b1cfg.local.batch_size = s.prof.batch;
  b1cfg.local.lr = s.prof.lr;
  const auto b1 = baselines::retrain_from_scratch(
      s.fresh, s.remaining(), s.tt.test, b1cfg, rounds);

  baselines::RapidRetrainConfig b2cfg;
  b2cfg.fl = b1cfg;
  nn::Model trained_copy = s.trained;
  const auto b2 = baselines::rapid_retrain(
      s.fresh, trained_copy, s.remaining(), s.tt.test, b2cfg, rounds);

  metrics::TableReporter table(
      std::string("Fig.4 — retraining accuracy, ") + entry.label + " (" +
          s.prof.arch + ")",
      {"round", "Ours", "B1", "B2"});
  for (long r = 0; r < rounds; ++r) {
    table.add_row({std::to_string(r + 1),
                   metrics::fmt(ours[std::size_t(r)].global_accuracy),
                   metrics::fmt(b1[std::size_t(r)].global_accuracy),
                   metrics::fmt(b2[std::size_t(r)].global_accuracy)});
  }
  table.print();
  table.write_csv(csv_dir() + "/fig4_" + std::string(entry.label) + ".csv");
}

}  // namespace
}  // namespace goldfish::bench

int main() {
  using goldfish::data::DatasetKind;
  goldfish::bench::print_header("Fig. 4: retraining accuracy curves");
  const bool full = goldfish::metrics::full_scale();
  const std::vector<goldfish::bench::Fig4Entry> entries = {
      {"mnist", DatasetKind::Mnist, "", 0},
      {"fmnist", DatasetKind::FashionMnist, "", 0},
      {"cifar10_lenet", DatasetKind::Cifar10, "", 0},
      // Fig. 4d: CIFAR-10 on a ResNet (32 at full scale, 8 at quick).
      {"cifar10_resnet", DatasetKind::Cifar10,
       full ? "resnet32" : "resnet8", full ? 900 : 300,
       full ? 1.0f : 0.35f},
      // Fig. 4e: CIFAR-100 on a ResNet (56 at full scale, 8 at quick).
      {"cifar100_resnet", DatasetKind::Cifar100,
       full ? "resnet56" : "resnet8", full ? 900 : 300,
       full ? 1.0f : 0.35f},
  };
  for (const auto& e : entries) goldfish::bench::run_entry(e);
  return 0;
}
