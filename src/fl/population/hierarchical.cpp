#include "fl/population/hierarchical.h"

#include <algorithm>

#include "nn/model.h"
#include "tensor/annotations.h"
#include "tensor/check.h"

namespace goldfish::fl::population {

namespace {

/// One edge aggregator: fold updates [lo, hi) into the chained accumulator
/// `acc`, using normalized weights w[s]/total. Edge 0 initializes the
/// accumulator from update 0 with the exact FP ops nn::weighted_average
/// uses for its first snapshot (dst[i] = src[i]·w0), so the whole chain of
/// edges replays the flat left fold bit for bit.
GOLDFISH_HOT void fold_edge(std::vector<Tensor>& acc,
                            const std::vector<ClientUpdate>& updates,
                            const std::vector<float>& w, float total,
                            std::size_t lo, std::size_t hi) {
  for (std::size_t s = lo; s < hi; ++s) {
    const float ws = w[s] / total;
    if (s == 0) {
      const std::vector<Tensor>& first = updates[0].params;
      // goldfish-lint: allow(ALLOC002) accumulator header vector sized once
      // per aggregate; element FloatBuffers come from the round's pool
      acc.reserve(first.size());
      for (const Tensor& t : first) {
        Tensor a = Tensor::uninit(t.shape());
        const float* src = t.data();
        float* dst = a.data();
        for (std::size_t i = 0; i < t.numel(); ++i) dst[i] = src[i] * ws;
        // goldfish-lint: allow(ALLOC002) within the capacity reserved above
        acc.push_back(std::move(a));
      }
    } else {
      GOLDFISH_CHECK(updates[s].params.size() == acc.size(),
                     "snapshot layout mismatch");
      nn::axpy(acc, updates[s].params, ws);
    }
  }
}

}  // namespace

HierarchicalAggregator::HierarchicalAggregator(
    std::unique_ptr<Aggregator> base, long edge_size)
    : base_(std::move(base)), edge_size_(edge_size) {
  GOLDFISH_CHECK(base_ != nullptr, "hierarchical aggregator needs a base");
  GOLDFISH_CHECK(edge_size_ >= 1, "edge size must be >= 1");
}

std::vector<float> HierarchicalAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  return base_->weights(updates);
}

GOLDFISH_HOT std::vector<Tensor> HierarchicalAggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    const std::vector<float>* multipliers) const {
  GOLDFISH_CHECK(!updates.empty(), "no updates to aggregate");
  GOLDFISH_CHECK(!multipliers || multipliers->size() == updates.size(),
                 "multiplier count mismatch");

  // Robust bases select/trim over the whole update set; there is no
  // per-edge decomposition (a median of medians is not the median). The
  // root delegates wholesale — see the header comment.
  if (base_->capabilities().robust)
    return base_->aggregate(updates, multipliers);

  std::vector<float> w = base_->weights(updates);
  if (multipliers)
    for (std::size_t i = 0; i < w.size(); ++i) w[i] *= (*multipliers)[i];

  // Global weight total, summed in flat arrival order — the same FP
  // sequence (and the same checks) as nn::weighted_average.
  float total = 0.0f;
  for (float wi : w) {
    GOLDFISH_CHECK(wi >= 0.0f, "negative aggregation weight");
    total += wi;
  }
  GOLDFISH_CHECK(total > 0.0f, "aggregation weights sum to zero");

  const std::size_t n = updates.size();
  const std::size_t edge = static_cast<std::size_t>(edge_size_);
  std::vector<Tensor> acc;
  for (std::size_t lo = 0; lo < n; lo += edge) {
    fold_edge(acc, updates, w, total, lo, std::min(n, lo + edge));
    ++edge_reductions_;
  }
  return acc;
}

}  // namespace goldfish::fl::population
