#include "fl/policies.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/check.h"
#include "tensor/serialize.h"

namespace goldfish::fl {

namespace {

/// Salt separating the participation-sampling RNG streams from the training
/// and duration streams (all hash (seed, stream, step) through mix_seed).
constexpr std::uint64_t kSamplingSalt = 0x2545F4914F6CDD1Dull;

/// Salt of the virtual-duration streams. The constant is load-bearing: it is
/// the salt the legacy FederatedSim::run_async used, so a VirtualClock built
/// from the same FlConfig draws bit-identical durations and replays the
/// legacy golden schedules exactly.
constexpr std::uint64_t kDurationSalt = 0x517CC1B727220A95ull;

/// Salt of the per-client link-bandwidth draws (BandwidthClock).
constexpr std::uint64_t kBandwidthSalt = 0xD6E8FEB86659FD93ull;

/// Salt of the per-version cohort draws (CohortParticipation).
constexpr std::uint64_t kCohortSalt = 0x9E3779B97F4A7C15ull;

}  // namespace

const std::vector<std::size_t>& ParticipationPolicy::cohort(long,
                                                            std::size_t) {
  throw std::logic_error("fl::ParticipationPolicy: '" + name() +
                         "' does not enumerate cohorts (check "
                         "enumerates_cohort() first)");
}

SampledParticipation::SampledParticipation(double fraction,
                                           std::uint64_t seed)
    : fraction_(fraction), seed_(seed) {
  GOLDFISH_CHECK(fraction > 0.0 && fraction <= 1.0,
                 "sampling fraction must be in (0, 1]");
}

bool SampledParticipation::participates(std::size_t client, long version,
                                        double) {
  Rng rng(mix_seed(seed_ ^ kSamplingSalt, client,
                   static_cast<std::uint64_t>(version)));
  return double(rng.uniform()) < fraction_;
}

AvailabilityWindows::AvailabilityWindows(double period, double on_fraction,
                                         double phase)
    : period_(period), on_(on_fraction * period), phase_(phase) {
  GOLDFISH_CHECK(period > 0.0, "availability period must be positive");
  GOLDFISH_CHECK(on_fraction > 0.0 && on_fraction <= 1.0,
                 "availability on_fraction must be in (0, 1]");
}

bool AvailabilityWindows::participates(std::size_t client, long,
                                       double time) {
  const double local = time + double(client) * phase_;
  const double pos = local - std::floor(local / period_) * period_;
  return pos < on_;
}

double AvailabilityWindows::retry_at(std::size_t client, long, double time) {
  // participates() was just false, so `pos >= on_` and the next window
  // opens one full period after the current one began (in the client's
  // shifted frame, mapped back to global virtual time). The wake targets
  // the *middle* of that window, not its leading edge: a wake landing
  // exactly on the FP-rounded boundary could still see pos ≈ period (still
  // off-window), recompute retry == now, and be dropped — half an
  // on-window of margin makes the re-check robustly succeed.
  const double local = time + double(client) * phase_;
  const double window_start = std::floor(local / period_) * period_;
  return window_start + period_ + 0.5 * on_ - double(client) * phase_;
}

CohortParticipation::CohortParticipation(std::size_t cohort_size,
                                         std::uint64_t seed)
    : cohort_size_(cohort_size), seed_(seed) {
  GOLDFISH_CHECK(cohort_size >= 1, "cohort size must be >= 1");
}

const std::vector<std::size_t>& CohortParticipation::cohort(
    long version, std::size_t num_clients) {
  GOLDFISH_CHECK(num_clients > 0, "cohort over an empty federation");
  if (version == cached_version_ && num_clients == cached_n_) return cohort_;
  const std::size_t m = std::min(cohort_size_, num_clients);
  cohort_.clear();
  // Rejection-sample m DISTINCT ids from the (seed ⊕ salt, version, draw)
  // stream. Every redraw advances `draw`, so the sequence is a pure
  // function of (seed, version, num_clients) — no time, no call order.
  std::uint64_t draw = 0;
  while (cohort_.size() < m) {
    Rng rng(mix_seed(seed_ ^ kCohortSalt,
                     static_cast<std::uint64_t>(version), draw++));
    const std::size_t c = rng.uniform_index(num_clients);
    const auto it = std::lower_bound(cohort_.begin(), cohort_.end(), c);
    if (it != cohort_.end() && *it == c) continue;  // duplicate: redraw
    cohort_.insert(it, c);
  }
  cached_version_ = version;
  cached_n_ = num_clients;
  return cohort_;
}

bool CohortParticipation::participates(std::size_t client, long version,
                                       double) {
  // The schedule builder always enumerates cohort() for a version before
  // probing membership, so the cache answers for the right client count.
  GOLDFISH_CHECK(version == cached_version_,
                 "CohortParticipation::participates before cohort()");
  return std::binary_search(cohort_.begin(), cohort_.end(), client);
}

AdaptiveBuffer::AdaptiveBuffer(long initial, long min_size, long max_size,
                               long target_max_staleness)
    : k_(initial), min_(min_size), max_(max_size),
      target_(target_max_staleness) {
  GOLDFISH_CHECK(min_size >= 1, "adaptive buffer min_size must be >= 1");
  GOLDFISH_CHECK(min_size <= initial && initial <= max_size,
                 "adaptive buffer needs min_size <= initial <= max_size");
  GOLDFISH_CHECK(target_max_staleness >= 0,
                 "adaptive buffer target staleness must be >= 0");
}

long AdaptiveBuffer::size(long agg, double, long prev_max_staleness,
                          std::size_t) {
  if (agg > 0) {
    if (prev_max_staleness > target_)
      k_ = std::min(k_ + 1, max_);
    else if (prev_max_staleness == 0)
      k_ = std::max(k_ - 1, min_);
  }
  return k_;
}

VirtualClock::VirtualClock(std::uint64_t seed, double mean,
                           double log_jitter)
    : seed_(seed), mean_(mean), jitter_(log_jitter) {
  GOLDFISH_CHECK(mean > 0.0, "virtual-clock mean duration must be positive");
}

double VirtualClock::duration(std::size_t client, long index) {
  // Bit-for-bit the legacy draw: one normal deviate from the per-(client,
  // task) stream, widened to double only after the float math.
  Rng rng(mix_seed(seed_ ^ kDurationSalt, client,
                   static_cast<std::uint64_t>(index)));
  return mean_ * std::exp(jitter_ * double(rng.normal()));
}

TraceClock::TraceClock(std::vector<std::vector<double>> traces)
    : traces_(std::move(traces)) {
  GOLDFISH_CHECK(!traces_.empty(), "trace clock needs at least one trace");
  for (const auto& trace : traces_) {
    GOLDFISH_CHECK(!trace.empty(), "trace clock: empty per-client trace");
    for (double d : trace)
      GOLDFISH_CHECK(d > 0.0, "trace clock: durations must be positive");
  }
}

double TraceClock::duration(std::size_t client, long index) {
  const auto& trace = traces_[client % traces_.size()];
  return trace[static_cast<std::size_t>(index) % trace.size()];
}

BandwidthClock::BandwidthClock(std::unique_ptr<ClockPolicy> compute,
                               double mean_bandwidth, double log_spread,
                               std::uint64_t seed)
    : compute_(std::move(compute)),
      mean_(mean_bandwidth),
      spread_(log_spread),
      seed_(seed) {
  GOLDFISH_CHECK(compute_ != nullptr, "bandwidth clock needs a compute clock");
  GOLDFISH_CHECK(mean_bandwidth > 0.0,
                 "bandwidth clock mean bandwidth must be positive");
  GOLDFISH_CHECK(log_spread >= 0.0, "bandwidth clock log spread must be >= 0");
}

void BandwidthClock::set_upload_bytes(std::size_t bytes) {
  bytes_ = bytes;
  compute_->set_upload_bytes(bytes);
}

double BandwidthClock::bandwidth(std::size_t client) const {
  // One draw per client, from its own collision-free stream: the link speed
  // is a durable property of the device, not of the task.
  Rng rng(mix_seed(seed_ ^ kBandwidthSalt, client, 0));
  return mean_ * std::exp(spread_ * double(rng.normal()));
}

double BandwidthClock::duration(std::size_t client, long index) {
  return compute_->duration(client, index) +
         double(bytes_) / bandwidth(client);
}

// -- wire policies ----------------------------------------------------------

namespace {

/// Byte count of the shared list framing plus per-record headers: the part
/// of every wire format that depends only on shapes.
std::size_t header_bytes(const std::vector<Tensor>& like) {
  std::size_t total = sizeof(std::uint32_t);  // tensor count
  for (const Tensor& t : like)
    total += 2 * sizeof(std::uint32_t) + t.rank() * sizeof(std::int64_t);
  return total;
}

}  // namespace

void DenseWire::encode(const std::vector<Tensor>& params,
                       const std::vector<Tensor>*, std::string& out) const {
  serialize_tensors(params, out);
}

std::vector<Tensor> DenseWire::decode(const char* data, std::size_t size,
                                      const std::vector<Tensor>*) const {
  return deserialize_tensors(data, size);
}

std::size_t DenseWire::encoded_bytes(const std::vector<Tensor>& like) const {
  std::size_t total = header_bytes(like);
  for (const Tensor& t : like) total += t.numel() * sizeof(float);
  return total;
}

void QuantizedWire::encode(const std::vector<Tensor>& params,
                           const std::vector<Tensor>*,
                           std::string& out) const {
  serialize_quantized(params, out);
}

std::vector<Tensor> QuantizedWire::decode(const char* data, std::size_t size,
                                          const std::vector<Tensor>*) const {
  return deserialize_quantized(data, size);
}

std::size_t QuantizedWire::encoded_bytes(
    const std::vector<Tensor>& like) const {
  std::size_t total = header_bytes(like);
  for (const Tensor& t : like) total += 2 * sizeof(float) + t.numel();
  return total;
}

TopKWire::TopKWire(double fraction) : fraction_(fraction) {
  GOLDFISH_CHECK(fraction > 0.0 && fraction <= 1.0,
                 "top-k fraction must be in (0, 1]");
}

void TopKWire::encode(const std::vector<Tensor>& params,
                      const std::vector<Tensor>*, std::string& out) const {
  serialize_topk(params, fraction_, out);
}

std::vector<Tensor> TopKWire::decode(const char* data, std::size_t size,
                                     const std::vector<Tensor>*) const {
  return deserialize_topk(data, size);
}

std::size_t TopKWire::encoded_bytes(const std::vector<Tensor>& like) const {
  std::size_t total = header_bytes(like);
  for (const Tensor& t : like)
    total += sizeof(std::uint32_t) +
             static_cast<std::size_t>(
                 topk_count(static_cast<long>(t.numel()), fraction_)) *
                 (sizeof(std::uint32_t) + sizeof(float));
  return total;
}

namespace {

/// The 4-byte upload-level prefix of a delta record ("GFD1"): what follows
/// is the inner encoder's complete upload of (params − reference).
constexpr char kDeltaMagic[4] = {'G', 'F', 'D', '1'};

}  // namespace

DeltaWire::DeltaWire(std::unique_ptr<WirePolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) inner_ = std::make_unique<DenseWire>();
  GOLDFISH_CHECK(!inner_->needs_reference(),
                 "delta wires do not nest: the inner encoder must be "
                 "reference-free");
}

void DeltaWire::encode(const std::vector<Tensor>& params,
                       const std::vector<Tensor>* reference,
                       std::string& out) const {
  // Delta scratch, reused across calls (one per worker thread; its float
  // storage recycles through the buffer pool inside an engine run).
  static thread_local std::vector<Tensor> delta;
  delta.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& p = params[i];
    delta[i].resize_uninit(p.shape());
    float* d = delta[i].data();
    if (reference != nullptr) {
      GOLDFISH_CHECK(i < reference->size() && (*reference)[i].same_shape(p),
                     "delta reference shape mismatch");
      const float* r = (*reference)[i].data();
      for (std::size_t j = 0; j < p.numel(); ++j) d[j] = p.data()[j] - r[j];
    } else {
      std::memcpy(d, p.data(), p.numel() * sizeof(float));
    }
  }
  inner_->encode(delta, nullptr, out);
  out.insert(0, kDeltaMagic, sizeof(kDeltaMagic));
}

std::vector<Tensor> DeltaWire::decode(const char* data, std::size_t size,
                                      const std::vector<Tensor>* reference)
    const {
  GOLDFISH_CHECK(size >= sizeof(kDeltaMagic) &&
                     std::memcmp(data, kDeltaMagic, sizeof(kDeltaMagic)) == 0,
                 "bad delta record magic");
  std::vector<Tensor> out = inner_->decode(data + sizeof(kDeltaMagic),
                                           size - sizeof(kDeltaMagic), nullptr);
  if (reference != nullptr) {
    GOLDFISH_CHECK(reference->size() == out.size(),
                   "delta reference tensor count mismatch");
    for (std::size_t i = 0; i < out.size(); ++i) {
      GOLDFISH_CHECK((*reference)[i].same_shape(out[i]),
                     "delta reference shape mismatch");
      out[i] += (*reference)[i];
    }
  }
  return out;
}

std::size_t DeltaWire::encoded_bytes(const std::vector<Tensor>& like) const {
  return sizeof(kDeltaMagic) + inner_->encoded_bytes(like);
}

}  // namespace goldfish::fl
