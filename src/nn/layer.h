// Layer abstraction: explicit forward/backward, no autograd tape.
//
// Each layer caches what its backward pass needs during forward, produces an
// input-gradient in backward, and accumulates parameter gradients internally.
// This is deliberately simpler than a tape: every layer's gradient is
// unit-testable in isolation against finite differences (see
// tests/nn_gradcheck_test.cpp), which is how we guarantee the substrate the
// unlearning results rest on is numerically correct.
//
// Outputs live in a Workspace (see workspace.h): forward/backward return
// `const Tensor&` views of arena slots the layer claimed at attach time, so
// steady-state passes allocate nothing and skip even the zero-fill (the
// slots are reused uninitialized, Tensor::uninit-style). A layer that was
// never attached to a model-owned workspace lazily creates a private one, so
// standalone layers in tests behave identically. A returned reference stays
// valid until the same layer runs the same pass again.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/workspace.h"
#include "tensor/tensor.h"

namespace goldfish::nn {

/// A named view over a parameter and its gradient accumulator.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Read-only view over a parameter's value (no gradient access) — what
/// const contexts (snapshotting, scalar counting, shape inspection) get.
struct ConstParamRef {
  std::string name;
  const Tensor* value = nullptr;
};

/// Base class for all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` toggles training-only behaviour (batch-norm
  /// statistics). Implementations cache activations needed by backward.
  /// The result references a workspace slot owned by this layer (or, for
  /// pure pass-throughs, the input itself) and is overwritten by the
  /// layer's next forward.
  virtual const Tensor& forward(const Tensor& x, bool train) = 0;

  /// Backward pass: input is ∂L/∂output, returns ∂L/∂input, and *adds*
  /// parameter gradients into the layer's accumulators (so multiple loss
  /// terms can be backpropagated before one optimizer step). The result
  /// references a workspace slot, clobbered by the layer's next backward.
  virtual const Tensor& backward(const Tensor& grad_output) = 0;

  /// Parameters and their gradient accumulators, if any.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Read-only parameter views. params() is logically const — it only
  /// exposes views and mutates nothing — so this is the one sanctioned
  /// const_cast seam; callers (Model::snapshot() const etc.) stay cast-free.
  std::vector<ConstParamRef> const_params() const {
    std::vector<ConstParamRef> out;
    for (const ParamRef& p : const_cast<Layer*>(this)->params())
      out.push_back({p.name, p.value});
    return out;
  }

  /// Deep copy, including parameter values (running stats too) but with
  /// freshly zeroed gradients and no workspace binding (the owning Model
  /// re-attaches). Needed to spawn teacher/student and per-shard replicas.
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Short diagnostic name ("linear(400->120)").
  virtual std::string name() const = 0;

  /// Bind this layer (and any children) to `ws`, claiming `local_slots()`
  /// consecutive slot keys starting at `next_key`. Containers override to
  /// recurse. Re-attaching the same structure reassigns the same keys, so
  /// existing slot storage stays valid.
  virtual void attach_workspace(Workspace* ws, std::size_t& next_key) {
    ws_ = ws;
    key_ = next_key;
    next_key += local_slots();
  }

  /// Number of workspace slots the layer itself writes (outputs, masks,
  /// scratch). Containers with no tensors of their own return 0.
  virtual std::size_t local_slots() const { return 0; }

  Layer() = default;
  // Copies never inherit a workspace binding: a clone belongs to a new
  // model (or none) and is re-attached by its owner.
  Layer(const Layer&) noexcept {}
  Layer& operator=(const Layer&) noexcept { return *this; }

 protected:
  /// Slot `i` of this layer's local_slots(), shaped `shape` (contents per
  /// the Workspace contract). Unbound layers use a lazily created private
  /// workspace.
  Tensor& slot(std::size_t i, const Shape& shape) {
    if (ws_ != nullptr) return ws_->acquire(key_ + i, shape);
    if (own_ws_ == nullptr) {
      own_ws_ = std::make_unique<Workspace>();
      own_ws_->ensure(local_slots());
    }
    return own_ws_->acquire(i, shape);
  }

 private:
  Workspace* ws_ = nullptr;   // model-owned arena, null when standalone
  std::size_t key_ = 0;       // first slot key claimed by this layer
  std::unique_ptr<Workspace> own_ws_;  // fallback for unbound layers
};

}  // namespace goldfish::nn
