#include "fl/aggregation.h"

#include <cmath>

#include "tensor/check.h"

namespace goldfish::fl {

std::vector<Tensor> FedAvgAggregator::aggregate(
    const std::vector<ClientUpdate>& updates) const {
  GOLDFISH_CHECK(!updates.empty(), "no updates to aggregate");
  std::vector<std::vector<Tensor>> snaps;
  std::vector<float> weights;
  snaps.reserve(updates.size());
  weights.reserve(updates.size());
  for (const ClientUpdate& u : updates) {
    GOLDFISH_CHECK(u.dataset_size > 0, "client with empty dataset");
    snaps.push_back(u.params);
    weights.push_back(static_cast<float>(u.dataset_size));
  }
  return nn::weighted_average(snaps, weights);
}

std::vector<Tensor> UniformAggregator::aggregate(
    const std::vector<ClientUpdate>& updates) const {
  GOLDFISH_CHECK(!updates.empty(), "no updates to aggregate");
  std::vector<std::vector<Tensor>> snaps;
  snaps.reserve(updates.size());
  for (const ClientUpdate& u : updates) snaps.push_back(u.params);
  return nn::weighted_average(
      snaps, std::vector<float>(updates.size(), 1.0f));
}

std::vector<float> AdaptiveAggregator::weights_from_mse(
    const std::vector<double>& mses) {
  GOLDFISH_CHECK(!mses.empty(), "no MSEs");
  double mean = 0.0;
  for (double m : mses) {
    GOLDFISH_CHECK(m >= 0.0, "negative MSE");
    mean += m;
  }
  mean /= double(mses.size());
  GOLDFISH_CHECK(mean > 0.0, "all-zero MSEs");
  std::vector<float> w(mses.size());
  for (std::size_t i = 0; i < mses.size(); ++i)
    w[i] = static_cast<float>(std::exp(-(mses[i] - mean) / mean));
  return w;
}

std::vector<Tensor> AdaptiveAggregator::aggregate(
    const std::vector<ClientUpdate>& updates) const {
  GOLDFISH_CHECK(!updates.empty(), "no updates to aggregate");
  std::vector<double> mses;
  std::vector<std::vector<Tensor>> snaps;
  mses.reserve(updates.size());
  snaps.reserve(updates.size());
  for (const ClientUpdate& u : updates) {
    mses.push_back(u.mse);
    snaps.push_back(u.params);
  }
  return nn::weighted_average(snaps, weights_from_mse(mses));
}

std::unique_ptr<Aggregator> make_aggregator(const std::string& name) {
  if (name == "fedavg") return std::make_unique<FedAvgAggregator>();
  if (name == "uniform") return std::make_unique<UniformAggregator>();
  if (name == "adaptive") return std::make_unique<AdaptiveAggregator>();
  GOLDFISH_CHECK(false, "unknown aggregator: " + name);
  return nullptr;  // unreachable
}

}  // namespace goldfish::fl
