#include "data/synthetic.h"

#include <cmath>

#include "tensor/check.h"

namespace goldfish::data {

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::Mnist:
      return "MNIST";
    case DatasetKind::FashionMnist:
      return "FMNIST";
    case DatasetKind::Cifar10:
      return "CIFAR-10";
    case DatasetKind::Cifar100:
      return "CIFAR-100";
  }
  return "?";
}

nn::InputGeom dataset_geom(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::Mnist:
    case DatasetKind::FashionMnist:
      return {1, 28, 28};
    case DatasetKind::Cifar10:
    case DatasetKind::Cifar100:
      return {3, 32, 32};
  }
  return {1, 28, 28};
}

long dataset_classes(DatasetKind kind) {
  return kind == DatasetKind::Cifar100 ? 100 : 10;
}

namespace {

/// Per-kind difficulty knobs, calibrated so that relative trainability
/// mirrors the paper: MNIST ≳ FMNIST > CIFAR-10 > CIFAR-100.
struct Difficulty {
  float proto_amp;   // amplitude of the class pattern
  float noise_sd;    // i.i.d. pixel noise
  float mode_spread; // how far sub-modes wander from the class prototype
  long coarse;       // coarse grid resolution of the prototype pattern
};

Difficulty difficulty_for(DatasetKind kind) {
  // Noise levels are calibrated (tools in bench/) so that small models land
  // in accuracy bands resembling the paper's: MNIST ≈ 90s, FMNIST ≈ 80s,
  // CIFAR-10 ≈ 70–85, CIFAR-100 ≈ 50–65.
  // The separability driver is the ratio of prototype-difference norm
  // (≈ amp·√D·0.5) to pixel noise; amplitudes are deliberately small so
  // classes overlap like real image datasets do.
  switch (kind) {
    case DatasetKind::Mnist:
      return {0.30f, 1.0f, 0.45f, 7};
    case DatasetKind::FashionMnist:
      return {0.24f, 1.0f, 0.55f, 7};
    case DatasetKind::Cifar10:
      return {0.145f, 1.0f, 0.65f, 8};
    case DatasetKind::Cifar100:
      return {0.33f, 0.9f, 0.50f, 8};
  }
  return {0.15f, 1.0f, 0.5f, 7};
}

/// Bilinearly upsample a (C, g, g) coarse pattern to (C, H, W), writing into
/// a flat row. Gives class prototypes smooth spatial structure.
void upsample_into(const std::vector<float>& coarse, long channels, long g,
                   const nn::InputGeom& geom, float amp, float* dst) {
  for (long c = 0; c < channels; ++c) {
    const float* src = coarse.data() + c * g * g;
    for (long y = 0; y < geom.height; ++y) {
      const float fy =
          static_cast<float>(y) / static_cast<float>(geom.height - 1) *
          static_cast<float>(g - 1);
      const long y0 = static_cast<long>(fy);
      const long y1 = std::min(g - 1, y0 + 1);
      const float wy = fy - static_cast<float>(y0);
      for (long x = 0; x < geom.width; ++x) {
        const float fx =
            static_cast<float>(x) / static_cast<float>(geom.width - 1) *
            static_cast<float>(g - 1);
        const long x0 = static_cast<long>(fx);
        const long x1 = std::min(g - 1, x0 + 1);
        const float wx = fx - static_cast<float>(x0);
        const float v = (1 - wy) * ((1 - wx) * src[y0 * g + x0] +
                                    wx * src[y0 * g + x1]) +
                        wy * ((1 - wx) * src[y1 * g + x0] +
                              wx * src[y1 * g + x1]);
        dst[(c * geom.height + y) * geom.width + x] = amp * v;
      }
    }
  }
}

Dataset generate(const SyntheticSpec& spec, long n, Rng& rng,
                 const std::vector<std::vector<float>>& mode_patterns,
                 long num_classes, const nn::InputGeom& geom,
                 const Difficulty& diff) {
  Dataset ds;
  ds.num_classes = num_classes;
  ds.geom = geom;
  ds.features = Tensor({n, geom.flat()});
  ds.labels.reserve(static_cast<std::size_t>(n));
  const long modes = spec.modes_per_class;
  for (long i = 0; i < n; ++i) {
    const long label = static_cast<long>(rng.uniform_index(
        static_cast<std::uint64_t>(num_classes)));
    const long mode = static_cast<long>(
        rng.uniform_index(static_cast<std::uint64_t>(modes)));
    const std::vector<float>& proto =
        mode_patterns[static_cast<std::size_t>(label * modes + mode)];
    float* row = ds.features.data() +
                 static_cast<std::size_t>(i) *
                     static_cast<std::size_t>(geom.flat());
    const float sd = diff.noise_sd * spec.noise_scale;
    for (long j = 0; j < geom.flat(); ++j)
      row[j] = proto[static_cast<std::size_t>(j)] + rng.normal(0.0f, sd);
    ds.labels.push_back(label);
  }
  return ds;
}

}  // namespace

TrainTest make_synthetic(const SyntheticSpec& spec) {
  GOLDFISH_CHECK(spec.train_size > 0 && spec.test_size > 0,
                 "dataset sizes must be positive");
  GOLDFISH_CHECK(spec.modes_per_class > 0, "need at least one mode");
  const nn::InputGeom geom = dataset_geom(spec.kind);
  const long num_classes = dataset_classes(spec.kind);
  const Difficulty diff = difficulty_for(spec.kind);
  Rng rng(spec.seed);

  // Class prototypes: coarse random pattern per class, then per-mode
  // perturbed copies, all upsampled to full resolution.
  const long g = diff.coarse;
  std::vector<std::vector<float>> mode_patterns;
  mode_patterns.reserve(
      static_cast<std::size_t>(num_classes * spec.modes_per_class));
  for (long k = 0; k < num_classes; ++k) {
    std::vector<float> coarse(
        static_cast<std::size_t>(geom.channels * g * g));
    for (float& v : coarse) v = rng.normal();
    for (long m = 0; m < spec.modes_per_class; ++m) {
      std::vector<float> mode_coarse = coarse;
      for (float& v : mode_coarse)
        v += diff.mode_spread * rng.normal();
      std::vector<float> full(static_cast<std::size_t>(geom.flat()));
      upsample_into(mode_coarse, geom.channels, g, geom, diff.proto_amp,
                    full.data());
      mode_patterns.push_back(std::move(full));
    }
  }

  TrainTest out;
  Rng train_rng = rng.split();
  Rng test_rng = rng.split();
  out.train = generate(spec, spec.train_size, train_rng, mode_patterns,
                       num_classes, geom, diff);
  out.test = generate(spec, spec.test_size, test_rng, mode_patterns,
                      num_classes, geom, diff);
  return out;
}

SyntheticSpec default_spec(DatasetKind kind, std::uint64_t seed,
                           long train_size, long test_size) {
  SyntheticSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  spec.train_size = train_size;
  spec.test_size = test_size;
  return spec;
}

}  // namespace goldfish::data
