// Cold client-state store (the population subsystem's capacity layer,
// docs/population.md).
//
// A population-scale federation registers far more clients than ever train
// concurrently. Keeping a live data::Dataset (float tensors + label vector +
// telemetry struct) per registered client makes resident memory O(population)
// — the exact scaling wall ISSUE 10 removes. This store instead keeps each
// client as one compact byte record ("GFP1" header + GFT1 tensor records,
// byte-identical to the checkpoint format in tensor/serialize.h) and
// materializes a client into a pooled slot only while it participates in the
// active cohort. Resident memory is O(cohort); the cold side is a flat byte
// cost per client (~features + labels + 72 header bytes).
//
// Layout of one record (all little-endian; offsets fixed so telemetry can be
// patched in place without touching the tensor payload):
//
//   offset  size  field
//        0     4  magic "GFP1" (0x31504647)
//        4     4  reserved (zero)
//        8     8  num_classes            (i64)
//       16    24  geom channels/height/width (3 × i64)
//       40     8  tasks_started          (i64, durable telemetry)
//       48     8  updates_aggregated     (i64)
//       56     8  bytes_uplinked         (u64)
//       64     8  last_version           (i64, -1 = never downloaded)
//       72     …  features as one GFT1 record
//        …     …  labels as one GFT1 record (floats; exact below 2^24)
//
// Telemetry mutations (bump_* / set_last_version) rewrite only the 32 header
// bytes at offsets 40..72 — a cold client's durable counters advance without
// decoding a single tensor. Likewise replace() overwrites the whole record
// from a fresh Dataset without reading the old bytes, which is what lets a
// DeletionEvent on a cold client evict state at byte-blit cost (the
// "no forced materialization" fix, tests/population_test.cpp pins it via the
// materializations() lifetime counter).
//
// Not thread-safe by design: the engine materializes cohort members on the
// main thread while building a run (materialize_epochs) and commits
// telemetry/replacements after the run, the same single-threaded seams all
// durable engine state uses.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fl/population/snapshot_store.h"
#include "tensor/annotations.h"

namespace goldfish::fl::population {

class ClientStateStore {
 public:
  /// Durable per-client counters, persisted in the record header.
  struct Telemetry {
    long tasks_started = 0;
    long updates_aggregated = 0;
    std::uint64_t bytes_uplinked = 0;
    long last_version = -1;  ///< broadcast version last downloaded
  };

  /// Register a client: spill `ds` to a fresh cold record. Returns the
  /// client id (dense, 0-based, stable for the store's lifetime).
  std::size_t add(const data::Dataset& ds);

  std::size_t num_clients() const { return records_.size(); }

  /// Decode client `id` into a pooled resident slot and return the live
  /// dataset. Idempotent while resident (returns the same slot). The slot's
  /// tensors are reused across occupants via resize_uninit, so steady-state
  /// cohort turnover performs zero heap allocations once every shape has
  /// been seen.
  GOLDFISH_HOT const data::Dataset& materialize(std::size_t id);

  /// True while `id` occupies a resident slot.
  bool resident(std::size_t id) const;

  /// Return `id`'s slot to the free list (storage retained for the next
  /// occupant). No-op if not resident.
  void release(std::size_t id);

  /// Release every resident slot (end-of-run cohort teardown).
  void release_all();

  /// Overwrite client `id`'s record from `ds`, WITHOUT decoding the old
  /// bytes — telemetry is preserved across the swap (the departed client's
  /// audit trail survives its data deletion). Frees the slot first if
  /// resident, since the resident copy no longer matches the record.
  void replace(std::size_t id, const data::Dataset& ds);

  /// Durable telemetry, readable hot or cold.
  Telemetry telemetry(std::size_t id) const;
  void bump_tasks_started(std::size_t id, long n);
  void bump_updates_aggregated(std::size_t id, long n);
  void bump_bytes_uplinked(std::size_t id, std::uint64_t n);
  void set_last_version(std::size_t id, long version);

  /// The client's reference-snapshot handle (for DeltaWire's
  /// needs_reference() path; owned by the caller via SnapshotStore
  /// acquire/release — the store only records it).
  const SnapshotStore::Handle& reference(std::size_t id) const;
  void set_reference(std::size_t id, const SnapshotStore::Handle& h);

  /// Size of client `id`'s cold record in bytes.
  std::size_t record_bytes(std::size_t id) const;

  /// Total bytes across all cold records.
  std::size_t cold_bytes() const { return cold_bytes_; }
  /// Bytes held by resident (materialized) datasets right now.
  std::size_t resident_bytes() const { return resident_bytes_; }
  /// High-water mark of resident_bytes() over the store's lifetime.
  std::size_t peak_resident_bytes() const { return peak_resident_bytes_; }
  /// Number of clients currently materialized.
  std::size_t resident_clients() const { return resident_clients_; }
  /// Lifetime cold→hot decode count. A DeletionEvent on a cold client must
  /// NOT advance this (the eviction-without-materialization contract).
  std::size_t materializations() const { return materializations_; }

 private:
  struct Record {
    std::string bytes;                 ///< GFP1 header + GFT1 tensors
    int slot = -1;                     ///< resident slot, -1 when cold
    SnapshotStore::Handle reference;   ///< caller-owned snapshot ref
  };
  struct Slot {
    data::Dataset ds;
    std::size_t owner = 0;
    std::size_t bytes = 0;  ///< live dataset bytes of the current occupant
  };

  GOLDFISH_HOT void spill(const data::Dataset& ds, const Telemetry& t,
                          std::string& out);

  // deque: materialize() hands out references into slots, which must stay
  // valid while later cohort members materialize into new slots.
  std::deque<Slot> slots_;
  std::vector<int> free_slots_;
  std::vector<Record> records_;
  Tensor label_tensor_;  ///< scratch for decoding the labels GFT1 record
  std::size_t cold_bytes_ = 0;
  std::size_t resident_bytes_ = 0;
  std::size_t peak_resident_bytes_ = 0;
  std::size_t resident_clients_ = 0;
  std::size_t materializations_ = 0;
};

}  // namespace goldfish::fl::population
