file(REMOVE_RECURSE
  "CMakeFiles/sharded_deletion.dir/examples/sharded_deletion.cpp.o"
  "CMakeFiles/sharded_deletion.dir/examples/sharded_deletion.cpp.o.d"
  "sharded_deletion"
  "sharded_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
