// In-process federated learning simulation: a server, C clients, synchronous
// rounds, pluggable client update logic and aggregation. Client uploads pass
// through real (de)serialization so the wire path is exercised and byte
// counts are measurable.
//
// The round loop is allocation-free at steady state: client models come from
// a pool of replicas (broadcast is an in-place copy_from of the global
// parameters, not a deep copy), every layer writes into its model's
// Workspace arena, the wire path reuses per-thread buffers, evaluation runs
// the stacked server test set through each model in large contiguous
// batches, and remaining tensor temporaries are recycled by a
// BufferPoolScope held for the simulation's lifetime. Results are
// bit-identical to the historical allocate-per-round path at any thread
// count (tests/fl_test.cpp pins this against a verbatim reference round).
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "fl/aggregation.h"
#include "fl/trainer.h"
#include "metrics/evaluation.h"
#include "runtime/scheduler.h"
#include "tensor/buffer_pool.h"

namespace goldfish::fl {

/// Buffered-asynchronous execution knobs (FederatedSim::run_async): a
/// FedBuff-style semi-asynchronous server driven by a deterministic virtual
/// clock. Clients train continuously as independent tasks; the server
/// aggregates whenever `buffer_size` updates have arrived, discounting each
/// update by its staleness.
struct AsyncFlConfig {
  /// Updates buffered before the server aggregates (K). 0 → num_clients.
  long buffer_size = 0;
  /// Staleness decay exponent α: an update s server-versions stale is
  /// weighted by (1+s)^−α on top of the base aggregator's weight (composes
  /// with fedavg/uniform/adaptive). 0 disables decay.
  double staleness_alpha = 0.5;
  /// Mean virtual duration of one local-training task.
  double mean_duration = 1.0;
  /// Log-normal spread of task durations: duration = mean·exp(j·N(0,1)),
  /// drawn from the seeded RNG per (client, task). 0 → every task takes
  /// exactly mean_duration, which reproduces the synchronous schedule.
  double duration_log_jitter = 0.25;
};

struct FlConfig {
  TrainOptions local;                ///< per-round local training options
  std::string aggregator = "fedavg"; ///< "fedavg" | "uniform" | "adaptive"
  /// 0 → share the process-wide runtime Scheduler (the normal case; client
  /// tasks and the kernels inside them draw from one pool). Non-zero → a
  /// private Scheduler with that parallelism for *client-level* tasks only;
  /// kernels inside them still use the global pool, so to pin the whole
  /// process set GOLDFISH_THREADS instead.
  std::size_t threads = 0;
  /// Rows per server-side evaluation batch; 0 (default) auto-bounds the
  /// chunk (~2^21 input floats; sets below that run as one fused forward
  /// pass per model). Accuracy/MSE are bit-identical for any value.
  long eval_batch = 0;
  std::uint64_t seed = 7;
  /// Buffered-asynchronous mode parameters (only read by run_async).
  AsyncFlConfig async;
};

/// Telemetry for one synchronous round.
struct RoundResult {
  long round = 0;
  double global_accuracy = 0.0;
  double min_local_accuracy = 0.0;
  double max_local_accuracy = 0.0;
  double mean_local_accuracy = 0.0;
  std::size_t bytes_uplinked = 0;
};

/// Telemetry for one asynchronous buffer aggregation.
struct AsyncRoundResult {
  long agg = 0;                 ///< aggregation index within this run
  double virtual_time = 0.0;    ///< virtual clock when the buffer filled
  double global_accuracy = 0.0;
  double mean_staleness = 0.0;  ///< over the K consumed updates
  long max_staleness = 0;
  long updates_consumed = 0;    ///< == buffer size K
  /// Updates invalidated so far (cumulative): deletion requests evict a
  /// client's buffered updates and void its in-flight task.
  long dropped_updates = 0;
  std::size_t bytes_uplinked = 0;  ///< wire bytes of the consumed updates
};

/// A deletion request arriving mid-run at a virtual time: at `time`, the
/// client's local data is replaced by `new_data` (its remaining rows D_r),
/// any of its updates still sitting in the server's buffer are evicted, and
/// its in-flight task is voided on completion — both were trained on data
/// that now includes deleted rows, and must never reach an aggregation.
/// Updates aggregated *before* `time` are history; undoing their influence
/// is the unlearner's job (core/unlearner.h builds these events).
struct AsyncDeletion {
  double time = 0.0;
  std::size_t client = 0;
  data::Dataset new_data;
};

class FederatedSim {
 public:
  /// The per-client update: receives a local model already initialized from
  /// the current global parameters, trains it, and returns nothing (the sim
  /// snapshots the model afterwards). `round` is the global round index.
  using ClientUpdateFn = std::function<void(
      std::size_t client_id, nn::Model& local_model,
      const data::Dataset& local_data, long round)>;

  FederatedSim(nn::Model global, std::vector<data::Dataset> client_data,
               data::Dataset server_test, FlConfig cfg);

  /// Replace the default (plain LocalTraining) client update.
  void set_client_update(ClientUpdateFn fn) { update_fn_ = std::move(fn); }

  /// Execute one synchronous round: pooled broadcast → parallel local
  /// updates → serialize/upload → (adaptive: server-side MSE scoring) →
  /// aggregate.
  RoundResult run_round();

  /// Run `rounds` rounds, collecting telemetry.
  std::vector<RoundResult> run(long rounds);

  /// Buffered-asynchronous execution (FedBuff-style): clients train
  /// continuously as independent Scheduler tasks; the server aggregates
  /// whenever K = cfg.async.buffer_size updates have arrived, weighting each
  /// by its base aggregator weight × (1+staleness)^−α. Runs until
  /// `aggregations` buffers have been consumed.
  ///
  /// Determinism: completion order is governed by a virtual clock — task
  /// durations are drawn from the seeded RNG, completions are processed in
  /// (virtual time, client id) order, and same-timestamp completions are
  /// buffered before any of those clients re-downloads — so results are
  /// bit-identical at any thread count. With K = num_clients and
  /// duration_log_jitter = 0 the schedule degenerates to the synchronous
  /// one: every aggregation consumes exactly one fresh update per client, in
  /// client order, matching run_round bit for bit (with α > 0 the staleness
  /// factor is exactly 1 for fresh updates).
  ///
  /// `deletions` inject unlearning requests mid-run (see AsyncDeletion);
  /// they must be the client's *remaining* data and take effect at their
  /// virtual time, evicting the client's pending/in-flight updates. After
  /// the run, clients_ reflects the post-deletion datasets.
  std::vector<AsyncRoundResult> run_async(
      long aggregations, std::vector<AsyncDeletion> deletions = {});

  nn::Model& global_model() { return global_; }
  const data::Dataset& server_test() const { return test_; }
  const data::Dataset& client_data(std::size_t c) const {
    return clients_[c];
  }
  std::size_t num_clients() const { return clients_.size(); }

  /// Number of pooled client-model replicas currently alive (grows on
  /// demand, bounded by the scheduler's parallelism).
  std::size_t pool_size() const { return pool_total_; }

  /// Replace one client's dataset (deletion requests mutate local data).
  void set_client_data(std::size_t c, data::Dataset ds);

 private:
  /// RAII lease of a pooled model replica: pops a free replica (cloning the
  /// global model only when the pool has never been this deep — i.e. round
  /// 1), returns it on destruction. Leases never outlive the sim.
  class ModelLease {
   public:
    explicit ModelLease(FederatedSim& sim);
    ~ModelLease();
    nn::Model& get() { return *model_; }

   private:
    FederatedSim& sim_;
    std::unique_ptr<nn::Model> model_;
  };

  // Declared first so it is destroyed last: models returning to the pool on
  // teardown park their storage here before the scope drains it.
  BufferPoolScope recycle_;
  nn::Model global_;
  /// Structural template for pool replicas. Never written after
  /// construction: a cold-pool lease clones *this* (its values are always
  /// overwritten by copy_from/load before use), so growing the pool from a
  /// worker thread never races the main thread's writes to global_ — which
  /// run_async performs while client tasks are still in flight.
  nn::Model replica_template_;
  std::vector<data::Dataset> clients_;
  data::Dataset test_;
  FlConfig cfg_;
  std::unique_ptr<Aggregator> aggregator_;
  /// cfg.aggregator wrapped in (1+s)^−α staleness discounting; null when
  /// α = 0 (run_async then uses aggregator_ directly).
  std::unique_ptr<Aggregator> staleness_aggregator_;
  std::unique_ptr<runtime::Scheduler> owned_sched_;  // only when cfg.threads
  runtime::Scheduler* sched_;  // the pool client tasks run on
  metrics::BatchedEvaluator eval_;
  ClientUpdateFn update_fn_;
  long round_ = 0;

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<nn::Model>> pool_;  // free replicas
  std::size_t pool_total_ = 0;                    // replicas ever created

  /// True when the global model is a two-layer MLP (the `mlp<h>` family),
  /// whose per-client evaluation can be stacked into one wide GEMM.
  bool stackable_mlp() const;
  /// Batched client evaluation: concatenate every client's hidden-layer
  /// weights into one (C·h, D) matrix so a single fused GEMM per test chunk
  /// computes all clients' hidden activations — the test set is read and
  /// packed once per round instead of once per client — then run each
  /// client's logits head on its strided slice. Bit-identical to evaluating
  /// the clients one at a time (each output column's k-reduction is
  /// independent of how the batch or the column block is tiled).
  void stacked_local_accuracy(const std::vector<ClientUpdate>& updates,
                              std::vector<double>& local_acc);

  // Stacked-evaluation scratch, reused across rounds.
  Tensor stacked_w_, stacked_b_, stacked_y_;
  bool stackable_ = false;  // computed once: the architecture never changes
};

}  // namespace goldfish::fl
