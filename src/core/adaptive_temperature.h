// Adaptive distillation temperature (Eq. 11, extension module):
//
//   T = α·T0·exp( −|D_r| / (|D_r| + |D_f|) )
//
// Clients whose removed set is a larger fraction of their data get a higher
// temperature (smoother teacher targets → more transferable dark knowledge),
// which compensates for the heterogeneity of local data.
#pragma once

namespace goldfish::core {

struct AdaptiveTemperature {
  float t0 = 3.0f;  ///< initial temperature T0 (paper experiments use 3)
  /// Adjustment factor α. Default e so that a client with |D_f| → 0 gets
  /// exactly T0 (exponent → −1 cancels α = e); larger deletion fractions
  /// then raise T smoothly up to α·T0.
  float alpha = 2.718281828f;
  /// Floor: the paper notes T ≤ 1 degrades soft labels into hard labels, so
  /// we never go below it.
  float min_temperature = 1.0f;

  /// Temperature for a client with the given remaining/removed sizes.
  float operator()(long remaining_size, long removed_size) const;
};

}  // namespace goldfish::core
