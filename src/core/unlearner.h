// Top-level Goldfish federated unlearning (Algorithm 1).
//
// On a deletion request the trained-but-contaminated global model becomes
// the *teacher*; the global model is re-initialized (ω ← ω0) and every
// client then runs the Goldfish distillation procedure — unlearned clients
// with their (D_r, D_f) split, normal clients with D_f = ∅ — after which the
// server aggregates with adaptive weights (Eq. 12–13). Accuracy recovers at
// distillation speed while D_f's influence is never transferred.
#pragma once

#include "core/distill_trainer.h"
#include "fl/simulation.h"

namespace goldfish::core {

/// One client's deletion request: rows (indices into that client's local
/// dataset) to forget.
struct UnlearnRequest {
  std::size_t client_id = 0;
  std::vector<std::size_t> rows;
};

/// Split one client dataset into remaining / removed rows per a deletion
/// request (`rows` index `local`). The shared splitter behind synchronous
/// request_deletion and the asynchronous mid-buffer trigger below.
struct DeletionSplit {
  data::Dataset remaining;
  data::Dataset removed;
};
DeletionSplit split_deletion(const data::Dataset& local,
                             const UnlearnRequest& req);

/// Build the buffered-asynchronous deletion trigger for a request against a
/// running FederatedSim: the returned event, handed to
/// FederatedSim::run_async, replaces the client's data with its remaining
/// rows at virtual time `vtime` — evicting the client's buffered and
/// in-flight updates, which trained on the deleted rows, before they can
/// reach an aggregation. The removed rows (D_f) are returned for the
/// distillation phase (GoldfishUnlearner) and auditing.
struct AsyncDeletionPlan {
  fl::AsyncDeletion event;
  data::Dataset removed;
};
AsyncDeletionPlan make_async_deletion(const fl::FederatedSim& sim,
                                      const UnlearnRequest& req,
                                      double vtime);

struct UnlearnConfig {
  DistillOptions distill;
  std::string aggregator = "adaptive";  ///< extension module default
  /// 0 → shared runtime Scheduler; non-zero → private pool for client-level
  /// tasks only (kernels stay on the global pool — see fl::FlConfig).
  std::size_t threads = 0;
  std::uint64_t seed = 17;
};

/// Telemetry per unlearning round.
struct UnlearnRoundResult {
  long round = 0;
  double global_accuracy = 0.0;
  long total_epochs_run = 0;       ///< Σ over clients (early term. shrinks it)
  long clients_terminated_early = 0;
  double mean_temperature = 0.0;   ///< mean adaptive temperature across clients
};

class GoldfishUnlearner {
 public:
  /// `global` must be the *trained* federated model (it becomes the
  /// teacher); `fresh_init` is ω0, the re-initialized starting point.
  GoldfishUnlearner(nn::Model global, nn::Model fresh_init,
                    std::vector<data::Dataset> client_data,
                    data::Dataset server_test, UnlearnConfig cfg);

  /// Register deletion requests (splits the clients' data into D_r / D_f).
  void request_deletion(const std::vector<UnlearnRequest>& requests);

  /// Run one synchronous unlearning round (all clients distill in parallel,
  /// then adaptive aggregation).
  UnlearnRoundResult run_round();

  /// Run `rounds` rounds.
  std::vector<UnlearnRoundResult> run(long rounds);

  nn::Model& global_model() { return global_; }
  nn::Model& teacher_model() { return teacher_; }
  const data::Dataset& removed_data(std::size_t client) const;
  const data::Dataset& remaining_data(std::size_t client) const;

 private:
  nn::Model teacher_;  // pre-unlearning global model (knowledge source)
  nn::Model global_;   // re-initialized, being rebuilt
  std::vector<data::Dataset> remaining_;
  std::vector<data::Dataset> removed_;
  data::Dataset test_;
  UnlearnConfig cfg_;
  std::unique_ptr<fl::Aggregator> aggregator_;
  std::unique_ptr<runtime::Scheduler> owned_sched_;  // only when cfg.threads
  runtime::Scheduler* sched_;
  long round_ = 0;
};

}  // namespace goldfish::core
