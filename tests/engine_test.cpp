// The event-driven fl::Engine: config validation at construction, scenario
// timelines (joins, leaves, aggregator swaps, deletions), participation /
// buffer / clock policies, determinism across thread counts, equivalence of
// the canned bundles with the legacy entry points, and the in-flight
// set_client_data guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/unlearner.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "tensor/buffer_pool.h"

namespace goldfish {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool snapshots_bitwise_equal(const std::vector<Tensor>& a,
                             const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (!a[t].same_shape(b[t])) return false;
    if (std::memcmp(a[t].data(), b[t].data(),
                    a[t].numel() * sizeof(float)) != 0)
      return false;
  }
  return true;
}

struct Fed {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;
};

Fed make_fed(long clients, long train_rows, long test_rows,
             std::uint64_t seed) {
  auto tt = data::make_synthetic(data::default_spec(
      data::DatasetKind::Mnist, seed, train_rows, test_rows));
  Rng rng(seed + 1);
  Fed fed;
  fed.parts = data::partition_iid(tt.train, clients, rng);
  fed.test = std::move(tt.test);
  fed.global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  return fed;
}

fl::FlConfig fast_cfg() {
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  return cfg;
}

// -- FlConfig validation at construction -----------------------------------

TEST(FlConfigValidation, RejectsEachBadFieldWithInvalidArgument) {
  Fed fed = make_fed(3, 120, 30, 301);
  const auto construct = [&](fl::FlConfig cfg) {
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, std::move(cfg));
  };

  construct(fast_cfg());  // the baseline config itself is valid

  fl::FlConfig bad = fast_cfg();
  bad.aggregator = "geometric-median";  // not a registered strategy
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.robust.krum_f = -1;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.robust.krum_m = 0;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.aggregator = "krum";
  bad.robust.krum_f = 3;  // >= the 3 clients: n >= f+3 can never hold
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();  // ...but a krum_f the federation can satisfy is fine
  bad.aggregator = "krum";
  bad.robust.krum_f = 0;
  construct(bad);

  bad = fast_cfg();
  bad.robust.trim_fraction = 0.5;  // trims everything
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.robust.trim_fraction = -0.1;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.robust.clip_norm = 0.0;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.robust.clip_norm = -2.0;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.async.buffer_size = 4;  // > 3 clients: the buffer could never fill
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.async.buffer_size = -1;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.async.staleness_alpha = -0.5;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.async.mean_duration = -1.0;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.async.mean_duration = 0.0;  // zero would freeze the virtual clock
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.async.duration_log_jitter = -0.25;
  EXPECT_THROW(construct(bad), std::invalid_argument);

  bad = fast_cfg();
  bad.eval_batch = -8;
  EXPECT_THROW(construct(bad), std::invalid_argument);
}

TEST(FlConfigValidation, MessagesNameTheField) {
  Fed fed = make_fed(2, 80, 30, 303);
  fl::FlConfig bad = fast_cfg();
  bad.aggregator = "geometric-median";
  try {
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("geometric-median"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("aggregator"), std::string::npos);
  }

  bad = fast_cfg();
  bad.robust.trim_fraction = 0.75;
  try {
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trim_fraction"), std::string::npos);
  }
}

// -- the in-flight mutation guard ------------------------------------------

TEST(EngineGuards, SetClientDataRejectedWhileRunInFlight) {
  Fed fed = make_fed(2, 100, 30, 305);
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, fast_cfg());
  data::Dataset replacement = fed.parts[0].subset({0, 1, 2});

  // From inside a client update the run is in flight by definition; the
  // mutation must be rejected (it could race another client's training
  // task) instead of silently corrupting the round.
  std::atomic<int> rejected{0};
  sim.set_client_update([&](std::size_t cid, nn::Model& model,
                            const data::Dataset& ds, long round) {
    try {
      sim.set_client_data(0, replacement);
    } catch (const std::logic_error&) {
      rejected.fetch_add(1);
    }
    fl::TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = 50;
    opts.lr = 0.05f;
    opts.seed = mix_seed(7, cid, static_cast<std::uint64_t>(round));
    fl::train_local(model, ds, opts);
  });
  sim.run_round();
  EXPECT_EQ(rejected.load(), 2);  // both clients hit the guard
  EXPECT_EQ(sim.client_data(0).size(), fed.parts[0].size());  // untouched

  // Outside a run the setter works as before.
  EXPECT_FALSE(sim.engine().running());
  sim.set_client_data(0, replacement);
  EXPECT_EQ(sim.client_data(0).size(), 3);
}

// -- participation policies ------------------------------------------------

// The canned async bundle and an explicitly-assembled full-participation
// scenario must be the same computation, bit for bit: the legacy golden
// stream is reproduced by the policy form.
TEST(Participation, FullPolicyReproducesRunAsyncGoldenStream) {
  fl::FlConfig cfg = fast_cfg();
  cfg.async.buffer_size = 2;
  cfg.async.duration_log_jitter = 0.5;
  cfg.async.staleness_alpha = 0.5;

  Fed fed_a = make_fed(4, 240, 60, 307);
  fl::FederatedSim legacy(fed_a.global, fed_a.parts, fed_a.test, cfg);
  const auto want = legacy.run_async(5);

  Fed fed_b = make_fed(4, 240, 60, 307);
  fl::FederatedSim sim(fed_b.global, fed_b.parts, fed_b.test, cfg);
  fl::Scenario s;
  s.aggregations = 5;
  s.participation = std::make_unique<fl::FullParticipation>();
  s.buffer = std::make_unique<fl::FixedBuffer>(cfg.async.buffer_size);
  s.clock = std::make_unique<fl::VirtualClock>(
      cfg.seed, cfg.async.mean_duration, cfg.async.duration_log_jitter);
  s.staleness_alpha = cfg.async.staleness_alpha;
  const auto got = sim.engine().collect(std::move(s));

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(bits_equal(got[i].global_accuracy, want[i].global_accuracy));
    EXPECT_TRUE(bits_equal(got[i].virtual_time, want[i].virtual_time));
    EXPECT_TRUE(bits_equal(got[i].mean_staleness, want[i].mean_staleness));
    EXPECT_EQ(got[i].max_staleness, want[i].max_staleness);
    EXPECT_EQ(got[i].updates_consumed, want[i].updates_consumed);
    EXPECT_EQ(got[i].dropped_updates, want[i].dropped_updates);
    EXPECT_EQ(got[i].bytes_uplinked, want[i].bytes_uplinked);
    EXPECT_EQ(got[i].aggregator, "fedavg+staleness");
  }
  EXPECT_TRUE(snapshots_bitwise_equal(legacy.global_model().snapshot(),
                                      sim.global_model().snapshot()));
}

// Seeded uniform sampling: the cohort of each server version is a pure
// function of (seed, client, version), so the whole run is bit-identical at
// 1, 2 and 8 threads — and an empty cohort can never stall the server.
TEST(Participation, SampledDeterministicAcrossThreadCounts) {
  std::vector<std::vector<Tensor>> finals;
  std::vector<std::vector<fl::StepResult>> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    Fed fed = make_fed(4, 240, 60, 311);
    fl::FlConfig cfg = fast_cfg();
    cfg.threads = threads;
    cfg.async.buffer_size = 2;
    cfg.async.duration_log_jitter = 0.5;
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
    fl::Scenario s = eng.async_scenario(6);
    s.participation = std::make_unique<fl::SampledParticipation>(0.5, 99);
    results.push_back(eng.collect(std::move(s)));
    finals.push_back(eng.global_model().snapshot());
  }
  ASSERT_EQ(results[0].size(), 6u);
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[i]));
    ASSERT_EQ(results[0].size(), results[i].size());
    for (std::size_t a = 0; a < results[0].size(); ++a) {
      EXPECT_TRUE(bits_equal(results[0][a].global_accuracy,
                             results[i][a].global_accuracy));
      EXPECT_TRUE(bits_equal(results[0][a].virtual_time,
                             results[i][a].virtual_time));
      EXPECT_TRUE(bits_equal(results[0][a].mean_staleness,
                             results[i][a].mean_staleness));
      EXPECT_EQ(results[0][a].bytes_uplinked, results[i][a].bytes_uplinked);
    }
  }
}

// The sampling policy is a pure function of (seed, client, version): stable
// under repetition, exhaustive at fraction 1, genuinely thinning below it.
TEST(Participation, SampledPolicyIsAPureSeededFunction) {
  fl::SampledParticipation all(1.0, 7);
  fl::SampledParticipation half(0.5, 7);
  long admitted = 0;
  for (std::size_t c = 0; c < 16; ++c)
    for (long v = 0; v < 16; ++v) {
      EXPECT_TRUE(all.participates(c, v, 0.0));
      const bool first = half.participates(c, v, 0.0);
      EXPECT_EQ(first, half.participates(c, v, 123.0));  // time-independent
      if (first) ++admitted;
    }
  // ~Binomial(256, 0.5): far from both degenerate cohorts.
  EXPECT_GT(admitted, 64);
  EXPECT_LT(admitted, 192);
  // Refusals wait for the next version, not a timed retry.
  EXPECT_LT(half.retry_at(0, 0, 1.0), 0.0);
}

// Sampling must actually change who trains: against full participation on
// an identical federation, the thinned run executes a different set of
// (client, round) training tasks.
TEST(Participation, SamplingThinsTheCohorts) {
  const auto trained_set = [](double fraction) {
    Fed fed = make_fed(4, 200, 50, 313);
    fl::FlConfig cfg = fast_cfg();
    cfg.async.buffer_size = 2;
    cfg.async.duration_log_jitter = 0.5;
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);

    std::mutex mu;
    std::set<std::pair<std::size_t, long>> tasks;
    eng.set_client_update([&](std::size_t cid, nn::Model& model,
                              const data::Dataset& ds, long round) {
      {
        std::lock_guard<std::mutex> lock(mu);
        tasks.insert({cid, round});
      }
      fl::TrainOptions opts;
      opts.epochs = 1;
      opts.batch_size = 50;
      opts.lr = 0.05f;
      opts.seed = mix_seed(7, cid, static_cast<std::uint64_t>(round));
      fl::train_local(model, ds, opts);
    });

    fl::Scenario s = eng.async_scenario(4);
    if (fraction < 1.0)
      s.participation =
          std::make_unique<fl::SampledParticipation>(fraction, 5);
    const auto steps = eng.collect(std::move(s));
    EXPECT_EQ(steps.size(), 4u);
    return tasks;
  };

  const auto full = trained_set(1.0);
  const auto thinned = trained_set(0.4);
  EXPECT_FALSE(thinned.empty());
  EXPECT_NE(full, thinned);  // the policy reshaped the training schedule
}

// Availability windows park clients off-window and wake them at the next
// window start; the schedule stays deterministic across thread counts.
TEST(Participation, AvailabilityWindowsDeterministic) {
  std::vector<std::vector<Tensor>> finals;
  for (std::size_t threads : {1u, 2u}) {
    Fed fed = make_fed(3, 150, 40, 317);
    fl::FlConfig cfg = fast_cfg();
    cfg.threads = threads;
    cfg.async.buffer_size = 2;
    cfg.async.duration_log_jitter = 0.25;
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
    fl::Scenario s = eng.async_scenario(4);
    s.participation =
        std::make_unique<fl::AvailabilityWindows>(10.0, 0.4, 3.0);
    const auto steps = eng.collect(std::move(s));
    ASSERT_EQ(steps.size(), 4u);
    for (std::size_t i = 1; i < steps.size(); ++i)
      EXPECT_GE(steps[i].virtual_time, steps[i - 1].virtual_time);
    finals.push_back(eng.global_model().snapshot());
  }
  EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[1]));
}

// -- buffer policies -------------------------------------------------------

// AdaptiveBuffer reacts to observed staleness within its clamp range; the
// policy itself is exercised directly for the exact growth/shrink rule.
TEST(BufferPolicy, AdaptiveGrowsOnStaleShrinksOnFresh) {
  fl::AdaptiveBuffer k(4, 2, 6, /*target_max_staleness=*/1);
  EXPECT_EQ(k.size(0, 0.0, 0, 8), 4);   // first aggregation: initial K
  EXPECT_EQ(k.size(1, 0.5, 2, 8), 5);   // overshoot: grow
  EXPECT_EQ(k.size(2, 1.0, 2, 8), 6);   // grow, hits max
  EXPECT_EQ(k.size(3, 2.0, 3, 8), 6);   // clamped at max
  EXPECT_EQ(k.size(4, 0.0, 0, 8), 5);   // all fresh: shrink
  EXPECT_EQ(k.size(5, 0.2, 1, 8), 5);   // within target: hold
  EXPECT_EQ(k.size(6, 0.0, 0, 8), 4);
}

TEST(BufferPolicy, AdaptiveKChangesConsumptionPerStep) {
  Fed fed = make_fed(4, 240, 60, 331);
  fl::FlConfig cfg = fast_cfg();
  cfg.async.duration_log_jitter = 1.0;  // heavy stragglers → staleness
  fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
  fl::Scenario s = eng.async_scenario(6);
  s.buffer = std::make_unique<fl::AdaptiveBuffer>(2, 1, 4, 0);
  const auto steps = eng.collect(std::move(s));
  ASSERT_EQ(steps.size(), 6u);
  std::set<long> sizes;
  for (const auto& st : steps) {
    EXPECT_GE(st.updates_consumed, 1);
    EXPECT_LE(st.updates_consumed, 4);
    sizes.insert(st.updates_consumed);
  }
  EXPECT_GT(sizes.size(), 1u);  // K actually moved during the run
}

// -- clock policies --------------------------------------------------------

// TraceClock replays measured durations cyclically; the resulting timeline
// is fully hand-computable.
TEST(ClockPolicy, TraceReplayDrivesTheTimeline) {
  Fed fed = make_fed(3, 150, 40, 337);
  fl::FlConfig cfg = fast_cfg();
  fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
  fl::Scenario s;
  s.aggregations = 1;
  s.buffer = std::make_unique<fl::FixedBuffer>(3);
  s.clock = std::make_unique<fl::TraceClock>(
      std::vector<std::vector<double>>{{1.0}, {2.0}, {1.0, 3.0}});
  s.staleness_alpha = 0.0;
  const auto steps = eng.collect(std::move(s));
  ASSERT_EQ(steps.size(), 1u);
  // t=1: clients 0 and 2 buffer (2 of 3); t=2: client 0 laps (trace wraps
  // to 1.0) and fills the buffer before client 1's completion is consumed.
  EXPECT_TRUE(bits_equal(steps[0].virtual_time, 2.0));
  EXPECT_EQ(steps[0].updates_consumed, 3);
}

// -- scenario timeline events ----------------------------------------------

TEST(ScenarioTimeline, ClientJoinGrowsTheFederationDurably) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 341, 300, 60));
  Rng rng(342);
  auto parts = data::partition_iid(tt.train, 4, rng);
  std::vector<data::Dataset> initial(parts.begin(), parts.begin() + 3);
  nn::Model global = nn::make_mlp({1, 28, 28}, 16, 10, rng);

  fl::FlConfig cfg = fast_cfg();
  cfg.async.buffer_size = 3;
  cfg.async.duration_log_jitter = 0.0;
  fl::FederatedSim sim(global, initial, tt.test, cfg);

  std::mutex mu;
  std::set<std::size_t> trained;
  sim.set_client_update([&](std::size_t cid, nn::Model& model,
                            const data::Dataset& ds, long round) {
    {
      std::lock_guard<std::mutex> lock(mu);
      trained.insert(cid);
    }
    fl::TrainOptions opts = cfg.local;
    opts.seed = mix_seed(cfg.seed, cid, static_cast<std::uint64_t>(round));
    fl::train_local(model, ds, opts);
  });

  fl::Scenario s = sim.engine().async_scenario(3);
  s.joins.push_back({/*time=*/1.5, parts[3]});
  const auto steps = sim.engine().collect(std::move(s));
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].active_clients, 3u);   // aggregated at t=1, pre-join
  EXPECT_EQ(steps.back().active_clients, 4u);
  EXPECT_TRUE(trained.count(3));            // the joiner really trained
  // Durable: the engine's federation now includes the client.
  EXPECT_EQ(sim.num_clients(), 4u);
  EXPECT_EQ(sim.client_data(3).size(), parts[3].size());
}

TEST(ScenarioTimeline, ClientLeaveVoidsInFlightAndDeactivates) {
  Fed fed = make_fed(3, 180, 40, 347);
  fl::FlConfig cfg = fast_cfg();
  cfg.async.buffer_size = 2;
  cfg.async.duration_log_jitter = 0.0;  // completions at t = 1, 2, 3, ...
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);

  fl::Scenario s = sim.engine().async_scenario(3);
  // Client 2 leaves at t=0.5, before its first task completes: the task is
  // voided (the device is gone) and the client never trains again.
  s.leaves.push_back({0.5, 2});
  const auto steps = sim.engine().collect(std::move(s));
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps.back().dropped_updates, 1);
  for (const auto& st : steps) EXPECT_EQ(st.active_clients, 2u);
  EXPECT_EQ(sim.engine().active_clients(), 2u);  // durable
  EXPECT_EQ(sim.num_clients(), 3u);  // still registered, data kept

  // Later synchronous rounds train only the two remaining clients.
  const auto r = sim.run_round();
  EXPECT_GT(r.global_accuracy, 0.0);
  EXPECT_EQ(sim.engine().active_clients(), 2u);
}

TEST(ScenarioTimeline, AggregatorSwapTakesEffectMidRun) {
  // Unequal client sizes so fedavg and uniform genuinely differ.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 351, 300, 60));
  Rng rng(352);
  std::vector<std::size_t> big, small;
  for (std::size_t i = 0; i < 200; ++i) big.push_back(i);
  for (std::size_t i = 200; i < 280; ++i) small.push_back(i);
  std::vector<data::Dataset> clients = {tt.train.subset(big),
                                        tt.train.subset(small)};
  nn::Model global = nn::make_mlp({1, 28, 28}, 16, 10, rng);

  fl::FlConfig cfg = fast_cfg();
  cfg.aggregator = "fedavg";

  const auto run_with = [&](bool swap) {
    fl::FederatedSim sim(global, clients, tt.test, cfg);
    fl::Scenario s = sim.engine().sync_scenario(3, /*local_accuracy=*/false);
    if (swap) s.aggregator_swaps.push_back({1.5, "uniform"});
    auto steps = sim.engine().collect(std::move(s));
    return std::make_pair(std::move(steps), sim.global_model().snapshot());
  };

  const auto [plain, plain_final] = run_with(false);
  const auto [swapped, swapped_final] = run_with(true);
  ASSERT_EQ(swapped.size(), 3u);
  EXPECT_EQ(swapped[0].aggregator, "fedavg");   // round at t=1: pre-swap
  EXPECT_EQ(swapped[1].aggregator, "uniform");  // t=2 ≥ 1.5: swapped
  EXPECT_EQ(swapped[2].aggregator, "uniform");
  EXPECT_EQ(plain[1].aggregator, "fedavg");
  // Identical first round, diverged afterwards.
  EXPECT_TRUE(
      bits_equal(plain[0].global_accuracy, swapped[0].global_accuracy));
  EXPECT_FALSE(snapshots_bitwise_equal(plain_final, swapped_final));
}

TEST(ScenarioTimeline, RejectsMalformedEvents) {
  Fed fed = make_fed(2, 100, 30, 353);
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, fast_cfg());
  {
    fl::Scenario s = sim.engine().async_scenario(1);
    s.leaves.push_back({0.5, 7});  // unknown client
    EXPECT_THROW(sim.engine().collect(std::move(s)), CheckError);
  }
  {
    fl::Scenario s = sim.engine().async_scenario(1);
    s.joins.push_back({0.5, data::Dataset{}});  // empty dataset
    EXPECT_THROW(sim.engine().collect(std::move(s)), CheckError);
  }
  {
    fl::Scenario s = sim.engine().async_scenario(1);
    s.aggregator_swaps.push_back({0.5, "geometric-median"});  // unknown
    EXPECT_THROW(sim.engine().collect(std::move(s)), CheckError);
  }
  {
    fl::Scenario s = sim.engine().async_scenario(-1);
    EXPECT_THROW(sim.engine().collect(std::move(s)), CheckError);
  }
}

// -- composed scenarios: sampling × adaptive K × mid-run deletion ----------

fl::Scenario combo_scenario(fl::Engine& eng, long aggs, double fraction,
                            std::vector<fl::DeletionEvent> deletions) {
  fl::Scenario s = eng.async_scenario(aggs, std::move(deletions));
  s.participation = std::make_unique<fl::SampledParticipation>(fraction, 42);
  s.buffer = std::make_unique<fl::AdaptiveBuffer>(2, 1, 3, 1);
  return s;
}

TEST(ComposedScenarios, SamplingAdaptiveKDeletionDeterministic) {
  std::vector<std::vector<Tensor>> finals;
  std::vector<std::vector<fl::StepResult>> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    Fed fed = make_fed(4, 240, 60, 359);
    fl::FlConfig cfg = fast_cfg();
    cfg.threads = threads;
    cfg.async.duration_log_jitter = 0.5;
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);

    core::UnlearnRequest req;
    req.client_id = 1;
    req.rows = {0, 1, 2, 3};
    auto plan = core::make_async_deletion(sim, req, 1.25);
    std::vector<fl::DeletionEvent> dels;
    dels.push_back(std::move(plan.event));

    results.push_back(sim.engine().collect(
        combo_scenario(sim.engine(), 5, 0.75, std::move(dels))));
    finals.push_back(sim.global_model().snapshot());
    EXPECT_EQ(sim.client_data(1).size(), fed.parts[1].size() - 4);
  }
  ASSERT_EQ(results[0].size(), 5u);
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[i]));
    for (std::size_t a = 0; a < results[0].size(); ++a) {
      EXPECT_TRUE(bits_equal(results[0][a].global_accuracy,
                             results[i][a].global_accuracy));
      EXPECT_TRUE(bits_equal(results[0][a].virtual_time,
                             results[i][a].virtual_time));
      EXPECT_EQ(results[0][a].updates_consumed,
                results[i][a].updates_consumed);
      EXPECT_EQ(results[0][a].dropped_updates, results[i][a].dropped_updates);
    }
  }
}

// Three distinct combinations of the new policy axes all run to completion
// deterministically (same engine, sequential scenarios, fresh policies).
TEST(ComposedScenarios, PolicyAxesComposeFreely) {
  Fed fed = make_fed(4, 240, 60, 367);
  fl::FlConfig cfg = fast_cfg();
  cfg.async.duration_log_jitter = 0.5;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  fl::Engine& eng = sim.engine();

  // 1: sampling × fixed K.
  {
    fl::Scenario s = eng.async_scenario(3);
    s.participation = std::make_unique<fl::SampledParticipation>(0.6, 11);
    s.buffer = std::make_unique<fl::FixedBuffer>(2);
    ASSERT_EQ(eng.collect(std::move(s)).size(), 3u);
  }
  // 2: full participation × adaptive K × deletion.
  {
    core::UnlearnRequest req;
    req.client_id = 0;
    req.rows = {0, 1};
    auto plan = core::make_async_deletion(sim, req, 0.75);
    fl::Scenario s = eng.async_scenario(3);
    s.buffer = std::make_unique<fl::AdaptiveBuffer>(3, 2, 4, 1);
    s.deletions.push_back(std::move(plan.event));
    const auto steps = eng.collect(std::move(s));
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_GE(steps.back().dropped_updates, 1);
  }
  // 3: sampling × adaptive K × availability-window-style trace clock.
  {
    fl::Scenario s = eng.async_scenario(3);
    s.participation = std::make_unique<fl::SampledParticipation>(0.8, 13);
    s.buffer = std::make_unique<fl::AdaptiveBuffer>(2, 1, 4, 0);
    s.clock = std::make_unique<fl::TraceClock>(
        std::vector<std::vector<double>>{{0.8, 1.3}, {1.0}, {2.1}, {0.6}});
    const auto steps = eng.collect(std::move(s));
    ASSERT_EQ(steps.size(), 3u);
  }
  // The engine survives it all and keeps serving the legacy entry points.
  const auto r = sim.run_round();
  EXPECT_GT(r.global_accuracy, 0.0);
}

// Steady-state composed scenarios touch the heap exactly zero times, like
// the canned rounds: policies and timelines live outside the FloatBuffer
// arena, and every tensor the run needs recycles through the pool.
TEST(ComposedScenarios, SteadyStateAllocatesNothing) {
  if (!alloc_stats::enabled())
    GTEST_SKIP() << "built without GOLDFISH_ALLOC_STATS";
  Fed fed = make_fed(3, 150, 60, 373);
  fl::FlConfig cfg = fast_cfg();
  cfg.local.batch_size = 25;
  cfg.async.duration_log_jitter = 0.5;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  fl::Engine& eng = sim.engine();

  const auto one_run = [&] {
    return eng.collect(combo_scenario(eng, 3, 0.75, {}));
  };
  one_run();  // warm-up: pool, arenas, recycler
  one_run();
  const std::size_t before = alloc_stats::heap_allocations();
  one_run();
  EXPECT_EQ(alloc_stats::heap_allocations() - before, 0u);
}

// -- unlearning through the engine -----------------------------------------

// GoldfishUnlearner rides the same engine, so distillation rounds compose
// with buffering: an async scenario over the unlearner's engine runs the
// paper's distillation as a semi-asynchronous server.
TEST(UnlearnerEngine, AsyncDistillationScenarioRuns) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 379, 240, 60));
  Rng rng(380);
  auto clients = data::partition_iid(tt.train, 3, rng);
  nn::Model fresh = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  nn::Model global = fresh;
  {
    fl::FlConfig cfg = fast_cfg();
    fl::FederatedSim sim(global, clients, tt.test, cfg);
    sim.run(2);
    global = sim.global_model();
  }

  core::UnlearnConfig cfg;
  cfg.distill.max_epochs = 2;
  cfg.distill.batch_size = 40;
  cfg.distill.lr = 0.05f;
  core::GoldfishUnlearner unlearner(global, fresh, clients, tt.test, cfg);
  unlearner.request_deletion({{/*client_id=*/0, {0, 1, 2, 3, 4}}});
  EXPECT_EQ(unlearner.removed_data(0).size(), 5);

  // One synchronous unlearning round through the canned bundle...
  const auto r0 = unlearner.run_round();
  EXPECT_GT(r0.total_epochs_run, 0);
  // ...then buffered-asynchronous distillation through the same engine.
  fl::Engine& eng = unlearner.engine();
  fl::Scenario s = eng.async_scenario(2);
  s.buffer = std::make_unique<fl::FixedBuffer>(2);
  const auto steps = eng.collect(std::move(s));
  ASSERT_EQ(steps.size(), 2u);
  for (const auto& st : steps) {
    EXPECT_EQ(st.updates_consumed, 2);
    EXPECT_GT(st.global_accuracy, 0.0);
  }
}

}  // namespace
}  // namespace goldfish
