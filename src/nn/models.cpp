#include "nn/models.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace goldfish::nn {

Model make_lenet5(const InputGeom& in, long num_classes, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Unflatten>(in.channels, in.height, in.width));
  // conv1 pads so 28×28 stays 28×28 (classic LeNet on padded MNIST).
  net->add(std::make_unique<Conv2d>(in.channels, 6, 5, 1, 2, in.height,
                                    in.width, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2d>(2, 2));
  const long h1 = in.height / 2, w1 = in.width / 2;
  net->add(std::make_unique<Conv2d>(6, 16, 5, 1, 0, h1, w1, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2d>(2, 2));
  const long h2 = (h1 - 4) / 2, w2 = (w1 - 4) / 2;
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(16 * h2 * w2, 120, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(120, num_classes, rng));
  return Model("lenet5", std::move(net), num_classes);
}

Model make_modified_lenet5(const InputGeom& in, long num_classes, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Unflatten>(in.channels, in.height, in.width));
  net->add(std::make_unique<Conv2d>(in.channels, 6, 5, 1, 0, in.height,
                                    in.width, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2d>(2, 2));
  const long h1 = (in.height - 4) / 2, w1 = (in.width - 4) / 2;
  net->add(std::make_unique<Conv2d>(6, 16, 5, 1, 0, h1, w1, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2d>(2, 2));
  const long h2 = (h1 - 4) / 2, w2 = (w1 - 4) / 2;
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(16 * h2 * w2, 120, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(120, 84, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(84, num_classes, rng));
  return Model("modified_lenet5", std::move(net), num_classes);
}

Model make_resnet(const InputGeom& in, long num_classes, long depth,
                  long base_width, Rng& rng) {
  GOLDFISH_CHECK((depth - 2) % 6 == 0 && depth >= 8,
                 "resnet depth must be 6n+2");
  const long blocks_per_stage = (depth - 2) / 6;
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Unflatten>(in.channels, in.height, in.width));
  net->add(std::make_unique<Conv2d>(in.channels, base_width, 3, 1, 1,
                                    in.height, in.width, rng));
  net->add(std::make_unique<BatchNorm2d>(base_width));
  net->add(std::make_unique<ReLU>());

  long channels = base_width;
  long h = in.height, w = in.width;
  for (long stage = 0; stage < 3; ++stage) {
    const long out_channels = base_width << stage;
    for (long b = 0; b < blocks_per_stage; ++b) {
      const long stride = (stage > 0 && b == 0) ? 2 : 1;
      net->add(std::make_unique<ResidualBlock>(channels, out_channels, stride,
                                               h, w, rng));
      if (stride == 2) {
        h = (h + 1) / 2;
        w = (w + 1) / 2;
      }
      channels = out_channels;
    }
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(channels, num_classes, rng));
  return Model("resnet" + std::to_string(depth), std::move(net), num_classes);
}

Model make_mlp(const InputGeom& in, long hidden, long num_classes, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Linear>(in.flat(), hidden, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(hidden, num_classes, rng));
  return Model("mlp" + std::to_string(hidden), std::move(net), num_classes);
}

Model make_model(const std::string& arch, const InputGeom& in,
                 long num_classes, Rng& rng) {
  if (arch == "lenet5") return make_lenet5(in, num_classes, rng);
  if (arch == "modified_lenet5")
    return make_modified_lenet5(in, num_classes, rng);
  if (arch == "resnet32") return make_resnet(in, num_classes, 32, 8, rng);
  if (arch == "resnet56") return make_resnet(in, num_classes, 56, 8, rng);
  if (arch == "resnet8") return make_resnet(in, num_classes, 8, 8, rng);
  if (arch.rfind("mlp", 0) == 0) {
    const long hidden = std::stol(arch.substr(3));
    return make_mlp(in, hidden, num_classes, rng);
  }
  GOLDFISH_CHECK(false, "unknown architecture: " + arch);
  return Model();  // unreachable
}

}  // namespace goldfish::nn
