// Tensor serialization: stream round-trips, file round-trips, corruption.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "tensor/serialize.h"

namespace goldfish {
namespace {

TEST(Serialize, StreamRoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  Tensor u = read_tensor(ss);
  ASSERT_TRUE(u.same_shape(t));
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(u[i], t[i]);
}

TEST(Serialize, EmptyTensorRoundTrip) {
  Tensor t({0});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  Tensor u = read_tensor(ss);
  EXPECT_EQ(u.numel(), 0u);
  EXPECT_EQ(u.rank(), 1u);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t junk = 0xDEADBEEF;
  ss.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  ss.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  EXPECT_THROW(read_tensor(ss), CheckError);
}

TEST(Serialize, TruncatedPayloadThrows) {
  Rng rng(2);
  Tensor t = Tensor::randn({10}, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tensor(ss, t);
  std::string buf = ss.str();
  buf.resize(buf.size() - 8);  // chop the tail
  std::stringstream cut(buf, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_tensor(cut), CheckError);
}

TEST(Serialize, FileSaveLoad) {
  Rng rng(3);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({4, 4}, rng));
  ts.push_back(Tensor::from({1, 2, 3}));
  const std::string path = "/tmp/goldfish_serialize_test.bin";
  save_tensors(path, ts);
  auto back = load_tensors(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].same_shape(ts[0]));
  EXPECT_FLOAT_EQ(back[1][2], 3.0f);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/tmp/definitely_missing_goldfish.bin"),
               CheckError);
}

TEST(Serialize, BufferPathMatchesStreamBytes) {
  // serialize_tensors must emit exactly the bytes the stream writer does —
  // the wire format is shared with save_tensors files.
  Rng rng(9);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({3, 5}, rng));
  ts.push_back(Tensor::randn({7}, rng));
  ts.push_back(Tensor::zeros({0}));  // zero-row tensor on the wire

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t count = static_cast<std::uint32_t>(ts.size());
  ss.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& t : ts) write_tensor(ss, t);

  std::string buf;
  serialize_tensors(ts, buf);
  EXPECT_EQ(buf, ss.str());

  const auto back = deserialize_tensors(buf.data(), buf.size());
  ASSERT_EQ(back.size(), ts.size());
  for (std::size_t t = 0; t < ts.size(); ++t) {
    ASSERT_TRUE(back[t].same_shape(ts[t]));
    for (std::size_t i = 0; i < ts[t].numel(); ++i)
      EXPECT_EQ(back[t][i], ts[t][i]);
  }
}

TEST(Serialize, DeserializeRejectsCorruptBuffers) {
  Rng rng(10);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({4, 4}, rng));
  std::string buf;
  serialize_tensors(ts, buf);
  EXPECT_THROW(deserialize_tensors(buf.data(), buf.size() - 5), CheckError);
  std::string bad = buf;
  bad[4] ^= 0x5A;  // corrupt the first tensor's magic
  EXPECT_THROW(deserialize_tensors(bad.data(), bad.size()), CheckError);
}

// -- compressed wire records (GFQ1 / GFK1) ----------------------------------
//
// The byte-level fixtures below are the executable counterpart of
// docs/wire-format.md: every offset and value asserted here appears in the
// spec's worked examples. Changing the wire format must update both.

namespace fixtures {

void append_u32(std::string& s, std::uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void append_i64(std::string& s, std::int64_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void append_f32(std::string& s, float v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace fixtures

TEST(SerializeQuantized, ByteLayoutMatchesSpecFixture) {
  // docs/wire-format.md, "GFQ1 worked example": [0, 1, 2, 3] as shape {4}.
  std::vector<Tensor> ts;
  ts.push_back(Tensor::from({0, 1, 2, 3}));

  std::string expect;
  fixtures::append_u32(expect, 1);           // list: tensor count
  fixtures::append_u32(expect, 0x31514647);  // "GFQ1"
  fixtures::append_u32(expect, 1);           // rank
  fixtures::append_i64(expect, 4);           // dims[0]
  fixtures::append_f32(expect, 0.0f);        // min
  fixtures::append_f32(expect, 3.0f / 255.0f);  // scale = (max-min)/255
  // levels: lround((v - min)/scale) = 0, 85, 170, 255
  expect.push_back(char(0x00));
  expect.push_back(char(0x55));
  expect.push_back(char(0xAA));
  expect.push_back(char(0xFF));

  std::string got;
  serialize_quantized(ts, got);
  EXPECT_EQ(got, expect);

  const auto back = deserialize_quantized(got.data(), got.size());
  ASSERT_EQ(back.size(), 1u);
  ASSERT_TRUE(back[0].same_shape(ts[0]));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(back[0][i], ts[0][i], 3.0 / 255.0 / 2.0 + 1e-6);
}

TEST(SerializeQuantized, ErrorBoundedByHalfStepAndEndpointsExact) {
  Rng rng(21);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({37, 11}, rng));
  ts.push_back(Tensor::randn({253}, rng));
  std::string buf;
  serialize_quantized(ts, buf);
  const auto back = deserialize_quantized(buf.data(), buf.size());
  ASSERT_EQ(back.size(), ts.size());
  for (std::size_t t = 0; t < ts.size(); ++t) {
    const float mn = ts[t].min(), mx = ts[t].max();
    const float half_step = (mx - mn) / 255.0f / 2.0f;
    for (std::size_t i = 0; i < ts[t].numel(); ++i)
      EXPECT_NEAR(back[t][i], ts[t][i], half_step * 1.001f + 1e-7f);
    // The range minimum maps to level 0 and decodes to exactly `min`.
    EXPECT_EQ(back[t].min(), mn);
  }
}

TEST(SerializeQuantized, ConstantTensorDecodesExactly) {
  // max == min → scale 0: every element encodes as level 0 and decodes to
  // exactly the constant (the scale > 0 branch would divide by zero).
  std::vector<Tensor> ts;
  ts.push_back(Tensor::full({5, 5}, 2.75f));
  std::string buf;
  serialize_quantized(ts, buf);
  const auto back = deserialize_quantized(buf.data(), buf.size());
  for (std::size_t i = 0; i < back[0].numel(); ++i)
    EXPECT_EQ(back[0][i], 2.75f);
}

TEST(SerializeQuantized, RejectsCorruptBuffers) {
  Rng rng(22);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({16}, rng));
  std::string buf;
  serialize_quantized(ts, buf);
  EXPECT_THROW(deserialize_quantized(buf.data(), buf.size() - 3), CheckError);
  std::string bad = buf;
  bad[4] ^= 0x5A;  // corrupt the record magic
  EXPECT_THROW(deserialize_quantized(bad.data(), bad.size()), CheckError);
  // A dense GFT1 buffer is not a quantized one.
  std::string dense;
  serialize_tensors(ts, dense);
  EXPECT_THROW(deserialize_quantized(dense.data(), dense.size()), CheckError);
}

TEST(SerializeTopK, ByteLayoutMatchesSpecFixture) {
  // docs/wire-format.md, "GFK1 worked example": [0.5, -2, 1, 0, -0.25, 3]
  // at fraction 1/3 → k = 2; survivors by |value| are 3 (index 5) and −2
  // (index 1), stored in ascending index order.
  std::vector<Tensor> ts;
  ts.push_back(Tensor::from({0.5f, -2.0f, 1.0f, 0.0f, -0.25f, 3.0f}));

  std::string expect;
  fixtures::append_u32(expect, 1);           // list: tensor count
  fixtures::append_u32(expect, 0x314B4647);  // "GFK1"
  fixtures::append_u32(expect, 1);           // rank
  fixtures::append_i64(expect, 6);           // dims[0]
  fixtures::append_u32(expect, 2);           // k
  fixtures::append_u32(expect, 1);           // indices, ascending
  fixtures::append_u32(expect, 5);
  fixtures::append_f32(expect, -2.0f);       // values, in index order
  fixtures::append_f32(expect, 3.0f);

  std::string got;
  serialize_topk(ts, 1.0 / 3.0, got);
  EXPECT_EQ(got, expect);

  const auto back = deserialize_topk(got.data(), got.size());
  ASSERT_EQ(back.size(), 1u);
  const float want[6] = {0.0f, -2.0f, 0.0f, 0.0f, 0.0f, 3.0f};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(back[0][i], want[i]);
}

TEST(SerializeTopK, MagnitudeTiesKeepLowestIndex) {
  // Strict total order: equal magnitudes break toward the lower flat index,
  // so the kept set (and the byte stream) is unique.
  std::vector<Tensor> ts;
  ts.push_back(Tensor::from({1, -1, 1, 1}));
  std::string buf;
  serialize_topk(ts, 0.5, buf);
  const auto back = deserialize_topk(buf.data(), buf.size());
  EXPECT_EQ(back[0][0], 1.0f);
  EXPECT_EQ(back[0][1], -1.0f);
  EXPECT_EQ(back[0][2], 0.0f);
  EXPECT_EQ(back[0][3], 0.0f);
}

TEST(SerializeTopK, CountClampsAndValidates) {
  EXPECT_EQ(topk_count(0, 0.5), 0);     // empty tensor: no entries
  EXPECT_EQ(topk_count(100, 0.01), 1);  // ceil
  EXPECT_EQ(topk_count(100, 0.001), 1); // never below 1 for non-empty
  EXPECT_EQ(topk_count(100, 1.0), 100);
  EXPECT_EQ(topk_count(3, 0.5), 2);     // ceil(1.5)

  std::vector<Tensor> ts;
  ts.push_back(Tensor::from({1, 2}));
  std::string buf;
  EXPECT_THROW(serialize_topk(ts, 0.0, buf), CheckError);
  EXPECT_THROW(serialize_topk(ts, 1.5, buf), CheckError);
}

TEST(SerializeTopK, RejectsCorruptBuffers) {
  Rng rng(23);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({32}, rng));
  std::string buf;
  serialize_topk(ts, 0.25, buf);
  EXPECT_THROW(deserialize_topk(buf.data(), buf.size() - 5), CheckError);
  std::string bad = buf;
  bad[4] ^= 0x5A;  // corrupt the record magic
  EXPECT_THROW(deserialize_topk(bad.data(), bad.size()), CheckError);
  // Swap the two first (ascending) indices: the stream is non-canonical.
  std::string swapped;
  serialize_topk(ts, 0.25, swapped);
  const std::size_t idx0 = 4 + 4 + 4 + 8 + 4;  // count+magic+rank+dim+k
  std::uint32_t a, b;
  std::memcpy(&a, swapped.data() + idx0, 4);
  std::memcpy(&b, swapped.data() + idx0 + 4, 4);
  std::memcpy(&swapped[idx0], &b, 4);
  std::memcpy(&swapped[idx0 + 4], &a, 4);
  EXPECT_THROW(deserialize_topk(swapped.data(), swapped.size()), CheckError);
}

TEST(Serialize, RoundtripThroughBytesCountsWire) {
  Rng rng(4);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({8, 8}, rng));
  std::size_t bytes = 0;
  auto back = roundtrip_through_bytes(ts, &bytes);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_GT(bytes, 64u * sizeof(float));  // payload plus headers
  for (std::size_t i = 0; i < ts[0].numel(); ++i)
    EXPECT_FLOAT_EQ(back[0][i], ts[0][i]);
}

}  // namespace
}  // namespace goldfish
