// Fig. 5 (a–e): backdoor attack success rate vs deletion rate for the
// original (contaminated) model, Ours, B1 and B3. Paper shape: origin stays
// high across all rates; Ours/B1/B3 collapse to near zero, with Ours lowest.
#include "bench/common.h"

namespace goldfish::bench {
namespace {

void run_dataset(data::DatasetKind kind) {
  const long rounds = metrics::full_scale() ? 6 : 3;
  metrics::TableReporter table(
      std::string("Fig.5 — backdoor ASR vs deletion rate, ") +
          data::dataset_name(kind),
      {"rate%", "origin", "Ours", "B1", "B3"});
  for (float rate : deletion_rates()) {
    Scenario s = make_scenario(kind, rate,
                               5000 + static_cast<std::uint64_t>(rate * 1e4));
    const MethodResult origin = eval_model(s.trained, s);
    const MethodResult ours = run_ours(s, rounds);
    const MethodResult b1 = run_b1(s, rounds);
    const MethodResult b3 = run_b3(s, rounds);
    table.add_row({metrics::fmt(rate * 100, 0), metrics::fmt(origin.asr),
                   metrics::fmt(ours.asr), metrics::fmt(b1.asr),
                   metrics::fmt(b3.asr)});
  }
  table.print();
  table.write_csv(csv_dir() + "/fig5_" +
                  std::string(data::dataset_name(kind)) + ".csv");
}

}  // namespace
}  // namespace goldfish::bench

int main() {
  using goldfish::data::DatasetKind;
  goldfish::bench::print_header("Fig. 5: backdoor ASR vs deletion rate");
  for (auto kind : {DatasetKind::Mnist, DatasetKind::FashionMnist,
                    DatasetKind::Cifar10, DatasetKind::Cifar100})
    goldfish::bench::run_dataset(kind);
  return 0;
}
