// End-to-end federated-round benchmark (google-benchmark): the pooled
// zero-allocation FederatedSim::run_round against a verbatim port of the
// pre-pool round (deep model copy per client, stringstream wire path,
// index-gathered 256-row evaluation batches — the allocate-everything
// baseline this PR replaced). Both run the library's default FlConfig
// (epochs=1, B=100, η=0.001, FedAvg) over the same synthetic federation.
//
// items_per_second is rounds/s, so the CI ratchet's machine-independent
// ratio gate (BM_FlRoundPooled / BM_FlRoundFresh, bench/baseline_ci.json)
// locks in the round-throughput win, and the allocs_per_round counter —
// FloatBuffer heap allocations during one steady-state round, via
// tensor/buffer_pool.h's GOLDFISH_ALLOC_STATS hook — gates the
// zero-allocation property itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <sstream>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "metrics/evaluation.h"
#include "nn/models.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace goldfish {
namespace {

// One federation shared by both benchmarks: C clients with one B=100 step of
// local data each and an evaluation-heavy server test set, the regime the
// round loop runs thousands of times in the paper's experiments.
constexpr long kClients = 16;
constexpr long kRowsPerClient = 100;
constexpr long kTestRows = 4096;
constexpr long kHidden = 8;

struct Federation {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;

  Federation() {
    auto tt = data::make_synthetic(data::default_spec(
        data::DatasetKind::Mnist, 991, kClients * kRowsPerClient, kTestRows));
    Rng rng(17);
    parts = data::partition_iid(tt.train, kClients, rng);
    test = std::move(tt.test);
    global = nn::make_mlp({1, 28, 28}, kHidden, 10, rng);
  }
};

void BM_FlRoundPooled(benchmark::State& state) {
  Federation fed;
  fl::FlConfig cfg;  // library defaults: epochs=1, B=100, η=0.001, fedavg
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  sim.run_round();  // warm the pool, arenas and recycler
  for (auto _ : state) {
    fl::RoundResult r = sim.run_round();
    benchmark::DoNotOptimize(r.global_accuracy);
  }
  state.SetItemsProcessed(state.iterations());
  // Steady-state allocation count: one more round, outside the timing loop.
  // Reported only when the counting hook is compiled in — a build without
  // GOLDFISH_ALLOC_STATS omits the counter, so the CI gate fails as
  // "missing" instead of silently passing.
  if (alloc_stats::enabled()) {
    const std::size_t before = alloc_stats::heap_allocations();
    sim.run_round();
    state.counters["allocs_per_round"] =
        double(alloc_stats::heap_allocations() - before);
  }
}
BENCHMARK(BM_FlRoundPooled)->Unit(benchmark::kMillisecond);

// Buffered-asynchronous rounds: K = 8 updates per aggregation (half the
// federation — genuinely semi-asynchronous), log-normal virtual durations,
// (1+s)^-0.5 staleness decay. items_per_second is *aggregations*/s; each
// aggregation consumes K client updates, so the CI ratchet compares it to
// the synchronous baseline's rounds/s (C updates each) with a K/C scale.
void BM_FlRoundAsync(benchmark::State& state) {
  Federation fed;
  fl::FlConfig cfg;
  cfg.async.buffer_size = kClients / 2;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  constexpr long kAggsPerIter = 4;
  sim.run_async(kAggsPerIter);  // warm the pool, arenas and recycler
  for (auto _ : state) {
    const auto r = sim.run_async(kAggsPerIter);
    benchmark::DoNotOptimize(r.back().global_accuracy);
  }
  state.SetItemsProcessed(state.iterations() * kAggsPerIter);
  // Steady-state allocation gate for the async path (per aggregation).
  if (alloc_stats::enabled()) {
    const std::size_t before = alloc_stats::heap_allocations();
    sim.run_async(kAggsPerIter);
    state.counters["allocs_per_agg"] =
        double(alloc_stats::heap_allocations() - before) / kAggsPerIter;
  }
}
BENCHMARK(BM_FlRoundAsync)->Unit(benchmark::kMillisecond);

// Engine scenario: sampled participation (75% of clients per server
// version) with an adaptive buffer K(t) ∈ [4, 12] steered by observed
// staleness — the "new scenario combination" regime the Engine API opened.
// items_per_second is consumed *updates*/s (K varies per aggregation), so
// the CI ratchet compares update throughput against the legacy synchronous
// baseline with a 1/C scale.
void BM_FlScenario(benchmark::State& state) {
  Federation fed;
  fl::FlConfig cfg;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  fl::Engine& eng = sim.engine();
  constexpr long kAggsPerIter = 4;
  const auto scenario = [&] {
    fl::Scenario s = eng.async_scenario(kAggsPerIter);
    s.participation = std::make_unique<fl::SampledParticipation>(0.75, 1234);
    s.buffer = std::make_unique<fl::AdaptiveBuffer>(
        /*initial=*/kClients / 2, /*min=*/kClients / 4,
        /*max=*/3 * kClients / 4, /*target_staleness=*/1);
    return s;
  };
  eng.run(scenario(), {});  // warm the pool, arenas and recycler
  long updates = 0;
  for (auto _ : state) {
    eng.run(scenario(), [&](const fl::StepResult& r) {
      updates += r.updates_consumed;
      benchmark::DoNotOptimize(r.global_accuracy);
    });
  }
  state.SetItemsProcessed(updates);
  // Steady-state allocation gate: composed scenarios must stay as
  // allocation-free as the canned rounds (per aggregation).
  if (alloc_stats::enabled()) {
    const std::size_t before = alloc_stats::heap_allocations();
    long aggs = 0;
    eng.run(scenario(), [&](const fl::StepResult&) { ++aggs; });
    state.counters["allocs_per_agg"] =
        double(alloc_stats::heap_allocations() - before) / double(aggs);
  }
}
BENCHMARK(BM_FlScenario)->Unit(benchmark::kMillisecond);

// -- the pre-pool round, kept verbatim as the old-vs-new baseline ---------

/// The old wire path: serialize → stringstream → deserialize, allocating
/// the whole buffer (twice) per client per round.
std::vector<Tensor> legacy_roundtrip(const std::vector<Tensor>& ts,
                                     std::size_t* bytes_on_wire) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t count = static_cast<std::uint32_t>(ts.size());
  ss.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& t : ts) write_tensor(ss, t);
  const std::string buf = ss.str();
  if (bytes_on_wire != nullptr) *bytes_on_wire = buf.size();
  std::stringstream in(buf, std::ios::in | std::ios::binary);
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  std::vector<Tensor> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(read_tensor(in));
  return out;
}

/// The old evaluation loop: an index vector plus a gathered batch copy for
/// every 256-row evaluation batch.
double legacy_accuracy(nn::Model& model, const data::Dataset& ds,
                       long batch_size = 256) {
  long correct = 0;
  const long n = ds.size();
  for (long lo = 0; lo < n; lo += batch_size) {
    const long hi = std::min(n, lo + batch_size);
    std::vector<std::size_t> idx;
    idx.reserve(static_cast<std::size_t>(hi - lo));
    for (long i = lo; i < hi; ++i) idx.push_back(static_cast<std::size_t>(i));
    auto [x, y] = ds.batch(idx);
    const Tensor logits = model.forward(x, /*train=*/false);
    const std::vector<long> pred = argmax_rows(logits);
    for (std::size_t i = 0; i < y.size(); ++i)
      if (pred[i] == y[i]) ++correct;
  }
  return 100.0 * double(correct) / double(n);
}

/// FederatedSim::run_round as it was before the model pool: a deep copy of
/// the global model per client, the stringstream wire path, per-batch
/// gathered evaluation.
fl::RoundResult legacy_run_round(nn::Model& global,
                                 const std::vector<data::Dataset>& clients,
                                 const data::Dataset& test,
                                 const fl::FlConfig& cfg, long round) {
  const std::size_t n = clients.size();
  std::vector<fl::ClientUpdate> updates(n);
  std::vector<double> local_acc(n, 0.0);
  std::atomic<std::size_t> bytes{0};
  auto agg = fl::make_aggregator(cfg.aggregator);

  // grain=1: a body is one whole client training run.
  runtime::Scheduler::global().parallel_map(n, [&](std::size_t c) {
    nn::Model local = global;  // broadcast: deep copy of global weights
    fl::TrainOptions opts = cfg.local;
    // Same collision-free seed streams as the current sim, so old and new
    // paths train identical batch orders and stay workload-comparable.
    opts.seed = mix_seed(cfg.seed, c, static_cast<std::uint64_t>(round));
    fl::train_local(local, clients[c], opts);
    std::size_t wire = 0;
    updates[c].params = legacy_roundtrip(local.snapshot(), &wire);
    updates[c].dataset_size = clients[c].size();
    bytes.fetch_add(wire, std::memory_order_relaxed);
    local_acc[c] = legacy_accuracy(local, test);
  }, /*grain=*/1);

  global.load(agg->aggregate(updates));

  fl::RoundResult r;
  r.round = round;
  r.global_accuracy = legacy_accuracy(global, test);
  r.bytes_uplinked = bytes.load();
  r.min_local_accuracy = *std::min_element(local_acc.begin(), local_acc.end());
  r.max_local_accuracy = *std::max_element(local_acc.begin(), local_acc.end());
  double mean = 0.0;
  for (double a : local_acc) mean += a;
  r.mean_local_accuracy = mean / double(n);
  return r;
}

void BM_FlRoundFresh(benchmark::State& state) {
  Federation fed;
  fl::FlConfig cfg;
  nn::Model global = fed.global;
  long round = 0;
  legacy_run_round(global, fed.parts, fed.test, cfg, round++);  // warm-up
  for (auto _ : state) {
    fl::RoundResult r =
        legacy_run_round(global, fed.parts, fed.test, cfg, round++);
    benchmark::DoNotOptimize(r.global_accuracy);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlRoundFresh)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goldfish

BENCHMARK_MAIN();
