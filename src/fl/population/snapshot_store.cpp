#include "fl/population/snapshot_store.h"

#include "tensor/check.h"
#include "tensor/serialize.h"

namespace goldfish::fl::population {

namespace {

/// FNV-1a, 64-bit: simple, fast, and implementation-pinned (the content
/// address must be identical across machines for cross-run comparisons).
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

SnapshotStore::Handle SnapshotStore::intern(
    const std::vector<Tensor>& params) {
  serialize_tensors(params, scratch_);
  ++interned_total_;
  Handle h;
  h.hash = fnv1a(scratch_);
  h.valid = true;
  std::vector<Entry>& chain = entries_[h.hash];
  for (std::size_t s = 0; s < chain.size(); ++s) {
    if (chain[s].refs > 0 && chain[s].data == scratch_) {
      // Dedup hit: the thousands of clients holding this replica share one
      // buffer; only the refcount grows.
      h.slot = static_cast<std::uint32_t>(s);
      ++chain[s].refs;
      ++refs_total_;
      return h;
    }
  }
  // New content. Reuse a dead chain slot if one exists (its handles have all
  // been released, so the slot index is free to re-issue).
  std::size_t slot = chain.size();
  for (std::size_t s = 0; s < chain.size(); ++s)
    if (chain[s].refs == 0) {
      slot = s;
      break;
    }
  if (slot == chain.size()) chain.emplace_back();
  chain[slot].data = scratch_;
  chain[slot].refs = 1;
  h.slot = static_cast<std::uint32_t>(slot);
  ++live_entries_;
  stored_bytes_ += chain[slot].data.size();
  ++refs_total_;
  return h;
}

const SnapshotStore::Entry& SnapshotStore::entry_at(const Handle& h) const {
  GOLDFISH_CHECK(h.valid, "invalid snapshot handle");
  const auto it = entries_.find(h.hash);
  GOLDFISH_CHECK(it != entries_.end() && h.slot < it->second.size() &&
                     it->second[h.slot].refs > 0,
                 "snapshot handle names a released entry");
  return it->second[h.slot];
}

void SnapshotStore::acquire(const Handle& h) {
  // entry_at validates liveness; the const_cast-free mutable lookup:
  GOLDFISH_CHECK(h.valid, "invalid snapshot handle");
  const auto it = entries_.find(h.hash);
  GOLDFISH_CHECK(it != entries_.end() && h.slot < it->second.size() &&
                     it->second[h.slot].refs > 0,
                 "snapshot handle names a released entry");
  ++it->second[h.slot].refs;
  ++refs_total_;
}

void SnapshotStore::release(const Handle& h) {
  if (!h.valid) return;
  const auto it = entries_.find(h.hash);
  GOLDFISH_CHECK(it != entries_.end() && h.slot < it->second.size() &&
                     it->second[h.slot].refs > 0,
                 "release of an already-dead snapshot handle");
  Entry& e = it->second[h.slot];
  --e.refs;
  --refs_total_;
  if (e.refs == 0) {
    stored_bytes_ -= e.data.size();
    --live_entries_;
    // Free the buffer now (swap, not clear: clear keeps capacity). The
    // chain node stays so sibling slots keep their indices; a fully-dead
    // chain is erased entirely.
    std::string().swap(e.data);
    bool any_live = false;
    for (const Entry& sib : it->second)
      if (sib.refs > 0) {
        any_live = true;
        break;
      }
    if (!any_live) entries_.erase(it);
  }
}

std::vector<Tensor> SnapshotStore::materialize(const Handle& h) const {
  const Entry& e = entry_at(h);
  return deserialize_tensors(e.data.data(), e.data.size());
}

const std::string& SnapshotStore::bytes(const Handle& h) const {
  return entry_at(h).data;
}

long SnapshotStore::refcount(const Handle& h) const {
  if (!h.valid) return 0;
  const auto it = entries_.find(h.hash);
  if (it == entries_.end() || h.slot >= it->second.size()) return 0;
  return it->second[h.slot].refs;
}

}  // namespace goldfish::fl::population
