#include "losses/hard_loss.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace goldfish::losses {

namespace {

void check_batch(const Tensor& logits, const std::vector<long>& labels) {
  GOLDFISH_CHECK(logits.rank() == 2, "loss expects (N, classes) logits");
  GOLDFISH_CHECK(static_cast<long>(labels.size()) == logits.dim(0),
                 "labels/logits batch mismatch");
  for (long y : labels)
    GOLDFISH_CHECK(y >= 0 && y < logits.dim(1), "label out of range");
}

}  // namespace

LossResult CrossEntropyLoss::eval(const Tensor& logits,
                                  const std::vector<long>& labels) const {
  check_batch(logits, labels);
  const long n = logits.dim(0), c = logits.dim(1);
  const Tensor logp = log_softmax_rows(logits);
  const Tensor p = softmax_rows(logits);
  LossResult r;
  r.grad_logits = p;  // start from softmax, subtract one-hot below
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (long i = 0; i < n; ++i) {
    const long y = labels[static_cast<std::size_t>(i)];
    total -= logp.at(i, y);
    r.grad_logits.at(i, y) -= 1.0f;
  }
  for (long i = 0; i < n; ++i)
    for (long j = 0; j < c; ++j) r.grad_logits.at(i, j) *= inv_n;
  r.value = static_cast<float>(total / n);
  return r;
}

LossResult FocalLoss::eval(const Tensor& logits,
                           const std::vector<long>& labels) const {
  check_batch(logits, labels);
  const long n = logits.dim(0), c = logits.dim(1);
  const Tensor p = softmax_rows(logits);
  LossResult r;
  r.grad_logits = Tensor({n, c});
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (long i = 0; i < n; ++i) {
    const long y = labels[static_cast<std::size_t>(i)];
    const float py = std::max(p.at(i, y), 1e-12f);
    const float one_minus = 1.0f - py;
    const float logpy = std::log(py);
    total += -std::pow(one_minus, gamma_) * logpy;
    // dL/dp_y = γ(1−p)^{γ−1}·log p − (1−p)^γ / p ; chain through softmax.
    const float dL_dpy = gamma_ * std::pow(one_minus, gamma_ - 1.0f) * logpy -
                         std::pow(one_minus, gamma_) / py;
    for (long j = 0; j < c; ++j) {
      const float dpy_dzj =
          (j == y) ? p.at(i, y) * (1.0f - p.at(i, y))
                   : -p.at(i, y) * p.at(i, j);
      r.grad_logits.at(i, j) = dL_dpy * dpy_dzj * inv_n;
    }
  }
  r.value = static_cast<float>(total / n);
  return r;
}

LossResult NllLoss::eval(const Tensor& logits,
                         const std::vector<long>& labels) const {
  check_batch(logits, labels);
  const long n = logits.dim(0), c = logits.dim(1);
  // Explicit two-stage path: model logits → log-probabilities → NLL.
  const Tensor logp = log_softmax_rows(logits);
  LossResult r;
  r.grad_logits = Tensor({n, c});
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (long i = 0; i < n; ++i) {
    const long y = labels[static_cast<std::size_t>(i)];
    total -= logp.at(i, y);
    // ∂(−logp_y)/∂z_j = softmax_j − 1[j==y]; recompute softmax from logp.
    for (long j = 0; j < c; ++j) {
      const float pj = std::exp(logp.at(i, j));
      r.grad_logits.at(i, j) = (pj - (j == y ? 1.0f : 0.0f)) * inv_n;
    }
  }
  r.value = static_cast<float>(total / n);
  return r;
}

std::unique_ptr<HardLoss> make_hard_loss(const std::string& name) {
  if (name == "cross_entropy") return std::make_unique<CrossEntropyLoss>();
  if (name == "focal") return std::make_unique<FocalLoss>();
  if (name == "nll") return std::make_unique<NllLoss>();
  GOLDFISH_CHECK(false, "unknown hard loss: " + name);
  return nullptr;  // unreachable
}

}  // namespace goldfish::losses
