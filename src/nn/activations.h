// Pointwise activation layers.
#pragma once

#include "nn/layer.h"

namespace goldfish::nn {

/// Rectified linear unit; caches the input sign mask for backward.
/// When a ReLU directly follows a Linear inside a Sequential, the container
/// peepholes the pair: the activation runs fused in the GEMM writeback and
/// this layer is skipped in both passes (so its mask stays unset).
class ReLU final : public Layer {
 public:
  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "relu"; }
  std::size_t local_slots() const override { return 3; }  // y, mask, dx

 private:
  Shape mask_shape_;  // shape the mask slot was written for (empty = none)
};

/// Reshape (N, C·H·W) → (N,C,H,W). Datasets store flat feature vectors
/// (Table II reports dimensionality 784/3072); conv models prepend this.
class Unflatten final : public Layer {
 public:
  Unflatten(long channels, long height, long width)
      : c_(channels), h_(height), w_(width) {}

  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "unflatten"; }
  std::size_t local_slots() const override { return 2; }  // y, dx

 private:
  long c_, h_, w_;
};

/// Reshape (N,C,H,W) → (N, C·H·W); pure bookkeeping, gradient reshapes back.
class Flatten final : public Layer {
 public:
  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "flatten"; }
  std::size_t local_slots() const override { return 2; }  // y, dx

 private:
  Shape cached_shape_;
};

}  // namespace goldfish::nn
