#include "metrics/membership_inference.h"

#include <algorithm>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace goldfish::metrics {

std::vector<double> true_label_confidences(nn::Model& model,
                                           const data::Dataset& ds,
                                           long batch_size) {
  GOLDFISH_CHECK(!ds.empty(), "confidences of an empty dataset");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(ds.size()));
  const long n = ds.size();
  for (long lo = 0; lo < n; lo += batch_size) {
    const long hi = std::min(n, lo + batch_size);
    std::vector<std::size_t> idx;
    for (long i = lo; i < hi; ++i) idx.push_back(std::size_t(i));
    auto [x, y] = ds.batch(idx);
    const Tensor p = softmax_rows(model.forward(x, /*train=*/false));
    for (long i = 0; i < p.dim(0); ++i)
      out.push_back(p.at(i, y[static_cast<std::size_t>(i)]));
  }
  return out;
}

MiaResult membership_inference(nn::Model& model, const data::Dataset& members,
                               const data::Dataset& nonmembers,
                               long batch_size) {
  const std::vector<double> mc =
      true_label_confidences(model, members, batch_size);
  const std::vector<double> nc =
      true_label_confidences(model, nonmembers, batch_size);

  MiaResult r;
  for (double c : mc) r.member_confidence += c;
  r.member_confidence /= double(mc.size());
  for (double c : nc) r.nonmember_confidence += c;
  r.nonmember_confidence /= double(nc.size());

  // AUC = P(member score > non-member score) + ½·P(tie), computed exactly
  // by sorting the pooled scores (Mann–Whitney U).
  std::vector<std::pair<double, int>> pooled;  // (score, is_member)
  pooled.reserve(mc.size() + nc.size());
  for (double c : mc) pooled.emplace_back(c, 1);
  for (double c : nc) pooled.emplace_back(c, 0);
  std::sort(pooled.begin(), pooled.end());
  // Rank-sum with average ranks for ties.
  double rank_sum_members = 0.0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j + 1 < pooled.size() && pooled[j + 1].first == pooled[i].first)
      ++j;
    const double avg_rank = 0.5 * (double(i) + double(j)) + 1.0;  // 1-based
    for (std::size_t k = i; k <= j; ++k)
      if (pooled[k].second == 1) rank_sum_members += avg_rank;
    i = j + 1;
  }
  const double n1 = double(mc.size()), n0 = double(nc.size());
  const double u = rank_sum_members - n1 * (n1 + 1.0) / 2.0;
  r.auc = u / (n1 * n0);

  // Best balanced accuracy over thresholds: sweep each distinct score.
  double best = 0.5;
  for (const auto& [thresh, unused] : pooled) {
    (void)unused;
    double tp = 0, tn = 0;
    for (double c : mc)
      if (c > thresh) ++tp;
    for (double c : nc)
      if (c <= thresh) ++tn;
    best = std::max(best, 0.5 * (tp / n1 + tn / n0));
  }
  r.best_accuracy = best;
  return r;
}

}  // namespace goldfish::metrics
