// Dense float tensor: the numeric substrate for the whole library.
//
// Design notes (see DESIGN.md §5):
//  * Row-major contiguous storage, value semantics, no views — every tensor
//    owns its data. At the scale of this reproduction, copies are cheap and
//    aliasing bugs are not worth the complexity of a strided-view system.
//  * Shapes are std::vector<long> ("long" is int64 on our platforms); rank is
//    small (≤ 4: N,C,H,W).
//  * All shape violations throw CheckError via GOLDFISH_CHECK.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "tensor/buffer_pool.h"
#include "tensor/check.h"
#include "tensor/rng.h"

namespace goldfish {

using Shape = std::vector<long>;

namespace detail {

/// Allocator whose `construct(p)` default-initializes instead of
/// value-initializing, so `resize` on a float vector allocates without the
/// memset. Tensor::uninit relies on this; everything else passes an explicit
/// fill value and is unaffected.
///
/// Float storage additionally routes through the recycling pool of
/// tensor/buffer_pool.h, so inside a BufferPoolScope freed tensor storage is
/// reused instead of churning the heap (the zero-allocation FL round path).
template <class T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  DefaultInitAllocator() = default;
  template <class U>
  DefaultInitAllocator(const DefaultInitAllocator<U>&) noexcept {}
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  T* allocate(std::size_t n) {
    if constexpr (std::is_same_v<T, float>)
      return pool_allocate_float(n);
    else
      return std::allocator<T>::allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if constexpr (std::is_same_v<T, float>)
      pool_deallocate_float(p, n);
    else
      std::allocator<T>::deallocate(p, n);
  }
  template <class U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Tensor storage: a float vector that skips the zero-fill when resized
/// without an explicit value (see DefaultInitAllocator).
using FloatBuffer = std::vector<float, detail::DefaultInitAllocator<float>>;

/// Owning, contiguous, row-major float tensor.
class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor with the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with given shape and explicit contents (size must match).
  Tensor(Shape shape, FloatBuffer data);

  // -- factories --------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  /// Allocated but *uninitialized* contents — for outputs about to be fully
  /// overwritten (e.g. a beta=0 GEMM destination). Reading an element before
  /// writing it is undefined behavior.
  static Tensor uninit(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// I.i.d. N(mean, stddev²) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);
  /// 1-D tensor from an initializer list (test convenience).
  static Tensor from(std::initializer_list<float> values);
  /// 2-D tensor from nested initializer lists (test convenience).
  static Tensor from2d(std::initializer_list<std::initializer_list<float>> rows);

  // -- shape -------------------------------------------------------------

  const Shape& shape() const { return shape_; }
  long dim(std::size_t axis) const {
    GOLDFISH_CHECK(axis < shape_.size(), "axis out of range");
    return shape_[axis];
  }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(Shape new_shape) const;

  /// Reshape in place to `shape`, reallocating only when the element count
  /// grows past the current capacity. Contents are preserved when the shape
  /// is unchanged and undefined otherwise (like Tensor::uninit) — the
  /// workspace-reuse primitive behind zero-allocation steady-state passes.
  void resize_uninit(const Shape& shape);

  /// True if shapes are exactly equal.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable shape like "[32, 3, 32, 32]".
  std::string shape_str() const;

  // -- element access ----------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  FloatBuffer& vec() { return data_; }
  const FloatBuffer& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D indexed access (row, col). Precondition: rank()==2.
  float& at(long r, long c) {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at(long r, long c) const {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// 4-D indexed access (n, c, h, w). Precondition: rank()==4.
  float& at4(long n, long c, long h, long w) {
    const long C = shape_[1], H = shape_[2], W = shape_[3];
    return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
  }
  float at4(long n, long c, long h, long w) const {
    const long C = shape_[1], H = shape_[2], W = shape_[3];
    return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
  }

  // -- in-place arithmetic -----------------------------------------------

  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  /// this += scalar * other  (axpy; the hot path of SGD and aggregation).
  Tensor& add_scaled(const Tensor& other, float scalar);
  void fill(float value);
  void zero() { fill(0.0f); }

  // -- reductions --------------------------------------------------------

  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Squared L2 norm of all elements.
  float squared_norm() const;

 private:
  Shape shape_;
  FloatBuffer data_;

  static std::size_t shape_numel(const Shape& shape);
};

// -- free-function arithmetic (value-returning) ---------------------------

Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);
Tensor operator*(float scalar, Tensor rhs);

}  // namespace goldfish
