# Empty dependencies file for sharded_deletion.
# This may be replaced when dependencies are built.
