#include "tensor/buffer_pool.h"

#include <atomic>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

namespace goldfish {

namespace {

struct Pool {
  std::mutex mu;
  // Size-keyed free lists. Keys are the exact element counts the vector
  // allocator requested, so allocate/deallocate pairs always agree.
  std::unordered_map<std::size_t, std::vector<float*>> free;
  int scopes = 0;  // source of truth, guarded by mu
};

// Leaked on purpose: FloatBuffers with static storage duration may be freed
// after any static Pool would have been destroyed.
Pool& pool() {
  static Pool* p = new Pool;
  return *p;
}

// Fast-path hint mirroring Pool::scopes: lets alloc/free skip the mutex
// entirely when no scope is active (the common case outside FederatedSim).
// A stale read is harmless — a just-opened scope merely misses one recycle;
// a just-closed scope is re-checked under the lock.
std::atomic<int> g_scope_hint{0};

#ifdef GOLDFISH_ALLOC_STATS
std::atomic<std::size_t> g_heap_allocs{0};
#endif

float* heap_allocate(std::size_t n) {
#ifdef GOLDFISH_ALLOC_STATS
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
#endif
  return static_cast<float*>(::operator new(n * sizeof(float)));
}

}  // namespace

namespace detail {

float* pool_allocate_float(std::size_t n) {
  if (g_scope_hint.load(std::memory_order_relaxed) > 0) {
    Pool& p = pool();
    std::lock_guard<std::mutex> lock(p.mu);
    if (p.scopes > 0) {
      auto it = p.free.find(n);
      if (it != p.free.end() && !it->second.empty()) {
        float* ptr = it->second.back();
        it->second.pop_back();
        return ptr;
      }
    }
  }
  return heap_allocate(n);
}

void pool_deallocate_float(float* ptr, std::size_t n) noexcept {
  if (g_scope_hint.load(std::memory_order_relaxed) > 0) {
    Pool& p = pool();
    std::lock_guard<std::mutex> lock(p.mu);
    if (p.scopes > 0) {
      p.free[n].push_back(ptr);
      return;
    }
  }
  ::operator delete(ptr);
}

}  // namespace detail

BufferPoolScope::BufferPoolScope() {
  Pool& p = pool();
  std::lock_guard<std::mutex> lock(p.mu);
  ++p.scopes;
  g_scope_hint.store(p.scopes, std::memory_order_relaxed);
}

BufferPoolScope::~BufferPoolScope() {
  Pool& p = pool();
  std::unordered_map<std::size_t, std::vector<float*>> drained;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    if (--p.scopes == 0) drained.swap(p.free);
    g_scope_hint.store(p.scopes, std::memory_order_relaxed);
  }
  for (auto& [n, ptrs] : drained)
    for (float* ptr : ptrs) ::operator delete(ptr);
}

namespace alloc_stats {

bool enabled() {
#ifdef GOLDFISH_ALLOC_STATS
  return true;
#else
  return false;
#endif
}

std::size_t heap_allocations() {
#ifdef GOLDFISH_ALLOC_STATS
  return g_heap_allocs.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

}  // namespace alloc_stats

}  // namespace goldfish
