# Empty dependencies file for bench_fig8_hetero_aggregation.
# This may be replaced when dependencies are built.
