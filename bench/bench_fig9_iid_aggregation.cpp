// Fig. 9: FedAvg vs adaptive aggregation under IID client data for 5/15/25
// clients. Paper shape: the two methods are virtually identical when data
// is uniformly distributed.
#include "bench/common.h"

namespace goldfish::bench {
namespace {

void run_clients(long clients) {
  const auto prof = profile(data::DatasetKind::Mnist);
  const long per_client_budget = metrics::full_scale() ? 160 : 60;
  auto tt = data::make_synthetic(data::default_spec(
      data::DatasetKind::Mnist, 900 + static_cast<std::uint64_t>(clients),
      clients * per_client_budget, prof.test_size));
  Rng rng(901);
  auto parts = data::partition_iid(tt.train, clients, rng);
  const long rounds = metrics::full_scale() ? 10 : 6;

  metrics::TableReporter table(
      "Fig.9 — IID data, " + std::to_string(clients) + " clients",
      {"round", "FedAvg", "Ours"});
  Rng mrng(902);
  nn::Model init = nn::make_model(prof.arch, tt.train.geom,
                                  tt.train.num_classes, mrng);
  std::vector<std::vector<fl::RoundResult>> runs;
  // "FedAvg" here is uniform parameter averaging — the variant the paper's
  // comparison exhibits (see EXPERIMENTS.md); the size-weighted FedAvg lives
  // in FedAvgAggregator.
  for (const char* agg : {"uniform", "adaptive"}) {
    fl::FlConfig cfg;
    cfg.aggregator = agg;
    cfg.local.epochs = prof.local_epochs;
    cfg.local.batch_size = prof.batch;
    cfg.local.lr = prof.lr;
    fl::FederatedSim sim(init, parts, tt.test, cfg);
    runs.push_back(sim.run(rounds));
  }
  for (long r = 0; r < rounds; ++r) {
    table.add_row({std::to_string(r + 1),
                   metrics::fmt(runs[0][std::size_t(r)].global_accuracy),
                   metrics::fmt(runs[1][std::size_t(r)].global_accuracy)});
  }
  table.print();
  table.write_csv(csv_dir() + "/fig9_clients" + std::to_string(clients) +
                  ".csv");
}

}  // namespace
}  // namespace goldfish::bench

int main() {
  goldfish::bench::print_header(
      "Fig. 9: FedAvg vs adaptive aggregation, IID data");
  for (long clients : {5L, 15L, 25L}) goldfish::bench::run_clients(clients);
  return 0;
}
