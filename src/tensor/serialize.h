// Binary (de)serialization of tensors and parameter lists.
//
// Format: little-endian, magic "GFT1", rank, dims, raw float payload. Used
// for model checkpoints (shard snapshots in the optimization module) and for
// shipping client updates through the in-process FL "network".
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace goldfish {

/// Write one tensor to a binary stream. Throws on stream failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Read one tensor from a binary stream. Throws on malformed input.
Tensor read_tensor(std::istream& is);

/// Write a parameter list (e.g. Model::parameters snapshot) to a file.
void save_tensors(const std::string& path, const std::vector<Tensor>& ts);

/// Read a parameter list back. Throws if the file is missing or malformed.
std::vector<Tensor> load_tensors(const std::string& path);

/// Serialize a parameter list into `out` (cleared first, capacity reused) in
/// exactly the bytes save_tensors would write. The FL upload path keeps one
/// such buffer per worker thread so steady-state rounds stop allocating.
void serialize_tensors(const std::vector<Tensor>& ts, std::string& out);

/// Parse a buffer produced by serialize_tensors / save_tensors. Throws on
/// malformed or truncated input.
std::vector<Tensor> deserialize_tensors(const char* data, std::size_t size);

/// Round-trip through an in-memory buffer; used by the FL transport to model
/// the serialize-upload-deserialize path clients take in a real deployment.
/// The wire buffer is thread_local and reused across calls.
std::vector<Tensor> roundtrip_through_bytes(const std::vector<Tensor>& ts,
                                            std::size_t* bytes_on_wire);

}  // namespace goldfish
