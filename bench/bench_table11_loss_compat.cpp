// Table XI: compatibility of the framework with different hard losses —
// cross-entropy (Total loss α), Focal (β), NLL (γ) — on the Table X setup.
// Paper shape: all three keep high accuracy and low backdoor ASR.
#include "bench/ablation_common.h"

int main() {
  using namespace goldfish;
  using namespace goldfish::bench;
  print_header("Table XI: hard-loss compatibility (CIFAR-10, ResNet)");

  const bool full = metrics::full_scale();
  Scenario s = make_scenario(data::DatasetKind::Cifar10, 0.10f, 11100);
  {
    s.prof.arch = full ? "resnet32" : "resnet8";
    s.prof.train_size = full ? 900 : 300;
    s.prof.batch = 32;
    auto spec = data::default_spec(
        data::DatasetKind::Cifar10, 11100, s.prof.train_size,
        s.prof.test_size);
    spec.noise_scale = full ? 1.0f : 0.35f;
    s.tt = data::make_synthetic(spec);
    Rng rng(11101);
    s.parts = data::partition_iid(s.tt.train, s.prof.clients, rng);
    auto poisoned = data::poison_dataset(s.parts[0], s.spec, 0.10f, rng);
    s.parts[0] = poisoned.poisoned;
    s.poisoned_rows = poisoned.poisoned_indices;
    s.probe = data::make_trigger_probe(s.tt.test, s.spec);
    Rng mrng(11102);
    s.fresh = nn::make_model(s.prof.arch, s.tt.train.geom,
                             s.tt.train.num_classes, mrng);
    s.trained = s.fresh;
    fl::FlConfig cfg;
    cfg.local.epochs = s.prof.local_epochs;
    cfg.local.batch_size = s.prof.batch;
    cfg.local.lr = s.prof.lr;
    fl::FederatedSim sim(s.trained, s.parts, s.tt.test, cfg);
    sim.run(full ? 6 : 3);
    s.trained = sim.global_model();
  }

  const std::vector<std::pair<const char*, const char*>> variants = {
      {"Total loss a (CE)", "cross_entropy"},
      {"Total loss b (Focal)", "focal"},
      {"Total loss g (NLL)", "nll"},
  };

  const auto checkpoints = study_checkpoints();
  std::vector<std::vector<CheckpointRow>> results;
  for (const auto& [label, loss_name] : variants) {
    losses::GoldfishLossConfig loss_cfg;
    loss_cfg.hard_loss_name = loss_name;
    loss_cfg.mu_c = 0.25f;
    loss_cfg.mu_d = 1.0f;
    loss_cfg.temperature = 3.0f;
    results.push_back(run_loss_study(s, loss_cfg, checkpoints));
  }

  metrics::TableReporter table(
      "Table XI — hard-loss compatibility (acc / backdoor per epoch)",
      {"epoch", "metric", "Total loss a", "Total loss b", "Total loss g"});
  for (std::size_t cp = 0; cp < checkpoints.size(); ++cp) {
    table.add_row({std::to_string(checkpoints[cp]), "acc",
                   metrics::fmt(results[0][cp].accuracy),
                   metrics::fmt(results[1][cp].accuracy),
                   metrics::fmt(results[2][cp].accuracy)});
    table.add_row({std::to_string(checkpoints[cp]), "backdoor",
                   metrics::fmt(results[0][cp].asr),
                   metrics::fmt(results[1][cp].asr),
                   metrics::fmt(results[2][cp].asr)});
  }
  table.print();
  table.write_csv(csv_dir() + "/tableXI_loss_compat.csv");
  return 0;
}
