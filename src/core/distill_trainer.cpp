#include "core/distill_trainer.h"

#include "core/early_termination.h"
#include "fl/trainer.h"
#include "nn/sgd.h"
#include "tensor/check.h"

namespace goldfish::core {

float reference_loss_of(nn::Model& prev_global, const data::Dataset& d_r,
                        const DistillOptions& opts) {
  const auto hard = losses::make_hard_loss(opts.loss.hard_loss_name);
  return fl::dataset_loss(prev_global, d_r, *hard);
}

DistillResult goldfish_distill(nn::Model& student, nn::Model& teacher,
                               const data::Dataset& d_r,
                               const data::Dataset& d_f, float reference_loss,
                               const DistillOptions& opts) {
  GOLDFISH_CHECK(!d_r.empty(), "remaining dataset is empty");

  // Extension module: per-client temperature from the deletion fraction.
  losses::GoldfishLossConfig loss_cfg = opts.loss;
  if (opts.use_adaptive_temperature)
    loss_cfg.temperature = opts.temperature(d_r.size(), d_f.size());
  const losses::GoldfishLoss loss(loss_cfg);

  nn::Sgd::Options sgd_opts;
  sgd_opts.lr = opts.lr;
  sgd_opts.momentum = opts.momentum;
  nn::Sgd sgd(sgd_opts);
  Rng rng(opts.seed);

  ExcessRiskTracker tracker(reference_loss, opts.delta);
  DistillResult result;
  result.temperature_used = loss_cfg.temperature;

  const bool have_forget = !d_f.empty();
  for (long epoch = 0; epoch < opts.max_epochs; ++epoch) {
    data::BatchIterator it_r(d_r, opts.batch_size, rng);
    // The removed set is small (|D_r| ≫ |D_f|); cycle its batches so every
    // remaining-data batch is paired with forget pressure.
    data::BatchIterator it_f(have_forget ? d_f : d_r, opts.batch_size, rng);
    const std::size_t f_batches = have_forget ? it_f.num_batches() : 0;

    double epoch_loss = 0.0;
    double epoch_hard = 0.0;  // comparable to the reference (both are the
                              // plain hard loss on D_r, per Eq. 7)
    for (std::size_t b = 0; b < it_r.num_batches(); ++b) {
      double step_loss = 0.0;
      // Remaining-data pass: hard loss + distillation from the teacher.
      {
        auto [x, y] = d_r.batch(it_r.batch_indices(b));
        const Tensor& teacher_logits = teacher.forward(x, /*train=*/false);
        const Tensor& student_logits = student.forward(x, /*train=*/true);
        const losses::GoldfishBatchLoss lr =
            loss.eval_remaining(student_logits, y, teacher_logits);
        student.backward(lr.grad_r);
        step_loss += lr.total;
        epoch_hard += lr.hard_r;
      }
      // Removed-data pass: −L_f (saturated) + confusion loss.
      if (have_forget) {
        auto [xf, yf] = d_f.batch(it_f.batch_indices(b % f_batches));
        const Tensor& student_logits_f = student.forward(xf, /*train=*/true);
        const losses::GoldfishBatchLoss lf =
            loss.eval_forget(student_logits_f, yf);
        student.backward(lf.grad_f);
        step_loss += lf.total;
      }
      sgd.step(student);
      epoch_loss += step_loss;
    }
    const float mean_loss =
        static_cast<float>(epoch_loss / double(it_r.num_batches()));
    result.epoch_losses.push_back(mean_loss);
    ++result.epochs_run;

    tracker.record_epoch(
        static_cast<float>(epoch_hard / double(it_r.num_batches())));
    if (opts.use_early_termination && tracker.should_stop()) {
      result.terminated_early = true;
      break;
    }
  }
  result.final_excess_risk = tracker.excess_risk();
  return result;
}

}  // namespace goldfish::core
