// Statistical comparison metrics for Tables VII–IX: Jensen–Shannon
// divergence, L2 distance between distributions, and Welch's t-test.
#pragma once

#include <vector>

namespace goldfish::metrics {

/// Jensen–Shannon divergence between two probability distributions (natural
/// log; ∈ [0, ln 2] ≈ [0, 0.693]). Inputs are normalized defensively.
double jensen_shannon_divergence(const std::vector<double>& p,
                                 const std::vector<double>& q);

/// L2 (Euclidean) distance between two equal-length vectors.
double l2_distance(const std::vector<double>& p, const std::vector<double>& q);

/// Welch's unequal-variance t-test. Returns the two-sided p-value for the
/// null hypothesis that the two samples share a mean.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
};

TTestResult welch_ttest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Regularized incomplete beta function (exposed for testing; implements the
/// Student-t CDF used by welch_ttest).
double incomplete_beta(double a, double b, double x);

}  // namespace goldfish::metrics
