// Data substrate: synthetic generation, subsetting, batching, partitioning,
// sharding, backdoor machinery.
#include <gtest/gtest.h>

#include <set>

#include "data/backdoor.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace goldfish {
namespace {

using data::Dataset;
using data::DatasetKind;

TEST(Synthetic, MatchesTableIISchema) {
  for (auto kind : {DatasetKind::Mnist, DatasetKind::FashionMnist,
                    DatasetKind::Cifar10, DatasetKind::Cifar100}) {
    const auto geom = data::dataset_geom(kind);
    const long classes = data::dataset_classes(kind);
    if (kind == DatasetKind::Mnist || kind == DatasetKind::FashionMnist) {
      EXPECT_EQ(geom.flat(), 784);
      EXPECT_EQ(classes, 10);
    } else {
      EXPECT_EQ(geom.flat(), 3072);
      EXPECT_EQ(classes, kind == DatasetKind::Cifar100 ? 100 : 10);
    }
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  auto spec = data::default_spec(DatasetKind::Mnist, 99, 50, 20);
  auto a = data::make_synthetic(spec);
  auto b = data::make_synthetic(spec);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train.labels, b.train.labels);
  for (std::size_t i = 0; i < a.train.features.numel(); ++i)
    EXPECT_FLOAT_EQ(a.train.features[i], b.train.features[i]);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto a = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 1, 50, 10));
  auto b = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 2, 50, 10));
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < a.train.features.numel(); ++i)
    max_diff = std::max(max_diff, std::abs(a.train.features[i] -
                                           b.train.features[i]));
  EXPECT_GT(max_diff, 0.1f);
}

TEST(Synthetic, AllClassesPresent) {
  auto tt = data::make_synthetic(
      data::default_spec(DatasetKind::Cifar10, 3, 500, 100));
  const auto hist = tt.train.class_histogram();
  for (long c : hist) EXPECT_GT(c, 0);
}

TEST(Dataset, SubsetPreservesRows) {
  auto tt = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 4, 20, 5));
  Dataset sub = tt.train.subset({3, 7, 11});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.labels[0], tt.train.labels[3]);
  const long d = tt.train.features.dim(1);
  for (long j = 0; j < d; ++j)
    EXPECT_FLOAT_EQ(sub.features.at(1, j), tt.train.features.at(7, j));
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  auto tt = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 5, 10, 5));
  EXPECT_THROW(tt.train.subset({10}), CheckError);
}

TEST(Dataset, ConcatStacksRows) {
  auto tt = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 6, 10, 5));
  Dataset a = tt.train.subset({0, 1});
  Dataset b = tt.train.subset({2, 3, 4});
  Dataset c = Dataset::concat(a, b);
  EXPECT_EQ(c.size(), 5);
  EXPECT_EQ(c.labels[2], tt.train.labels[2]);
  // Concat with an empty is identity.
  Dataset empty;
  EXPECT_EQ(Dataset::concat(empty, a).size(), 2);
  EXPECT_EQ(Dataset::concat(a, empty).size(), 2);
}

TEST(Dataset, BatchExtraction) {
  auto tt = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 7, 10, 5));
  auto [x, y] = tt.train.batch({1, 4});
  EXPECT_EQ(x.dim(0), 2);
  EXPECT_EQ(x.dim(1), 784);
  EXPECT_EQ(y[1], tt.train.labels[4]);
}

TEST(Dataset, BatchViewMatchesIndexedBatch) {
  auto tt = data::make_synthetic(
      data::default_spec(DatasetKind::Mnist, 7, 20, 5));
  std::vector<std::size_t> idx;
  for (std::size_t i = 3; i < 11; ++i) idx.push_back(i);
  auto [xg, yg] = tt.train.batch(idx);
  auto [xv, yv] = tt.train.batch_view(3, 11);
  ASSERT_TRUE(xg.same_shape(xv));
  for (std::size_t i = 0; i < xg.numel(); ++i) EXPECT_EQ(xg[i], xv[i]);
  for (std::size_t i = 0; i < yg.size(); ++i)
    EXPECT_EQ(yg[i], yv[static_cast<long>(i)]);
  EXPECT_THROW(tt.train.batch_view(5, 5), CheckError);
  EXPECT_THROW(tt.train.batch_view(0, 21), CheckError);
}

TEST(Dataset, BatchIntoReusesStorage) {
  auto tt = data::make_synthetic(
      data::default_spec(DatasetKind::Mnist, 7, 12, 5));
  Tensor x;
  std::vector<long> y;
  const std::size_t idx1[] = {0, 5, 7};
  tt.train.batch_into(idx1, 3, x, y);
  EXPECT_EQ(x.dim(0), 3);
  const float* storage = x.data();
  const std::size_t idx2[] = {1, 2};
  tt.train.batch_into(idx2, 2, x, y);  // shrinks in place, same buffer
  EXPECT_EQ(x.dim(0), 2);
  EXPECT_EQ(x.data(), storage);
  EXPECT_EQ(y[1], tt.train.labels[2]);
}

TEST(BatchIterator, BatchSpanMatchesBatchIndices) {
  auto tt = data::make_synthetic(
      data::default_spec(DatasetKind::Mnist, 8, 17, 5));
  Rng rng(3);
  data::BatchIterator it(tt.train, 4, rng);
  for (std::size_t b = 0; b < it.num_batches(); ++b) {
    const auto [ptr, count] = it.batch_span(b);
    const auto idx = it.batch_indices(b);
    ASSERT_EQ(count, idx.size());
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(ptr[i], idx[i]);
  }
}

TEST(BatchIterator, CoversEveryRowOnce) {
  auto tt = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 8, 23, 5));
  Rng rng(1);
  data::BatchIterator it(tt.train, 5, rng);
  EXPECT_EQ(it.num_batches(), 5u);  // 23 = 4·5 + 3
  std::set<std::size_t> seen;
  for (std::size_t b = 0; b < it.num_batches(); ++b)
    for (std::size_t i : it.batch_indices(b)) seen.insert(i);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(PartitionIid, EqualSizesAndDisjoint) {
  auto tt = data::make_synthetic(data::default_spec(DatasetKind::Mnist, 9, 100, 5));
  Rng rng(2);
  auto parts = data::partition_iid(tt.train, 5, rng);
  ASSERT_EQ(parts.size(), 5u);
  long total = 0;
  for (const auto& p : parts) {
    EXPECT_EQ(p.size(), 20);
    total += p.size();
  }
  EXPECT_EQ(total, 100);
}

TEST(PartitionHetero, SkewedSizes) {
  auto tt =
      data::make_synthetic(data::default_spec(DatasetKind::Mnist, 10, 400, 5));
  Rng rng(3);
  data::HeteroOptions opt;
  auto parts = data::partition_heterogeneous(tt.train, 5, opt, rng);
  const auto st = data::partition_stats(parts);
  EXPECT_GT(st.max_size, st.min_size);
  EXPECT_GT(st.size_variance, 0.0);
  long total = 0;
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), opt.min_per_client);
    total += p.size();
  }
  EXPECT_EQ(total, 400);
}

TEST(PartitionHetero, LabelSkewConcentratesClasses) {
  auto tt =
      data::make_synthetic(data::default_spec(DatasetKind::Mnist, 11, 600, 5));
  Rng rng(4);
  data::HeteroOptions opt;
  opt.label_skew = true;
  auto parts = data::partition_heterogeneous(tt.train, 3, opt, rng);
  // At least one client should have a strongly non-uniform label histogram.
  bool skew_found = false;
  for (const auto& p : parts) {
    const auto hist = p.class_histogram();
    long mx = 0;
    for (long h : hist) mx = std::max(mx, h);
    if (double(mx) > 2.5 * double(p.size()) / double(p.num_classes))
      skew_found = true;
  }
  EXPECT_TRUE(skew_found);
}

TEST(ShardIndices, PartitionProperty) {
  Rng rng(5);
  auto shards = data::shard_indices(100, 6, rng);
  ASSERT_EQ(shards.size(), 6u);
  std::set<std::size_t> seen;
  for (const auto& s : shards) {
    EXPECT_GE(s.size(), 16u);  // 100/6 rounded down
    for (std::size_t i : s) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate row " << i;
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ShardIndices, MoreShardsThanRowsThrows) {
  Rng rng(6);
  EXPECT_THROW(data::shard_indices(3, 5, rng), CheckError);
}

TEST(Backdoor, PoisonStampsAndRelabels) {
  auto tt =
      data::make_synthetic(data::default_spec(DatasetKind::Mnist, 12, 100, 5));
  Rng rng(7);
  data::BackdoorSpec spec;
  spec.target_label = 0;
  auto res = data::poison_dataset(tt.train, spec, 0.1f, rng);
  EXPECT_NEAR(double(res.poisoned_indices.size()), 10.0, 1.0);
  for (std::size_t i : res.poisoned_indices) {
    EXPECT_EQ(res.poisoned.labels[i], 0);
    // trigger pixel check (corner of channel 0)
    EXPECT_FLOAT_EQ(
        res.poisoned.features.at(static_cast<long>(i), 0),
        spec.trigger_value);
  }
  // Non-poisoned rows untouched.
  std::set<std::size_t> poisoned(res.poisoned_indices.begin(),
                                 res.poisoned_indices.end());
  for (long i = 0; i < tt.train.size(); ++i) {
    if (poisoned.count(static_cast<std::size_t>(i))) continue;
    EXPECT_EQ(res.poisoned.labels[static_cast<std::size_t>(i)],
              tt.train.labels[static_cast<std::size_t>(i)]);
  }
}

TEST(Backdoor, PoisonSkipsTargetClassRows) {
  auto tt =
      data::make_synthetic(data::default_spec(DatasetKind::Mnist, 13, 100, 5));
  Rng rng(8);
  data::BackdoorSpec spec;
  spec.target_label = 3;
  auto res = data::poison_dataset(tt.train, spec, 0.2f, rng);
  for (std::size_t i : res.poisoned_indices)
    EXPECT_NE(tt.train.labels[i], 3);  // originals were not target-labeled
}

TEST(Backdoor, ProbeExcludesTargetClass) {
  auto tt =
      data::make_synthetic(data::default_spec(DatasetKind::Mnist, 14, 50, 50));
  data::BackdoorSpec spec;
  spec.target_label = 2;
  Dataset probe = data::make_trigger_probe(tt.test, spec);
  long target_originals = 0;
  for (long y : tt.test.labels)
    if (y == 2) ++target_originals;
  EXPECT_EQ(probe.size(), tt.test.size() - target_originals);
  for (long y : probe.labels) EXPECT_EQ(y, 2);
  // Every probe row carries the trigger.
  for (long i = 0; i < probe.size(); ++i)
    EXPECT_FLOAT_EQ(probe.features.at(i, 0), spec.trigger_value);
}

TEST(Backdoor, FractionOneCapsAtEligibleRows) {
  auto tt =
      data::make_synthetic(data::default_spec(DatasetKind::Mnist, 15, 60, 5));
  Rng rng(9);
  data::BackdoorSpec spec;
  auto res = data::poison_dataset(tt.train, spec, 1.0f, rng);
  long eligible = 0;
  for (long y : tt.train.labels)
    if (y != spec.target_label) ++eligible;
  EXPECT_EQ(static_cast<long>(res.poisoned_indices.size()), eligible);
}

}  // namespace
}  // namespace goldfish
