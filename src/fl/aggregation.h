// Server-side model aggregation: FedAvg (McMahan et al.), the paper's
// adaptive-weight extension (Eq. 12–13), FedBuff-style staleness
// discounting for the buffered-asynchronous round loop, and the
// Byzantine-robust family (Krum / multi-Krum, coordinate-wise trimmed mean
// and median, norm clipping) that survives poisoned uploads — see
// docs/threat-model.md for which strategy defeats which attack.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "nn/model.h"

namespace goldfish::fl {

/// One client's upload: a parameter snapshot plus its dataset size.
struct ClientUpdate {
  std::vector<Tensor> params;
  long dataset_size = 0;
  /// MSE of the client model on the server's test set; filled by the server
  /// before adaptive aggregation (Eq. 12 is computed "at the central
  /// server").
  double mse = 0.0;
  /// Server-version lag at aggregation time (asynchronous rounds): the
  /// number of aggregations that fired between the model this update was
  /// trained from and the one consuming it. Always 0 in synchronous rounds.
  long staleness = 0;
};

/// Knobs for the Byzantine-robust strategies; inert for the weight-based
/// ones. Lives here (not engine.h) so aggregators can be built standalone.
struct RobustConfig {
  /// Assumed number of Byzantine updates f (krum / multi-krum). Scoring
  /// sums each update's n−f−2 smallest squared distances to the others, so
  /// an aggregation needs n ≥ f+3 buffered updates.
  long krum_f = 1;
  /// Multi-krum selection size m: the m best-scored updates are averaged
  /// ("krum" pins m = 1; "multi-krum" reads this).
  long krum_m = 2;
  /// Per-side trim fraction β ∈ [0, 0.5): coordinate-wise, the ⌊β·n⌋
  /// largest and smallest values are dropped before averaging.
  double trim_fraction = 0.2;
  /// L2 clip threshold (> 0): each update is scaled by min(1, C/‖ω‖)
  /// before the mean, bounding any single client's pull on the aggregate.
  double clip_norm = 10.0;
  /// Edge-aggregator cohort-chunk width for the hierarchical wrapper
  /// ("hier+<base>" names, fl/population/hierarchical.h).
  long hier_edge = 8;
};

/// Aggregation strategy interface. Weight-based strategies supply per-update
/// *weights* and share one copy-free averaging path (update snapshots are
/// borrowed by nn::weighted_average, never cloned — zero steady-state
/// allocations). Robust strategies that are not expressible as per-update
/// scalar weights (trimmed mean, median, norm clipping) override the
/// aggregate() seam itself.
class Aggregator {
 public:
  /// What the strategy needs from (or guarantees to) the server — one
  /// struct instead of one virtual per flag.
  struct Capabilities {
    /// Reads ClientUpdate::mse: the server must score every update on its
    /// test set before aggregating.
    bool needs_mse = false;
    /// Reads ClientUpdate::staleness (the StalenessAggregator wrapper).
    bool needs_staleness = false;
    /// Byzantine-robust: bounds the influence of a minority of arbitrarily
    /// poisoned updates (see docs/threat-model.md for the exact guarantee).
    bool robust = false;
  };

  virtual ~Aggregator() = default;

  virtual Capabilities capabilities() const { return {}; }

  /// Per-update base weights (need not be normalized) — the weight-based
  /// fast path. Throws on inputs the strategy cannot weight (e.g. FedAvg
  /// with an empty client dataset); robust strategies without a scalar-
  /// weight form throw std::logic_error.
  virtual std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const;

  /// Aggregate the updates' parameters.
  std::vector<Tensor> aggregate(const std::vector<ClientUpdate>& updates) const {
    return aggregate(updates, nullptr);
  }

  /// The override seam. `multipliers` are per-update scalar factors folded
  /// in by wrapper strategies (staleness decay); null means all-ones. The
  /// default implementation is the shared borrowed-view weighted average
  /// under weights() — copy-free, zero steady-state allocations.
  virtual std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates,
      const std::vector<float>* multipliers) const;

  virtual std::string name() const = 0;
};

/// FedAvg: weights proportional to |D_c|.
class FedAvgAggregator final : public Aggregator {
 public:
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "fedavg"; }
};

/// Uniform (equal-weight) parameter averaging: ω = (1/C)·Σ ω_c. This is the
/// naive FedAvg variant many FL implementations ship (and the behaviour the
/// paper's Fig. 8/9 comparison exhibits — see EXPERIMENTS.md); kept distinct
/// from the size-weighted FedAvgAggregator above.
class UniformAggregator final : public Aggregator {
 public:
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "uniform"; }
};

/// Goldfish adaptive weights (Eq. 12–13):
///   W_c = exp(−(me_c − mē)/mē),  ω = (1/θ)·Σ W_c·ω_c, θ = Σ W_c.
/// Lower test MSE ⇒ exponentially larger weight.
class AdaptiveAggregator final : public Aggregator {
 public:
  Capabilities capabilities() const override { return {.needs_mse = true}; }
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "adaptive"; }

  /// The raw Eq. 12 weights (exposed for tests/benches). All-zero MSEs
  /// (every client fits the test set perfectly — common on tiny synthetic
  /// sets) fall back to uniform weights instead of aborting.
  static std::vector<float> weights_from_mse(const std::vector<double>& mses);
};

// -- Byzantine-robust strategies -------------------------------------------

/// Krum / multi-Krum (Blanchard et al., NeurIPS 2017). Each update is
/// scored by the sum of its n−f−2 smallest squared L2 distances to the
/// other updates; the m lowest-scoring updates are selected (ties broken by
/// arrival index) and averaged — a geometric-majority vote that discards
/// outliers no matter how extreme their values. Needs n ≥ f+3 updates per
/// aggregation. Selection reduces to 0/1 weights, so the averaging itself
/// rides the shared borrowed-view fast path.
class KrumAggregator final : public Aggregator {
 public:
  using Aggregator::aggregate;
  /// `f` ≥ 0 assumed Byzantine updates; `m` ≥ 1 selected updates (m = 1 is
  /// classic Krum; m > 1 is multi-Krum, clamped to n at aggregate time).
  KrumAggregator(long f, long m = 1);

  Capabilities capabilities() const override { return {.robust = true}; }
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates,
      const std::vector<float>* multipliers) const override;
  std::string name() const override { return m_ == 1 ? "krum" : "multi-krum"; }

  /// The Krum score of every update (exposed for tests): score_i = Σ of the
  /// n−f−2 smallest squared distances from update i to the others.
  static std::vector<double> scores(const std::vector<ClientUpdate>& updates,
                                    long f);

  long f() const { return f_; }
  long m() const { return m_; }

 private:
  long f_;
  long m_;
};

/// Coordinate-wise trimmed mean (Yin et al., ICML 2018): per scalar
/// coordinate, drop the ⌊β·n⌋ largest and ⌊β·n⌋ smallest values and average
/// the rest. A poisoned update can perturb a coordinate only while staying
/// inside the honest values' range. Multipliers (staleness decay) weight
/// the surviving values per coordinate, normalized among survivors.
class TrimmedMeanAggregator final : public Aggregator {
 public:
  using Aggregator::aggregate;
  /// `fraction` = β ∈ [0, 0.5) per side; needs n > 2·⌊β·n⌋ updates.
  explicit TrimmedMeanAggregator(double fraction);

  Capabilities capabilities() const override { return {.robust = true}; }
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates,
      const std::vector<float>* multipliers) const override;
  std::string name() const override { return "trimmed-mean"; }

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

/// Coordinate-wise median (Yin et al., ICML 2018): the maximally trimmed
/// mean. Even counts average the two central values. An order statistic is
/// scale-free, so per-update scalar multipliers (staleness decay) do not
/// apply and are ignored.
class MedianAggregator final : public Aggregator {
 public:
  using Aggregator::aggregate;
  Capabilities capabilities() const override { return {.robust = true}; }
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates,
      const std::vector<float>* multipliers) const override;
  std::string name() const override { return "median"; }
};

/// Norm clipping (the standard backdoor mitigation, cf. Sun et al. 2019):
/// each update is scaled by min(1, C/‖ω_i‖) — full-snapshot L2 norm — and
/// the clipped updates are averaged under the multiplier weights. Clipping
/// is absolute, not relative: the clip factors deliberately do NOT enter
/// the normalization, so an oversized update contributes *less* total mass,
/// bounding any single client's pull at C/n.
class NormClipAggregator final : public Aggregator {
 public:
  using Aggregator::aggregate;
  /// `clip` > 0: the L2 threshold C.
  explicit NormClipAggregator(double clip);

  Capabilities capabilities() const override { return {.robust = true}; }
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates,
      const std::vector<float>* multipliers) const override;
  std::string name() const override { return "norm-clip"; }

  /// ‖params‖₂ across the whole snapshot (exposed for tests).
  static double snapshot_norm(const std::vector<Tensor>& params);

  double clip() const { return clip_; }

 private:
  double clip_;
};

/// FedBuff-style staleness discounting layered over any base strategy: each
/// update's contribution is multiplied by the polynomial decay (1+s)^−α,
/// where s is ClientUpdate::staleness. α = 0 reproduces the base aggregator
/// exactly (decay ≡ 1). Composes with every strategy above — weight-based
/// bases fold the decay into their weights; robust bases receive it through
/// the aggregate() multiplier seam (the median, an order statistic, ignores
/// it by design).
class StalenessAggregator final : public Aggregator {
 public:
  using Aggregator::aggregate;
  StalenessAggregator(std::unique_ptr<Aggregator> base, double alpha);

  Capabilities capabilities() const override {
    Capabilities caps = base_->capabilities();
    caps.needs_staleness = true;
    return caps;
  }
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates,
      const std::vector<float>* multipliers) const override;
  std::string name() const override { return base_->name() + "+staleness"; }

  /// The (1+s)^−α decay factor itself (exposed for tests).
  static float decay(long staleness, double alpha);

 private:
  std::unique_ptr<Aggregator> base_;
  double alpha_;
};

/// Build a strategy by name: "fedavg" | "uniform" | "adaptive" | "krum" |
/// "multi-krum" | "trimmed-mean" | "median" | "norm-clip". The robust
/// strategies read their knobs from `robust`. A "hier+" prefix wraps the
/// named base in the two-tier hierarchical reducer
/// (fl/population/hierarchical.h) with edge width `robust.hier_edge` —
/// e.g. "hier+fedavg"; output is bit-identical to the flat base.
std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            const RobustConfig& robust = {});

}  // namespace goldfish::fl
