#include "data/backdoor.h"

#include <algorithm>

#include "tensor/check.h"

namespace goldfish::data {

void stamp_trigger(float* row, const nn::InputGeom& geom,
                   const BackdoorSpec& spec) {
  const long p = std::min({spec.patch, geom.height, geom.width});
  for (long c = 0; c < geom.channels; ++c)
    for (long y = 0; y < p; ++y)
      for (long x = 0; x < p; ++x)
        row[(c * geom.height + y) * geom.width + x] = spec.trigger_value;
}

PoisonResult poison_dataset(const Dataset& clean, const BackdoorSpec& spec,
                            float fraction, Rng& rng) {
  GOLDFISH_CHECK(fraction >= 0.0f && fraction <= 1.0f, "bad poison fraction");
  GOLDFISH_CHECK(spec.target_label >= 0 &&
                     spec.target_label < clean.num_classes,
                 "target label out of range");
  PoisonResult out;
  out.poisoned = clean;

  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < clean.labels.size(); ++i)
    if (clean.labels[i] != spec.target_label) candidates.push_back(i);
  rng.shuffle(candidates);
  const std::size_t want = static_cast<std::size_t>(
      fraction * static_cast<float>(clean.size()) + 0.5f);
  const std::size_t n = std::min(want, candidates.size());

  const long d = clean.features.dim(1);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = candidates[k];
    float* row =
        out.poisoned.features.data() + i * static_cast<std::size_t>(d);
    stamp_trigger(row, clean.geom, spec);
    out.poisoned.labels[i] = spec.target_label;
    out.poisoned_indices.push_back(i);
  }
  std::sort(out.poisoned_indices.begin(), out.poisoned_indices.end());
  return out;
}

void flip_labels(Dataset& ds) {
  GOLDFISH_CHECK(ds.num_classes > 0, "flip_labels needs num_classes");
  for (long& y : ds.labels) y = ds.num_classes - 1 - y;
}

Dataset make_trigger_probe(const Dataset& test, const BackdoorSpec& spec) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < test.labels.size(); ++i)
    if (test.labels[i] != spec.target_label) keep.push_back(i);
  Dataset probe = test.subset(keep);
  const long d = probe.features.dim(1);
  for (long i = 0; i < probe.size(); ++i) {
    stamp_trigger(probe.features.data() +
                      static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(d),
                  probe.geom, spec);
    probe.labels[static_cast<std::size_t>(i)] = spec.target_label;
  }
  return probe;
}

}  // namespace goldfish::data
