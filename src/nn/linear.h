// Fully connected layer: y = x·Wᵀ + b.
#pragma once

#include "nn/layer.h"

namespace goldfish::nn {

class Linear final : public Layer {
 public:
  /// He-initialized weights (suits the ReLU networks all paper models use).
  Linear(long in_features, long out_features, Rng& rng);

  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;
  std::size_t local_slots() const override { return 3; }  // y, masked g, dx

  long in_features() const { return in_; }
  long out_features() const { return out_; }

  /// Fold the ReLU that follows this layer into the GEMM writeback
  /// (Sequential sets this when it peepholes a Linear→ReLU pair). A fused
  /// forward returns the post-activation tensor and backward applies the
  /// ReLU mask itself, so the standalone ReLU layer must be skipped in both
  /// directions. Results are bit-identical to the unfused pair.
  void set_fuse_relu(bool fuse) { fuse_relu_ = fuse; }
  bool fuse_relu() const { return fuse_relu_; }

 private:
  long in_ = 0, out_ = 0;
  Tensor weight_;  // (out, in)
  Tensor bias_;    // (out)
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;   // (N, in) from the last forward
  Tensor cached_output_;  // (N, out) post-ReLU, only kept when fused
  bool fuse_relu_ = false;
};

}  // namespace goldfish::nn
