#include "tensor/rng.h"

#include <numeric>

namespace goldfish {

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  return perm;
}

}  // namespace goldfish
