// Client-side data partitioning: IID and heterogeneous splits across
// federated clients (§IV-B robustness experiments, Table XII), and the
// shard split inside one client (optimization module, Fig. 2).
#pragma once

#include "data/dataset.h"

namespace goldfish::data {

/// Split a dataset across `num_clients` clients with (near-)equal sizes and
/// uniformly shuffled rows — the "uniformly assigned" setting of §IV-A.
std::vector<Dataset> partition_iid(const Dataset& ds, long num_clients,
                                   Rng& rng);

/// Heterogeneous split: client sizes are drawn from a heavy-tailed
/// distribution ("data is randomly assigned to each user", §IV-B) so dataset
/// sizes vary strongly; optional label skew concentrates classes per client.
struct HeteroOptions {
  /// Larger → more even sizes; smaller → more extreme skew. Size weights are
  /// drawn as u^size_skew of uniform u, normalized.
  float size_skew = 3.0f;
  /// If true, each client's label distribution is also skewed (half the
  /// classes dominate), matching the "minimum local accuracy ≈ random"
  /// behaviour of Table XII.
  bool label_skew = true;
  /// Guaranteed minimum samples per client.
  long min_per_client = 8;
};

std::vector<Dataset> partition_heterogeneous(const Dataset& ds,
                                             long num_clients,
                                             const HeteroOptions& opt,
                                             Rng& rng);

/// Statistics reported in Table XII.
struct PartitionStats {
  double size_variance = 0.0;
  long min_size = 0;
  long max_size = 0;
};

PartitionStats partition_stats(const std::vector<Dataset>& parts);

/// Split one client's local dataset into τ shards (Fig. 2). Returns the
/// per-shard row indices into the client dataset, sizes as equal as
/// possible, rows shuffled.
std::vector<std::vector<std::size_t>> shard_indices(long dataset_size,
                                                    long num_shards,
                                                    Rng& rng);

}  // namespace goldfish::data
