// Scenario example: one event-driven timeline through fl::Engine.
//
// A six-client federation runs a buffered semi-asynchronous server with
//   * seeded client sampling (60% of clients per server version),
//   * an adaptive buffer size K(t) steered by observed staleness,
//   * a mid-run deletion request (client 1 forgets 20 rows — its buffered
//     and in-flight updates are evicted before they can aggregate),
//   * a client leaving and a new client joining mid-stream,
//   * an aggregator swap from fedavg to the paper's adaptive weighting,
// all declared up front as one Scenario and executed as a single engine
// run emitting a unified StepResult telemetry stream. The same run is
// bit-identical at any thread count (GOLDFISH_THREADS).
//
// Run: ./build/examples/scenario_stream
#include <iostream>

#include "core/unlearner.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "metrics/report.h"
#include "nn/models.h"

int main() {
  using namespace goldfish;
  std::cout << "== Engine scenario stream demo ==\n";

  // Seven partitions: six initial clients, the seventh joins mid-run.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, /*seed=*/90,
                         /*train=*/1400, /*test=*/300));
  Rng rng(91);
  auto parts = data::partition_iid(tt.train, 7, rng);
  std::vector<data::Dataset> clients(parts.begin(), parts.begin() + 6);

  Rng mrng(92);
  nn::Model global = nn::make_mlp(tt.train.geom, 32, 10, mrng);
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  cfg.async.duration_log_jitter = 0.5;  // heterogeneous task durations
  fl::FederatedSim sim(global, clients, tt.test, cfg);
  fl::Engine& eng = sim.engine();

  // The deletion request, split into (remaining, removed) exactly like the
  // unlearning driver does: the event carries D_r, we keep D_f for audit.
  core::UnlearnRequest req;
  req.client_id = 1;
  for (std::size_t i = 0; i < 20; ++i) req.rows.push_back(i);
  auto deletion = core::make_async_deletion(sim, req, /*vtime=*/0.75);

  fl::Scenario s = eng.async_scenario(8);
  s.participation = std::make_unique<fl::SampledParticipation>(0.6, 17);
  s.buffer = std::make_unique<fl::AdaptiveBuffer>(/*initial=*/4, /*min=*/2,
                                                  /*max=*/6,
                                                  /*target_staleness=*/1);
  s.deletions.push_back(std::move(deletion.event));
  s.leaves.push_back({/*time=*/3.5, /*client=*/4});
  s.joins.push_back({/*time=*/4.0, parts[6]});
  s.aggregator_swaps.push_back({/*time=*/5.0, "adaptive"});

  std::cout << "timeline: delete(c1)@0.75  leave(c4)@3.5  join@4.0  "
               "swap->adaptive@5.0\n\n"
            << "step  t      K  stale(mean/max)  dropped  active  "
               "aggregator        accuracy\n";
  eng.run(std::move(s), [](const fl::StepResult& r) {
    std::cout << "  " << r.step << "  " << metrics::fmt(r.virtual_time, 2)
              << "   " << r.updates_consumed << "  "
              << metrics::fmt(r.mean_staleness, 2) << " / "
              << r.max_staleness << "            " << r.dropped_updates
              << "        " << r.active_clients << "      "
              << r.aggregator << (r.aggregator.size() < 10 ? "\t\t  " : "  ")
              << metrics::fmt(r.global_accuracy) << "%\n";
  });

  std::cout << "\nafter the run: " << eng.num_clients()
            << " registered clients, " << eng.active_clients()
            << " active; client 1 keeps " << eng.client_data(1).size()
            << " rows (audit set: " << deletion.removed.size()
            << " removed)\n"
            << "the legacy entry points still work on the same engine:\n";
  const auto r = sim.run_round();
  std::cout << "  sync round " << r.round
            << ": accuracy = " << metrics::fmt(r.global_accuracy)
            << "%  (locals " << metrics::fmt(r.min_local_accuracy) << "-"
            << metrics::fmt(r.max_local_accuracy) << "%)\n";
  return 0;
}
