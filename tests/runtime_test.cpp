// The unified parallel runtime: caller-participating work-stealing
// Scheduler shared by kernel-level parallel_for and task-level
// parallel_map, including the nested-parallelism guarantees the FL
// simulator relies on and stress tests for the Chase–Lev deques
// (steal-order races, parking, exception propagation under stealing).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "runtime/scheduler.h"

namespace goldfish {
namespace {

TEST(Scheduler, RunsAllTasks) {
  runtime::Scheduler sched(4);
  std::atomic<int> count{0};
  sched.parallel_map(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, SubmitReturnsValue) {
  runtime::Scheduler sched(2);
  auto fut = sched.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(Scheduler, SubmitOnSerialSchedulerRunsInline) {
  // A zero-worker scheduler has no queue consumer; submit must still
  // complete the future (inline) rather than deadlock.
  runtime::Scheduler sched(1);
  auto fut = sched.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(Scheduler, ExceptionsPropagate) {
  runtime::Scheduler sched(2);
  EXPECT_THROW(
      sched.parallel_map(4,
                         [](std::size_t i) {
                           if (i == 2) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(Scheduler, ActuallyParallel) {
  runtime::Scheduler sched(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  sched.parallel_map(8, [&](std::size_t) {
    const int now = concurrent.fetch_add(1) + 1;
    int expect = peak.load();
    while (now > expect && !peak.compare_exchange_weak(expect, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    concurrent.fetch_sub(1);
  });
  EXPECT_GT(peak.load(), 1);
}

TEST(Scheduler, SerialSchedulerSpawnsNoThreads) {
  runtime::Scheduler sched(1);
  EXPECT_EQ(sched.parallelism(), 1u);
  const auto caller = std::this_thread::get_id();
  sched.parallel_for(100, [&](long, long) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(Scheduler, ParallelForCoversEveryIndexOnce) {
  runtime::Scheduler sched(4);
  std::vector<std::atomic<int>> hits(1000);
  sched.parallel_for(
      1000,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i)
          hits[static_cast<std::size_t>(i)].fetch_add(1);
      },
      /*grain=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ChunksRespectGrain) {
  runtime::Scheduler sched(4);
  std::atomic<long> calls{0};
  sched.parallel_for(
      100,
      [&](long lo, long hi) {
        EXPECT_GE(hi - lo, 1L);
        EXPECT_LE(hi - lo, 30L);
        calls.fetch_add(1);
      },
      /*grain=*/30);
  EXPECT_EQ(calls.load(), 4);  // ceil(100/30)
}

// The property the single-pool design exists for: a parallel_for opened
// from inside a parallel_map task (kernel inside an FL client) completes
// without deadlock and without spawning extra threads, even when every
// worker is busy with client tasks.
TEST(Scheduler, NestedParallelismDoesNotDeadlock) {
  runtime::Scheduler sched(3);
  std::atomic<long> total{0};
  sched.parallel_map(8, [&](std::size_t) {
    sched.parallel_for(
        64, [&](long lo, long hi) { total.fetch_add(hi - lo); },
        /*grain=*/4);
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(Scheduler, DeeplyNestedRegionsComplete) {
  runtime::Scheduler sched(2);
  std::atomic<long> leaves{0};
  sched.parallel_map(4, [&](std::size_t) {
    sched.parallel_map(4, [&](std::size_t) {
      sched.parallel_for(4, [&](long lo, long hi) {
        leaves.fetch_add(hi - lo);
      });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(Scheduler, GlobalIsSingleInstance) {
  runtime::Scheduler& a = runtime::Scheduler::global();
  runtime::Scheduler& b = runtime::Scheduler::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.parallelism(), 1u);
}

TEST(Scheduler, FreeParallelForRunsInlineBelowGrain) {
  const auto caller = std::this_thread::get_id();
  long covered = 0;
  // n < default grain → must run inline on the caller, zero scheduling.
  parallel_for(100, [&](long lo, long hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    covered += hi - lo;
  });
  EXPECT_EQ(covered, 100);
}

TEST(Scheduler, ParallelMapHonorsExplicitGrain) {
  // Indices inside one chunk run on one thread in ascending order; an
  // explicit grain must control the chunk width exactly.
  runtime::Scheduler sched(4);
  std::vector<std::thread::id> ran_on(100);
  sched.parallel_map(
      100, [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); },
      /*grain=*/25);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(ran_on[i], ran_on[(i / 25) * 25]);
}

TEST(Scheduler, ParallelMapAutoGrainCoversEveryIndexOnce) {
  // grain=0 picks n/(4·parallelism); whatever the chunking, every index
  // must still run exactly once.
  runtime::Scheduler sched(4);
  std::vector<std::atomic<int>> hits(10000);
  sched.parallel_map(10000,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// -- work-stealing stress ---------------------------------------------------

// Three levels of nesting with fan-outs wide enough that helper tasks pile
// into the deques and must be stolen across slots to finish in reasonable
// time. Every leaf must run exactly once regardless of who stole what.
TEST(SchedulerStress, DeepNestedRegionsCoverAllLeaves) {
  runtime::Scheduler sched(4);
  std::atomic<long> leaves{0};
  sched.parallel_map(
      8,
      [&](std::size_t) {
        sched.parallel_for(
            8,
            [&](long lo, long hi) {
              for (long j = lo; j < hi; ++j)
                sched.parallel_for(
                    32,
                    [&](long l2, long h2) { leaves.fetch_add(h2 - l2); },
                    /*grain=*/4);
            },
            /*grain=*/1);
      },
      /*grain=*/1);
  EXPECT_EQ(leaves.load(), 8 * 8 * 32);
}

// The FedBuff engine's shape: worker tasks themselves submit() subtasks and
// drain their futures while other workers (and the main thread) are doing
// the same — claiming external slots, stealing, and parking concurrently.
TEST(SchedulerStress, SubmitAndDrainFromInsideWorkerTasks) {
  runtime::Scheduler sched(4);
  std::atomic<long> sum{0};
  sched.parallel_map(
      16,
      [&](std::size_t i) {
        std::vector<std::future<long>> futs;
        futs.reserve(8);
        for (long j = 0; j < 8; ++j)
          futs.push_back(
              sched.submit([i, j] { return static_cast<long>(i) * j; }));
        for (auto& f : futs) {
          sched.drain_until_ready(f);
          sum.fetch_add(f.get());
        }
      },
      /*grain=*/1);
  long want = 0;
  for (long i = 0; i < 16; ++i)
    for (long j = 0; j < 8; ++j) want += i * j;
  EXPECT_EQ(sum.load(), want);
}

// Many tiny regions opened back-to-back from several external threads at
// once: exercises the external-slot claim/release path, slot handoff with
// stale helpers left behind, and the producer/sleeper wake protocol.
TEST(SchedulerStress, ConcurrentExternalCallers) {
  runtime::Scheduler sched(4);
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&] {
      for (int rep = 0; rep < 200; ++rep)
        sched.parallel_for(
            64, [&](long lo, long hi) { total.fetch_add(hi - lo); },
            /*grain=*/8);
    });
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 4L * 200 * 64);
}

// An exception thrown by a stolen chunk must abort the region and resurface
// at the opener — repeatedly, so some reps throw from the caller's lane and
// some from a thief's.
TEST(SchedulerStress, ExceptionPropagatesUnderStealing) {
  runtime::Scheduler sched(4);
  for (int rep = 0; rep < 50; ++rep) {
    EXPECT_THROW(
        sched.parallel_for(
            256,
            [&](long lo, long) {
              if (lo == 128) throw std::runtime_error("boom");
            },
            /*grain=*/1),
        std::runtime_error);
  }
}

TEST(SchedulerStress, SubmitExceptionSurfacesAtFuture) {
  runtime::Scheduler sched(2);
  auto fut = sched.submit([]() -> int { throw std::logic_error("bad"); });
  sched.drain_until_ready(fut);
  EXPECT_THROW(fut.get(), std::logic_error);
}

#if defined(__linux__)
TEST(SchedulerStress, PinnedWorkersStillCoverAllWork) {
  // GOLDFISH_PIN_THREADS=1 pins workers to the affinity mask's CPUs; on any
  // mask (including a 1-CPU container) work must still complete correctly.
  ::setenv("GOLDFISH_PIN_THREADS", "1", 1);
  {
    runtime::Scheduler sched(3);
    std::atomic<long> covered{0};
    sched.parallel_for(
        1000, [&](long lo, long hi) { covered.fetch_add(hi - lo); },
        /*grain=*/16);
    EXPECT_EQ(covered.load(), 1000);
  }
  ::unsetenv("GOLDFISH_PIN_THREADS");
}
#endif

// The repo's determinism contract, hammered: a full engine scenario run
// ≥100 times across 1/2/8 threads must produce one bit-identical
// StepResult stream and final model no matter how steals interleave.
TEST(SchedulerStress, EngineScenarioDeterministicOver100Reps) {
  const auto run_once = [](std::size_t threads) {
    auto tt = data::make_synthetic(
        data::default_spec(data::DatasetKind::Mnist, 41, 120, 30));
    Rng rng(41);
    auto parts = data::partition_iid(tt.train, 3, rng);
    nn::Model global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
    fl::FlConfig cfg;
    cfg.local.epochs = 1;
    cfg.local.batch_size = 40;
    cfg.local.lr = 0.05f;
    cfg.threads = threads;
    cfg.async.buffer_size = 2;
    cfg.async.duration_log_jitter = 0.5;
    fl::Engine eng(global, parts, tt.test, cfg);
    auto results = eng.collect(eng.async_scenario(3));
    return std::make_pair(std::move(results),
                          eng.global_model().snapshot());
  };

  const auto want = run_once(1);
  ASSERT_EQ(want.first.size(), 3u);
  int reps_done = 1;
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (int rep = 0; rep < 34; ++rep, ++reps_done) {
      const auto got = run_once(threads);
      ASSERT_EQ(got.first.size(), want.first.size());
      for (std::size_t a = 0; a < want.first.size(); ++a) {
        EXPECT_EQ(std::memcmp(&got.first[a].global_accuracy,
                              &want.first[a].global_accuracy,
                              sizeof(double)),
                  0)
            << "accuracy diverged at step " << a << " threads " << threads
            << " rep " << rep;
        EXPECT_EQ(std::memcmp(&got.first[a].virtual_time,
                              &want.first[a].virtual_time, sizeof(double)),
                  0);
        EXPECT_EQ(got.first[a].updates_consumed,
                  want.first[a].updates_consumed);
      }
      ASSERT_EQ(got.second.size(), want.second.size());
      for (std::size_t t = 0; t < want.second.size(); ++t) {
        ASSERT_TRUE(got.second[t].same_shape(want.second[t]));
        EXPECT_EQ(std::memcmp(got.second[t].data(), want.second[t].data(),
                              got.second[t].numel() * sizeof(float)),
                  0)
            << "weights diverged in tensor " << t << " threads " << threads
            << " rep " << rep;
      }
    }
  }
  EXPECT_GE(reps_done, 100);
}

}  // namespace
}  // namespace goldfish
