// Tables III–VI: test accuracy and backdoor ASR per deletion rate for
// origin / Ours / B1 / B3 on MNIST, FMNIST, CIFAR-10, CIFAR-100.
// Paper shape: origin has lower accuracy and very high ASR; the three
// unlearning methods restore accuracy and collapse ASR, with Ours keeping
// accuracy closest to (or above) B1 at a consistently low ASR.
#include "bench/common.h"

namespace goldfish::bench {
namespace {

const char* table_number(data::DatasetKind kind) {
  switch (kind) {
    case data::DatasetKind::Mnist:
      return "III";
    case data::DatasetKind::FashionMnist:
      return "IV";
    case data::DatasetKind::Cifar10:
      return "V";
    case data::DatasetKind::Cifar100:
      return "VI";
  }
  return "?";
}

void run_dataset(data::DatasetKind kind) {
  const long rounds = metrics::full_scale() ? 6 : 3;
  metrics::TableReporter table(
      std::string("Table ") + table_number(kind) + " — acc / backdoor, " +
          data::dataset_name(kind),
      {"rate%", "origin acc", "origin bd", "Ours acc", "Ours bd", "B1 acc",
       "B1 bd", "B3 acc", "B3 bd"});
  for (float rate : deletion_rates()) {
    Scenario s = make_scenario(kind, rate,
                               6000 + static_cast<std::uint64_t>(rate * 1e4));
    const MethodResult origin = eval_model(s.trained, s);
    const MethodResult ours = run_ours(s, rounds);
    const MethodResult b1 = run_b1(s, rounds);
    const MethodResult b3 = run_b3(s, rounds);
    table.add_row({metrics::fmt(rate * 100, 0), metrics::fmt(origin.accuracy),
                   metrics::fmt(origin.asr), metrics::fmt(ours.accuracy),
                   metrics::fmt(ours.asr), metrics::fmt(b1.accuracy),
                   metrics::fmt(b1.asr), metrics::fmt(b3.accuracy),
                   metrics::fmt(b3.asr)});
  }
  table.print();
  table.write_csv(csv_dir() + "/table" + table_number(kind) + "_" +
                  data::dataset_name(kind) + ".csv");
}

}  // namespace
}  // namespace goldfish::bench

int main() {
  using goldfish::data::DatasetKind;
  goldfish::bench::print_header(
      "Tables III–VI: accuracy & backdoor ASR per deletion rate");
  for (auto kind : {DatasetKind::Mnist, DatasetKind::FashionMnist,
                    DatasetKind::Cifar10, DatasetKind::Cifar100})
    goldfish::bench::run_dataset(kind);
  return 0;
}
