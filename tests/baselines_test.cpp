// Baselines B1 (retrain from scratch), B2 (rapid retraining), and B3
// (incompetent teacher).
#include <gtest/gtest.h>

#include "baselines/incompetent_teacher.h"
#include "baselines/rapid_retrain.h"
#include "baselines/retrain_scratch.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluation.h"
#include "nn/models.h"

namespace goldfish {
namespace {

struct BaselineFixture {
  data::TrainTest tt;
  std::vector<data::Dataset> parts;
  nn::Model trained;
  nn::Model fresh;

  BaselineFixture()
      : tt(data::make_synthetic(
            data::default_spec(data::DatasetKind::Mnist, 81, 400, 100))) {
    Rng rng(82);
    parts = data::partition_iid(tt.train, 2, rng);
    trained = nn::make_mlp({1, 28, 28}, 32, 10, rng);
    fresh = trained;  // same init
    fl::TrainOptions opts;
    opts.epochs = 10;
    opts.batch_size = 50;
    opts.lr = 0.05f;
    fl::train_local(trained, tt.train, opts);
    Rng rng2(83);
    fresh = nn::make_mlp({1, 28, 28}, 32, 10, rng2);
  }
};

BaselineFixture& fixture() {
  static BaselineFixture f;
  return f;
}

TEST(B1RetrainScratch, ReachesUsefulAccuracy) {
  auto& f = fixture();
  fl::FlConfig cfg;
  cfg.local.epochs = 3;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  nn::Model out;
  const auto rounds =
      baselines::retrain_from_scratch(f.fresh, f.parts, f.tt.test, cfg, 3,
                                      &out);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_GT(rounds.back().global_accuracy, 35.0);
  EXPECT_TRUE(out.valid());
  EXPECT_NEAR(metrics::accuracy(out, f.tt.test),
              rounds.back().global_accuracy, 1e-6);
}

TEST(B2DiagonalFim, NonNegativeAndShaped) {
  auto& f = fixture();
  const auto ce = losses::make_hard_loss("cross_entropy");
  nn::Model m = f.trained;
  const auto fim = baselines::diagonal_fim(m, f.tt.train, *ce);
  auto params = m.params();
  ASSERT_EQ(fim.size(), params.size());
  double total = 0.0;
  for (std::size_t i = 0; i < fim.size(); ++i) {
    ASSERT_TRUE(fim[i].same_shape(*params[i].value));
    for (std::size_t j = 0; j < fim[i].numel(); ++j) {
      EXPECT_GE(fim[i][j], 0.0f);
      total += fim[i][j];
    }
  }
  EXPECT_GT(total, 0.0);  // a trained model still has nonzero gradients
}

TEST(B2RapidRetrain, ConvergesAtLeastAsFastAsB1Start) {
  auto& f = fixture();
  baselines::RapidRetrainConfig cfg;
  cfg.fl.local.epochs = 3;
  cfg.fl.local.batch_size = 50;
  cfg.fl.local.lr = 0.05f;
  nn::Model trained = f.trained;
  nn::Model out;
  const auto rounds = baselines::rapid_retrain(f.fresh, trained, f.parts,
                                               f.tt.test, cfg, 3, &out);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_GT(rounds.back().global_accuracy, 35.0);
}

TEST(B3IncompetentTeacher, PreservesUtilityOnRemaining) {
  auto& f = fixture();
  baselines::IncompetentTeacherConfig cfg;
  cfg.fl.local.epochs = 2;
  cfg.fl.local.batch_size = 50;
  cfg.fl.local.lr = 0.02f;
  Rng rng(84);
  nn::Model incompetent = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  // No removed data: pure competent-teacher distillation, should keep
  // accuracy near the trained model's.
  std::vector<data::Dataset> removed(f.parts.size());
  nn::Model out;
  const auto rounds = baselines::incompetent_teacher_unlearn(
      f.trained, incompetent, f.parts, removed, f.tt.test, cfg, 2, &out);
  const double trained_acc = metrics::accuracy(
      const_cast<nn::Model&>(f.trained), f.tt.test);
  EXPECT_GT(rounds.back().global_accuracy, 0.75 * trained_acc);
}

TEST(B3IncompetentTeacher, MismatchedClientVectorsThrow) {
  auto& f = fixture();
  baselines::IncompetentTeacherConfig cfg;
  Rng rng(85);
  nn::Model incompetent = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  std::vector<data::Dataset> removed(1);  // wrong size
  EXPECT_THROW(baselines::incompetent_teacher_unlearn(
                   f.trained, incompetent, f.parts, removed, f.tt.test, cfg,
                   1),
               CheckError);
}

}  // namespace
}  // namespace goldfish
