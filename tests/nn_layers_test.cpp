// Behavioural tests for layers and model factories (shapes, semantics,
// cloning, train/eval modes).
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace goldfish {
namespace {

TEST(Linear, OutputShapeAndBias) {
  Rng rng(1);
  nn::Linear fc(3, 2, rng);
  // Zero input → output equals bias (zero-initialized).
  Tensor x({4, 3});
  Tensor y = fc.forward(x, true);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 2);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 0.0f);
}

TEST(Linear, WrongInputWidthThrows) {
  Rng rng(2);
  nn::Linear fc(3, 2, rng);
  Tensor x({4, 5});
  EXPECT_THROW(fc.forward(x, true), CheckError);
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(3);
  nn::Linear fc(3, 2, rng);
  Tensor g({4, 2});
  EXPECT_THROW(fc.backward(g), CheckError);
}

TEST(ReLU, ZeroesNegatives) {
  nn::ReLU relu;
  Tensor x = Tensor::from({-2, -0.5f, 0, 1, 3});
  Tensor y = relu.forward(x.reshaped({1, 5}), true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
  EXPECT_FLOAT_EQ(y[4], 3.0f);
}

TEST(Flatten, RoundTripShapes) {
  nn::Flatten fl;
  Rng rng(4);
  Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  Tensor y = fl.forward(x, true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 60);
  Tensor back = fl.backward(y);
  EXPECT_TRUE(back.same_shape(x));
}

TEST(Unflatten, FlatToImage) {
  nn::Unflatten uf(3, 4, 5);
  Rng rng(5);
  Tensor x = Tensor::randn({2, 60}, rng);
  Tensor y = uf.forward(x, true);
  EXPECT_EQ(y.rank(), 4u);
  EXPECT_EQ(y.dim(1), 3);
  // Already image-shaped input passes through.
  Tensor img({2, 3, 4, 5});
  EXPECT_TRUE(uf.forward(img, true).same_shape(img));
  // Wrong width rejected.
  Tensor bad({2, 61});
  EXPECT_THROW(uf.forward(bad, true), CheckError);
}

TEST(MaxPool, PicksWindowMax) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2});
  x.at4(0, 0, 0, 0) = 1;
  x.at4(0, 0, 0, 1) = 5;
  x.at4(0, 0, 1, 0) = 3;
  x.at4(0, 0, 1, 1) = 2;
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  // Gradient routes only to the argmax element.
  Tensor g({1, 1, 1, 1});
  g[0] = 1.0f;
  Tensor gin = pool.backward(g);
  EXPECT_FLOAT_EQ(gin.at4(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(gin.at4(0, 0, 0, 0), 0.0f);
}

TEST(GlobalAvgPool, Averages) {
  nn::GlobalAvgPool gap;
  Tensor x = Tensor::full({1, 2, 3, 3}, 2.0f);
  Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  Rng rng(6);
  nn::BatchNorm2d bn(2);
  Tensor x = Tensor::randn({8, 2, 4, 4}, rng, 3.0f, 2.0f);
  Tensor y = bn.forward(x, true);
  // Per-channel output should be ~N(0,1) (gamma=1, beta=0).
  for (long c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    const long per = 8 * 4 * 4;
    for (long n = 0; n < 8; ++n)
      for (long h = 0; h < 4; ++h)
        for (long w = 0; w < 4; ++w) mean += y.at4(n, c, h, w);
    mean /= per;
    for (long n = 0; n < 8; ++n)
      for (long h = 0; h < 4; ++h)
        for (long w = 0; w < 4; ++w) {
          const double d = y.at4(n, c, h, w) - mean;
          var += d * d;
        }
    var /= per;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(7);
  nn::BatchNorm2d bn(1);
  // Run enough training batches that the EMA (momentum 0.1) converges:
  // bias factor 0.9^100 ≈ 3e-5.
  for (int i = 0; i < 100; ++i) {
    Tensor x = Tensor::randn({16, 1, 2, 2}, rng, 5.0f, 1.0f);
    bn.forward(x, true);
  }
  // Eval on a wildly different batch: output should still be normalized
  // w.r.t. the *training* distribution (mean 5), not the eval batch.
  Tensor probe = Tensor::full({2, 1, 2, 2}, 5.0f);
  Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0f, 0.3f);
}

TEST(BatchNorm, BackwardRequiresTrainForward) {
  nn::BatchNorm2d bn(1);
  Tensor x({2, 1, 2, 2});
  bn.forward(x, false);
  EXPECT_THROW(bn.backward(x), CheckError);
}

TEST(Sequential, CloneIsDeep) {
  Rng rng(8);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>(4, 4, rng));
  auto copy = seq.clone();
  // Mutate the original's weights; the clone must not change.
  auto orig_params = seq.params();
  auto copy_params = copy->params();
  const float before = (*copy_params[0].value)[0];
  (*orig_params[0].value)[0] += 10.0f;
  EXPECT_FLOAT_EQ((*copy_params[0].value)[0], before);
}

TEST(Sequential, ParamNamesAreIndexed) {
  Rng rng(9);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>(4, 4, rng));
  seq.add(std::make_unique<nn::ReLU>());
  seq.add(std::make_unique<nn::Linear>(4, 2, rng));
  auto ps = seq.params();
  ASSERT_EQ(ps.size(), 4u);
  EXPECT_EQ(ps[0].name, "0.weight");
  EXPECT_EQ(ps[2].name, "2.weight");
}

TEST(Models, LeNet5ShapesMnist) {
  Rng rng(10);
  nn::Model m = nn::make_lenet5({1, 28, 28}, 10, rng);
  Tensor x({2, 784});
  Tensor logits = m.forward(x, false);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(Models, ModifiedLeNet5ShapesCifar) {
  Rng rng(11);
  nn::Model m = nn::make_modified_lenet5({3, 32, 32}, 10, rng);
  Tensor x({2, 3072});
  Tensor logits = m.forward(x, false);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(Models, ResNetDepthValidation) {
  Rng rng(12);
  EXPECT_THROW(nn::make_resnet({3, 32, 32}, 10, 33, 8, rng), CheckError);
  nn::Model m = nn::make_resnet({3, 16, 16}, 10, 8, 4, rng);
  Tensor x({2, 3 * 16 * 16});
  Tensor logits = m.forward(x, true);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(Models, FactoryByName) {
  Rng rng(13);
  nn::Model mlp = nn::make_model("mlp32", {1, 28, 28}, 10, rng);
  EXPECT_EQ(mlp.arch_name(), "mlp32");
  EXPECT_THROW(nn::make_model("vgg", {1, 28, 28}, 10, rng), CheckError);
}

TEST(Models, ParamCountsArePlausible) {
  Rng rng(14);
  nn::Model lenet = nn::make_lenet5({1, 28, 28}, 10, rng);
  // conv1: 6·25+6, conv2: 16·150+16, fc1: 400·120+120, fc2: 120·10+10
  EXPECT_EQ(lenet.num_scalars(),
            std::size_t(6 * 25 + 6 + 16 * 150 + 16 + 400 * 120 + 120 +
                        120 * 10 + 10));
}

}  // namespace
}  // namespace goldfish
