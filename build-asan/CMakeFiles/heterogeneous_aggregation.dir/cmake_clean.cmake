file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_aggregation.dir/examples/heterogeneous_aggregation.cpp.o"
  "CMakeFiles/heterogeneous_aggregation.dir/examples/heterogeneous_aggregation.cpp.o.d"
  "heterogeneous_aggregation"
  "heterogeneous_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
