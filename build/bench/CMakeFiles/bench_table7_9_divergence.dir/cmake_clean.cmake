file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_9_divergence.dir/bench_table7_9_divergence.cpp.o"
  "CMakeFiles/bench_table7_9_divergence.dir/bench_table7_9_divergence.cpp.o.d"
  "bench_table7_9_divergence"
  "bench_table7_9_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_9_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
