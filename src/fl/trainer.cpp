#include "fl/trainer.h"

#include <algorithm>

#include "tensor/check.h"

namespace goldfish::fl {

TrainStats train_local(nn::Model& model, const data::Dataset& ds,
                       const TrainOptions& opts) {
  GOLDFISH_CHECK(!ds.empty(), "training on an empty dataset");
  auto loss = losses::make_hard_loss(opts.loss);
  nn::Sgd::Options sgd_opts;
  sgd_opts.lr = opts.lr;
  sgd_opts.momentum = opts.momentum;
  nn::Sgd sgd(sgd_opts);
  Rng rng(opts.seed);

  // backward() accumulates into whatever the gradient buffers hold; a model
  // handed in with non-zero accumulators (e.g. a pooled replica loaded via
  // Model::load, which — unlike copy_from — leaves gradients untouched)
  // would silently fold stale gradients into its first step.
  model.zero_grad();

  TrainStats stats;
  Tensor x;             // batch storage reused across steps and epochs
  std::vector<long> y;
  for (long e = 0; e < opts.epochs; ++e) {
    data::BatchIterator it(ds, opts.batch_size, rng);
    double epoch_loss = 0.0;
    for (std::size_t b = 0; b < it.num_batches(); ++b) {
      const auto [idx, count] = it.batch_span(b);
      ds.batch_into(idx, count, x, y);
      const Tensor& logits = model.forward(x, /*train=*/true);
      losses::LossResult r = loss->eval(logits, y);
      model.backward(r.grad_logits);
      sgd.step(model);
      epoch_loss += r.value;
      ++stats.steps;
    }
    stats.epoch_losses.push_back(
        static_cast<float>(epoch_loss / double(it.num_batches())));
  }
  return stats;
}

float dataset_loss(nn::Model& model, const data::Dataset& ds,
                   const losses::HardLoss& loss, long batch_size) {
  GOLDFISH_CHECK(!ds.empty(), "loss over an empty dataset");
  double total = 0.0;
  long batches = 0;
  const long n = ds.size();
  for (long lo = 0; lo < n; lo += batch_size) {
    const long hi = std::min(n, lo + batch_size);
    auto [x, yp] = ds.batch_view(lo, hi);
    const std::vector<long> y(yp, yp + (hi - lo));
    const Tensor& logits = model.forward(x, /*train=*/false);
    total += loss.eval(logits, y).value;
    ++batches;
  }
  return static_cast<float>(total / double(batches));
}

}  // namespace goldfish::fl
