// Fig. 7 (a–c): accuracy across training rounds with a deletion request at
// round 3, for deletion rates {2,6,10}% and shard counts {1,3,6,9}.
// Paper shape: sharded clients recover faster after the deletion dip
// because only affected shards retrain from their checkpoints; at higher
// deletion rates more shards are hit and the advantage shrinks.
#include "bench/common.h"
#include "core/sharding.h"

int main() {
  using namespace goldfish;
  using namespace goldfish::bench;
  print_header("Fig. 7: deletion recovery by shard count (MNIST)");

  const auto prof = profile(data::DatasetKind::Mnist);
  // Same sizing rationale as Fig. 6: shards need enough rows to train.
  auto spec = data::default_spec(data::DatasetKind::Mnist, 700,
                                 metrics::full_scale() ? 4800 : 2400,
                                 prof.test_size);
  spec.noise_scale = 0.6f;
  auto tt = data::make_synthetic(spec);
  const long rounds = metrics::full_scale() ? 10 : 7;
  const long deletion_round = 3;
  const std::vector<long> shard_counts{1, 3, 6, 9};

  for (float rate : {0.02f, 0.06f, 0.10f}) {
    std::vector<std::string> cols{"round"};
    for (long n : shard_counts) cols.push_back("tau=" + std::to_string(n));
    metrics::TableReporter table(
        "Fig.7 — accuracy around deletion at round 3, rate " +
            metrics::fmt(rate * 100, 0) + "%",
        cols);

    std::vector<std::vector<double>> acc(shard_counts.size());
    for (std::size_t k = 0; k < shard_counts.size(); ++k) {
      Rng rng(701 + static_cast<std::uint64_t>(k));
      Rng mrng(702);
      nn::Model init = nn::make_model(prof.arch, tt.train.geom,
                                      tt.train.num_classes, mrng);
      core::ShardManager mgr(init, tt.train, shard_counts[k], rng);
      fl::TrainOptions opts;
      opts.epochs = 1;
      opts.batch_size = prof.batch;
      opts.lr = prof.lr;

      // Deletion target: one user's data is colocated, so the removed rows
      // occupy as few shards as possible (at 2% that is a single shard —
      // exactly the regime where the paper says sharding wins).
      const long n_delete = static_cast<long>(rate * float(tt.train.size()));
      std::vector<std::size_t> doomed;
      for (long shard = 0;
           shard < shard_counts[k] &&
           static_cast<long>(doomed.size()) < n_delete;
           ++shard) {
        for (std::size_t row : mgr.shard_row_ids(shard)) {
          if (static_cast<long>(doomed.size()) >= n_delete) break;
          doomed.push_back(row);
        }
      }

      nn::Model probe_model = init;
      for (long r = 0; r < rounds; ++r) {
        opts.seed = 703 + static_cast<std::uint64_t>(r);
        if (r == deletion_round) {
          // Deletion resets affected shards to ω0 (their old weights carry
          // the removed rows' influence); retraining resumes next round, so
          // this round's accuracy shows the dip whose depth shrinks as τ
          // grows — non-sharded clients lose the whole model, sharded ones
          // only the affected fraction (Eq. 9).
          fl::TrainOptions reset_only = opts;
          reset_only.epochs = 0;
          mgr.delete_rows(doomed, reset_only);
        } else {
          mgr.train_all(opts);
        }
        probe_model.load(mgr.aggregate());
        acc[k].push_back(metrics::accuracy(probe_model, tt.test));
      }
    }

    for (long r = 0; r < rounds; ++r) {
      std::vector<std::string> row{std::to_string(r + 1)};
      for (std::size_t k = 0; k < shard_counts.size(); ++k)
        row.push_back(metrics::fmt(acc[k][std::size_t(r)]));
      table.add_row(std::move(row));
    }
    table.print();
    table.write_csv(csv_dir() + "/fig7_rate" +
                    metrics::fmt(rate * 100, 0) + ".csv");
  }
  return 0;
}
