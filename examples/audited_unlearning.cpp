// Scenario example: *auditing* an unlearning run with membership inference.
//
// Backdoor ASR only verifies forgetting of poisoned patterns. A stronger,
// attack-agnostic audit asks: can an adversary still tell that the removed
// samples were ever trained on? This example trains a federated model that
// memorizes, runs Goldfish unlearning on part of one client's data, and
// reports the confidence-threshold membership-inference attack (AUC and
// balanced accuracy) before and after — the audit should collapse towards
// chance (0.5).
//
// Run: ./build/examples/audited_unlearning
#include <iostream>

#include "core/unlearner.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluation.h"
#include "metrics/membership_inference.h"
#include "metrics/report.h"
#include "nn/models.h"

int main() {
  using namespace goldfish;
  std::cout << "== Audited unlearning demo ==\n";

  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 31, 500, 250));
  Rng rng(32);
  auto clients = data::partition_iid(tt.train, 2, rng);

  // Train long enough to memorize (small data, many epochs).
  Rng mrng(33);
  nn::Model fresh = nn::make_mlp(tt.train.geom, 64, 10, mrng);
  nn::Model global = fresh;
  fl::FlConfig cfg;
  cfg.local.epochs = 12;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  fl::FederatedSim sim(global, clients, tt.test, cfg);
  sim.run(3);
  global = sim.global_model();
  std::cout << "trained model: accuracy "
            << metrics::fmt(metrics::accuracy(global, tt.test)) << "%\n";

  // The data subject: 80 rows of client 0.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 80; ++i) rows.push_back(i);
  data::Dataset subject = clients[0].subset(rows);

  const auto audit = [&](const char* when, nn::Model& m) {
    const auto r = metrics::membership_inference(m, subject, tt.test);
    std::cout << "  " << when << ": MIA AUC " << metrics::fmt(r.auc)
              << ", best attack accuracy " << metrics::fmt(r.best_accuracy)
              << ", member confidence " << metrics::fmt(r.member_confidence)
              << " vs non-member " << metrics::fmt(r.nonmember_confidence)
              << "\n";
  };
  std::cout << "membership-inference audit on the subject's 80 rows:\n";
  audit("before unlearning", global);

  core::UnlearnConfig ucfg;
  ucfg.distill.max_epochs = 5;
  ucfg.distill.batch_size = 50;
  ucfg.distill.lr = 0.05f;
  core::GoldfishUnlearner unlearner(global, fresh, clients, tt.test, ucfg);
  unlearner.request_deletion({{0, rows}});
  unlearner.run(2);
  // The unlearner rides the event-driven fl::Engine, so distillation also
  // runs under a buffered semi-asynchronous server: the final round is a
  // two-update-buffer scenario instead of a barrier round.
  {
    fl::Scenario s = unlearner.engine().async_scenario(1);
    s.buffer = std::make_unique<fl::FixedBuffer>(2);
    unlearner.engine().run(std::move(s), [](const fl::StepResult& r) {
      std::cout << "  buffered distillation step: K=" << r.updates_consumed
                << " at t=" << metrics::fmt(r.virtual_time, 2)
                << ", accuracy " << metrics::fmt(r.global_accuracy)
                << "%\n";
    });
  }
  audit("after unlearning ", unlearner.global_model());

  std::cout << "accuracy after unlearning: "
            << metrics::fmt(
                   metrics::accuracy(unlearner.global_model(), tt.test))
            << "%\nexpected shape: AUC falls from ≫0.5 (memorized) to ≤0.5 "
               "while test accuracy holds.\nnote: an AUC far *below* 0.5 "
               "means the removed rows are now conspicuously *low*-"
               "confidence — the confusion loss over-flattens them. This is "
               "precisely the unlearning-leaks-privacy effect of Chen et "
               "al. (CCS'21), cited in the paper's motivation; calibrate "
               "µ_c against it.\n";
  return 0;
}
