// Fig. 6: accuracy vs training round on MNIST for shard counts
// {1,3,6,9,12,15,18}. Paper shape: more shards converge more slowly (each
// shard model sees less data, biasing it) but all shard counts converge.
#include "bench/common.h"
#include "core/sharding.h"

int main() {
  using namespace goldfish;
  using namespace goldfish::bench;
  print_header("Fig. 6: shard-count convergence (MNIST)");

  const auto prof = profile(data::DatasetKind::Mnist);
  // Sharding divides one client's data τ ways, so per-shard sample counts
  // must stay trainable: use a larger set with moderated noise (the paper
  // shards a 60k-sample MNIST).
  auto spec = data::default_spec(data::DatasetKind::Mnist, 600,
                                 metrics::full_scale() ? 4800 : 2400,
                                 prof.test_size);
  spec.noise_scale = 0.6f;
  auto tt = data::make_synthetic(spec);
  const long rounds = metrics::full_scale() ? 12 : 8;
  const std::vector<long> shard_counts{1, 3, 6, 9, 12, 15, 18};

  std::vector<std::string> cols{"round"};
  for (long n : shard_counts) cols.push_back("tau=" + std::to_string(n));
  metrics::TableReporter table("Fig.6 — accuracy by shard count", cols);

  // accuracy[shards][round]
  std::vector<std::vector<double>> acc(shard_counts.size());
  for (std::size_t k = 0; k < shard_counts.size(); ++k) {
    Rng rng(601 + static_cast<std::uint64_t>(k));
    Rng mrng(602);
    nn::Model init = nn::make_model(prof.arch, tt.train.geom,
                                    tt.train.num_classes, mrng);
    core::ShardManager mgr(init, tt.train, shard_counts[k], rng);
    fl::TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = prof.batch;
    opts.lr = prof.lr;
    nn::Model probe_model = init;
    for (long r = 0; r < rounds; ++r) {
      opts.seed = 603 + static_cast<std::uint64_t>(r);
      mgr.train_all(opts);
      probe_model.load(mgr.aggregate());
      acc[k].push_back(metrics::accuracy(probe_model, tt.test));
    }
  }

  for (long r = 0; r < rounds; ++r) {
    std::vector<std::string> row{std::to_string(r + 1)};
    for (std::size_t k = 0; k < shard_counts.size(); ++k)
      row.push_back(metrics::fmt(acc[k][std::size_t(r)]));
    table.add_row(std::move(row));
  }
  table.print();
  table.write_csv(csv_dir() + "/fig6_shard_convergence.csv");
  return 0;
}
