// Model factories for every architecture in the paper's evaluation
// (Table II / §IV-A) plus a small MLP used by fast unit tests.
#pragma once

#include "nn/model.h"

namespace goldfish::nn {

/// Input geometry of a dataset: channels × height × width (flattened inputs
/// are reshaped internally by the first layer of conv models).
struct InputGeom {
  long channels = 1;
  long height = 28;
  long width = 28;
  long flat() const { return channels * height * width; }
};

/// Classic LeNet-5 (2 conv, 2 maxpool, 2 FC) for MNIST / FMNIST.
Model make_lenet5(const InputGeom& in, long num_classes, Rng& rng);

/// Modified LeNet-5 (2 conv, 2 maxpool, 3 FC) for CIFAR-10, per §IV-A.
Model make_modified_lenet5(const InputGeom& in, long num_classes, Rng& rng);

/// CIFAR-style ResNet-(6n+2): initial 3×3 conv, three stages of n residual
/// blocks at widths {w, 2w, 4w}, global average pool, FC head.
/// depth must satisfy depth = 6n+2 (32 → n=5, 56 → n=9). base_width is the
/// compute knob documented in DESIGN.md §2 (paper uses 16; default 8 here).
Model make_resnet(const InputGeom& in, long num_classes, long depth,
                  long base_width, Rng& rng);

/// Two-layer MLP on flattened input; used for fast tests and the MNIST-like
/// quick benches where conv capacity is unnecessary.
Model make_mlp(const InputGeom& in, long hidden, long num_classes, Rng& rng);

/// Build a model by architecture name: "lenet5", "modified_lenet5",
/// "resnet32", "resnet56", "mlp<h>" (e.g. "mlp64"). Throws on unknown names.
Model make_model(const std::string& arch, const InputGeom& in,
                 long num_classes, Rng& rng);

}  // namespace goldfish::nn
