// Micro-benchmarks of the hot kernels (google-benchmark): matmul, im2col
// convolution lowering, softmax family, and the Goldfish loss terms. These
// are the cost drivers of every experiment above.
#include <benchmark/benchmark.h>

#include "losses/distillation.h"
#include "losses/goldfish_loss.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace goldfish {
namespace {

/// The seed's matmul kernel (pre-runtime ikj triple loop, no cache
/// blocking), kept verbatim as the old-vs-new baseline: items_per_second of
/// BM_GemmSeedNaive vs BM_Gemm at equal sizes is the backbone speedup.
Tensor seed_naive_matmul(const Tensor& a, const Tensor& b) {
  const long m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = c.data();
  for (long i = 0; i < m; ++i) {
    for (long kk = 0; kk < k; ++kk) {
      const float aik = A[i * k + kk];
      if (aik == 0.0f) continue;
      const float* Brow = B + kk * n;
      float* Crow = C + i * n;
      for (long j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
    }
  }
  return c;
}

void BM_GemmSeedNaive(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = seed_naive_matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmSeedNaive)->Arg(64)->Arg(128)->Arg(256)->Arg(384)->Arg(512);

void BM_Gemm(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(384)->Arg(512);

// Repro-relevant rectangular shapes. Conv forward lowers to
// (outC × patch)·(patch × N·oh·ow) — short-fat; linear layers are
// (batch × in)·(in × out) with the nt flag.
void BM_GemmIm2colShape(benchmark::State& state) {
  Rng rng(2);
  Tensor w = Tensor::randn({16, 27}, rng);        // 16 filters over 3·3·3
  Tensor cols = Tensor::randn({27, 16384}, rng);  // batch 16 of 32×32
  for (auto _ : state) {
    Tensor c = gemm(w, cols, false, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 27 * 16384);
}
BENCHMARK(BM_GemmIm2colShape);

void BM_GemmLinearShape(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::randn({100, 784}, rng);
  Tensor w = Tensor::randn({128, 784}, rng);
  for (auto _ : state) {
    Tensor y = gemm(x, w, false, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 100 * 784 * 128);
}
BENCHMARK(BM_GemmLinearShape);

void BM_GemmTn(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(4);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = gemm(a, b, true, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTn)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  Conv2dGeom g{3, 32, 32, 3, 1, 1};
  Rng rng(3);
  Tensor img = Tensor::randn({16, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor cols = im2col(img, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv2d conv(3, 16, 3, 1, 1, 32, 32, rng);
  Tensor x = Tensor::randn({16, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(5);
  nn::Conv2d conv(3, 16, 3, 1, 1, 32, 32, rng);
  Tensor x = Tensor::randn({16, 3, 32, 32}, rng);
  Tensor y = conv.forward(x, true);
  Tensor g = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    Tensor gin = conv.backward(g);
    benchmark::DoNotOptimize(gin.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_LinearForward(benchmark::State& state) {
  Rng rng(6);
  nn::Linear fc(784, 128, rng);
  Tensor x = Tensor::randn({100, 784}, rng);
  for (auto _ : state) {
    Tensor y = fc.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LinearForward);

// -- fused-epilogue linear forward at n³ --------------------------------
// Three implementations of the same relu(x·Wᵀ + b): the seed's (naive ikj
// matmul, then separate bias and ReLU passes), the PR-1 blocked GEMM with
// the same two extra passes, and the fused writeback (bias + ReLU inside
// the microkernel, beta=0 into an uninitialized output). The CI ratchet
// (bench/check_bench_ratchet.py) requires Fused ≥ 1.2× SeedTwoPass at 256.

void apply_bias_relu_two_pass(Tensor& y, const Tensor& bias) {
  const long rows = y.dim(0), cols = y.dim(1);
  for (long i = 0; i < rows; ++i)
    for (long j = 0; j < cols; ++j) y.at(i, j) += bias[std::size_t(j)];
  for (float& v : y.vec()) v = v > 0.0f ? v : 0.0f;
}

void BM_LinearSeedTwoPass(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(11);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor wt = Tensor::randn({n, n}, rng);  // pre-transposed for the naive path
  Tensor bias = Tensor::randn({n}, rng);
  for (auto _ : state) {
    Tensor y = seed_naive_matmul(x, wt);
    apply_bias_relu_two_pass(y, bias);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_LinearSeedTwoPass)->Arg(256);

void BM_LinearTwoPass(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(11);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor w = Tensor::randn({n, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  for (auto _ : state) {
    Tensor y = gemm(x, w, false, true);
    apply_bias_relu_two_pass(y, bias);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_LinearTwoPass)->Arg(256);

void BM_LinearFusedEpilogue(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(11);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor w = Tensor::randn({n, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  for (auto _ : state) {
    Tensor y = gemm_fused(x, w, false, true,
                          runtime::Epilogue::kBiasColRelu, bias);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_LinearFusedEpilogue)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(7);
  Tensor z = Tensor::randn({256, 100}, rng);
  for (auto _ : state) {
    Tensor p = softmax_rows(z, 3.0f);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_DistillationLoss(benchmark::State& state) {
  Rng rng(8);
  Tensor t = Tensor::randn({100, 10}, rng);
  Tensor s = Tensor::randn({100, 10}, rng);
  for (auto _ : state) {
    auto r = losses::distillation_loss(t, s, 3.0f);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_DistillationLoss);

void BM_ConfusionLoss(benchmark::State& state) {
  Rng rng(9);
  Tensor s = Tensor::randn({100, 10}, rng);
  for (auto _ : state) {
    auto r = losses::confusion_loss(s);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ConfusionLoss);

void BM_GoldfishCompositeLoss(benchmark::State& state) {
  Rng rng(10);
  Tensor sr = Tensor::randn({100, 10}, rng);
  Tensor tr = Tensor::randn({100, 10}, rng);
  Tensor sf = Tensor::randn({20, 10}, rng);
  std::vector<long> yr(100), yf(20);
  for (std::size_t i = 0; i < 100; ++i) yr[i] = long(i % 10);
  for (std::size_t i = 0; i < 20; ++i) yf[i] = long(i % 10);
  losses::GoldfishLoss loss;
  for (auto _ : state) {
    auto r = loss.eval(sr, yr, tr, sf, yf);
    benchmark::DoNotOptimize(r.total);
  }
}
BENCHMARK(BM_GoldfishCompositeLoss);

}  // namespace
}  // namespace goldfish

BENCHMARK_MAIN();
