// Data-partition optimization (Fig. 2–3, Eq. 8–10): a client's local data is
// split into τ shards, each with its own model; the client's local model is
// the size-weighted average of shard models (Eq. 8). A deletion request only
// retrains the shards that contain removed rows, restarting from their
// current weights (the "checkpoint", Eq. 9) instead of re-initializing; the
// untouched shards' contribution is reused as-is. Eq. 10 recovers a shard's
// weights from the aggregate — implemented and verified as the algebraic
// inverse of Eq. 8.
#pragma once

#include "data/dataset.h"
#include "fl/trainer.h"
#include "nn/model.h"
#include "runtime/scheduler.h"

namespace goldfish::core {

class ShardManager {
 public:
  /// Splits `local_data` into `num_shards` shards and gives each shard a
  /// fresh clone of `init` (weights included).
  ShardManager(const nn::Model& init, data::Dataset local_data,
               long num_shards, Rng& rng);

  long num_shards() const { return static_cast<long>(shards_.size()); }
  long total_rows() const;
  long shard_rows(long shard) const;

  /// Train every shard model on its own shard for `opts.epochs`, in
  /// parallel on the runtime Scheduler (nullptr → the shared global pool;
  /// nesting inside an FL client task is safe — the Scheduler runs nested
  /// work inline or on free workers). Used both for initial training and
  /// for continued rounds.
  void train_all(const fl::TrainOptions& opts,
                 runtime::Scheduler* sched = nullptr);

  /// Eq. 8: size-weighted average of shard models — the client's local model.
  std::vector<Tensor> aggregate() const;

  /// Report of a deletion pass.
  struct DeletionReport {
    std::vector<long> affected_shards;
    long rows_deleted = 0;
    long rows_retrained = 0;  ///< total rows in the retrained shards
  };

  /// Remove the given rows (indices into the *original* client dataset).
  /// Affected shards are **re-initialized and retrained** on their remaining
  /// rows — their old weights were influenced by the deleted data, so
  /// keeping them would not unlearn. Unaffected shards are untouched; their
  /// aggregate is the Eq. 9 checkpoint the client resumes from. Multiple
  /// affected shards retrain in parallel (Fig. 3). Rows already deleted are
  /// ignored; shards whose data empties out drop from aggregation.
  DeletionReport delete_rows(const std::vector<std::size_t>& rows,
                             const fl::TrainOptions& opts,
                             runtime::Scheduler* sched = nullptr);

  /// Eq. 10: recover shard i's weights from the aggregate by subtracting the
  /// other shards' weighted contributions. Exposed for verification; the
  /// identity aggregate→recover == stored weights is tested.
  std::vector<Tensor> recover_shard_weights(long shard) const;

  /// Direct access for tests/benches.
  nn::Model& shard_model(long shard);
  const data::Dataset& shard_data(long shard) const;
  /// Original-dataset row ids held by a shard (deletion requests are
  /// expressed in those ids).
  const std::vector<std::size_t>& shard_row_ids(long shard) const;

 private:
  struct Shard {
    data::Dataset data;
    /// Original-dataset row ids for membership lookup on deletion.
    std::vector<std::size_t> row_ids;
    nn::Model model;
  };

  std::vector<Shard> shards_;
  nn::Model init_;  // pristine initial weights; deletion resets from here
  std::uint64_t train_seed_ = 0x5eed;
};

}  // namespace goldfish::core
