file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_backdoor_asr.dir/bench_fig5_backdoor_asr.cpp.o"
  "CMakeFiles/bench_fig5_backdoor_asr.dir/bench_fig5_backdoor_asr.cpp.o.d"
  "bench_fig5_backdoor_asr"
  "bench_fig5_backdoor_asr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_backdoor_asr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
