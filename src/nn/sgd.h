// SGD with momentum — the optimizer used throughout the paper
// (η = 0.001, β = 0.9 in the experimental setup).
#pragma once

#include "nn/model.h"

namespace goldfish::nn {

class Sgd {
 public:
  struct Options {
    float lr = 0.001f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;
    /// Gradient-norm clip; <= 0 disables. The Goldfish hard loss maximizes
    /// the forget-set loss, which can produce occasional large gradients —
    /// clipping keeps unlearning runs stable (DESIGN.md §5).
    float clip_norm = 5.0f;
  };

  Sgd() = default;
  explicit Sgd(Options opts) : opts_(opts) {}

  const Options& options() const { return opts_; }
  void set_lr(float lr) { opts_.lr = lr; }

  /// Apply one update step from the model's accumulated gradients, then
  /// zero them. Parameters without gradients (batch-norm running stats) are
  /// untouched.
  void step(Model& model);

 private:
  Options opts_;
  // Momentum buffers keyed by parameter order; sized lazily on first step.
  std::vector<Tensor> velocity_;
};

}  // namespace goldfish::nn
