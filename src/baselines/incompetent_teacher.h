// Baseline B3: unlearning via an incompetent teacher (Chundawat et al.,
// AAAI'23), lifted to the federated setting.
//
// The student starts from the trained model (model-update adjustment, no
// full retraining). Two teachers guide it: the *competent* teacher (the
// trained model itself) on the remaining data, and an *incompetent* teacher
// (a randomly initialized network) on the removed data. Matching the random
// teacher's outputs on D_f scrubs the learned pattern while the competent
// teacher preserves utility on D_r.
#pragma once

#include "fl/simulation.h"

namespace goldfish::baselines {

struct IncompetentTeacherConfig {
  fl::FlConfig fl;
  float kd_temperature = 1.0f;  ///< AAAI'23 uses T = 1 by default
  /// Weight of the incompetent-teacher KL term on D_f.
  float forget_weight = 1.0f;
};

/// Run federated incompetent-teacher unlearning. `trained` is the
/// contaminated global model (also the starting student and the competent
/// teacher); `incompetent_init` is a never-trained model of the same
/// architecture. `remaining` / `removed` are per-client splits (removed may
/// be empty for normal clients).
std::vector<fl::RoundResult> incompetent_teacher_unlearn(
    const nn::Model& trained, const nn::Model& incompetent_init,
    std::vector<data::Dataset> remaining, std::vector<data::Dataset> removed,
    data::Dataset server_test, const IncompetentTeacherConfig& cfg,
    long rounds, nn::Model* model_out = nullptr);

}  // namespace goldfish::baselines
