#!/usr/bin/env python3
"""Docs link check: fail CI when a Markdown file has a dead relative link.

Usage: check_doc_links.py [REPO_ROOT]

Walks every *.md file in the repo (skipping build output and .git), extracts
inline Markdown links and images [text](target), and verifies that each
relative target exists on disk, resolved against the file's directory.
Anchors (#section) are stripped before the check; absolute URLs (http:,
https:, mailto:) are out of scope — this gate is about the repo's own docs
staying navigable as files move.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "third_party", "node_modules"}

# Inline links/images: [text](target) — tolerates one level of nested
# brackets in the text, stops the target at the first ')' or whitespace
# (titles like [x](y "t") keep working: the path part is what we check).
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(\s*<?([^)<>\s]+)>?")


def is_external(target: str) -> bool:
    return re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target) is not None


def check_file(root: str, md_path: str) -> list:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks routinely contain [x](y)-shaped non-links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if is_external(target):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        if path.startswith("/"):
            resolved = os.path.join(root, path.lstrip("/"))
        else:
            resolved = os.path.join(os.path.dirname(md_path), path)
        if not os.path.exists(resolved):
            rel = os.path.relpath(md_path, root)
            errors.append(f"{rel}: dead link '{target}'")
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    checked = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                checked += 1
                errors.extend(check_file(root, os.path.join(dirpath, name)))
    if errors:
        print(f"Docs link check FAILED ({checked} files):", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print(f"Docs link check passed ({checked} Markdown files).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
