// Fig. 8 (a–c): FedAvg vs the adaptive-weight aggregation (Eq. 12–13) under
// heterogeneous client data, for 5 / 15 / 25 clients, with min–max local
// accuracy ranges. Paper shape: adaptive aggregation reaches higher global
// accuracy sooner in the early rounds because strong local models dominate
// the average; FedAvg catches up late.
#include "bench/common.h"

namespace goldfish::bench {
namespace {

void run_clients(long clients) {
  const auto prof = profile(data::DatasetKind::Mnist);
  const long per_client_budget = metrics::full_scale() ? 160 : 60;
  auto tt = data::make_synthetic(data::default_spec(
      data::DatasetKind::Mnist, 800 + static_cast<std::uint64_t>(clients),
      clients * per_client_budget, prof.test_size));
  Rng rng(801);
  data::HeteroOptions opt;
  auto parts = data::partition_heterogeneous(tt.train, clients, opt, rng);
  const long rounds = metrics::full_scale() ? 10 : 6;

  metrics::TableReporter table(
      "Fig.8 — heterogeneous data, " + std::to_string(clients) + " clients",
      {"round", "FedAvg", "FedAvg min", "FedAvg max", "Ours", "Ours min",
       "Ours max"});

  Rng mrng(802);
  nn::Model init = nn::make_model(prof.arch, tt.train.geom,
                                  tt.train.num_classes, mrng);
  std::vector<std::vector<fl::RoundResult>> runs;
  // "FedAvg" here is uniform parameter averaging — the variant the paper's
  // comparison exhibits (see EXPERIMENTS.md); the size-weighted FedAvg lives
  // in FedAvgAggregator.
  for (const char* agg : {"uniform", "adaptive"}) {
    fl::FlConfig cfg;
    cfg.aggregator = agg;
    cfg.local.epochs = prof.local_epochs;
    cfg.local.batch_size = prof.batch;
    cfg.local.lr = prof.lr;
    fl::FederatedSim sim(init, parts, tt.test, cfg);
    runs.push_back(sim.run(rounds));
  }

  for (long r = 0; r < rounds; ++r) {
    const auto& fa = runs[0][std::size_t(r)];
    const auto& ad = runs[1][std::size_t(r)];
    table.add_row({std::to_string(r + 1), metrics::fmt(fa.global_accuracy),
                   metrics::fmt(fa.min_local_accuracy),
                   metrics::fmt(fa.max_local_accuracy),
                   metrics::fmt(ad.global_accuracy),
                   metrics::fmt(ad.min_local_accuracy),
                   metrics::fmt(ad.max_local_accuracy)});
  }
  table.print();
  table.write_csv(csv_dir() + "/fig8_clients" + std::to_string(clients) +
                  ".csv");
}

}  // namespace
}  // namespace goldfish::bench

int main() {
  goldfish::bench::print_header(
      "Fig. 8: FedAvg vs adaptive aggregation, heterogeneous data");
  for (long clients : {5L, 15L, 25L}) goldfish::bench::run_clients(clients);
  return 0;
}
