#include "core/sharded_client.h"

#include "tensor/check.h"

namespace goldfish::core {

ShardedClientFleet::ShardedClientFleet(
    const nn::Model& init, const std::vector<data::Dataset>& client_data,
    long shards_per_client, Rng& rng) {
  GOLDFISH_CHECK(!client_data.empty(), "fleet needs clients");
  managers_.reserve(client_data.size());
  for (const data::Dataset& ds : client_data) {
    Rng client_rng = rng.split();
    managers_.push_back(std::make_unique<ShardManager>(
        init, ds, shards_per_client, client_rng));
  }
}

ShardManager& ShardedClientFleet::manager(std::size_t client) {
  GOLDFISH_CHECK(client < managers_.size(), "client out of range");
  return *managers_[client];
}

fl::FederatedSim::ClientUpdateFn ShardedClientFleet::update_fn(
    fl::TrainOptions base_opts, runtime::Scheduler* sched) {
  return [this, base_opts, sched](std::size_t client, nn::Model& upload,
                                  const data::Dataset& /*unused*/,
                                  long round) {
    ShardManager& mgr = manager(client);
    fl::TrainOptions opts = base_opts;
    opts.seed = base_opts.seed ^ (0x5A4Dull * (client + 1)) ^
                static_cast<std::uint64_t>(round);
    mgr.train_all(opts, sched);
    upload.load(mgr.aggregate());
  };
}

ShardManager::DeletionReport ShardedClientFleet::delete_rows(
    std::size_t client, const std::vector<std::size_t>& rows,
    const fl::TrainOptions& opts, runtime::Scheduler* sched) {
  return manager(client).delete_rows(rows, opts, sched);
}

}  // namespace goldfish::core
