// Population-scale scenario benchmark (google-benchmark): a federation of
// 10^5 registered clients driven through cohort-sampled buffered
// aggregations by the population engine (src/fl/population/). Client state
// lives cold in the GFP1 client-state store and is materialized into pooled
// slots only for the sampled cohort, so resident dataset memory is
// O(cohort), not O(population).
//
// The CI ratchet gates the memory model, not just throughput:
//   * population_clients  (counters_min) — the bench really registers 10^5;
//   * resident_bytes ≤ 0.05 × cold_bytes (counters_max, max_times_counter) —
//     the peak materialized footprint stays a few percent of the cold store,
//     i.e. proportional to the cohort rather than the population.
// peak_rss_bytes (VmHWM) is reported alongside as the OS-level view.
#include <benchmark/benchmark.h>

#include "common.h"
#include "fl/engine.h"

namespace goldfish {
namespace {

// 10^5 registered clients, 64 sampled per server version, K = 32 buffered
// updates per aggregation. Rows are tiny (two 1×4×4 examples per client):
// the regime under test is state management at population scale, not local
// SGD throughput.
constexpr std::size_t kPopulation = 100000;
constexpr std::size_t kCohort = 64;
constexpr long kBuffer = 32;
constexpr long kAggsPerIter = 3;
constexpr long kRowsPerClient = 2;
constexpr long kTestRows = 256;
constexpr long kClasses = 2;
const nn::InputGeom kGeom{1, 4, 4};

data::Dataset make_client_rows(long rows, std::uint64_t seed) {
  data::Dataset ds;
  ds.num_classes = kClasses;
  ds.geom = kGeom;
  ds.features = Tensor::uninit({rows, kGeom.flat()});
  Rng rng(seed);
  float* f = ds.features.data();
  for (long i = 0; i < ds.features.numel(); ++i)
    f[i] = float(rng.uniform()) - 0.5f;
  ds.labels.resize(static_cast<std::size_t>(rows));
  for (auto& y : ds.labels) y = static_cast<long>(rng.uniform_index(kClasses));
  return ds;
}

void BM_FlScenarioPopulation(benchmark::State& state) {
  fl::population::Population pop;
  for (std::size_t c = 0; c < kPopulation; ++c)
    pop.clients.add(make_client_rows(kRowsPerClient, 0xBADC0FFEEull + c));

  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = kRowsPerClient;
  cfg.async.buffer_size = kBuffer;
  Rng rng(31);
  nn::Model global = nn::make_mlp(kGeom, 8, kClasses, rng);
  fl::Engine eng(std::move(global), std::move(pop),
                 make_client_rows(kTestRows, 0xF00Dull), cfg);

  std::uint64_t round = 0;
  const auto scenario = [&] {
    fl::Scenario s = eng.async_scenario(kAggsPerIter);
    s.participation =
        std::make_unique<fl::CohortParticipation>(kCohort, 71 + round++);
    return s;
  };
  eng.run(scenario(), {});  // warm the slot pool, replicas and recycler
  long updates = 0;
  for (auto _ : state) {
    eng.run(scenario(), [&](const fl::StepResult& r) {
      updates += r.updates_consumed;
      benchmark::DoNotOptimize(r.global_accuracy);
    });
  }
  state.SetItemsProcessed(updates);

  const auto& store = eng.population()->clients;
  state.counters["population_clients"] = double(store.num_clients());
  state.counters["cold_bytes"] = double(store.cold_bytes());
  // Peak materialized dataset bytes across the whole run — the number the
  // O(cohort) claim is about (resident_bytes() itself is 0 between runs:
  // every slot is released when a run commits).
  state.counters["resident_bytes"] = double(store.peak_resident_bytes());
  state.counters["materializations"] = double(store.materializations());
  state.counters["unique_snapshots"] =
      double(eng.population()->snapshots.unique_snapshots());
  state.counters["peak_rss_bytes"] = double(bench::process_peak_rss_bytes());
}
BENCHMARK(BM_FlScenarioPopulation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goldfish

BENCHMARK_MAIN();
