#include "runtime/gemm.h"

#include <algorithm>
#include <cstddef>
#include <memory>

#include "runtime/scheduler.h"

namespace goldfish::runtime {

namespace {

// Microkernel tile, sized so the accumulator block fills most of the
// vector register file of the widest ISA the compiler targets: 8×32 under
// AVX-512 (16 of 32 zmm accumulators), 6×16 under AVX/AVX2 (12 of 16 ymm),
// 4×8 for plain SSE (8 of 16 xmm).
#if defined(__AVX512F__)
constexpr long MR = 8, NR = 32;
#elif defined(__AVX2__) || defined(__AVX__)
constexpr long MR = 6, NR = 16;
#else
constexpr long MR = 4, NR = 8;
#endif
constexpr long KC = 256;       // inner-dimension slice (packed panels in L1/L2)
constexpr long MC = MR * 16;   // row panel height per parallel task
constexpr long NC = NR * 64;   // column panel width (packed B slice in L2/L3)

// Below this flop count the packing and scheduling overhead dominates;
// run the packed loop serially on the calling thread.
constexpr long kParallelFlops = 1L << 18;

/// Monotonically growing per-thread packing scratch. GEMM used to heap-
/// allocate its pack buffers on every call; steady-state training reuses the
/// same shapes over and over, so after warm-up ensure() never allocates.
///
/// Safety of thread_local here: the thread that opens a parallel region only
/// ever executes chunks of its *own* region while waiting (Scheduler::
/// run_chunks), and GEMM's chunk bodies never open nested regions or call
/// back into sgemm, so a live buffer can never be clobbered by re-entry on
/// the same thread. Worker threads reading the caller's B panel do so
/// through the captured pointer, not their own thread_local slot.
class PackBuffer {
 public:
  float* ensure(std::size_t need) {
    if (cap_ < need) {
      data_.reset(new float[need]);  // default-init: no memset on growth
      cap_ = need;
    }
    return data_.get();
  }

 private:
  std::unique_ptr<float[]> data_;
  std::size_t cap_ = 0;
};

thread_local PackBuffer tl_pack_a;
thread_local PackBuffer tl_pack_b;

/// Per-tile writeback mode: how the microkernel's register block lands in C.
/// `overwrite` is set on the first KC slice of a beta=0 product (C's prior
/// contents are not read); the bias/relu fields are set only on the final KC
/// slice, where the epilogue fires.
struct Writeback {
  bool overwrite = false;
  bool relu = false;
  const float* bias_col = nullptr;  // tile-local: indexed by j in [0, nr)
  const float* bias_row = nullptr;  // tile-local: indexed by i in [0, mr)
};

inline float elem_a(const float* A, long lda, bool trans, long i, long p) {
  return trans ? A[p * lda + i] : A[i * lda + p];
}

inline float elem_b(const float* B, long ldb, bool trans, long p, long j) {
  return trans ? B[j * ldb + p] : B[p * ldb + j];
}

/// Pack op(A)[i0:i0+mc, p0:p0+kc] into MR-tall micro-panels: panel ir holds
/// kc groups of MR consecutive row elements, zero-padded past mc.
void pack_a(const float* A, long lda, bool trans, long i0, long mc, long p0,
            long kc, float* dst) {
  for (long ir = 0; ir < mc; ir += MR) {
    const long mr = std::min(MR, mc - ir);
    for (long p = 0; p < kc; ++p) {
      for (long i = 0; i < mr; ++i)
        dst[i] = elem_a(A, lda, trans, i0 + ir + i, p0 + p);
      for (long i = mr; i < MR; ++i) dst[i] = 0.0f;
      dst += MR;
    }
  }
}

/// Pack op(B)[p0:p0+kc, j0:j0+nc] into NR-wide micro-panels: panel jr holds
/// kc groups of NR consecutive column elements, zero-padded past nc.
void pack_b(const float* B, long ldb, bool trans, long p0, long kc, long j0,
            long nc, float* dst) {
  for (long jr = 0; jr < nc; jr += NR) {
    const long nr = std::min(NR, nc - jr);
    for (long p = 0; p < kc; ++p) {
      for (long j = 0; j < nr; ++j)
        dst[j] = elem_b(B, ldb, trans, p0 + p, j0 + jr + j);
      for (long j = nr; j < NR; ++j) dst[j] = 0.0f;
      dst += NR;
    }
  }
}

// Register-tiled microkernel: acc(MR×NR) = Σ_p Ap[p]·Bp[p] over one packed
// panel pair, then land the valid mr×nr region in C per the Writeback mode
// (overwrite vs accumulate, optional fused bias broadcast and ReLU — all
// applied while the tile is still in registers, so the epilogue costs no
// extra pass over C). Written with GCC/Clang vector extensions because the
// auto-vectorizer reliably fails to promote a scalar float acc[MR][NR] into
// full-width registers (it picked 128-bit lanes and spilled); an explicit
// vector accumulator block pins both the width and the register residency.
#if defined(__AVX__) || defined(__AVX512F__)

#if defined(__AVX512F__)
typedef float vecf __attribute__((vector_size(64), aligned(4)));
#else
typedef float vecf __attribute__((vector_size(32), aligned(4)));
#endif
constexpr long VL = static_cast<long>(sizeof(vecf) / sizeof(float));
static_assert(NR == 2 * VL, "microkernel assumes two vectors per row");

void micro_kernel(long kc, const float* Ap, const float* Bp, float* C,
                  long ldc, long mr, long nr, const Writeback& wb) {
  vecf acc0[MR] = {};
  vecf acc1[MR] = {};
  for (long p = 0; p < kc; ++p) {
    const vecf b0 = *reinterpret_cast<const vecf*>(Bp + p * NR);
    const vecf b1 = *reinterpret_cast<const vecf*>(Bp + p * NR + VL);
    const float* a = Ap + p * MR;
    for (long i = 0; i < MR; ++i) {  // constant bound → fully unrolled
      acc0[i] += a[i] * b0;          // scalar a[i] splats across the lanes
      acc1[i] += a[i] * b1;
    }
  }
  if (mr == MR && nr == NR) {
    const vecf vzero = {};
    vecf bc0 = {}, bc1 = {};
    if (wb.bias_col) {
      bc0 = *reinterpret_cast<const vecf*>(wb.bias_col);
      bc1 = *reinterpret_cast<const vecf*>(wb.bias_col + VL);
    }
    for (long i = 0; i < MR; ++i) {
      vecf* c = reinterpret_cast<vecf*>(C + i * ldc);
      vecf r0 = acc0[i];
      vecf r1 = acc1[i];
      if (!wb.overwrite) {
        r0 += c[0];
        r1 += c[1];
      }
      if (wb.bias_col) {
        r0 += bc0;
        r1 += bc1;
      }
      if (wb.bias_row) {
        r0 += wb.bias_row[i];
        r1 += wb.bias_row[i];
      }
      if (wb.relu) {
        r0 = r0 > vzero ? r0 : vzero;
        r1 = r1 > vzero ? r1 : vzero;
      }
      c[0] = r0;
      c[1] = r1;
    }
  } else {
    for (long i = 0; i < mr; ++i) {
      const float* row0 = reinterpret_cast<const float*>(&acc0[i]);
      const float* row1 = reinterpret_cast<const float*>(&acc1[i]);
      for (long j = 0; j < nr; ++j) {
        float v = j < VL ? row0[j] : row1[j - VL];
        if (!wb.overwrite) v += C[i * ldc + j];
        if (wb.bias_col) v += wb.bias_col[j];
        if (wb.bias_row) v += wb.bias_row[i];
        if (wb.relu) v = v > 0.0f ? v : 0.0f;
        C[i * ldc + j] = v;
      }
    }
  }
}

#else  // scalar fallback (no AVX): small tile, plain float accumulators

void micro_kernel(long kc, const float* Ap, const float* Bp, float* C,
                  long ldc, long mr, long nr, const Writeback& wb) {
  float acc[MR][NR] = {};
  for (long p = 0; p < kc; ++p) {
    const float* b = Bp + p * NR;
    const float* a = Ap + p * MR;
    for (long i = 0; i < MR; ++i) {
      const float ai = a[i];
      for (long j = 0; j < NR; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (long i = 0; i < mr; ++i) {
    for (long j = 0; j < nr; ++j) {
      float v = acc[i][j];
      if (!wb.overwrite) v += C[i * ldc + j];
      if (wb.bias_col) v += wb.bias_col[j];
      if (wb.bias_row) v += wb.bias_row[i];
      if (wb.relu) v = v > 0.0f ? v : 0.0f;
      C[i * ldc + j] = v;
    }
  }
}

#endif

/// Degenerate k ≤ 0: the product term is empty, but beta and the epilogue
/// still define C. Kept off the hot path; loops are fine.
void epilogue_only(long m, long n, float* C, long ldc, float beta, Epilogue ep,
                   const float* bias) {
  const bool col = ep == Epilogue::kBiasCol || ep == Epilogue::kBiasColRelu;
  const bool row = ep == Epilogue::kBiasRow || ep == Epilogue::kBiasRowRelu;
  const bool relu =
      ep == Epilogue::kBiasColRelu || ep == Epilogue::kBiasRowRelu;
  for (long i = 0; i < m; ++i) {
    for (long j = 0; j < n; ++j) {
      float v = beta == 0.0f ? 0.0f : C[i * ldc + j];
      if (col) v += bias[j];
      if (row) v += bias[i];
      if (relu) v = v > 0.0f ? v : 0.0f;
      C[i * ldc + j] = v;
    }
  }
}

}  // namespace

void sgemm(bool transa, bool transb, long m, long n, long k, const float* A,
           long lda, const float* B, long ldb, float* C, long ldc, float beta,
           Epilogue epilogue, const float* bias, Scheduler* sched) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    epilogue_only(m, n, C, ldc, beta, epilogue, bias);
    return;
  }
  if (sched == nullptr) sched = &Scheduler::global();
  const bool parallel = m * n * k >= kParallelFlops;

  const bool bias_is_col =
      epilogue == Epilogue::kBiasCol || epilogue == Epilogue::kBiasColRelu;
  const bool bias_is_row =
      epilogue == Epilogue::kBiasRow || epilogue == Epilogue::kBiasRowRelu;
  const bool fuse_relu =
      epilogue == Epilogue::kBiasColRelu || epilogue == Epilogue::kBiasRowRelu;

  float* bp = tl_pack_b.ensure(static_cast<std::size_t>(
      ((std::min(n, NC) + NR - 1) / NR) * NR * std::min(k, KC)));

  for (long jc = 0; jc < n; jc += NC) {
    const long nc = std::min(NC, n - jc);
    for (long pc = 0; pc < k; pc += KC) {
      const long kc = std::min(KC, k - pc);
      pack_b(B, ldb, transb, pc, kc, jc, nc, bp);

      // beta only governs the first KC slice (later slices accumulate the
      // partial product already in C); the epilogue fires on the last.
      const bool overwrite = pc == 0 && beta == 0.0f;
      const bool last = pc + kc >= k;
      const float* bias_col = last && bias_is_col ? bias + jc : nullptr;
      const float* bias_row = last && bias_is_row ? bias : nullptr;
      const bool relu = last && fuse_relu;

      const long num_row_panels = (m + MC - 1) / MC;
      if (num_row_panels > 1) {
        // Tall C: split row panels across the pool (each task packs its
        // own A panel). Both branches reduce k in the same fixed order,
        // so the branch choice never affects the result.
        const auto row_panel = [&](long lo, long hi) {
          float* ap = tl_pack_a.ensure(static_cast<std::size_t>(MC * kc));
          for (long panel = lo; panel < hi; ++panel) {
            const long ic = panel * MC;
            const long mc = std::min(MC, m - ic);
            pack_a(A, lda, transa, ic, mc, pc, kc, ap);
            for (long jr = 0; jr < nc; jr += NR) {
              const float* bpanel = bp + (jr / NR) * kc * NR;
              for (long ir = 0; ir < mc; ir += MR) {
                Writeback wb;
                wb.overwrite = overwrite;
                wb.relu = relu;
                if (bias_col) wb.bias_col = bias_col + jr;
                if (bias_row) wb.bias_row = bias_row + ic + ir;
                micro_kernel(kc, ap + (ir / MR) * kc * MR, bpanel,
                             C + (ic + ir) * ldc + jc + jr, ldc,
                             std::min(MR, mc - ir), std::min(NR, nc - jr), wb);
              }
            }
          }
        };
        if (parallel) {
          sched->parallel_for(num_row_panels, row_panel, /*grain=*/1);
        } else {
          row_panel(0, num_row_panels);
        }
      } else {
        // Short-fat C (m ≤ MC — conv forward is outC × N·oh·ow): a single
        // row panel would serialize everything, so pack A once and split
        // the NR-wide column tiles across the pool instead.
        float* ap = tl_pack_a.ensure(static_cast<std::size_t>(MC * kc));
        pack_a(A, lda, transa, 0, m, pc, kc, ap);
        const long num_col_tiles = (nc + NR - 1) / NR;
        const auto col_tiles = [&](long lo, long hi) {
          for (long tile = lo; tile < hi; ++tile) {
            const long jr = tile * NR;
            const float* bpanel = bp + tile * kc * NR;
            for (long ir = 0; ir < m; ir += MR) {
              Writeback wb;
              wb.overwrite = overwrite;
              wb.relu = relu;
              if (bias_col) wb.bias_col = bias_col + jr;
              if (bias_row) wb.bias_row = bias_row + ir;
              micro_kernel(kc, ap + (ir / MR) * kc * MR, bpanel,
                           C + ir * ldc + jc + jr, ldc, std::min(MR, m - ir),
                           std::min(NR, nc - jr), wb);
            }
          }
        };
        if (parallel && num_col_tiles > 1) {
          sched->parallel_for(num_col_tiles, col_tiles, /*grain=*/4);
        } else {
          col_tiles(0, num_col_tiles);
        }
      }
    }
  }
}

void sgemm(bool transa, bool transb, long m, long n, long k, const float* A,
           long lda, const float* B, long ldb, float* C, long ldc,
           Scheduler* sched) {
  sgemm(transa, transb, m, n, k, A, lda, B, ldb, C, ldc, /*beta=*/1.0f,
        Epilogue::kNone, /*bias=*/nullptr, sched);
}

}  // namespace goldfish::runtime
