file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_heterogeneity.dir/bench_table12_heterogeneity.cpp.o"
  "CMakeFiles/bench_table12_heterogeneity.dir/bench_table12_heterogeneity.cpp.o.d"
  "bench_table12_heterogeneity"
  "bench_table12_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
