#include "nn/sgd.h"

#include <cmath>

namespace goldfish::nn {

void Sgd::step(Model& model) {
  auto params = model.params();
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const ParamRef& p : params)
      velocity_.push_back(Tensor::zeros(p.value->shape()));
  }
  GOLDFISH_CHECK(velocity_.size() == params.size(),
                 "optimizer bound to a different model structure");

  // Global gradient-norm clip across all trainable tensors.
  float scale = 1.0f;
  if (opts_.clip_norm > 0.0f) {
    double norm_sq = 0.0;
    for (const ParamRef& p : params)
      if (p.grad != nullptr) norm_sq += p.grad->squared_norm();
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    if (norm > opts_.clip_norm) scale = opts_.clip_norm / norm;
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    ParamRef& p = params[i];
    if (p.grad == nullptr) continue;
    Tensor& v = velocity_[i];
    float* vd = v.data();
    float* wd = p.value->data();
    const float* gd = p.grad->data();
    for (std::size_t j = 0; j < v.numel(); ++j) {
      float g = gd[j] * scale;
      if (opts_.weight_decay > 0.0f) g += opts_.weight_decay * wd[j];
      vd[j] = opts_.momentum * vd[j] + g;
      wd[j] -= opts_.lr * vd[j];
    }
    p.grad->zero();
  }
}

}  // namespace goldfish::nn
