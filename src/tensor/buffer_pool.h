// Recycling pool for Tensor storage (FloatBuffer) plus an allocation
// counter, the substrate of the zero-allocation federated round loop.
//
// While at least one BufferPoolScope is alive, every FloatBuffer that is
// freed parks its storage in a process-wide, size-keyed free list instead of
// returning it to the heap, and every FloatBuffer allocation of a size seen
// before is served from that list. A steady-state workload that allocates
// the same multiset of sizes each iteration (an FL round: batch tensors,
// loss temporaries, optimizer state, snapshot/upload copies) therefore stops
// touching the heap after its first iteration. When the last scope closes
// the parked storage is released.
//
// The pool is deliberately global rather than thread-local: client tasks are
// assigned to scheduler threads dynamically and client uploads are freed on
// the aggregating thread, so buffers must be able to migrate between threads
// to reach a zero-allocation fixed point. Traffic is coarse (whole tensors,
// thousands of events per round, not millions), so one mutex is cheap.
//
// The counter tracks *heap* allocations only (pool hits are free); it is
// compiled in when GOLDFISH_ALLOC_STATS is defined (CMake option, default
// ON) and is how bench_fl_round and the CI ratchet assert that a steady
// round performs zero heap allocations.
#pragma once

#include <cstddef>

namespace goldfish {

namespace detail {

/// Allocate storage for `n` floats: from the recycling pool when a scope is
/// active and a same-size block is parked, from the heap otherwise.
float* pool_allocate_float(std::size_t n);

/// Release storage for `n` floats: parked in the pool when a scope is
/// active, returned to the heap otherwise.
void pool_deallocate_float(float* p, std::size_t n) noexcept;

}  // namespace detail

/// RAII activation of FloatBuffer recycling; scopes nest (refcounted), and
/// parked storage is released when the last one closes. FederatedSim holds
/// one for its lifetime so rounds recycle across run_round calls.
class BufferPoolScope {
 public:
  BufferPoolScope();
  ~BufferPoolScope();
  BufferPoolScope(const BufferPoolScope&) = delete;
  BufferPoolScope& operator=(const BufferPoolScope&) = delete;
};

namespace alloc_stats {

/// True when the library was built with GOLDFISH_ALLOC_STATS.
bool enabled();

/// Number of FloatBuffer allocations that hit the heap (pool misses
/// included, pool hits not) since process start. Always 0 when !enabled().
std::size_t heap_allocations();

}  // namespace alloc_stats

}  // namespace goldfish
