#!/usr/bin/env python3
"""goldfish-lint: repo-specific static enforcement of the determinism and
zero-allocation contracts (docs/static-analysis.md has the full catalog).

The engine runs are bit-identical at any thread count and allocation-free in
steady state. Those contracts are enforced dynamically by golden-stream tests,
GOLDFISH_ALLOC_STATS counters and TSan — but a stray wall-clock read or an
unordered_map iteration compiles clean and only fails when a sweep happens to
catch it. This checker makes the cheap half static:

  DET001  banned randomness source (std::rand, std::random_device, *rand48)
          in a determinism-scoped directory (src/fl, src/runtime, src/core).
  DET002  wall-clock read (system_clock / steady_clock /
          high_resolution_clock, time(), clock(), gettimeofday,
          clock_gettime, timespec_get) in a determinism-scoped directory.
          The TraceClock policy replays *recorded* durations and needs no
          clock; bench binaries (bench/) are outside the scope by design.
  DET003  range-for over an unordered container in a determinism-scoped
          directory. Hash-iteration order is libstdc++-internal and
          pointer/seed dependent; results that feed StepResult streams or
          aggregation silently stop being bit-identical. Order-insensitive
          loops (e.g. freeing every pointer in a drained pool) carry an
          inline allow with the reason.
  DET004  ordered container keyed by raw pointer (std::map<T*, ...>,
          std::set<T*>, std::less<T*>): iteration order is allocation-address
          order, different every run.
  ALLOC001  direct `new` / make_unique / make_shared inside a GOLDFISH_HOT
            function (src/tensor/annotations.h): hot paths may not allocate.
  ALLOC002  growing container op (push_back, emplace_back, resize, reserve,
            insert, emplace, append, assign) inside a GOLDFISH_HOT function.
  SUP001  a `goldfish-lint: allow(...)` suppression without a reason.

Engines: `--engine=clang` parses each translation unit with libclang (driven
by compile_commands.json); `--engine=token` is a dependency-free lexical
fallback; `--engine=auto` (default) picks clang when the python bindings are
importable and falls back per-file on any parse failure. Both engines share
suppression parsing, fingerprinting and the baseline gate, and the fixture
suite (tools/lint/tests) pins them to the same verdicts.

Suppressing a finding:
    some_call();  // goldfish-lint: allow(DET002) reason why this is safe
or, on its own line (applies to the next code line):
    // goldfish-lint: allow(ALLOC002) capacity reserved once per round
    out.push_back(x);

Baseline workflow: findings fingerprinted in tools/lint/
goldfish_lint_baseline.json are legacy debt — reported as "baselined", they
do not fail the run. New findings fail with exit 1. After fixing or
deliberately accepting findings, refresh with --update-baseline.

Exit codes: 0 clean (possibly with baselined/stale entries), 1 new findings,
2 usage or infrastructure error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys

RULES = {
    "DET001": "banned randomness source in determinism-scoped code",
    "DET002": "wall-clock read in determinism-scoped code",
    "DET003": "iteration over an unordered container (hash order leaks)",
    "DET004": "ordered container keyed by raw pointer (address order leaks)",
    "ALLOC001": "allocation (new/make_unique/make_shared) in GOLDFISH_HOT",
    "ALLOC002": "growing container op in GOLDFISH_HOT",
    "SUP001": "goldfish-lint suppression without a reason",
}

# Directories (repo-relative) where the DET family applies.
DEFAULT_DET_SCOPE = ("src/fl", "src/runtime", "src/core")
# Extensions scanned.
SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc", ".cxx")

GROWING_OPS = ("push_back", "emplace_back", "resize", "reserve", "insert",
               "emplace", "append", "assign")

SUPPRESS_RE = re.compile(
    r"//\s*goldfish-lint:\s*allow\(([^)]*)\)[ \t]*(.*?)\s*$")


class Finding:
    __slots__ = ("rule", "path", "line", "snippet")

    def __init__(self, rule, path, line, snippet):
        self.rule = rule
        self.path = path  # repo-relative, "/" separators
        self.line = line  # 1-based
        self.snippet = snippet.strip()

    def normalized(self):
        return re.sub(r"\s+", " ", self.snippet)

    def sort_key(self):
        return (self.path, self.line, self.rule)

    def __repr__(self):
        return f"{self.path}:{self.line}: {self.rule}"


def fingerprint(finding, occurrence):
    """Stable across line renumbering: hashes rule + file + the normalized
    offending line + its occurrence index among identical lines."""
    key = "|".join(
        [finding.rule, finding.path, finding.normalized(), str(occurrence)])
    return hashlib.sha1(key.encode()).hexdigest()[:16]


def assign_fingerprints(findings):
    """Returns {fingerprint: finding}, disambiguating identical lines by
    their order of appearance."""
    seen = {}
    out = {}
    for f in sorted(findings, key=lambda x: x.sort_key()):
        base = (f.rule, f.path, f.normalized())
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        out[fingerprint(f, occurrence)] = f
    return out


# -- shared lexical helpers ---------------------------------------------------

def mask_comments_and_strings(text):
    """Replace comment/string contents with spaces, preserving offsets and
    newlines, so token scans never fire inside either."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    if text[i + 1] != "\n":
                        out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def is_comment_only(line):
    s = line.strip()
    return s == "" or s.startswith("//") or s.startswith("/*") or s == "*/"


def parse_suppressions(text, path):
    """Returns ({line: set(rules)}, [SUP001 findings]). A suppression on a
    code line covers that line; a standalone suppression comment covers the
    next non-comment line."""
    lines = text.splitlines()
    allowed = {}
    sup_findings = []
    for idx, raw in enumerate(lines):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(2).strip()
        lineno = idx + 1
        if not reason or not rules:
            sup_findings.append(
                Finding("SUP001", path, lineno, raw))
            continue
        before = raw[:m.start()]
        if before.strip() == "":
            # Standalone comment: applies to the next code line.
            target = idx + 1
            while target < len(lines) and is_comment_only(lines[target]):
                target += 1
            lineno = target + 1
        allowed.setdefault(lineno, set()).update(rules)
    return allowed, sup_findings


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def snippet_at(lines, lineno):
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1]
    return ""


# -- token engine -------------------------------------------------------------

RAND_CALL_RE = re.compile(r"\b(rand|srand|rand_r|drand48|lrand48|mrand48)"
                          r"\s*\(")
RAND_DEVICE_RE = re.compile(r"\brandom_device\b")
CLOCK_TYPE_RE = re.compile(
    r"\b(system_clock|steady_clock|high_resolution_clock)\b")
CLOCK_CALL_RE = re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)"
                           r"\s*\(")
STD_TIME_RE = re.compile(r"\bstd\s*::\s*(time|clock)\s*\(")
BARE_TIME_RE = re.compile(r"(?<![\w.:>])(time|clock)\s*\(")
UNORDERED_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\s*<")
ORDERED_PTR_RE = re.compile(r"\bstd\s*::\s*(map|set|multimap|multiset)\s*<")
LESS_PTR_RE = re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*>")
NEW_RE = re.compile(r"\bnew\b")
MAKE_RE = re.compile(r"\bmake_(unique|shared)\s*[<(]")
GROW_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(GROWING_OPS) + r")\s*\(")
HOT_RE = re.compile(r"\bGOLDFISH_HOT\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def skip_template_args(text, open_idx):
    """Index just past the matching '>' for the '<' at open_idx, or None."""
    depth = 0
    i = open_idx
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return None  # not actually template args
        i += 1
    return None


def first_template_arg(text, open_idx):
    """The first top-level template argument of the '<' at open_idx."""
    depth = 0
    i = open_idx
    start = open_idx + 1
    while i < len(text):
        c = text[i]
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
            if depth == 0:
                return text[start:i]
        elif c == "," and depth == 1:
            return text[start:i]
        i += 1
    return ""


def brace_depth_events(masked):
    """[(offset, depth_after)] for every '{' / '}' in masked text."""
    events = []
    depth = 0
    for i, c in enumerate(masked):
        if c == "{":
            depth += 1
            events.append((i, depth))
        elif c == "}":
            depth -= 1
            events.append((i, depth))
    return events


def unordered_var_decls(masked):
    """[(offset, name, required_depth)] for identifiers declared with an
    unordered container type. A declaration taints a later range-for only
    while the brace depth never drops below required_depth in between:
    locals bind to their own scope, parameters (terminated by ',' or ')')
    to the function body one level deeper. This keeps the lexical engine
    from carrying a name across function boundaries — `weights` being an
    unordered_map parameter in one function must not flag a std::map
    loop over a same-named variable in the next."""
    events = brace_depth_events(masked)
    decls = []
    ei = 0
    depth = 0
    for m in UNORDERED_RE.finditer(masked):
        close = skip_template_args(masked, m.end() - 1)
        if close is None:
            continue
        tail = masked[close:close + 160]
        dm = re.match(r"\s*[&*]*\s*(?:const\s+)?([A-Za-z_]\w*)\s*([;,=({\[)])",
                      tail)
        if not dm:
            continue
        while ei < len(events) and events[ei][0] < m.start():
            depth = events[ei][1]
            ei += 1
        required = depth + 1 if dm.group(2) in (",", ")") else depth
        decls.append((m.start(), dm.group(1), required))
    return decls


DECL_CALL_KEYWORDS = frozenset(
    {"return", "co_return", "co_yield", "co_await", "throw", "case",
     "else", "do", "and", "or", "not"})


def preceded_by_type(masked, start):
    """True when the token at `start` sits in declaration position — an
    identifier, '>', '*', or '&' directly before it (`double time() const`)
    — rather than call position (`return time(nullptr)`, `= time(0)`)."""
    j = start - 1
    while j >= 0 and masked[j] in " \t\n":
        j -= 1
    if j < 0:
        return False
    c = masked[j]
    if c in ">*&":
        return True
    if c.isalnum() or c == "_":
        k = j
        while k >= 0 and (masked[k].isalnum() or masked[k] == "_"):
            k -= 1
        return masked[k + 1:j + 1] not in DECL_CALL_KEYWORDS
    return False


def range_for_spans(masked):
    """Yields (start_offset, range_expr) for each range-based for."""
    for m in RANGE_FOR_RE.finditer(masked):
        i = m.end() - 1  # at '('
        depth = 0
        colon = None
        j = i
        while j < len(masked):
            c = masked[j]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
                if depth == 0:
                    break
            elif c == ";" and depth == 1:
                colon = None  # classic for(;;) — not a range-for
                break
            elif c == ":" and depth == 1:
                if masked[j - 1] != ":" and masked[j + 1:j + 2] != ":":
                    colon = j
            j += 1
        if colon is not None:
            yield m.start(), masked[colon + 1:j]


def hot_function_bodies(masked):
    """Yields (body_start, body_end) offsets for each GOLDFISH_HOT function
    *definition* (annotated declarations — ending in ';' before any body
    brace — are skipped)."""
    for m in HOT_RE.finditer(masked):
        i = m.end()
        depth = 0
        saw_params = False
        body_start = None
        while i < len(masked):
            c = masked[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    saw_params = True
            elif c == ";" and depth == 0:
                break  # declaration only
            elif c == "{" and depth == 0 and saw_params:
                body_start = i
                break
            i += 1
        if body_start is None:
            continue
        depth = 0
        j = body_start
        while j < len(masked):
            if masked[j] == "{":
                depth += 1
            elif masked[j] == "}":
                depth -= 1
                if depth == 0:
                    yield body_start, j + 1
                    break
            j += 1


def token_scan_file(path, relpath, det_scoped):
    try:
        text = open(path, encoding="utf-8", errors="replace").read()
    except OSError as e:
        print(f"goldfish-lint: cannot read {path}: {e}", file=sys.stderr)
        return [], {}
    masked = mask_comments_and_strings(text)
    lines = text.splitlines()
    findings = []

    def add(rule, offset):
        lineno = line_of(masked, offset)
        findings.append(Finding(rule, relpath, lineno,
                                snippet_at(lines, lineno)))

    if det_scoped:
        for m in RAND_CALL_RE.finditer(masked):
            add("DET001", m.start())
        for m in RAND_DEVICE_RE.finditer(masked):
            add("DET001", m.start())
        for m in CLOCK_TYPE_RE.finditer(masked):
            add("DET002", m.start())
        for m in CLOCK_CALL_RE.finditer(masked):
            add("DET002", m.start())
        seen_time = set()
        for m in STD_TIME_RE.finditer(masked):
            seen_time.add(m.start())
            add("DET002", m.start())
        for m in BARE_TIME_RE.finditer(masked):
            if m.start() not in seen_time \
                    and not preceded_by_type(masked, m.start()):
                add("DET002", m.start())

        decls = unordered_var_decls(masked)
        events = brace_depth_events(masked)
        for offset, range_expr in range_for_spans(masked):
            hit = "unordered_" in range_expr
            if not hit:
                for d_off, name, required in decls:
                    if d_off >= offset:
                        break
                    if not re.search(r"\b" + re.escape(name) + r"\b",
                                     range_expr):
                        continue
                    between = [d for o, d in events if d_off < o < offset]
                    if not between or min(between) >= required:
                        hit = True
                        break
            if hit:
                add("DET003", offset)

        for m in ORDERED_PTR_RE.finditer(masked):
            if "*" in first_template_arg(masked, m.end() - 1):
                add("DET004", m.start())
        for m in LESS_PTR_RE.finditer(masked):
            add("DET004", m.start())

    for body_start, body_end in hot_function_bodies(masked):
        body = masked[body_start:body_end]
        for m in NEW_RE.finditer(body):
            add("ALLOC001", body_start + m.start())
        for m in MAKE_RE.finditer(body):
            add("ALLOC001", body_start + m.start())
        for m in GROW_RE.finditer(body):
            add("ALLOC002", body_start + m.start())

    allowed, sup_findings = parse_suppressions(text, relpath)
    findings = [f for f in findings
                if f.rule not in allowed.get(f.line, ())]
    findings.extend(sup_findings)
    return findings, allowed


# -- clang engine -------------------------------------------------------------

def load_libclang():
    """Import clang.cindex and make sure the shared library resolves.
    Returns the module or None."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    try:
        ci.Index.create()
        return ci
    except Exception:
        for cand in ("libclang.so", "libclang-14.so", "libclang.so.1",
                     "/usr/lib/llvm-14/lib/libclang.so.1",
                     "/usr/lib/llvm-15/lib/libclang.so.1",
                     "/usr/lib/llvm-16/lib/libclang.so.1",
                     "/usr/lib/llvm-17/lib/libclang.so.1",
                     "/usr/lib/llvm-18/lib/libclang.so.1"):
            try:
                ci.Config.library_file = cand
                ci.Index.create()
                return ci
            except Exception:
                ci.Config.loaded = False
        return None


def compdb_args(compdb, path):
    """Compiler args for `path` from compile_commands.json, stripped of
    output/input/compiler tokens; None when absent."""
    entry = compdb.get(os.path.realpath(path))
    if entry is None:
        return None
    args = []
    skip = False
    for i, a in enumerate(entry):
        if i == 0 or skip:  # compiler itself / value of -o
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = (a == "-o")
            continue
        if os.path.realpath(a) == os.path.realpath(path):
            continue
        args.append(a)
    return args


RAND_NAMES = {"rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
              "random_device"}
CLOCK_NAMES = {"system_clock", "steady_clock", "high_resolution_clock",
               "gettimeofday", "clock_gettime", "timespec_get", "time",
               "clock"}


def clang_scan_file(ci, path, relpath, det_scoped, args):
    text = open(path, encoding="utf-8", errors="replace").read()
    lines = text.splitlines()
    index = ci.Index.create()
    tu = index.parse(path, args=args)
    findings = []

    def add(rule, location):
        findings.append(Finding(rule, relpath, location.line,
                                snippet_at(lines, location.line)))

    def in_main_file(cursor):
        loc = cursor.location
        return loc.file is not None and os.path.realpath(
            loc.file.name) == os.path.realpath(path)

    K = ci.CursorKind

    def hot_annotated(cursor):
        return any(ch.kind == K.ANNOTATE_ATTR
                   and ch.spelling == "goldfish::hot"
                   for ch in cursor.get_children())

    def walk_hot_body(cursor):
        for ch in cursor.walk_preorder():
            if ch.kind == K.CXX_NEW_EXPR:
                add("ALLOC001", ch.location)
            elif ch.kind == K.CALL_EXPR:
                name = ch.spelling or ""
                if name in ("make_unique", "make_shared"):
                    add("ALLOC001", ch.location)
                elif name in GROWING_OPS:
                    add("ALLOC002", ch.location)

    def visit(cursor):
        for ch in cursor.get_children():
            if not in_main_file(ch):
                # Still recurse into namespaces etc. that span files.
                if ch.kind in (K.NAMESPACE, K.TRANSLATION_UNIT):
                    visit(ch)
                continue
            if ch.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.FUNCTION_TEMPLATE,
                           K.CONSTRUCTOR, K.DESTRUCTOR):
                if ch.is_definition() and hot_annotated(ch):
                    walk_hot_body(ch)
            if det_scoped:
                if ch.kind in (K.DECL_REF_EXPR, K.TYPE_REF):
                    name = ch.spelling.replace("class ", "").split("::")[-1]
                    if name in RAND_NAMES:
                        add("DET001", ch.location)
                    elif name in CLOCK_NAMES and name not in ("time", "clock"):
                        add("DET002", ch.location)
                if ch.kind == K.CALL_EXPR and ch.spelling in ("time", "clock",
                                                             "gettimeofday",
                                                             "clock_gettime",
                                                             "timespec_get"):
                    # A member function that happens to be named `time` is
                    # not the libc wall clock.
                    ref = ch.referenced
                    if ref is None or ref.kind != K.CXX_METHOD:
                        add("DET002", ch.location)
                if ch.kind == K.CXX_FOR_RANGE_STMT:
                    children = list(ch.get_children())
                    if children:
                        range_expr = children[-2] if len(children) >= 2 \
                            else children[0]
                        t = range_expr.type.spelling if range_expr.type \
                            else ""
                        if "unordered_" in t:
                            add("DET003", ch.location)
                if ch.kind in (K.VAR_DECL, K.FIELD_DECL, K.PARM_DECL):
                    t = ch.type.spelling if ch.type else ""
                    if re.search(r"\b(map|set|multimap|multiset)<[^,<>]*\*",
                                 t) or re.search(r"\bless<[^<>]*\*\s*>", t):
                        add("DET004", ch.location)
            visit(ch)

    visit(tu.cursor)

    # Dedup per (rule, line): the AST visits a node once per reference but
    # a line is one finding, matching the token engine.
    unique = {}
    for f in findings:
        unique[(f.rule, f.line)] = f
    findings = list(unique.values())

    allowed, sup_findings = parse_suppressions(text, relpath)
    findings = [f for f in findings
                if f.rule not in allowed.get(f.line, ())]
    findings.extend(sup_findings)
    return findings


# -- driver -------------------------------------------------------------------

def gather_files(paths, repo_root):
    files = []
    for p in paths:
        ap = os.path.join(repo_root, p) if not os.path.isabs(p) else p
        if os.path.isfile(ap):
            files.append(ap)
        else:
            for dirpath, _dirnames, filenames in os.walk(ap):
                for fn in sorted(filenames):
                    if fn.endswith(SOURCE_EXTS):
                        files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def load_compdb(path):
    try:
        entries = json.load(open(path))
    except (OSError, ValueError):
        return {}
    db = {}
    for e in entries:
        f = os.path.realpath(os.path.join(e.get("directory", "."), e["file"]))
        if "arguments" in e:
            db[f] = e["arguments"]
        elif "command" in e:
            db[f] = e["command"].split()
    return db


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to scan (default: src/)")
    ap.add_argument("--repo", default=None, help="repo root")
    ap.add_argument("--engine", choices=("auto", "clang", "token"),
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json for the clang engine "
                         "(default: <repo>/build/compile_commands.json)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: tools/lint/"
                         "goldfish_lint_baseline.json)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to the current findings")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline; report every finding")
    ap.add_argument("--det-scope", nargs="*", default=None,
                    help="repo-relative dirs where DET rules apply "
                         f"(default: {' '.join(DEFAULT_DET_SCOPE)})")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable output")
    args = ap.parse_args(argv)

    repo_root = os.path.realpath(
        args.repo or os.path.join(os.path.dirname(
            os.path.realpath(__file__)), "..", ".."))
    paths = args.paths or ["src"]
    det_scope = tuple(args.det_scope if args.det_scope is not None
                      else DEFAULT_DET_SCOPE)
    baseline_path = args.baseline or os.path.join(
        repo_root, "tools", "lint", "goldfish_lint_baseline.json")

    files = gather_files(paths, repo_root)
    if not files:
        print("goldfish-lint: nothing to scan", file=sys.stderr)
        return 2

    ci = None
    compdb = {}
    if args.engine in ("auto", "clang"):
        ci = load_libclang()
        if ci is None and args.engine == "clang":
            print("goldfish-lint: --engine=clang but the libclang python "
                  "bindings are unavailable", file=sys.stderr)
            return 2
        if ci is not None:
            compdb = load_compdb(
                args.compdb
                or os.path.join(repo_root, "build", "compile_commands.json"))

    findings = []
    for f in files:
        rel = os.path.relpath(f, repo_root).replace(os.sep, "/")
        det_scoped = any(
            d in (".", "") or rel == d
            or rel.startswith(d.rstrip("/") + "/")
            for d in det_scope)
        if ci is not None:
            cargs = compdb_args(compdb, f) if compdb else None
            if cargs is None:
                cargs = ["-std=c++20", "-x", "c++",
                         "-I" + os.path.join(repo_root, "src")]
            try:
                findings.extend(
                    clang_scan_file(ci, f, rel, det_scoped, cargs))
                continue
            except Exception as e:  # fall back per-file, never hard-fail
                print(f"goldfish-lint: clang engine failed on {rel} ({e}); "
                      "token fallback", file=sys.stderr)
        file_findings, _allowed = token_scan_file(f, rel, det_scoped)
        findings.extend(file_findings)

    fps = assign_fingerprints(findings)

    if args.update_baseline:
        payload = {
            "_comment": "goldfish-lint baseline: legacy findings that do "
                        "not fail CI. Burn down by fixing + rerunning "
                        "goldfish_lint.py --update-baseline; new findings "
                        "always fail. See docs/static-analysis.md.",
            "version": 1,
            "findings": [
                {"fingerprint": fp, "rule": f.rule, "file": f.path,
                 "line": f.line, "snippet": f.normalized()}
                for fp, f in sorted(fps.items(),
                                    key=lambda kv: kv[1].sort_key())],
        }
        os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
        with open(baseline_path, "w") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"goldfish-lint: baseline updated with {len(fps)} finding(s) "
              f"-> {os.path.relpath(baseline_path, repo_root)}")
        return 0

    baseline_fps = set()
    if not args.no_baseline and os.path.exists(baseline_path):
        try:
            data = json.load(open(baseline_path))
            baseline_fps = {e["fingerprint"]
                            for e in data.get("findings", [])}
        except (OSError, ValueError, KeyError) as e:
            print(f"goldfish-lint: unreadable baseline {baseline_path}: {e}",
                  file=sys.stderr)
            return 2

    new, baselined = [], []
    for fp, f in fps.items():
        (baselined if fp in baseline_fps else new).append((fp, f))
    stale = baseline_fps - set(fps.keys())

    if args.json:
        print(json.dumps({
            "new": [{"fingerprint": fp, "rule": f.rule, "file": f.path,
                     "line": f.line, "snippet": f.snippet,
                     "message": RULES.get(f.rule, "")}
                    for fp, f in sorted(new, key=lambda kv: kv[1].sort_key())],
            "baselined": len(baselined),
            "stale_baseline_entries": len(stale),
        }, indent=1))
    else:
        for _fp, f in sorted(new, key=lambda kv: kv[1].sort_key()):
            print(f"{f.path}:{f.line}: {f.rule}: "
                  f"{RULES.get(f.rule, '')}")
            if f.snippet:
                print(f"    {f.snippet.strip()}")
        if baselined:
            print(f"goldfish-lint: {len(baselined)} baselined finding(s) "
                  "(legacy debt; see the baseline file)")
        if stale:
            print(f"goldfish-lint: {len(stale)} stale baseline entr"
                  f"{'y' if len(stale) == 1 else 'ies'} — fixed findings "
                  "still listed; refresh with --update-baseline")
        summary = (f"goldfish-lint: scanned {len(files)} file(s): "
                   f"{len(new)} new finding(s)")
        print(summary)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
