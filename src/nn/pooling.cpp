#include "nn/pooling.h"

#include <sstream>

namespace goldfish::nn {

MaxPool2d::MaxPool2d(long kernel, long stride)
    : kernel_(kernel), stride_(stride) {
  GOLDFISH_CHECK(kernel > 0 && stride > 0, "bad pool dims");
}

const Tensor& MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  GOLDFISH_CHECK(x.rank() == 4, "pool expects (N,C,H,W)");
  in_shape_ = x.shape();
  const long N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const long oh = (H - kernel_) / stride_ + 1;
  const long ow = (W - kernel_) / stride_ + 1;
  GOLDFISH_CHECK(oh > 0 && ow > 0, "pool output collapses to zero");
  Tensor& out = slot(0, {N, C, oh, ow});
  argmax_.assign(out.numel(), 0);
  std::size_t oi = 0;
  for (long n = 0; n < N; ++n) {
    for (long c = 0; c < C; ++c) {
      for (long y = 0; y < oh; ++y) {
        for (long xo = 0; xo < ow; ++xo, ++oi) {
          float best = -1e30f;
          std::size_t best_idx = 0;
          for (long ky = 0; ky < kernel_; ++ky) {
            for (long kx = 0; kx < kernel_; ++kx) {
              const long iy = y * stride_ + ky;
              const long ix = xo * stride_ + kx;
              const std::size_t idx =
                  static_cast<std::size_t>(((n * C + c) * H + iy) * W + ix);
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          out[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

const Tensor& MaxPool2d::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(grad_output.numel() == argmax_.size(),
                 "pool grad size mismatch");
  Tensor& gin = slot(1, in_shape_);
  gin.zero();  // scatter-add target: only argmax positions receive writes
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    gin[argmax_[i]] += grad_output[i];
  return gin;
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  auto copy = std::make_unique<MaxPool2d>(*this);
  copy->argmax_.clear();
  return copy;
}

std::string MaxPool2d::name() const {
  std::ostringstream os;
  os << "maxpool(k" << kernel_ << ", s" << stride_ << ")";
  return os.str();
}

const Tensor& GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  GOLDFISH_CHECK(x.rank() == 4, "gap expects (N,C,H,W)");
  in_shape_ = x.shape();
  const long N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  Tensor& out = slot(0, {N, C});
  const float inv = 1.0f / static_cast<float>(H * W);
  for (long n = 0; n < N; ++n) {
    for (long c = 0; c < C; ++c) {
      double acc = 0.0;
      for (long y = 0; y < H; ++y)
        for (long xo = 0; xo < W; ++xo) acc += x.at4(n, c, y, xo);
      out.at(n, c) = static_cast<float>(acc) * inv;
    }
  }
  return out;
}

const Tensor& GlobalAvgPool::backward(const Tensor& grad_output) {
  const long N = in_shape_[0], C = in_shape_[1], H = in_shape_[2],
             W = in_shape_[3];
  GOLDFISH_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == N &&
                     grad_output.dim(1) == C,
                 "gap grad shape");
  Tensor& gin = slot(1, in_shape_);
  const float inv = 1.0f / static_cast<float>(H * W);
  for (long n = 0; n < N; ++n)
    for (long c = 0; c < C; ++c) {
      const float g = grad_output.at(n, c) * inv;
      for (long y = 0; y < H; ++y)
        for (long xo = 0; xo < W; ++xo) gin.at4(n, c, y, xo) = g;
    }
  return gin;
}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>(*this);
}

}  // namespace goldfish::nn
