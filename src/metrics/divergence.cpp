#include "metrics/divergence.h"

#include <cmath>

#include "tensor/check.h"

namespace goldfish::metrics {

namespace {

std::vector<double> normalized(const std::vector<double>& p) {
  double total = 0.0;
  for (double v : p) {
    GOLDFISH_CHECK(v >= 0.0, "probabilities must be non-negative");
    total += v;
  }
  GOLDFISH_CHECK(total > 0.0, "distribution sums to zero");
  std::vector<double> out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) out[i] = p[i] / total;
  return out;
}

double kl(const std::vector<double>& p, const std::vector<double>& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    acc += p[i] * std::log(p[i] / m[i]);
  }
  return acc;
}

/// Lentz's continued-fraction evaluation of the incomplete beta.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0, d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  GOLDFISH_CHECK(x >= 0.0 && x <= 1.0, "x out of [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) return front * betacf(a, b, x) / a;
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double jensen_shannon_divergence(const std::vector<double>& p,
                                 const std::vector<double>& q) {
  GOLDFISH_CHECK(p.size() == q.size() && !p.empty(), "length mismatch");
  const std::vector<double> pn = normalized(p);
  const std::vector<double> qn = normalized(q);
  std::vector<double> m(pn.size());
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = 0.5 * (pn[i] + qn[i]);
  return 0.5 * kl(pn, m) + 0.5 * kl(qn, m);
}

double l2_distance(const std::vector<double>& p,
                   const std::vector<double>& q) {
  GOLDFISH_CHECK(p.size() == q.size() && !p.empty(), "length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = p[i] - q[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

TTestResult welch_ttest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  GOLDFISH_CHECK(a.size() >= 2 && b.size() >= 2,
                 "t-test needs at least two samples per group");
  const double na = double(a.size()), nb = double(b.size());
  double ma = 0.0, mb = 0.0;
  for (double v : a) ma += v;
  for (double v : b) mb += v;
  ma /= na;
  mb /= nb;
  double va = 0.0, vb = 0.0;
  for (double v : a) va += (v - ma) * (v - ma);
  for (double v : b) vb += (v - mb) * (v - mb);
  va /= (na - 1.0);
  vb /= (nb - 1.0);

  TTestResult r;
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    // Zero variance in both samples: identical means → p = 1, else p → 0.
    r.t_statistic = (ma == mb) ? 0.0 : 1e30;
    r.degrees_of_freedom = na + nb - 2.0;
    r.p_value = (ma == mb) ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (ma - mb) / std::sqrt(se2);
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  r.degrees_of_freedom = num / den;
  // Two-sided p-value via the incomplete beta form of the Student-t CDF.
  const double df = r.degrees_of_freedom;
  const double t2 = r.t_statistic * r.t_statistic;
  r.p_value = incomplete_beta(df / 2.0, 0.5, df / (df + t2));
  return r;
}

}  // namespace goldfish::metrics
