// End-to-end federated unlearning: plant a backdoor through one client,
// train federatedly, verify the attack works, unlearn with Goldfish, verify
// the attack collapses while utility recovers — the paper's headline claim
// (§IV-B, Fig. 5 / Tables III–VI) at test scale.
#include <gtest/gtest.h>

#include "baselines/incompetent_teacher.h"
#include "core/unlearner.h"
#include "data/backdoor.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/divergence.h"
#include "metrics/evaluation.h"
#include "nn/models.h"

namespace goldfish {
namespace {

struct Scenario {
  data::TrainTest tt;
  std::vector<data::Dataset> parts;       // client datasets (client 0 poisoned)
  std::vector<std::size_t> poisoned_rows; // rows of client 0
  data::Dataset probe;                    // trigger probe set
  nn::Model trained;                      // contaminated global model
  nn::Model fresh;                        // ω0

  Scenario() {
    tt = data::make_synthetic(
        data::default_spec(data::DatasetKind::Mnist, 91, 600, 200));
    Rng rng(92);
    parts = data::partition_iid(tt.train, 3, rng);

    // 25% of the victim client's data is poisoned with a 4×4 trigger:
    // strong enough to survive 3-way FedAvg dilution at test scale.
    data::BackdoorSpec spec;
    spec.target_label = 0;
    spec.patch = 4;
    auto poisoned = data::poison_dataset(parts[0], spec, 0.25f, rng);
    parts[0] = poisoned.poisoned;
    poisoned_rows = poisoned.poisoned_indices;
    probe = data::make_trigger_probe(tt.test, spec);

    Rng mrng(93);
    fresh = nn::make_mlp({1, 28, 28}, 48, 10, mrng);
    trained = fresh;
    fl::FlConfig cfg;
    cfg.local.epochs = 4;
    cfg.local.batch_size = 50;
    cfg.local.lr = 0.05f;
    fl::FederatedSim sim(trained, parts, tt.test, cfg);
    sim.run(6);
    trained = sim.global_model();
  }
};

Scenario& scenario() {
  static Scenario s;
  return s;
}

TEST(Integration, BackdoorPlantsSuccessfully) {
  auto& s = scenario();
  const double asr = metrics::attack_success_rate(s.trained, s.probe);
  const double acc = metrics::accuracy(s.trained, s.tt.test);
  // The contaminated model must both work and carry the backdoor, or the
  // unlearning experiment below would be vacuous.
  EXPECT_GT(acc, 50.0);
  EXPECT_GT(asr, 50.0);
}

TEST(Integration, GoldfishUnlearningRemovesBackdoor) {
  auto& s = scenario();
  core::UnlearnConfig cfg;
  cfg.distill.max_epochs = 4;
  cfg.distill.lr = 0.02f;
  cfg.distill.use_early_termination = false;
  core::GoldfishUnlearner ul(s.trained, s.fresh, s.parts, s.tt.test, cfg);
  ul.request_deletion({{0, s.poisoned_rows}});
  const auto rounds = ul.run(3);

  const double asr_before = metrics::attack_success_rate(s.trained, s.probe);
  const double asr_after =
      metrics::attack_success_rate(ul.global_model(), s.probe);
  const double acc_after = metrics::accuracy(ul.global_model(), s.tt.test);

  EXPECT_LT(asr_after, 0.35 * asr_before);  // backdoor collapsed
  EXPECT_GT(acc_after, 45.0);               // utility recovered
  // Telemetry sanity.
  EXPECT_EQ(rounds.size(), 3u);
  EXPECT_GT(rounds.back().mean_temperature, 0.0);
}

TEST(Integration, UnlearnedModelStatisticallyCloseToRetrain) {
  auto& s = scenario();
  // Goldfish-unlearned model.
  core::UnlearnConfig cfg;
  cfg.distill.max_epochs = 4;
  cfg.distill.lr = 0.02f;
  cfg.distill.use_early_termination = false;
  core::GoldfishUnlearner ul(s.trained, s.fresh, s.parts, s.tt.test, cfg);
  ul.request_deletion({{0, s.poisoned_rows}});
  ul.run(3);

  // Reference retrain (B1) on the remaining data.
  std::vector<data::Dataset> remaining = s.parts;
  std::vector<std::size_t> keep;
  for (long i = 0; i < s.parts[0].size(); ++i) {
    if (std::find(s.poisoned_rows.begin(), s.poisoned_rows.end(),
                  static_cast<std::size_t>(i)) == s.poisoned_rows.end())
      keep.push_back(static_cast<std::size_t>(i));
  }
  remaining[0] = s.parts[0].subset(keep);
  nn::Model b1 = s.fresh;
  fl::FlConfig b1cfg;
  b1cfg.local.epochs = 3;
  b1cfg.local.lr = 0.02f;
  fl::FederatedSim sim(b1, remaining, s.tt.test, b1cfg);
  sim.run(4);
  b1 = sim.global_model();

  // Tables VII–IX metrics: unlearned vs retrained distributions are close.
  const auto p_ours = metrics::mean_prediction(ul.global_model(), s.tt.test);
  const auto p_b1 = metrics::mean_prediction(b1, s.tt.test);
  EXPECT_LT(metrics::jensen_shannon_divergence(p_ours, p_b1), 0.2);
  EXPECT_LT(metrics::l2_distance(p_ours, p_b1), 0.5);
}

TEST(Integration, B3AlsoRemovesBackdoorButGoldfishKeepsAccuracy) {
  auto& s = scenario();
  // Split client 0 into remaining/removed for B3.
  std::vector<data::Dataset> remaining = s.parts;
  std::vector<data::Dataset> removed(s.parts.size());
  std::vector<std::size_t> keep;
  for (long i = 0; i < s.parts[0].size(); ++i) {
    if (std::find(s.poisoned_rows.begin(), s.poisoned_rows.end(),
                  static_cast<std::size_t>(i)) == s.poisoned_rows.end())
      keep.push_back(static_cast<std::size_t>(i));
  }
  removed[0] = s.parts[0].subset(s.poisoned_rows);
  remaining[0] = s.parts[0].subset(keep);

  baselines::IncompetentTeacherConfig cfg;
  cfg.fl.local.epochs = 4;
  cfg.fl.local.batch_size = 50;
  cfg.fl.local.lr = 0.05f;
  cfg.forget_weight = 2.0f;
  Rng rng(94);
  nn::Model incompetent = nn::make_mlp({1, 28, 28}, 48, 10, rng);
  nn::Model b3;
  baselines::incompetent_teacher_unlearn(s.trained, incompetent, remaining,
                                         removed, s.tt.test, cfg, 3, &b3);
  const double asr_b3 = metrics::attack_success_rate(b3, s.probe);
  const double asr_orig = metrics::attack_success_rate(s.trained, s.probe);
  EXPECT_LT(asr_b3, 0.5 * asr_orig);
}

}  // namespace
}  // namespace goldfish
