// Sharded federated clients: the optimization module (Fig. 2–3) wired into
// the federated loop.
//
// Each client keeps a ShardManager; every round its shards continue training
// from their own weights (strict shard isolation — shard models never absorb
// other shards' parameters, which is what makes deletion cheap and sound),
// and the client uploads the Eq. 8 size-weighted aggregate. A deletion
// request re-initializes and retrains only the affected shards (Eq. 9–10
// semantics in ShardManager::delete_rows).
#pragma once

#include "core/sharding.h"
#include "fl/simulation.h"

namespace goldfish::core {

class ShardedClientFleet {
 public:
  /// One ShardManager per client, all seeded from the same initial model.
  ShardedClientFleet(const nn::Model& init,
                     const std::vector<data::Dataset>& client_data,
                     long shards_per_client, Rng& rng);

  std::size_t num_clients() const { return managers_.size(); }
  ShardManager& manager(std::size_t client);

  /// Client-update hook for FederatedSim: trains the client's shards one
  /// round and loads the Eq. 8 aggregate into the upload model. The global
  /// broadcast is intentionally ignored — shard isolation is what the
  /// deletion guarantee rests on. Shard retraining nests inside the sim's
  /// client-level parallelism on the same Scheduler (nullptr → global);
  /// nested regions run inline or on free workers, never deadlocking.
  fl::FederatedSim::ClientUpdateFn update_fn(
      fl::TrainOptions base_opts, runtime::Scheduler* sched = nullptr);

  /// Apply a deletion to one client (rows index that client's original
  /// dataset). Affected shards re-initialize and retrain.
  ShardManager::DeletionReport delete_rows(
      std::size_t client, const std::vector<std::size_t>& rows,
      const fl::TrainOptions& opts, runtime::Scheduler* sched = nullptr);

 private:
  std::vector<std::unique_ptr<ShardManager>> managers_;
};

}  // namespace goldfish::core
