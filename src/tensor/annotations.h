// GOLDFISH_HOT — the zero-alloc contract, spelled at the declaration.
//
// A function marked GOLDFISH_HOT is a steady-state fast path: once the
// process is warm (pools populated, workspaces sized, wire buffers grown) it
// must not allocate. The marker does two things:
//
//   * tools/lint/goldfish_lint.py enforces the ALLOC rule family on every
//     annotated *definition*: no direct `new` / `make_unique` / `make_shared`
//     (ALLOC001) and no growing container ops — push_back, emplace_back,
//     resize, reserve, insert, append (ALLOC002). Violations fail CI unless
//     suppressed inline with a reasoned
//     `// goldfish-lint: allow(RULE) reason` (e.g. a monotonic thread_local
//     buffer whose capacity is reused across rounds) or burned down via the
//     checked-in baseline. See docs/static-analysis.md.
//   * Under clang it also carries an `annotate("goldfish::hot")` attribute so
//     AST-based tooling finds annotated functions without token matching,
//     plus the optimizer `hot` hint; gcc gets the `hot` hint alone.
//
// Annotate the definition (that is where the lint checks the body); also
// annotating a separate declaration is fine and documents the contract at
// the API surface. This header is dependency-free on purpose — every layer,
// tensor/ included, may use it.
#pragma once

#if defined(__clang__)
#define GOLDFISH_HOT __attribute__((annotate("goldfish::hot"), hot))
#elif defined(__GNUC__)
#define GOLDFISH_HOT __attribute__((hot))
#else
#define GOLDFISH_HOT
#endif
