#include "data/dataset.h"

#include <algorithm>

#include "tensor/check.h"

namespace goldfish::data {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  const long d = features.dim(1);
  Dataset out;
  out.num_classes = num_classes;
  out.geom = geom;
  out.features = Tensor({static_cast<long>(indices.size()), d});
  out.labels.reserve(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t src = indices[r];
    GOLDFISH_CHECK(src < static_cast<std::size_t>(size()),
                   "subset index out of range");
    const float* src_row = features.data() + src * static_cast<std::size_t>(d);
    float* dst_row = out.features.data() + r * static_cast<std::size_t>(d);
    std::copy(src_row, src_row + d, dst_row);
    out.labels.push_back(labels[src]);
  }
  return out;
}

Dataset Dataset::concat(const Dataset& a, const Dataset& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  GOLDFISH_CHECK(a.num_classes == b.num_classes &&
                     a.features.dim(1) == b.features.dim(1),
                 "concat schema mismatch");
  Dataset out;
  out.num_classes = a.num_classes;
  out.geom = a.geom;
  const long d = a.features.dim(1);
  out.features = Tensor({a.size() + b.size(), d});
  std::copy(a.features.data(), a.features.data() + a.features.numel(),
            out.features.data());
  std::copy(b.features.data(), b.features.data() + b.features.numel(),
            out.features.data() + a.features.numel());
  out.labels = a.labels;
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

void Dataset::batch_into(const std::size_t* indices, std::size_t count,
                         Tensor& x, std::vector<long>& y) const {
  const long d = features.dim(1);
  x.resize_uninit({static_cast<long>(count), d});
  y.resize(count);
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t src = indices[r];
    GOLDFISH_CHECK(src < static_cast<std::size_t>(size()),
                   "batch index out of range");
    const float* src_row = features.data() + src * static_cast<std::size_t>(d);
    std::copy(src_row, src_row + d,
              x.data() + r * static_cast<std::size_t>(d));
    y[r] = labels[src];
  }
}

std::pair<Tensor, std::vector<long>> Dataset::batch(
    const std::vector<std::size_t>& indices) const {
  Tensor x;
  std::vector<long> y;
  batch_into(indices.data(), indices.size(), x, y);
  return {std::move(x), std::move(y)};
}

std::pair<Tensor, const long*> Dataset::batch_view(long lo, long hi) const {
  GOLDFISH_CHECK(0 <= lo && lo < hi && hi <= size(),
                 "batch_view range out of bounds");
  const long d = features.dim(1);
  Tensor x = Tensor::uninit({hi - lo, d});
  const float* src = features.data() + static_cast<std::size_t>(lo) *
                                           static_cast<std::size_t>(d);
  std::copy(src, src + static_cast<std::size_t>(hi - lo) *
                           static_cast<std::size_t>(d),
            x.data());
  return {std::move(x), labels.data() + lo};
}

std::vector<long> Dataset::class_histogram() const {
  std::vector<long> hist(static_cast<std::size_t>(num_classes), 0);
  for (long y : labels) {
    GOLDFISH_CHECK(y >= 0 && y < num_classes, "label out of range");
    ++hist[static_cast<std::size_t>(y)];
  }
  return hist;
}

BatchIterator::BatchIterator(const Dataset& ds, long batch_size, Rng& rng)
    : ds_(&ds), batch_size_(batch_size) {
  GOLDFISH_CHECK(batch_size > 0, "batch size must be positive");
  order_ = random_permutation(static_cast<std::size_t>(ds.size()), rng);
}

std::size_t BatchIterator::num_batches() const {
  const std::size_t n = order_.size();
  return (n + static_cast<std::size_t>(batch_size_) - 1) /
         static_cast<std::size_t>(batch_size_);
}

std::vector<std::size_t> BatchIterator::batch_indices(std::size_t b) const {
  const auto [ptr, count] = batch_span(b);
  return std::vector<std::size_t>(ptr, ptr + count);
}

std::pair<const std::size_t*, std::size_t> BatchIterator::batch_span(
    std::size_t b) const {
  GOLDFISH_CHECK(b < num_batches(), "batch index out of range");
  const std::size_t lo = b * static_cast<std::size_t>(batch_size_);
  const std::size_t hi =
      std::min(order_.size(), lo + static_cast<std::size_t>(batch_size_));
  return {order_.data() + lo, hi - lo};
}

}  // namespace goldfish::data
