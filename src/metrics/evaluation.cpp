#include "metrics/evaluation.h"

#include <algorithm>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace goldfish::metrics {

namespace {

/// Run fn(logits, labels, rows) over the dataset in sequential batches (no
/// shuffling). Batches are contiguous row ranges, so batch_view's straight
/// copy replaces the index-vector + per-row gather the old path did.
template <typename Fn>
void for_batches(nn::Model& model, const data::Dataset& ds, long batch_size,
                 Fn&& fn) {
  GOLDFISH_CHECK(!ds.empty(), "evaluating on an empty dataset");
  const long n = ds.size();
  for (long lo = 0; lo < n; lo += batch_size) {
    const long hi = std::min(n, lo + batch_size);
    auto [x, y] = ds.batch_view(lo, hi);
    const Tensor& logits = model.forward(x, /*train=*/false);
    fn(logits, y, hi - lo);
  }
}

}  // namespace

long correct_predictions(const Tensor& logits, const long* labels,
                         long rows) {
  const long c = logits.dim(1);
  const float* row = logits.data();
  long correct = 0;
  for (long i = 0; i < rows; ++i, row += c) {
    long best = 0;
    float bv = row[0];
    for (long j = 1; j < c; ++j) {
      if (row[j] > bv) {
        bv = row[j];
        best = j;
      }
    }
    if (best == labels[i]) ++correct;
  }
  return correct;
}

void accumulate_squared_error(const Tensor& probs, const long* labels,
                              long rows, double& total) {
  const long c = probs.dim(1);
  const float* row = probs.data();
  for (long i = 0; i < rows; ++i, row += c) {
    const long yi = labels[i];
    for (long j = 0; j < c; ++j) {
      const double target = (j == yi) ? 1.0 : 0.0;
      const double d = double(row[j]) - target;
      total += d * d;
    }
  }
}

double accuracy(nn::Model& model, const data::Dataset& ds, long batch_size) {
  long correct = 0;
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const long* y, long rows) {
                correct += correct_predictions(logits, y, rows);
              });
  return 100.0 * double(correct) / double(ds.size());
}

double attack_success_rate(nn::Model& model, const data::Dataset& probe,
                           long batch_size) {
  if (probe.empty()) return 0.0;
  return accuracy(model, probe, batch_size);
}

double mse(nn::Model& model, const data::Dataset& ds, long batch_size) {
  double total = 0.0;
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const long* y, long rows) {
                accumulate_squared_error(softmax_rows(logits), y, rows,
                                         total);
              });
  return total / (double(ds.size()) * double(ds.num_classes));
}

std::vector<double> mean_prediction(nn::Model& model, const data::Dataset& ds,
                                    long batch_size) {
  std::vector<double> mean(static_cast<std::size_t>(ds.num_classes), 0.0);
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const long*, long rows) {
                const Tensor p = softmax_rows(logits);
                for (long i = 0; i < rows; ++i)
                  for (long j = 0; j < p.dim(1); ++j)
                    mean[static_cast<std::size_t>(j)] += p.at(i, j);
              });
  for (double& v : mean) v /= double(ds.size());
  return mean;
}

std::vector<double> confidence_series(nn::Model& model,
                                      const data::Dataset& ds,
                                      long batch_size) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(ds.size()));
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const long*, long rows) {
                const Tensor p = softmax_rows(logits);
                for (long i = 0; i < rows; ++i) {
                  float mx = 0.0f;
                  for (long j = 0; j < p.dim(1); ++j)
                    mx = std::max(mx, p.at(i, j));
                  out.push_back(mx);
                }
              });
  return out;
}

BatchedEvaluator::BatchedEvaluator(const data::Dataset& ds, long chunk_rows)
    : ds_(&ds), chunk_(chunk_rows) {
  GOLDFISH_CHECK(!ds.empty(), "evaluator needs a non-empty dataset");
  GOLDFISH_CHECK(chunk_rows >= 0, "negative evaluation chunk");
  // chunk_rows == 0 means "as large as is sane": bound the input block at
  // ~2^21 floats so activation slots (a small multiple of the input for the
  // paper's models) stay modest even with several pooled models evaluating
  // concurrently. Results are chunking-invariant, so this is purely a
  // memory knob.
  if (chunk_ == 0 && ds.size() * ds.features.dim(1) > (1L << 21))
    chunk_ = std::max(256L, (1L << 21) / ds.features.dim(1));
}

template <typename Fn>
void BatchedEvaluator::for_chunks(nn::Model& model, Fn&& fn) const {
  const long n = ds_->size();
  if (chunk_ == 0 || chunk_ >= n) {
    // Whole-set fast path: the stacked feature matrix goes through the
    // model directly — no batch copy at all.
    const Tensor& logits = model.forward(ds_->features, /*train=*/false);
    fn(logits, ds_->labels.data(), n);
    return;
  }
  for (long lo = 0; lo < n; lo += chunk_) {
    const long hi = std::min(n, lo + chunk_);
    auto [x, y] = ds_->batch_view(lo, hi);
    const Tensor& logits = model.forward(x, /*train=*/false);
    fn(logits, y, hi - lo);
  }
}

double BatchedEvaluator::accuracy(nn::Model& model) const {
  long correct = 0;
  for_chunks(model, [&](const Tensor& logits, const long* y, long rows) {
    correct += correct_predictions(logits, y, rows);
  });
  return 100.0 * double(correct) / double(ds_->size());
}

double BatchedEvaluator::mse(nn::Model& model) const {
  double total = 0.0;
  for_chunks(model, [&](const Tensor& logits, const long* y, long rows) {
    accumulate_squared_error(softmax_rows(logits), y, rows, total);
  });
  return total / (double(ds_->size()) * double(ds_->num_classes));
}

}  // namespace goldfish::metrics
