// Synthetic stand-ins for the paper's four benchmark datasets.
//
// Substitution (DESIGN.md §2): the offline environment has no MNIST/CIFAR
// files, so each dataset is replaced by a generator that matches its
// dimensionality, class count, and *relative difficulty*, and produces
// spatially structured images (class prototypes drawn on a coarse grid and
// bilinearly upsampled, plus per-class sub-modes and pixel noise) so that
// convolutional models have real spatial statistics to exploit. Everything
// downstream — backdoor planting, unlearning, aggregation — exercises the
// same code paths it would on the real data.
#pragma once

#include "data/dataset.h"

namespace goldfish::data {

enum class DatasetKind { Mnist, FashionMnist, Cifar10, Cifar100 };

/// Human-readable name ("MNIST", "CIFAR-10", ...).
const char* dataset_name(DatasetKind kind);

/// Geometry per Table II: 1×28×28 for (F)MNIST, 3×32×32 for CIFAR.
nn::InputGeom dataset_geom(DatasetKind kind);

/// Class count per Table II.
long dataset_classes(DatasetKind kind);

struct SyntheticSpec {
  DatasetKind kind = DatasetKind::Mnist;
  long train_size = 2000;
  long test_size = 500;
  std::uint64_t seed = 42;
  /// Difficulty multiplier on the noise level (1 = calibrated default).
  float noise_scale = 1.0f;
  /// Sub-modes per class (intra-class variation).
  long modes_per_class = 3;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Generate a train/test pair. Same seed → identical bytes.
TrainTest make_synthetic(const SyntheticSpec& spec);

/// All four paper datasets with default sizing (used by benches).
SyntheticSpec default_spec(DatasetKind kind, std::uint64_t seed,
                           long train_size, long test_size);

}  // namespace goldfish::data
