#include "fl/simulation.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "runtime/gemm.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace goldfish::fl {

FederatedSim::FederatedSim(nn::Model global,
                           std::vector<data::Dataset> client_data,
                           data::Dataset server_test, FlConfig cfg)
    : global_(std::move(global)),
      clients_(std::move(client_data)),
      test_(std::move(server_test)),
      cfg_(std::move(cfg)),
      aggregator_(make_aggregator(cfg_.aggregator)),
      sched_(&runtime::scheduler_for(cfg_.threads, owned_sched_)),
      eval_(test_, cfg_.eval_batch) {
  GOLDFISH_CHECK(!clients_.empty(), "simulation needs clients");
  GOLDFISH_CHECK(!test_.empty(), "simulation needs a server test set");
  stackable_ = stackable_mlp();
  // Default behaviour: Algorithm 1's LocalTraining.
  update_fn_ = [this](std::size_t cid, nn::Model& model,
                      const data::Dataset& ds, long round) {
    TrainOptions opts = cfg_.local;
    opts.seed = cfg_.seed ^ (0x9E3779B9u * (cid + 1)) ^
                static_cast<std::uint64_t>(round);
    train_local(model, ds, opts);
  };
}

FederatedSim::ModelLease::ModelLease(FederatedSim& sim) : sim_(sim) {
  {
    std::lock_guard<std::mutex> lock(sim_.pool_mu_);
    if (!sim_.pool_.empty()) {
      model_ = std::move(sim_.pool_.back());
      sim_.pool_.pop_back();
      return;
    }
    ++sim_.pool_total_;
  }
  // First time this concurrency depth is reached (at most the scheduler's
  // parallelism): seed a fresh replica. Every later lease reuses it.
  model_ = std::make_unique<nn::Model>(sim_.global_);
}

FederatedSim::ModelLease::~ModelLease() {
  std::lock_guard<std::mutex> lock(sim_.pool_mu_);
  sim_.pool_.push_back(std::move(model_));
}

void FederatedSim::set_client_data(std::size_t c, data::Dataset ds) {
  GOLDFISH_CHECK(c < clients_.size(), "client id out of range");
  clients_[c] = std::move(ds);
}

bool FederatedSim::stackable_mlp() const {
  // The `mlp<h>` factory family: Sequential[Linear → ReLU → Linear], whose
  // snapshot is exactly [W1 (h,D), b1 (h), W2 (K,h), b2 (K)]. Anything else
  // (conv nets, deeper stacks) evaluates per client through the pool.
  if (global_.arch_name().rfind("mlp", 0) != 0) return false;
  const auto snap = const_cast<nn::Model&>(global_).snapshot();
  if (snap.size() != 4) return false;
  return snap[0].rank() == 2 && snap[1].rank() == 1 &&
         snap[2].rank() == 2 && snap[3].rank() == 1 &&
         snap[0].dim(0) == snap[1].dim(0) &&
         snap[2].dim(1) == snap[0].dim(0) &&
         snap[2].dim(0) == snap[3].dim(0);
}

void FederatedSim::stacked_local_accuracy(
    const std::vector<ClientUpdate>& updates, std::vector<double>& local_acc) {
  const long n = static_cast<long>(updates.size());
  const long h = updates[0].params[0].dim(0);   // hidden width per client
  const long d = updates[0].params[0].dim(1);   // input features
  const long k = updates[0].params[2].dim(0);   // classes
  const long nh = n * h;

  // Concatenate every client's hidden layer: rows [c·h, (c+1)·h) of the
  // stacked weight matrix are client c's W1.
  stacked_w_.resize_uninit({nh, d});
  stacked_b_.resize_uninit({nh});
  for (long c = 0; c < n; ++c) {
    const Tensor& w1 = updates[static_cast<std::size_t>(c)].params[0];
    const Tensor& b1 = updates[static_cast<std::size_t>(c)].params[1];
    std::memcpy(stacked_w_.data() + c * h * d, w1.data(),
                static_cast<std::size_t>(h * d) * sizeof(float));
    std::memcpy(stacked_b_.data() + c * h, b1.data(),
                static_cast<std::size_t>(h) * sizeof(float));
  }

  const long rows_total = test_.size();
  // Bound the stacked activation block (chunk × C·h floats) when no explicit
  // evaluation batch is configured.
  long chunk = cfg_.eval_batch;
  if (chunk == 0 && rows_total * nh > (1L << 24))
    chunk = std::max(256L, (1L << 24) / nh);
  if (chunk == 0 || chunk > rows_total) chunk = rows_total;

  std::vector<long> correct(static_cast<std::size_t>(n), 0);
  for (long lo = 0; lo < rows_total; lo += chunk) {
    const long hi = std::min(rows_total, lo + chunk);
    const long rows = hi - lo;
    const bool whole = lo == 0 && hi == rows_total;
    Tensor x_chunk;
    const long* y;
    if (whole) {
      y = test_.labels.data();
    } else {
      auto view = test_.batch_view(lo, hi);
      x_chunk = std::move(view.first);
      y = view.second;
    }
    const Tensor& x = whole ? test_.features : x_chunk;
    // All clients' hidden activations in one fused GEMM: relu(x·Wᵀ + b),
    // exactly the peepholed Linear→ReLU forward, column block c = client c.
    gemm_fused_into(stacked_y_, x, stacked_w_, false, true,
                    runtime::Epilogue::kBiasColRelu, stacked_b_);
    // Each client's logits head reads its strided slice of the block.
    sched_->parallel_map(static_cast<std::size_t>(n), [&](std::size_t c) {
      const Tensor& w2 = updates[c].params[2];
      const Tensor& b2 = updates[c].params[3];
      Tensor logits = Tensor::uninit({rows, k});
      runtime::sgemm(false, true, rows, k, h,
                     stacked_y_.data() + static_cast<long>(c) * h, nh,
                     w2.data(), h, logits.data(), k, /*beta=*/0.0f,
                     runtime::Epilogue::kBiasCol, b2.data());
      correct[c] += metrics::correct_predictions(logits, y, rows);
    });
  }
  for (long c = 0; c < n; ++c)
    local_acc[static_cast<std::size_t>(c)] =
        100.0 * double(correct[static_cast<std::size_t>(c)]) /
        double(rows_total);
}

RoundResult FederatedSim::run_round() {
  const std::size_t n = clients_.size();
  std::vector<ClientUpdate> updates(n);
  std::vector<double> local_acc(n, 0.0);
  std::atomic<std::size_t> bytes{0};
  const bool stacked = stackable_;

  sched_->parallel_map(n, [&](std::size_t c) {
    ModelLease lease(*this);
    nn::Model& local = lease.get();
    local.copy_from(global_);  // broadcast: in-place copy over pooled storage
    update_fn_(c, local, clients_[c], round_);
    // Upload path: serialize → wire → deserialize, counting bytes.
    std::size_t wire = 0;
    updates[c].params = roundtrip_through_bytes(local.snapshot(), &wire);
    updates[c].dataset_size = clients_[c].size();
    bytes.fetch_add(wire, std::memory_order_relaxed);
    // Batched client evaluation happens after the barrier when the family
    // supports weight stacking; otherwise evaluate with the leased model.
    if (!stacked) local_acc[c] = eval_.accuracy(local);
  });

  if (stacked) stacked_local_accuracy(updates, local_acc);

  // Server-side MSE scoring (Eq. 12 operates on the server's test set).
  if (aggregator_->name() == "adaptive") {
    sched_->parallel_map(n, [&](std::size_t c) {
      ModelLease lease(*this);
      nn::Model& scratch = lease.get();
      scratch.load(updates[c].params);  // load covers every parameter
      updates[c].mse = eval_.mse(scratch);
    });
  }

  global_.load(aggregator_->aggregate(updates));

  RoundResult r;
  r.round = round_++;
  r.global_accuracy = eval_.accuracy(global_);
  r.bytes_uplinked = bytes.load();
  r.min_local_accuracy = *std::min_element(local_acc.begin(), local_acc.end());
  r.max_local_accuracy = *std::max_element(local_acc.begin(), local_acc.end());
  double mean = 0.0;
  for (double a : local_acc) mean += a;
  r.mean_local_accuracy = mean / double(n);
  return r;
}

std::vector<RoundResult> FederatedSim::run(long rounds) {
  std::vector<RoundResult> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (long i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

}  // namespace goldfish::fl
