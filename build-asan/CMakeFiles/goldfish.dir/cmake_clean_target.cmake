file(REMOVE_RECURSE
  "libgoldfish.a"
)
