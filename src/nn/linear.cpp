#include "nn/linear.h"

#include <cmath>
#include <sstream>

#include "tensor/ops.h"

namespace goldfish::nn {

Linear::Linear(long in_features, long out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng, 0.0f,
                            std::sqrt(2.0f / static_cast<float>(in_features)))),
      bias_(Tensor::zeros({out_features})),
      grad_weight_(Tensor::zeros({out_features, in_features})),
      grad_bias_(Tensor::zeros({out_features})) {
  GOLDFISH_CHECK(in_features > 0 && out_features > 0, "bad linear dims");
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  GOLDFISH_CHECK(x.rank() == 2 && x.dim(1) == in_,
                 "linear input shape " + x.shape_str());
  cached_input_ = x;
  Tensor y = gemm(x, weight_, false, true);  // (N, out)
  const long n = y.dim(0);
  for (long i = 0; i < n; ++i)
    for (long j = 0; j < out_; ++j) y.at(i, j) += bias_[std::size_t(j)];
  return y;
}

Tensor Linear::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(grad_output.rank() == 2 && grad_output.dim(1) == out_,
                 "linear grad shape");
  GOLDFISH_CHECK(!cached_input_.empty(), "backward before forward");
  // dW = gradᵀ · x (accumulated in place) ; db = column sums ; dx = grad · W
  gemm_acc(grad_weight_, grad_output, cached_input_, true, false);
  const long n = grad_output.dim(0);
  for (long i = 0; i < n; ++i)
    for (long j = 0; j < out_; ++j)
      grad_bias_[std::size_t(j)] += grad_output.at(i, j);
  return gemm(grad_output, weight_, false, false);
}

std::vector<ParamRef> Linear::params() {
  return {{"weight", &weight_, &grad_weight_},
          {"bias", &bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(*this);
  copy->grad_weight_.zero();
  copy->grad_bias_.zero();
  copy->cached_input_ = Tensor();
  return copy;
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "linear(" << in_ << "->" << out_ << ")";
  return os.str();
}

}  // namespace goldfish::nn
