// Federated substrate: local trainer, aggregation strategies, and the
// synchronous simulation loop. (The parallel runtime the simulator runs on
// is covered by runtime_test.cpp.)
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "metrics/evaluation.h"
#include "nn/models.h"

namespace goldfish {
namespace {

TEST(Trainer, LossDecreases) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 31, 300, 50));
  Rng rng(32);
  nn::Model m = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  fl::TrainOptions opts;
  opts.epochs = 6;
  opts.lr = 0.01f;
  const auto stats = fl::train_local(m, tt.train, opts);
  ASSERT_EQ(stats.epoch_losses.size(), 6u);
  EXPECT_LT(stats.epoch_losses.back(), 0.7f * stats.epoch_losses.front());
  EXPECT_EQ(stats.steps, 6 * 3);  // 300 rows / batch 100 = 3 batches
}

TEST(Trainer, DatasetLossMatchesCrossEntropyScale) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 33, 100, 50));
  Rng rng(34);
  nn::Model fresh = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  const auto ce = losses::make_hard_loss("cross_entropy");
  const float loss = fl::dataset_loss(fresh, tt.train, *ce);
  // Untrained → near log(10) ≈ 2.30 (He-init logits on unit-variance
  // inputs inflate it somewhat).
  EXPECT_NEAR(loss, 2.6f, 1.0f);
}

TEST(FedAvg, WeightsBySize) {
  Rng rng(35);
  nn::Model a = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  nn::Model b = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  fl::ClientUpdate ua{a.snapshot(), 300, 0.0};
  fl::ClientUpdate ub{b.snapshot(), 100, 0.0};
  fl::FedAvgAggregator agg;
  const auto avg = agg.aggregate({ua, ub});
  for (std::size_t t = 0; t < avg.size(); ++t)
    for (std::size_t i = 0; i < avg[t].numel(); ++i)
      EXPECT_NEAR(avg[t][i],
                  0.75f * ua.params[t][i] + 0.25f * ub.params[t][i], 1e-5f);
}

TEST(FedAvg, EmptyClientThrows) {
  Rng rng(36);
  nn::Model a = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  fl::FedAvgAggregator agg;
  EXPECT_THROW(agg.aggregate({{a.snapshot(), 0, 0.0}}), CheckError);
}

TEST(AdaptiveWeights, LowerMseGetsHigherWeight) {
  const auto w = fl::AdaptiveAggregator::weights_from_mse({0.02, 0.08, 0.05});
  EXPECT_GT(w[0], w[2]);
  EXPECT_GT(w[2], w[1]);
  // Eq. 12: W = exp(−(me−mean)/mean); mean = 0.05.
  EXPECT_NEAR(w[0], std::exp(-(0.02 - 0.05) / 0.05), 1e-5);
}

TEST(AdaptiveWeights, EqualMseEqualWeights) {
  const auto w = fl::AdaptiveAggregator::weights_from_mse({0.1, 0.1, 0.1});
  EXPECT_NEAR(w[0], 1.0f, 1e-6f);
  EXPECT_NEAR(w[1], 1.0f, 1e-6f);
}

TEST(Uniform, IgnoresDatasetSizes) {
  Rng rng(45);
  nn::Model a = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  nn::Model b = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  fl::ClientUpdate ua{a.snapshot(), 900, 0.0};
  fl::ClientUpdate ub{b.snapshot(), 100, 0.0};
  fl::UniformAggregator agg;
  const auto avg = agg.aggregate({ua, ub});
  for (std::size_t t = 0; t < avg.size(); ++t)
    for (std::size_t i = 0; i < avg[t].numel(); ++i)
      EXPECT_NEAR(avg[t][i],
                  0.5f * (ua.params[t][i] + ub.params[t][i]), 1e-5f);
}

TEST(Aggregators, SingleClientIsIdentity) {
  // With one update every strategy normalizes its weight to exactly 1, so
  // the aggregate is the client's snapshot bit for bit.
  Rng rng(46);
  nn::Model a = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  fl::ClientUpdate u{a.snapshot(), 250, 0.0};
  for (const char* name : {"fedavg", "uniform", "adaptive"}) {
    const auto avg = fl::make_aggregator(name)->aggregate({u});
    ASSERT_EQ(avg.size(), u.params.size()) << name;
    for (std::size_t t = 0; t < avg.size(); ++t)
      for (std::size_t i = 0; i < avg[t].numel(); ++i)
        EXPECT_EQ(avg[t][i], u.params[t][i]) << name;
  }
}

TEST(AdaptiveWeights, AllZeroMseFallsBackToUniform) {
  // Every client fitting the test set perfectly used to abort ("all-zero
  // MSEs"); the degenerate case now weights clients uniformly.
  const auto w = fl::AdaptiveAggregator::weights_from_mse({0.0, 0.0, 0.0});
  ASSERT_EQ(w.size(), 3u);
  for (float wi : w) EXPECT_EQ(wi, 1.0f);

  Rng rng(47);
  nn::Model a = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  nn::Model b = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  fl::AdaptiveAggregator agg;
  const auto avg =
      agg.aggregate({{a.snapshot(), 10, 0.0}, {b.snapshot(), 10, 0.0}});
  for (std::size_t t = 0; t < avg.size(); ++t)
    for (std::size_t i = 0; i < avg[t].numel(); ++i)
      EXPECT_NEAR(avg[t][i],
                  0.5f * (a.snapshot()[t][i] + b.snapshot()[t][i]), 1e-6f);
}

TEST(Staleness, PolynomialDecayWeights) {
  EXPECT_EQ(fl::StalenessAggregator::decay(0, 0.5), 1.0f);
  EXPECT_EQ(fl::StalenessAggregator::decay(3, 1.0), 0.25f);
  EXPECT_NEAR(fl::StalenessAggregator::decay(1, 0.5),
              1.0f / std::sqrt(2.0f), 1e-6f);

  Rng rng(48);
  nn::Model a = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  nn::Model b = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  fl::ClientUpdate fresh{a.snapshot(), 100, 0.0, /*staleness=*/0};
  fl::ClientUpdate stale{b.snapshot(), 100, 0.0, /*staleness=*/3};
  fl::StalenessAggregator agg(fl::make_aggregator("uniform"), 1.0);
  const auto w = agg.weights({fresh, stale});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 1.0f);
  EXPECT_EQ(w[1], 0.25f);
  // Aggregation normalizes: 0.8·fresh + 0.2·stale.
  const auto avg = agg.aggregate({fresh, stale});
  for (std::size_t t = 0; t < avg.size(); ++t)
    for (std::size_t i = 0; i < avg[t].numel(); ++i)
      EXPECT_NEAR(avg[t][i],
                  0.8f * fresh.params[t][i] + 0.2f * stale.params[t][i],
                  1e-6f);
}

TEST(Staleness, NormalizationAndComposition) {
  // Identical snapshots must aggregate to themselves whatever the staleness
  // profile (weights are normalized), and the wrapper must inherit the base
  // strategy's server-side MSE requirement.
  Rng rng(49);
  nn::Model a = nn::make_mlp({1, 2, 2}, 4, 2, rng);
  fl::ClientUpdate u0{a.snapshot(), 100, 0.0, 0};
  fl::ClientUpdate u2{a.snapshot(), 100, 0.0, 2};
  fl::StalenessAggregator agg(fl::make_aggregator("adaptive"), 0.5);
  EXPECT_TRUE(agg.capabilities().needs_mse);
  EXPECT_TRUE(agg.capabilities().needs_staleness);
  EXPECT_EQ(agg.name(), "adaptive+staleness");
  EXPECT_FALSE(fl::make_aggregator("fedavg")->capabilities().needs_mse);
  const auto avg = agg.aggregate({u0, u2});
  for (std::size_t t = 0; t < avg.size(); ++t)
    for (std::size_t i = 0; i < avg[t].numel(); ++i)
      EXPECT_NEAR(avg[t][i], u0.params[t][i], 1e-6f);
}

TEST(AggregatorFactory, Names) {
  EXPECT_EQ(fl::make_aggregator("fedavg")->name(), "fedavg");
  EXPECT_EQ(fl::make_aggregator("uniform")->name(), "uniform");
  EXPECT_EQ(fl::make_aggregator("adaptive")->name(), "adaptive");
  EXPECT_EQ(fl::make_aggregator("krum")->name(), "krum");
  EXPECT_EQ(fl::make_aggregator("multi-krum")->name(), "multi-krum");
  EXPECT_EQ(fl::make_aggregator("trimmed-mean")->name(), "trimmed-mean");
  EXPECT_EQ(fl::make_aggregator("median")->name(), "median");
  EXPECT_EQ(fl::make_aggregator("norm-clip")->name(), "norm-clip");
  EXPECT_THROW(fl::make_aggregator("geometric-median"), CheckError);
  // Robust strategies advertise the capability; weight-based ones don't.
  EXPECT_TRUE(fl::make_aggregator("krum")->capabilities().robust);
  EXPECT_TRUE(fl::make_aggregator("median")->capabilities().robust);
  EXPECT_FALSE(fl::make_aggregator("fedavg")->capabilities().robust);
}

TEST(Simulation, AccuracyImprovesOverRounds) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 37, 600, 150));
  Rng rng(38);
  auto parts = data::partition_iid(tt.train, 3, rng);
  nn::Model global = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  fl::FlConfig cfg;
  cfg.local.epochs = 3;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  fl::FederatedSim sim(global, parts, tt.test, cfg);
  const auto results = sim.run(4);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_GT(results.back().global_accuracy,
            results.front().global_accuracy);
  EXPECT_GT(results.back().global_accuracy, 40.0);
  // Wire bytes: 3 clients × model params × 4 bytes (plus headers).
  EXPECT_GT(results[0].bytes_uplinked, 3u * global.num_scalars() * 4u);
  // Round numbering monotone.
  EXPECT_EQ(results[0].round, 0);
  EXPECT_EQ(results[3].round, 3);
}

TEST(Simulation, CustomClientUpdateIsUsed) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 39, 200, 50));
  Rng rng(40);
  auto parts = data::partition_iid(tt.train, 2, rng);
  nn::Model global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  fl::FlConfig cfg;
  fl::FederatedSim sim(global, parts, tt.test, cfg);
  std::atomic<int> called{0};
  std::set<std::size_t> ids;
  std::mutex mu;
  sim.set_client_update([&](std::size_t cid, nn::Model&,
                            const data::Dataset&, long round) {
    called.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(cid);
    EXPECT_EQ(round, 0);
  });
  sim.run_round();
  EXPECT_EQ(called.load(), 2);
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Simulation, AdaptiveAggregationRuns) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 41, 300, 80));
  Rng rng(42);
  auto parts = data::partition_iid(tt.train, 3, rng);
  nn::Model global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  fl::FlConfig cfg;
  cfg.aggregator = "adaptive";
  cfg.local.epochs = 1;
  cfg.local.lr = 0.01f;
  fl::FederatedSim sim(global, parts, tt.test, cfg);
  const auto r = sim.run(2);
  EXPECT_GT(r.back().global_accuracy, 15.0);
}

TEST(Simulation, SetClientDataReplaces) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 43, 100, 30));
  Rng rng(44);
  auto parts = data::partition_iid(tt.train, 2, rng);
  nn::Model global = nn::make_mlp({1, 28, 28}, 8, 10, rng);
  fl::FlConfig cfg;
  fl::FederatedSim sim(global, parts, tt.test, cfg);
  data::Dataset smaller = parts[0].subset({0, 1, 2});
  sim.set_client_data(0, smaller);
  EXPECT_EQ(sim.client_data(0).size(), 3);
  EXPECT_THROW(sim.set_client_data(5, smaller), CheckError);
}

}  // namespace
}  // namespace goldfish
