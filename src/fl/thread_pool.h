// Fixed-size thread pool driving the "foreach client c in parallel" loops of
// Algorithm 1 (and parallel shard retraining, Fig. 3).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace goldfish::fl {

class ThreadPool {
 public:
  /// threads == 0 → hardware concurrency (capped at 16).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("submit on stopped pool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Apply fn(i) for i in [0, n), in parallel; blocks until all complete.
  /// Exceptions from tasks propagate (first one wins).
  template <typename Fn>
  void parallel_map(std::size_t n, Fn&& fn) {
    std::vector<std::future<void>> futs;
    futs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      futs.push_back(submit([&fn, i] { fn(i); }));
    for (auto& f : futs) f.get();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace goldfish::fl
