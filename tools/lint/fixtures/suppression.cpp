// Suppression fixture: reasoned `goldfish-lint: allow(RULE)` comments mute
// a finding on the same line or on the next code line; an allow with no
// reason is itself a finding (SUP001) — debt must say why it is safe.
#include <cstddef>
#include <unordered_map>
#include <vector>

#ifndef GOLDFISH_HOT
#define GOLDFISH_HOT __attribute__((hot))
#endif

void drain(std::unordered_map<std::size_t, std::vector<float*>>& pools) {
  // Order-insensitive: every pointer is freed exactly once regardless of
  // bucket order, so hash iteration cannot leak into any result.
  // goldfish-lint: allow(DET003) deallocation-only drain, order-insensitive
  for (auto& [n, ptrs] : pools) {
    (void)n;
    for (float* p : ptrs) delete p;
  }
  pools.clear();
}

GOLDFISH_HOT void warm(std::vector<float>& buf, std::size_t n) {
  buf.reserve(n);  // goldfish-lint: allow(ALLOC002) one-time warmup growth
}

GOLDFISH_HOT void unreasoned(std::vector<float>& buf) {
  // EXPECT-NEXT: SUP001
  // goldfish-lint: allow(ALLOC002)
  buf.push_back(0.0f);                        // EXPECT: ALLOC002
}
