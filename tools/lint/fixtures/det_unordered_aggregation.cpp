// DET003 fixture: the canonical nondeterminism bug this rule exists for —
// client updates keyed by id in an unordered_map, aggregated by iterating
// it. Float addition is not associative, so the aggregate (and every
// StepResult downstream of it) differs between runs whenever libstdc++'s
// hash seeding or rehash history changes the bucket order. The fix is to
// iterate a sorted id list (or a vector indexed by arrival order) instead.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct StepResult {
  float aggregate = 0.0f;
  std::size_t clients = 0;
};

StepResult aggregate_updates(
    const std::unordered_map<int, float>& update_by_client) {
  StepResult out;
  float total = 0.0f;
  for (const auto& [id, update] : update_by_client) {  // EXPECT: DET003
    (void)id;
    total += update;  // FP sum in hash-bucket order: run-dependent
    ++out.clients;
  }
  out.aggregate = total;
  return out;
}

float sum_members(const std::unordered_set<float>& xs) {
  float s = 0.0f;
  for (float x : xs) s += x;  // EXPECT: DET003
  return s;
}

// Membership queries never observe iteration order. No finding expected.
std::size_t count_doomed(const std::unordered_set<std::size_t>& doomed,
                         const std::vector<std::size_t>& rows) {
  std::size_t n = 0;
  for (std::size_t r : rows)
    if (doomed.count(r) != 0) ++n;
  return n;
}
