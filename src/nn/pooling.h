// Spatial pooling layers.
#pragma once

#include "nn/layer.h"

namespace goldfish::nn {

/// Max pooling with square windows; caches argmax indices for backward.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(long kernel, long stride);

  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;
  std::size_t local_slots() const override { return 2; }  // out, dx

 private:
  long kernel_ = 2, stride_ = 2;
  Shape in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Global average pooling: (N,C,H,W) → (N,C). Used by the ResNet heads.
class GlobalAvgPool final : public Layer {
 public:
  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "gap"; }
  std::size_t local_slots() const override { return 2; }  // out, dx

 private:
  Shape in_shape_;
};

}  // namespace goldfish::nn
