# Empty dependencies file for bench_table10_ablation.
# This may be replaced when dependencies are built.
