#include "fl/aggregation.h"

#include <cmath>

#include "tensor/check.h"

namespace goldfish::fl {

std::vector<Tensor> Aggregator::aggregate(
    const std::vector<ClientUpdate>& updates) const {
  GOLDFISH_CHECK(!updates.empty(), "no updates to aggregate");
  // Snapshots are borrowed, not copied: the historical per-round clone of
  // every client's full parameter set is gone.
  std::vector<const std::vector<Tensor>*> snaps;
  snaps.reserve(updates.size());
  for (const ClientUpdate& u : updates) snaps.push_back(&u.params);
  return nn::weighted_average(snaps, weights(updates));
}

std::vector<float> FedAvgAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  std::vector<float> w;
  w.reserve(updates.size());
  for (const ClientUpdate& u : updates) {
    GOLDFISH_CHECK(u.dataset_size > 0, "client with empty dataset");
    w.push_back(static_cast<float>(u.dataset_size));
  }
  return w;
}

std::vector<float> UniformAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  return std::vector<float>(updates.size(), 1.0f);
}

std::vector<float> AdaptiveAggregator::weights_from_mse(
    const std::vector<double>& mses) {
  GOLDFISH_CHECK(!mses.empty(), "no MSEs");
  double mean = 0.0;
  for (double m : mses) {
    GOLDFISH_CHECK(m >= 0.0, "negative MSE");
    mean += m;
  }
  mean /= double(mses.size());
  // Every client fits the server test set perfectly (MSE 0 across the
  // board, e.g. on trivially separable synthetic data): Eq. 12 is undefined
  // (0/0), and no client carries more information than another — uniform
  // weights are the correct degenerate case, not a crash.
  if (mean == 0.0) return std::vector<float>(mses.size(), 1.0f);
  std::vector<float> w(mses.size());
  for (std::size_t i = 0; i < mses.size(); ++i)
    w[i] = static_cast<float>(std::exp(-(mses[i] - mean) / mean));
  return w;
}

std::vector<float> AdaptiveAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  std::vector<double> mses;
  mses.reserve(updates.size());
  for (const ClientUpdate& u : updates) mses.push_back(u.mse);
  return weights_from_mse(mses);
}

StalenessAggregator::StalenessAggregator(std::unique_ptr<Aggregator> base,
                                         double alpha)
    : base_(std::move(base)), alpha_(alpha) {
  GOLDFISH_CHECK(base_ != nullptr, "staleness wrapper needs a base");
  GOLDFISH_CHECK(alpha_ >= 0.0, "negative staleness exponent");
}

float StalenessAggregator::decay(long staleness, double alpha) {
  GOLDFISH_CHECK(staleness >= 0, "negative staleness");
  // (1+s)^−α; s = 0 (or α = 0) gives exactly 1.0, so fresh updates — and
  // the whole synchronous path — are weighted identically to the base.
  return static_cast<float>(std::pow(1.0 + double(staleness), -alpha));
}

std::vector<float> StalenessAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  std::vector<float> w = base_->weights(updates);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] *= decay(updates[i].staleness, alpha_);
  return w;
}

std::unique_ptr<Aggregator> make_aggregator(const std::string& name) {
  if (name == "fedavg") return std::make_unique<FedAvgAggregator>();
  if (name == "uniform") return std::make_unique<UniformAggregator>();
  if (name == "adaptive") return std::make_unique<AdaptiveAggregator>();
  GOLDFISH_CHECK(false, "unknown aggregator: " + name);
  return nullptr;  // unreachable
}

}  // namespace goldfish::fl
