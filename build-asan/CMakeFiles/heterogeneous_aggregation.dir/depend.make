# Empty dependencies file for heterogeneous_aggregation.
# This may be replaced when dependencies are built.
