// In-process federated learning simulation: a server, C clients, synchronous
// rounds, pluggable client update logic and aggregation. Client uploads pass
// through real (de)serialization so the wire path is exercised and byte
// counts are measurable.
#pragma once

#include <functional>
#include <memory>

#include "fl/aggregation.h"
#include "fl/trainer.h"
#include "runtime/scheduler.h"

namespace goldfish::fl {

struct FlConfig {
  TrainOptions local;                ///< per-round local training options
  std::string aggregator = "fedavg"; ///< "fedavg" | "adaptive"
  /// 0 → share the process-wide runtime Scheduler (the normal case; client
  /// tasks and the kernels inside them draw from one pool). Non-zero → a
  /// private Scheduler with that parallelism for *client-level* tasks only;
  /// kernels inside them still use the global pool, so to pin the whole
  /// process set GOLDFISH_THREADS instead.
  std::size_t threads = 0;
  std::uint64_t seed = 7;
};

/// Telemetry for one synchronous round.
struct RoundResult {
  long round = 0;
  double global_accuracy = 0.0;
  double min_local_accuracy = 0.0;
  double max_local_accuracy = 0.0;
  double mean_local_accuracy = 0.0;
  std::size_t bytes_uplinked = 0;
};

class FederatedSim {
 public:
  /// The per-client update: receives a local model already initialized from
  /// the current global parameters, trains it, and returns nothing (the sim
  /// snapshots the model afterwards). `round` is the global round index.
  using ClientUpdateFn = std::function<void(
      std::size_t client_id, nn::Model& local_model,
      const data::Dataset& local_data, long round)>;

  FederatedSim(nn::Model global, std::vector<data::Dataset> client_data,
               data::Dataset server_test, FlConfig cfg);

  /// Replace the default (plain LocalTraining) client update.
  void set_client_update(ClientUpdateFn fn) { update_fn_ = std::move(fn); }

  /// Execute one synchronous round: broadcast → parallel local updates →
  /// serialize/upload → (adaptive: server-side MSE scoring) → aggregate.
  RoundResult run_round();

  /// Run `rounds` rounds, collecting telemetry.
  std::vector<RoundResult> run(long rounds);

  nn::Model& global_model() { return global_; }
  const data::Dataset& server_test() const { return test_; }
  const data::Dataset& client_data(std::size_t c) const {
    return clients_[c];
  }
  std::size_t num_clients() const { return clients_.size(); }

  /// Replace one client's dataset (deletion requests mutate local data).
  void set_client_data(std::size_t c, data::Dataset ds);

 private:
  nn::Model global_;
  std::vector<data::Dataset> clients_;
  data::Dataset test_;
  FlConfig cfg_;
  std::unique_ptr<Aggregator> aggregator_;
  std::unique_ptr<runtime::Scheduler> owned_sched_;  // only when cfg.threads
  runtime::Scheduler* sched_;  // the pool client tasks run on
  ClientUpdateFn update_fn_;
  long round_ = 0;
};

}  // namespace goldfish::fl
