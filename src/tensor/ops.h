// Free-function kernels over Tensor: matmul, softmax family, reductions,
// and the im2col/col2im pair that backs convolution.
//
// All functions are pure (value in, value out) unless the name says
// otherwise; shape preconditions throw CheckError.
#pragma once

#include "runtime/gemm.h"
#include "tensor/tensor.h"

namespace goldfish {

// -- linear algebra --------------------------------------------------------

/// C = op(A)·op(B) with op(X) = Xᵀ when the flag is set. The single matrix
/// product of the library: a cache-blocked GEMM (runtime::sgemm) that packs
/// op(A)/op(B) into contiguous micro-panels and drives a register-tiled
/// microkernel, parallelized over independent output tiles of C on the
/// shared runtime Scheduler. Transposes are never materialized; results are
/// bit-identical for any thread count. C is written in overwrite mode
/// (beta=0) into an uninitialized tensor — no zero-fill pass.
Tensor gemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b);

/// C = epilogue(op(A)·op(B)): the product with a bias broadcast (and
/// optionally ReLU) fused into the GEMM writeback instead of separate passes
/// over C. `bias` must be 1-D with length n for the per-column variants
/// (linear layers: one bias per output feature) and length m for the per-row
/// variants (conv: one bias per output channel of the im2col product).
/// Bit-identical to gemm() followed by the equivalent bias/ReLU passes.
/// `epilogue` must not be kNone — call gemm() for the plain product.
Tensor gemm_fused(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                  runtime::Epilogue epilogue, const Tensor& bias);

/// C += op(A)·op(B) accumulated in place (the gradient hot path: avoids a
/// temporary and an extra pass). Shape of `c` must already match.
void gemm_acc(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
              bool trans_b);

/// gemm() writing into caller-owned storage: `c` is resized in place
/// (resize_uninit — no reallocation once warm) and fully overwritten
/// (beta=0). The zero-allocation twin used by workspace-backed layers.
void gemm_into(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
               bool trans_b);

/// gemm_fused() writing into caller-owned storage (see gemm_into).
void gemm_fused_into(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
                     bool trans_b, runtime::Epilogue epilogue,
                     const Tensor& bias);

/// C = A(m×k) · B(k×n). Thin wrapper over gemm(a, b, false, false).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ(k×m)ᵀ · B(k×n) = (m×n). Thin wrapper over gemm(a, b, true, false).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A(m×k) · Bᵀ(n×k)ᵀ = (m×n). Thin wrapper over gemm(a, b, false, true).
/// Note: the pre-runtime kernel accumulated each dot product in double;
/// like the other two wrappers this now accumulates in float registers
/// (standard GEMM practice — blocked summation keeps error well inside the
/// test tolerances, but bitwise results differ from the seed).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transposed copy of a 2-D tensor.
Tensor transpose(const Tensor& a);

// -- rowwise softmax family --------------------------------------------

/// Rowwise softmax of a 2-D tensor of logits, with temperature T
/// (Eq. 3/4 of the paper): p_ij = exp(z_ij / T) / Σ_k exp(z_ik / T).
/// Numerically stabilized by max subtraction.
Tensor softmax_rows(const Tensor& logits, float temperature = 1.0f);

/// Rowwise log-softmax (stable), temperature-scaled.
Tensor log_softmax_rows(const Tensor& logits, float temperature = 1.0f);

/// Rowwise argmax of a 2-D tensor; returns one index per row.
std::vector<long> argmax_rows(const Tensor& t);

/// Per-row variance of a 2-D tensor (population variance, ÷C).
/// Used by the confusion loss (Eq. 2) on prediction vectors.
std::vector<float> row_variance(const Tensor& t);

// -- elementwise -------------------------------------------------------

/// Elementwise maximum with a scalar (ReLU building block).
Tensor clamp_min(Tensor t, float lo);

/// Elementwise product (Hadamard).
Tensor hadamard(Tensor lhs, const Tensor& rhs);

// -- convolution lowering ----------------------------------------------

/// Parameters of a 2-D convolution / pooling window.
struct Conv2dGeom {
  long in_channels = 0;
  long in_h = 0, in_w = 0;
  long kernel = 0;   // square kernels only — all paper models use them
  long stride = 1;
  long pad = 0;

  long out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  long out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix: C·K·K.
  long patch_size() const { return in_channels * kernel * kernel; }
};

/// Lower a batch image tensor (N,C,H,W) to a matrix of shape
/// (C·K·K, N·outH·outW) so convolution becomes one matmul.
Tensor im2col(const Tensor& input, const Conv2dGeom& g);

/// im2col writing into caller-owned storage (resized in place, every
/// element written including the zero padding — no upfront fill needed).
void im2col_into(const Tensor& input, const Conv2dGeom& g, Tensor& cols);

/// Adjoint of im2col: scatter a (C·K·K, N·outH·outW) matrix of patch
/// gradients back to an image-shaped (N,C,H,W) gradient.
Tensor col2im(const Tensor& cols, long batch, const Conv2dGeom& g);

/// col2im writing into caller-owned storage (resized in place and zeroed
/// before the scatter-add, since padding positions receive no writes).
void col2im_into(const Tensor& cols, long batch, const Conv2dGeom& g,
                 Tensor& img);

}  // namespace goldfish
