#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fl/population/hierarchical.h"

#include "tensor/annotations.h"
#include "tensor/check.h"

namespace goldfish::fl {

namespace {

/// Per-update multiplier with the all-ones null convention.
inline float mult_at(const std::vector<float>* multipliers, std::size_t i) {
  return multipliers ? (*multipliers)[i] : 1.0f;
}

void check_multipliers(const std::vector<ClientUpdate>& updates,
                       const std::vector<float>* multipliers) {
  GOLDFISH_CHECK(!updates.empty(), "no updates to aggregate");
  GOLDFISH_CHECK(!multipliers || multipliers->size() == updates.size(),
                 "multiplier count mismatch");
}

}  // namespace

std::vector<float> Aggregator::weights(
    const std::vector<ClientUpdate>&) const {
  throw std::logic_error("fl::Aggregator: '" + name() +
                         "' has no per-update scalar weights (coordinate-"
                         "wise robust strategies override aggregate())");
}

GOLDFISH_HOT std::vector<Tensor> Aggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    const std::vector<float>* multipliers) const {
  check_multipliers(updates, multipliers);
  // Snapshots are borrowed, not copied: the historical per-round clone of
  // every client's full parameter set is gone.
  std::vector<const std::vector<Tensor>*> snaps;
  // goldfish-lint: allow(ALLOC002) bounded borrow-pointer vector, one
  // reserve per aggregate — no client parameters are copied
  snaps.reserve(updates.size());
  // goldfish-lint: allow(ALLOC002) within the capacity reserved above
  for (const ClientUpdate& u : updates) snaps.push_back(&u.params);
  std::vector<float> w = weights(updates);
  if (multipliers)
    for (std::size_t i = 0; i < w.size(); ++i) w[i] *= (*multipliers)[i];
  return nn::weighted_average(snaps, w);
}

std::vector<float> FedAvgAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  std::vector<float> w;
  w.reserve(updates.size());
  for (const ClientUpdate& u : updates) {
    GOLDFISH_CHECK(u.dataset_size > 0, "client with empty dataset");
    w.push_back(static_cast<float>(u.dataset_size));
  }
  return w;
}

std::vector<float> UniformAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  return std::vector<float>(updates.size(), 1.0f);
}

std::vector<float> AdaptiveAggregator::weights_from_mse(
    const std::vector<double>& mses) {
  GOLDFISH_CHECK(!mses.empty(), "no MSEs");
  double mean = 0.0;
  for (double m : mses) {
    GOLDFISH_CHECK(m >= 0.0, "negative MSE");
    mean += m;
  }
  mean /= double(mses.size());
  // Every client fits the server test set perfectly (MSE 0 across the
  // board, e.g. on trivially separable synthetic data): Eq. 12 is undefined
  // (0/0), and no client carries more information than another — uniform
  // weights are the correct degenerate case, not a crash.
  if (mean == 0.0) return std::vector<float>(mses.size(), 1.0f);
  std::vector<float> w(mses.size());
  for (std::size_t i = 0; i < mses.size(); ++i)
    w[i] = static_cast<float>(std::exp(-(mses[i] - mean) / mean));
  return w;
}

std::vector<float> AdaptiveAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  std::vector<double> mses;
  mses.reserve(updates.size());
  for (const ClientUpdate& u : updates) mses.push_back(u.mse);
  return weights_from_mse(mses);
}

// -- Krum / multi-Krum ------------------------------------------------------

KrumAggregator::KrumAggregator(long f, long m) : f_(f), m_(m) {
  GOLDFISH_CHECK(f_ >= 0, "krum f must be >= 0");
  GOLDFISH_CHECK(m_ >= 1, "krum selection size m must be >= 1");
}

std::vector<double> KrumAggregator::scores(
    const std::vector<ClientUpdate>& updates, long f) {
  const long n = static_cast<long>(updates.size());
  GOLDFISH_CHECK(n > f + 2,
                 "krum needs n >= f+3 updates per aggregation (scoring sums "
                 "each update's n-f-2 nearest neighbours)");
  // Symmetric pairwise squared distances, computed once.
  std::vector<float> dist(static_cast<std::size_t>(n * n), 0.0f);
  for (long i = 0; i < n; ++i)
    for (long j = i + 1; j < n; ++j) {
      const float d = nn::snapshot_distance_sq(
          updates[static_cast<std::size_t>(i)].params,
          updates[static_cast<std::size_t>(j)].params);
      dist[static_cast<std::size_t>(i * n + j)] = d;
      dist[static_cast<std::size_t>(j * n + i)] = d;
    }
  const long keep = n - f - 2;
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  std::vector<float> row(static_cast<std::size_t>(n - 1));
  for (long i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (long j = 0; j < n; ++j)
      if (j != i) row[r++] = dist[static_cast<std::size_t>(i * n + j)];
    // Ascending partial order, summed smallest-first so the score is a
    // deterministic function of the distance multiset.
    std::sort(row.begin(), row.end());
    double s = 0.0;
    for (long k = 0; k < keep; ++k) s += double(row[static_cast<std::size_t>(k)]);
    out[static_cast<std::size_t>(i)] = s;
  }
  return out;
}

std::vector<Tensor> KrumAggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    const std::vector<float>* multipliers) const {
  check_multipliers(updates, multipliers);
  const std::vector<double> sc = scores(updates, f_);
  const std::size_t n = updates.size();
  // m lowest scores, ties broken by arrival index (the sort is over
  // (score, index) pairs, so selection is fully deterministic).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sc[a] != sc[b]) return sc[a] < sc[b];
    return a < b;
  });
  const std::size_t m = std::min(static_cast<std::size_t>(m_), n);
  // Selection is a 0/1 mask (x multipliers), so the averaging itself rides
  // the shared borrowed-view fast path.
  std::vector<float> w(n, 0.0f);
  for (std::size_t k = 0; k < m; ++k)
    w[order[k]] = mult_at(multipliers, order[k]);
  std::vector<const std::vector<Tensor>*> snaps;
  snaps.reserve(n);
  for (const ClientUpdate& u : updates) snaps.push_back(&u.params);
  return nn::weighted_average(snaps, w);
}

// -- coordinate-wise trimmed mean and median --------------------------------

TrimmedMeanAggregator::TrimmedMeanAggregator(double fraction)
    : fraction_(fraction) {
  GOLDFISH_CHECK(fraction_ >= 0.0 && fraction_ < 0.5,
                 "trim fraction must be in [0, 0.5)");
}

std::vector<Tensor> TrimmedMeanAggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    const std::vector<float>* multipliers) const {
  check_multipliers(updates, multipliers);
  const std::size_t n = updates.size();
  const std::size_t k =
      static_cast<std::size_t>(fraction_ * double(n));  // per side
  GOLDFISH_CHECK(n > 2 * k, "trimmed-mean trimmed every update away");

  const std::vector<Tensor>& like = updates[0].params;
  std::vector<Tensor> out;
  out.reserve(like.size());
  // (value, update index) pairs per coordinate: the index both breaks value
  // ties deterministically and carries the update's multiplier through the
  // sort.
  std::vector<std::pair<float, std::size_t>> col(n);
  for (std::size_t t = 0; t < like.size(); ++t) {
    Tensor acc = Tensor::uninit(like[t].shape());
    float* dst = acc.data();
    for (std::size_t j = 0; j < like[t].numel(); ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        GOLDFISH_CHECK(updates[i].params[t].same_shape(like[t]),
                       "snapshot shape mismatch");
        col[i] = {updates[i].params[t][j], i};
      }
      std::sort(col.begin(), col.end());
      double num = 0.0, den = 0.0;
      for (std::size_t i = k; i < n - k; ++i) {
        const double w = double(mult_at(multipliers, col[i].second));
        num += w * double(col[i].first);
        den += w;
      }
      GOLDFISH_CHECK(den > 0.0, "trimmed-mean weights sum to zero");
      dst[j] = static_cast<float>(num / den);
    }
    out.push_back(std::move(acc));
  }
  return out;
}

std::vector<Tensor> MedianAggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    const std::vector<float>* multipliers) const {
  check_multipliers(updates, multipliers);
  (void)multipliers;  // an order statistic is scale-free; decay is ignored
  const std::size_t n = updates.size();
  const std::vector<Tensor>& like = updates[0].params;
  std::vector<Tensor> out;
  out.reserve(like.size());
  std::vector<float> col(n);
  for (std::size_t t = 0; t < like.size(); ++t) {
    Tensor acc = Tensor::uninit(like[t].shape());
    float* dst = acc.data();
    for (std::size_t j = 0; j < like[t].numel(); ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        GOLDFISH_CHECK(updates[i].params[t].same_shape(like[t]),
                       "snapshot shape mismatch");
        col[i] = updates[i].params[t][j];
      }
      std::sort(col.begin(), col.end());
      dst[j] = (n % 2 == 1) ? col[n / 2]
                            : 0.5f * (col[n / 2 - 1] + col[n / 2]);
    }
    out.push_back(std::move(acc));
  }
  return out;
}

// -- norm clipping ----------------------------------------------------------

NormClipAggregator::NormClipAggregator(double clip) : clip_(clip) {
  GOLDFISH_CHECK(clip_ > 0.0, "clip norm must be positive");
}

double NormClipAggregator::snapshot_norm(const std::vector<Tensor>& params) {
  double acc = 0.0;
  for (const Tensor& t : params)
    for (std::size_t j = 0; j < t.numel(); ++j)
      acc += double(t[j]) * double(t[j]);
  return std::sqrt(acc);
}

std::vector<Tensor> NormClipAggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    const std::vector<float>* multipliers) const {
  check_multipliers(updates, multipliers);
  const std::size_t n = updates.size();
  // Multiplier normalization mirrors nn::weighted_average exactly (float
  // total, first snapshot written in place, the rest axpy-accumulated), so
  // with every clip factor at 1 the result is bit-identical to the uniform
  // average. Clip factors scale each normalized weight afterwards — they
  // deliberately stay out of the normalization: an oversized update must
  // contribute less total mass, not get renormalized back up.
  float total = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    GOLDFISH_CHECK(mult_at(multipliers, i) >= 0.0f,
                   "negative aggregation weight");
    total += mult_at(multipliers, i);
  }
  GOLDFISH_CHECK(total > 0.0f, "aggregation weights sum to zero");
  std::vector<float> eff(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double norm = snapshot_norm(updates[i].params);
    const float factor =
        norm > clip_ ? static_cast<float>(clip_ / norm) : 1.0f;
    eff[i] = (mult_at(multipliers, i) / total) * factor;
  }

  const std::vector<Tensor>& first = updates[0].params;
  std::vector<Tensor> out;
  out.reserve(first.size());
  for (const Tensor& t : first) {
    Tensor acc = Tensor::uninit(t.shape());
    const float* src = t.data();
    float* dst = acc.data();
    for (std::size_t j = 0; j < t.numel(); ++j) dst[j] = src[j] * eff[0];
    out.push_back(std::move(acc));
  }
  for (std::size_t i = 1; i < n; ++i) nn::axpy(out, updates[i].params, eff[i]);
  return out;
}

// -- staleness discounting --------------------------------------------------

StalenessAggregator::StalenessAggregator(std::unique_ptr<Aggregator> base,
                                         double alpha)
    : base_(std::move(base)), alpha_(alpha) {
  GOLDFISH_CHECK(base_ != nullptr, "staleness wrapper needs a base");
  GOLDFISH_CHECK(alpha_ >= 0.0, "negative staleness exponent");
}

float StalenessAggregator::decay(long staleness, double alpha) {
  GOLDFISH_CHECK(staleness >= 0, "negative staleness");
  // (1+s)^−α; s = 0 (or α = 0) gives exactly 1.0, so fresh updates — and
  // the whole synchronous path — are weighted identically to the base.
  return static_cast<float>(std::pow(1.0 + double(staleness), -alpha));
}

std::vector<float> StalenessAggregator::weights(
    const std::vector<ClientUpdate>& updates) const {
  std::vector<float> w = base_->weights(updates);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] *= decay(updates[i].staleness, alpha_);
  return w;
}

std::vector<Tensor> StalenessAggregator::aggregate(
    const std::vector<ClientUpdate>& updates,
    const std::vector<float>* multipliers) const {
  check_multipliers(updates, multipliers);
  // Fold the decay into the multiplier stream and let the base do the rest:
  // weight-based bases multiply it into their weights, robust bases apply
  // it to whatever survives their filtering.
  std::vector<float> d(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i)
    d[i] = decay(updates[i].staleness, alpha_) * mult_at(multipliers, i);
  return base_->aggregate(updates, &d);
}

std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            const RobustConfig& robust) {
  // "hier+<base>": two-tier hierarchical reduction over the named base,
  // edge width robust.hier_edge. Recurses so the prefix composes with any
  // base the registry knows.
  if (name.rfind("hier+", 0) == 0)
    return std::make_unique<population::HierarchicalAggregator>(
        make_aggregator(name.substr(5), robust), robust.hier_edge);
  if (name == "fedavg") return std::make_unique<FedAvgAggregator>();
  if (name == "uniform") return std::make_unique<UniformAggregator>();
  if (name == "adaptive") return std::make_unique<AdaptiveAggregator>();
  if (name == "krum")
    return std::make_unique<KrumAggregator>(robust.krum_f, 1);
  if (name == "multi-krum")
    return std::make_unique<KrumAggregator>(robust.krum_f, robust.krum_m);
  if (name == "trimmed-mean")
    return std::make_unique<TrimmedMeanAggregator>(robust.trim_fraction);
  if (name == "median") return std::make_unique<MedianAggregator>();
  if (name == "norm-clip")
    return std::make_unique<NormClipAggregator>(robust.clip_norm);
  GOLDFISH_CHECK(false, "unknown aggregator: " + name);
  return nullptr;  // unreachable
}

}  // namespace goldfish::fl
