file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hetero_aggregation.dir/bench_fig8_hetero_aggregation.cpp.o"
  "CMakeFiles/bench_fig8_hetero_aggregation.dir/bench_fig8_hetero_aggregation.cpp.o.d"
  "bench_fig8_hetero_aggregation"
  "bench_fig8_hetero_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hetero_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
