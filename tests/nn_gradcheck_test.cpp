// Finite-difference gradient verification for every layer and loss.
//
// This suite is the numerical bedrock of the reproduction: if these pass,
// backpropagation through any model assembled from these layers is exact,
// and the unlearning dynamics measured by the benches are trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "losses/distillation.h"
#include "losses/goldfish_loss.h"
#include "losses/hard_loss.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace goldfish {
namespace {

using nn::Layer;

/// Scalar objective over a layer's output: weighted sum with fixed random
/// coefficients (gives every output element a distinct gradient).
struct Probe {
  Tensor coeffs;
  explicit Probe(const Tensor& out_sample, Rng& rng)
      : coeffs(Tensor::randn(out_sample.shape(), rng)) {}
  float value(const Tensor& out) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i)
      acc += double(out[i]) * coeffs[i];
    return static_cast<float>(acc);
  }
  Tensor grad() const { return coeffs; }
};

/// Check input gradients of a layer via central differences.
void check_input_grad(Layer& layer, Tensor x, float tol = 2e-2f,
                      bool train = true) {
  Rng rng(99);
  Tensor out = layer.forward(x, train);
  Probe probe(out, rng);
  layer.forward(x, train);  // refresh caches (probe construction reused rng)
  Tensor gin = layer.backward(probe.grad());
  ASSERT_TRUE(gin.same_shape(x));

  const float eps = 1e-2f;
  // Probe a pseudo-random subset of coordinates to keep runtime sane.
  Rng pick(7);
  const std::size_t samples = std::min<std::size_t>(x.numel(), 24);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t i = pick.uniform_index(x.numel());
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float fp = probe.value(layer.forward(xp, train));
    const float fm = probe.value(layer.forward(xm, train));
    const float fd = (fp - fm) / (2 * eps);
    EXPECT_NEAR(gin[i], fd, tol + tol * std::fabs(fd))
        << layer.name() << " input coord " << i;
  }
}

/// Check parameter gradients of a layer via central differences.
void check_param_grads(Layer& layer, const Tensor& x, float tol = 2e-2f,
                       bool train = true) {
  Rng rng(98);
  Tensor out = layer.forward(x, train);
  Probe probe(out, rng);
  for (nn::ParamRef p : layer.params())
    if (p.grad != nullptr) p.grad->zero();
  layer.forward(x, train);
  layer.backward(probe.grad());

  const float eps = 1e-2f;
  for (nn::ParamRef p : layer.params()) {
    if (p.grad == nullptr) continue;
    Rng pick(5);
    const std::size_t samples = std::min<std::size_t>(p.value->numel(), 16);
    for (std::size_t s = 0; s < samples; ++s) {
      const std::size_t i = pick.uniform_index(p.value->numel());
      const float orig = (*p.value)[i];
      (*p.value)[i] = orig + eps;
      const float fp = probe.value(layer.forward(x, train));
      (*p.value)[i] = orig - eps;
      const float fm = probe.value(layer.forward(x, train));
      (*p.value)[i] = orig;
      const float fd = (fp - fm) / (2 * eps);
      EXPECT_NEAR((*p.grad)[i], fd, tol + tol * std::fabs(fd))
          << layer.name() << " param " << p.name << " coord " << i;
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  nn::Linear layer(7, 5, rng);
  Tensor x = Tensor::randn({3, 7}, rng);
  check_input_grad(layer, x);
  check_param_grads(layer, x);
}

TEST(GradCheck, ReLU) {
  Rng rng(2);
  nn::ReLU layer;
  // Keep values away from the kink at 0 for clean finite differences.
  Tensor x = Tensor::randn({4, 6}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
  check_input_grad(layer, x);
}

TEST(GradCheck, Conv2d) {
  Rng rng(3);
  nn::Conv2d layer(2, 3, 3, 1, 1, 5, 5, rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  check_input_grad(layer, x);
  check_param_grads(layer, x);
}

TEST(GradCheck, Conv2dStrided) {
  Rng rng(4);
  nn::Conv2d layer(1, 2, 3, 2, 0, 7, 7, rng);
  Tensor x = Tensor::randn({2, 1, 7, 7}, rng);
  check_input_grad(layer, x);
  check_param_grads(layer, x);
}

TEST(GradCheck, MaxPool) {
  Rng rng(5);
  nn::MaxPool2d layer(2, 2);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng, 0.0f, 3.0f);
  check_input_grad(layer, x);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(6);
  nn::GlobalAvgPool layer;
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  check_input_grad(layer, x);
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(7);
  nn::BatchNorm2d layer(3);
  Tensor x = Tensor::randn({4, 3, 3, 3}, rng, 0.5f, 2.0f);
  check_input_grad(layer, x, 0.05f);
  check_param_grads(layer, x, 0.05f);
}

TEST(GradCheck, ResidualBlockIdentity) {
  Rng rng(8);
  nn::ResidualBlock layer(3, 3, 1, 4, 4, rng);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  check_input_grad(layer, x, 0.06f);
  check_param_grads(layer, x, 0.06f);
}

TEST(GradCheck, ResidualBlockProjection) {
  Rng rng(9);
  nn::ResidualBlock layer(2, 4, 2, 6, 6, rng);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  check_input_grad(layer, x, 0.06f);
  check_param_grads(layer, x, 0.06f);
}

TEST(GradCheck, SequentialComposite) {
  Rng rng(10);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>(6, 8, rng));
  seq.add(std::make_unique<nn::ReLU>());
  seq.add(std::make_unique<nn::Linear>(8, 4, rng));
  Tensor x = Tensor::randn({3, 6}, rng);
  check_input_grad(seq, x);
  check_param_grads(seq, x);
}

// -- loss gradient checks (w.r.t. logits) ----------------------------------

void check_loss_grad(
    const std::function<losses::LossResult(const Tensor&)>& loss, Tensor z,
    float tol = 1e-3f) {
  losses::LossResult r = loss(z);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < z.numel(); ++i) {
    Tensor zp = z, zm = z;
    zp[i] += eps;
    zm[i] -= eps;
    const float fd = (loss(zp).value - loss(zm).value) / (2 * eps);
    EXPECT_NEAR(r.grad_logits[i], fd, tol + tol * std::fabs(fd))
        << "logit " << i;
  }
}

TEST(GradCheck, CrossEntropyLoss) {
  Rng rng(11);
  Tensor z = Tensor::randn({4, 5}, rng, 0.0f, 2.0f);
  const std::vector<long> y{0, 3, 2, 4};
  losses::CrossEntropyLoss ce;
  check_loss_grad([&](const Tensor& zz) { return ce.eval(zz, y); }, z);
}

TEST(GradCheck, FocalLoss) {
  Rng rng(12);
  Tensor z = Tensor::randn({3, 4}, rng, 0.0f, 2.0f);
  const std::vector<long> y{1, 0, 3};
  losses::FocalLoss focal(2.0f);
  check_loss_grad([&](const Tensor& zz) { return focal.eval(zz, y); }, z,
                  3e-3f);
}

TEST(GradCheck, NllLoss) {
  Rng rng(13);
  Tensor z = Tensor::randn({3, 6}, rng, 0.0f, 2.0f);
  const std::vector<long> y{5, 2, 0};
  losses::NllLoss nll;
  check_loss_grad([&](const Tensor& zz) { return nll.eval(zz, y); }, z);
}

TEST(GradCheck, DistillationLoss) {
  Rng rng(14);
  Tensor teacher = Tensor::randn({3, 5}, rng, 0.0f, 2.0f);
  Tensor z = Tensor::randn({3, 5}, rng, 0.0f, 2.0f);
  for (float temp : {1.0f, 3.0f}) {
    check_loss_grad(
        [&](const Tensor& zz) {
          return losses::distillation_loss(teacher, zz, temp);
        },
        z, 2e-3f);
  }
}

TEST(GradCheck, ConfusionLoss) {
  Rng rng(15);
  Tensor z = Tensor::randn({3, 6}, rng, 0.0f, 2.0f);
  check_loss_grad(
      [&](const Tensor& zz) { return losses::confusion_loss(zz); }, z, 3e-3f);
}

}  // namespace
}  // namespace goldfish
