// The classic federated-simulation entry points, kept as a thin facade over
// the event-driven fl::Engine (fl/engine.h).
//
// Each legacy entry point is a canned Scenario + policy bundle:
//
//   run_round / run(n)  →  Engine::sync_scenario: full participation,
//                          K = all active clients, constant durations, no
//                          staleness decay, local-accuracy telemetry.
//   run_async           →  Engine::async_scenario: full participation,
//                          fixed K = cfg.async.buffer_size, the seeded
//                          log-normal VirtualClock, (1+s)^−α decay, and the
//                          deletions mapped onto the scenario timeline.
//
// Results are bit-identical to the historical hardcoded loops at any thread
// count (pinned by tests/fl_test.cpp, tests/async_round_test.cpp and
// tests/zero_alloc_round_test.cpp against verbatim legacy references).
// Scenarios beyond these bundles — client sampling, adaptive buffers,
// availability windows, joins/leaves, aggregator swaps, wall-clock traces —
// are composed directly on the Engine (see src/fl/README.md).
#pragma once

#include "fl/engine.h"

namespace goldfish::fl {

/// Telemetry for one synchronous round.
struct RoundResult {
  long round = 0;
  double global_accuracy = 0.0;
  double min_local_accuracy = 0.0;
  double max_local_accuracy = 0.0;
  double mean_local_accuracy = 0.0;
  std::size_t bytes_uplinked = 0;
};

/// Telemetry for one asynchronous buffer aggregation.
struct AsyncRoundResult {
  long agg = 0;                 ///< aggregation index within this run
  double virtual_time = 0.0;    ///< virtual clock when the buffer filled
  double global_accuracy = 0.0;
  double mean_staleness = 0.0;  ///< over the K consumed updates
  long max_staleness = 0;
  long updates_consumed = 0;    ///< == buffer size K
  /// Updates invalidated so far (cumulative): deletion requests evict a
  /// client's buffered updates and void its in-flight task.
  long dropped_updates = 0;
  std::size_t bytes_uplinked = 0;  ///< wire bytes of the consumed updates
  /// Encoded bytes of a single upload under the run's WirePolicy (constant
  /// within a run; dense GFT1 for the canned bundles).
  std::size_t upload_bytes = 0;
  /// Mean relative L2 error the wire encoding injected into the consumed
  /// updates (0 for the canned bundles' lossless dense wire).
  double encode_error = 0.0;
};

/// The engine's DeletionEvent under its historical name: a deletion request
/// arriving mid-run at a virtual time (see fl/engine.h for the semantics;
/// core/unlearner.h builds these events).
using AsyncDeletion = DeletionEvent;

class FederatedSim {
 public:
  /// The per-client update: receives a local model already initialized from
  /// the current global parameters, trains it, and returns nothing (the sim
  /// snapshots the model afterwards). `round` is the global round index.
  using ClientUpdateFn = Engine::ClientUpdateFn;

  FederatedSim(nn::Model global, std::vector<data::Dataset> client_data,
               data::Dataset server_test, FlConfig cfg)
      : engine_(std::move(global), std::move(client_data),
                std::move(server_test), std::move(cfg)) {}

  /// Replace the default (plain LocalTraining) client update.
  void set_client_update(ClientUpdateFn fn) {
    engine_.set_client_update(std::move(fn));
  }

  /// Execute one synchronous round: pooled broadcast → parallel local
  /// updates → serialize/upload → (adaptive: server-side MSE scoring) →
  /// aggregate. A one-aggregation sync scenario on the engine.
  RoundResult run_round();

  /// Run `rounds` rounds, collecting telemetry (one sync scenario).
  std::vector<RoundResult> run(long rounds);

  /// Buffered-asynchronous execution (FedBuff-style): clients train
  /// continuously as independent Scheduler tasks; the server aggregates
  /// whenever K = cfg.async.buffer_size updates have arrived, weighting
  /// each by its base aggregator weight × (1+staleness)^−α. Runs until
  /// `aggregations` buffers have been consumed. With K = num_clients and
  /// duration_log_jitter = 0 the schedule degenerates to the synchronous
  /// one and matches run_round bit for bit.
  ///
  /// `deletions` inject unlearning requests mid-run (see DeletionEvent);
  /// they must be the client's *remaining* data and take effect at their
  /// virtual time, evicting the client's pending/in-flight updates. After
  /// the run, client_data() reflects the post-deletion datasets.
  std::vector<AsyncRoundResult> run_async(
      long aggregations, std::vector<AsyncDeletion> deletions = {});

  /// The engine underneath, for scenarios beyond the canned bundles
  /// (sampling, adaptive buffers, joins/leaves, aggregator swaps, traces).
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }

  nn::Model& global_model() { return engine_.global_model(); }
  const data::Dataset& server_test() const { return engine_.server_test(); }
  const data::Dataset& client_data(std::size_t c) const {
    return engine_.client_data(c);
  }
  std::size_t num_clients() const { return engine_.num_clients(); }

  /// Number of pooled client-model replicas currently alive (grows on
  /// demand, bounded by the scheduler's parallelism).
  std::size_t pool_size() const { return engine_.pool_size(); }

  /// Replace one client's dataset. Rejected (std::logic_error) while a run
  /// is in flight — deletion events are the supported mid-run path.
  void set_client_data(std::size_t c, data::Dataset ds) {
    engine_.set_client_data(c, std::move(ds));
  }

 private:
  Engine engine_;
};

}  // namespace goldfish::fl
