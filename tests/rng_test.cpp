// Determinism and distribution sanity for the Rng.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tensor/rng.h"

namespace goldfish {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-5.0f, -1.0f);
    EXPECT_GE(u, -5.0f);
    EXPECT_LT(u, -1.0f);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(9);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  const int n = 100000;
  double mean = 0.0, var = 0.0;
  std::vector<float> xs(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.normal();
    mean += xs[i];
  }
  mean /= n;
  for (float x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, BernoulliRate) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3f)) ++hits;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, RandomPermutationProperties) {
  Rng rng(14);
  auto p = random_permutation(100, rng);
  EXPECT_EQ(p.size(), 100u);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(15);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace goldfish
