// Top-level Goldfish federated unlearning (Algorithm 1).
//
// On a deletion request the trained-but-contaminated global model becomes
// the *teacher*; the global model is re-initialized (ω ← ω0) and every
// client then runs the Goldfish distillation procedure — unlearned clients
// with their (D_r, D_f) split, normal clients with D_f = ∅ — after which the
// server aggregates with adaptive weights (Eq. 12–13). Accuracy recovers at
// distillation speed while D_f's influence is never transferred.
//
// The unlearner executes on the same event-driven fl::Engine as federated
// training: distillation is just its client-update function, and run_round
// is the canned synchronous scenario. Because of that, unlearning composes
// with every server regime the engine supports — run a buffered scenario
// (or sampling, availability windows, adaptive K) through engine() and the
// distillation rounds become semi-asynchronous with no extra code.
#pragma once

#include <mutex>

#include "core/distill_trainer.h"
#include "fl/simulation.h"

namespace goldfish::core {

/// One client's deletion request: rows (indices into that client's local
/// dataset) to forget.
struct UnlearnRequest {
  std::size_t client_id = 0;
  std::vector<std::size_t> rows;
};

/// Split one client dataset into remaining / removed rows per a deletion
/// request (`rows` index `local`). The shared splitter behind synchronous
/// request_deletion and the asynchronous mid-buffer trigger below.
struct DeletionSplit {
  data::Dataset remaining;
  data::Dataset removed;
};
DeletionSplit split_deletion(const data::Dataset& local,
                             const UnlearnRequest& req);

/// Build the scenario-timeline deletion trigger for a request against a
/// running FederatedSim: the returned event, handed to
/// FederatedSim::run_async (or placed in any Engine Scenario), replaces the
/// client's data with its remaining rows at virtual time `vtime` — evicting
/// the client's buffered and in-flight updates, which trained on the
/// deleted rows, before they can reach an aggregation. The removed rows
/// (D_f) are returned for the distillation phase (GoldfishUnlearner) and
/// auditing.
struct AsyncDeletionPlan {
  fl::DeletionEvent event;
  data::Dataset removed;
};
AsyncDeletionPlan make_async_deletion(const fl::FederatedSim& sim,
                                      const UnlearnRequest& req,
                                      double vtime);

struct UnlearnConfig {
  DistillOptions distill;
  std::string aggregator = "adaptive";  ///< extension module default
  /// 0 → shared runtime Scheduler; non-zero → private pool for client-level
  /// tasks only (kernels stay on the global pool — see fl::FlConfig).
  std::size_t threads = 0;
  std::uint64_t seed = 17;
};

/// Telemetry per unlearning round.
struct UnlearnRoundResult {
  long round = 0;
  double global_accuracy = 0.0;
  long total_epochs_run = 0;       ///< Σ over clients (early term. shrinks it)
  long clients_terminated_early = 0;
  double mean_temperature = 0.0;   ///< mean adaptive temperature across clients
};

class GoldfishUnlearner {
 public:
  /// `global` must be the *trained* federated model (it becomes the
  /// teacher); `fresh_init` is ω0, the re-initialized starting point.
  GoldfishUnlearner(nn::Model global, nn::Model fresh_init,
                    std::vector<data::Dataset> client_data,
                    data::Dataset server_test, UnlearnConfig cfg);

  /// Register deletion requests (splits the clients' data into D_r / D_f).
  void request_deletion(const std::vector<UnlearnRequest>& requests);

  /// Run one synchronous unlearning round (all clients distill in parallel,
  /// then adaptive aggregation) — the engine's canned sync scenario.
  UnlearnRoundResult run_round();

  /// Run `rounds` rounds.
  std::vector<UnlearnRoundResult> run(long rounds);

  /// The execution engine underneath. Unlearning scenarios compose like
  /// training ones: e.g. engine().run(engine().async_scenario(aggs), sink)
  /// distills through a buffered semi-asynchronous server, and sampling /
  /// buffer / clock policies apply unchanged. Distillation telemetry
  /// (epochs, early terminations, temperatures) accumulates across one
  /// run and is reported by run_round; custom scenarios read the engine's
  /// StepResult stream directly.
  fl::Engine& engine() { return *engine_; }

  nn::Model& global_model() { return engine_->global_model(); }
  nn::Model& teacher_model() { return teacher_; }
  const data::Dataset& removed_data(std::size_t client) const;
  const data::Dataset& remaining_data(std::size_t client) const;

 private:
  nn::Model teacher_;  // pre-unlearning global model (knowledge source)
  UnlearnConfig cfg_;
  /// Client datasets live in the engine (its client_data is D_r); only the
  /// forget-sets are kept here. removed_[c] may lag num_clients() when
  /// clients join mid-scenario — joined clients simply have D_f = ∅.
  std::vector<data::Dataset> removed_;
  data::Dataset no_removed_;  // D_f = ∅ for clients without deletions
  std::unique_ptr<fl::Engine> engine_;

  // Distillation telemetry, accumulated by the client-update function
  // across one engine run and drained by run_round. Temperatures are kept
  // per client and summed in client order so the mean is bit-identical at
  // any thread count.
  std::mutex stats_mu_;
  long epochs_run_ = 0;
  long terminated_early_ = 0;
  std::vector<double> temps_;
};

}  // namespace goldfish::core
