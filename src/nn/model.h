// Model: the unit the FL and unlearning layers operate on.
//
// A Model owns a root layer (usually Sequential) plus metadata, and exposes
// the whole-model operations the paper's algorithms need: parameter
// snapshot/restore (ω in Algorithm 1), gradient reset, cloning (teacher ←
// global model), and parameter-space arithmetic used by shard aggregation
// (Eq. 8–10) and server aggregation (Eq. 13).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace goldfish::nn {

class Model {
 public:
  Model() = default;
  Model(std::string arch_name, std::unique_ptr<Layer> root, long num_classes);

  Model(const Model& other);
  Model& operator=(const Model& other);
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  bool valid() const { return root_ != nullptr; }
  const std::string& arch_name() const { return arch_name_; }
  long num_classes() const { return num_classes_; }

  /// Forward pass producing logits (N, num_classes).
  Tensor forward(const Tensor& x, bool train = true) {
    return root_->forward(x, train);
  }

  /// Backpropagate a logit gradient; accumulates parameter gradients.
  Tensor backward(const Tensor& grad_logits) {
    return root_->backward(grad_logits);
  }

  /// All parameters (including batch-norm running stats, whose grad is null).
  std::vector<ParamRef> params() { return root_->params(); }

  /// Zero every gradient accumulator.
  void zero_grad();

  /// Number of scalar parameters (trainable + running stats).
  std::size_t num_scalars() const;

  /// Value snapshot of every parameter tensor, in params() order. This is
  /// the ω that travels between client and server.
  std::vector<Tensor> snapshot() const;

  /// Restore parameter values from a snapshot of matching structure.
  void load(const std::vector<Tensor>& values);

 private:
  std::string arch_name_;
  std::unique_ptr<Layer> root_;
  long num_classes_ = 0;
};

// -- parameter-space arithmetic over snapshots -----------------------------
// Snapshots are plain vector<Tensor>; these helpers implement the weighted
// sums the paper writes as Σ (|D_i|/|D|)·ω_i.

/// result += scale · delta (elementwise across the whole snapshot).
void axpy(std::vector<Tensor>& result, const std::vector<Tensor>& delta,
          float scale);

/// Weighted average of snapshots; weights need not be normalized.
std::vector<Tensor> weighted_average(
    const std::vector<std::vector<Tensor>>& snaps,
    const std::vector<float>& weights);

/// Squared L2 distance between two snapshots (model-space metric used in
/// tests and the B2 baseline's trust region).
float snapshot_distance_sq(const std::vector<Tensor>& a,
                           const std::vector<Tensor>& b);

}  // namespace goldfish::nn
