#!/usr/bin/env python3
"""Unit tests for check_bench_ratchet.py.

Covers the schema validator (a typo'd gate key must hard-fail, never
silently skip a gate), the --validate-only CLI mode the CI lint job runs
against the checked-in baseline, and the gate arithmetic itself on
synthetic results.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.realpath(__file__))
SCRIPT = os.path.join(HERE, "check_bench_ratchet.py")
BASELINE_CI = os.path.join(HERE, "baseline_ci.json")

sys.path.insert(0, HERE)
from check_bench_ratchet import validate_baseline  # noqa: E402


def good_baseline():
    return {
        "_comment": "synthetic",
        "tolerance": 0.2,
        "gflops": {"BM_Gemm/256": 10.0, "_note": "commentary allowed"},
        "ratios": [{"fast": "BM_Fast", "slow": "BM_Slow", "min_ratio": 2.0,
                    "fast_scale": 0.5, "_comment": "why"}],
        "counters_max": [{"bench": "BM_Round", "counter": "allocs",
                          "max": 0},
                         {"bench": "BM_Round", "counter": "resident",
                          "max": 0.5, "max_times_counter": "cold",
                          "_comment": "limit = 0.5 * cold"}],
        "counters_min": [{"bench": "BM_Round", "counter": "bytes",
                          "min": 1}],
    }


class ValidateBaselineTests(unittest.TestCase):
    def test_good_baseline_passes(self):
        self.assertEqual(validate_baseline(good_baseline()), [])

    def test_checked_in_baseline_passes(self):
        with open(BASELINE_CI) as fh:
            self.assertEqual(validate_baseline(json.load(fh)), [])

    def assert_error(self, baseline, fragment):
        errors = validate_baseline(baseline)
        self.assertTrue(any(fragment in e for e in errors),
                        f"expected an error mentioning {fragment!r}, "
                        f"got {errors}")

    def test_unknown_top_level_key(self):
        b = good_baseline()
        b["gflop"] = b.pop("gflops")  # the typo that silently drops floors
        self.assert_error(b, "unknown top-level key 'gflop'")

    def test_typod_gate_field(self):
        b = good_baseline()
        gate = b["ratios"][0]
        gate["min_ration"] = gate.pop("min_ratio")
        errors = validate_baseline(b)
        self.assertTrue(any("min_ration" in e for e in errors), errors)
        self.assertTrue(any("missing required field 'min_ratio'" in e
                            for e in errors), errors)

    def test_wrong_field_type(self):
        b = good_baseline()
        b["counters_max"][0]["max"] = "0"
        self.assert_error(b, "counters_max[0].max")

    def test_max_times_counter_must_be_a_string(self):
        b = good_baseline()
        b["counters_max"][1]["max_times_counter"] = 2.0
        self.assert_error(b, "counters_max[1].max_times_counter")

    def test_bool_is_not_a_number(self):
        b = good_baseline()
        b["ratios"][0]["min_ratio"] = True
        self.assert_error(b, "ratios[0].min_ratio")

    def test_negative_gflops_floor(self):
        b = good_baseline()
        b["gflops"]["BM_Gemm/256"] = -1.0
        self.assert_error(b, "gflops['BM_Gemm/256']")

    def test_tolerance_out_of_range(self):
        b = good_baseline()
        b["tolerance"] = 1.5
        self.assert_error(b, "tolerance")

    def test_gate_list_not_a_list(self):
        b = good_baseline()
        b["ratios"] = {"fast": "a"}
        self.assert_error(b, "ratios must be a list")

    def test_commentary_keys_are_exempt(self):
        b = good_baseline()
        b["_anything"] = {"free": "form"}
        b["ratios"][0]["_why"] = "because"
        self.assertEqual(validate_baseline(b), [])


class CliTests(unittest.TestCase):
    def run_script(self, *args):
        return subprocess.run([sys.executable, SCRIPT, *args],
                              capture_output=True, text=True)

    def write(self, td, name, payload):
        path = os.path.join(td, name)
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return path

    def results(self, resident=10.0, **items_per_second):
        return {"benchmarks": [
            {"name": name, "items_per_second": ips, "allocs": 0.0,
             "bytes": 8.0, "resident": resident, "cold": 100.0}
            for name, ips in items_per_second.items()]}

    def test_validate_only_checked_in_baseline(self):
        proc = self.run_script("--validate-only", BASELINE_CI)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("schema ok", proc.stdout)

    def test_validate_only_rejects_typo(self):
        b = good_baseline()
        b["ratio"] = b.pop("ratios")
        with tempfile.TemporaryDirectory() as td:
            path = self.write(td, "bad.json", b)
            proc = self.run_script("--validate-only", path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown top-level key 'ratio'", proc.stderr)

    def test_gates_pass_and_fail(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = self.write(td, "baseline.json", good_baseline())
            ok = self.write(td, "ok.json", self.results(
                **{"BM_Gemm/256": 10e9, "BM_Fast": 100.0, "BM_Slow": 10.0,
                   "BM_Round": 1.0}))
            proc = self.run_script(ok, baseline)
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

            # 5x raw but fast_scale 0.5 -> 2.5x >= 2.0 passes; drop the fast
            # side below 4x raw and the scaled ratio must fail.
            slow = self.write(td, "slow.json", self.results(
                **{"BM_Gemm/256": 10e9, "BM_Fast": 30.0, "BM_Slow": 10.0,
                   "BM_Round": 1.0}))
            proc = self.run_script(slow, baseline)
            self.assertEqual(proc.returncode, 1)
            self.assertIn("BM_Fast", proc.stderr)

    def test_relative_counter_gate(self):
        with tempfile.TemporaryDirectory() as td:
            baseline = self.write(td, "baseline.json", good_baseline())
            names = {"BM_Gemm/256": 10e9, "BM_Fast": 100.0, "BM_Slow": 10.0,
                     "BM_Round": 1.0}
            # resident 10 <= 0.5 * cold (100) passes; 60 fails.
            ok = self.write(td, "ok.json", self.results(resident=10.0,
                                                        **names))
            proc = self.run_script(ok, baseline)
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

            fat = self.write(td, "fat.json", self.results(resident=60.0,
                                                          **names))
            proc = self.run_script(fat, baseline)
            self.assertEqual(proc.returncode, 1)
            self.assertIn("BM_Round.resident is 60", proc.stderr)

    def test_relative_counter_gate_missing_reference(self):
        b = good_baseline()
        b["counters_max"][1]["max_times_counter"] = "nonexistent"
        with tempfile.TemporaryDirectory() as td:
            baseline = self.write(td, "baseline.json", b)
            ok = self.write(td, "ok.json", self.results(
                **{"BM_Gemm/256": 10e9, "BM_Fast": 100.0, "BM_Slow": 10.0,
                   "BM_Round": 1.0}))
            proc = self.run_script(ok, baseline)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("BM_Round.nonexistent", proc.stderr)

    def test_results_never_checked_against_broken_baseline(self):
        b = good_baseline()
        b["counters_max"][0]["mxa"] = b["counters_max"][0].pop("max")
        with tempfile.TemporaryDirectory() as td:
            baseline = self.write(td, "baseline.json", b)
            ok = self.write(td, "ok.json", self.results(
                **{"BM_Gemm/256": 10e9, "BM_Fast": 100.0, "BM_Slow": 10.0,
                   "BM_Round": 1.0}))
            proc = self.run_script(ok, baseline)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("mxa", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
