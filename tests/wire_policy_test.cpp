// The WirePolicy family (fl/policies.h): dense roundtrip exactness,
// quantized bounded error, top-k sparsity invariants, delta vs the
// broadcast reference across version skew, byte-true encoded_bytes,
// the bandwidth-aware clock, and engine integration — lossy wires must
// still run bit-identically at 1, 2 and 8 threads, and the default
// (null) wire must match an explicit DenseWire bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "tensor/serialize.h"

namespace goldfish {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool snapshots_bitwise_equal(const std::vector<Tensor>& a,
                             const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (!a[t].same_shape(b[t])) return false;
    if (std::memcmp(a[t].data(), b[t].data(),
                    a[t].numel() * sizeof(float)) != 0)
      return false;
  }
  return true;
}

std::vector<Tensor> random_params(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> ps;
  ps.push_back(Tensor::randn({16, 48}, rng));
  ps.push_back(Tensor::randn({16}, rng));
  ps.push_back(Tensor::randn({10, 16}, rng));
  ps.push_back(Tensor::randn({10}, rng));
  return ps;
}

/// encode → decode under one wire, no reference.
std::vector<Tensor> roundtrip(const fl::WirePolicy& wire,
                              const std::vector<Tensor>& ps,
                              std::size_t* bytes = nullptr) {
  std::string buf;
  wire.encode(ps, nullptr, buf);
  if (bytes != nullptr) *bytes = buf.size();
  return wire.decode(buf.data(), buf.size(), nullptr);
}

struct Fed {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;
};

Fed make_fed(long clients, long train_rows, long test_rows,
             std::uint64_t seed) {
  auto tt = data::make_synthetic(data::default_spec(
      data::DatasetKind::Mnist, seed, train_rows, test_rows));
  Rng rng(seed + 1);
  Fed fed;
  fed.parts = data::partition_iid(tt.train, clients, rng);
  fed.test = std::move(tt.test);
  fed.global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  return fed;
}

fl::FlConfig fast_cfg() {
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  return cfg;
}

// -- roundtrip contracts per wire -------------------------------------------

TEST(WirePolicy, DenseRoundTripIsBitExactAndByteTrue) {
  fl::DenseWire wire;
  EXPECT_TRUE(wire.lossless());
  EXPECT_FALSE(wire.needs_reference());
  const auto ps = random_params(41);
  std::size_t bytes = 0;
  const auto back = roundtrip(wire, ps, &bytes);
  EXPECT_TRUE(snapshots_bitwise_equal(ps, back));
  EXPECT_EQ(bytes, wire.encoded_bytes(ps));  // byte-true size prediction
}

TEST(WirePolicy, QuantizedErrorBoundedByHalfStep) {
  fl::QuantizedWire wire;
  EXPECT_FALSE(wire.lossless());
  const auto ps = random_params(42);
  std::size_t bytes = 0;
  const auto back = roundtrip(wire, ps, &bytes);
  EXPECT_EQ(bytes, wire.encoded_bytes(ps));
  ASSERT_EQ(back.size(), ps.size());
  for (std::size_t t = 0; t < ps.size(); ++t) {
    const float half_step = (ps[t].max() - ps[t].min()) / 255.0f / 2.0f;
    for (std::size_t i = 0; i < ps[t].numel(); ++i)
      EXPECT_NEAR(back[t][i], ps[t][i], half_step * 1.001f + 1e-7f);
  }
  // ~4x smaller than dense on realistic parameter shapes.
  fl::DenseWire dense;
  EXPECT_LT(bytes * 3, dense.encoded_bytes(ps));
}

TEST(WirePolicy, TopKSparsityInvariants) {
  fl::TopKWire wire(0.1);
  EXPECT_EQ(wire.fraction(), 0.1);
  const auto ps = random_params(43);
  std::size_t bytes = 0;
  const auto back = roundtrip(wire, ps, &bytes);
  EXPECT_EQ(bytes, wire.encoded_bytes(ps));
  for (std::size_t t = 0; t < ps.size(); ++t) {
    const long k = topk_count(static_cast<long>(ps[t].numel()), 0.1);
    long nonzero = 0;
    float min_kept = 0.0f, max_dropped = 0.0f;
    for (std::size_t i = 0; i < ps[t].numel(); ++i) {
      if (back[t][i] != 0.0f) {
        // Every kept entry is bit-exact.
        EXPECT_EQ(back[t][i], ps[t][i]);
        ++nonzero;
        const float m = std::fabs(back[t][i]);
        if (nonzero == 1 || m < min_kept) min_kept = m;
      } else {
        max_dropped = std::max(max_dropped, std::fabs(ps[t][i]));
      }
    }
    // randn makes exact zeros (and magnitude ties) measure-zero events, so
    // exactly k survive and they dominate everything dropped.
    EXPECT_EQ(nonzero, k);
    EXPECT_GE(min_kept, max_dropped);
  }
  EXPECT_THROW(fl::TopKWire(0.0), CheckError);
  EXPECT_THROW(fl::TopKWire(1.5), CheckError);
}

TEST(WirePolicy, DeltaReconstructsAgainstReference) {
  fl::DeltaWire wire;  // dense inner: exact deltas
  EXPECT_TRUE(wire.needs_reference());
  const auto ps = random_params(44);
  const auto ref = random_params(45);  // version skew: any shared snapshot

  std::string buf;
  wire.encode(ps, &ref, buf);
  EXPECT_EQ(buf.size(), wire.encoded_bytes(ps));
  const auto back = wire.decode(buf.data(), buf.size(), &ref);
  ASSERT_EQ(back.size(), ps.size());
  // (p − r) + r is one float rounding away from p, not bit-exact.
  for (std::size_t t = 0; t < ps.size(); ++t)
    for (std::size_t i = 0; i < ps[t].numel(); ++i)
      EXPECT_NEAR(back[t][i], ps[t][i], 1e-5f);

  // A null reference means "delta against zeros": dense inner → bit-exact.
  const auto plain = roundtrip(wire, ps);
  EXPECT_TRUE(snapshots_bitwise_equal(ps, plain));

  // Decoding against a different reference than the encoder used shifts the
  // result by exactly the reference difference — the broadcast version is
  // part of the contract, which is why the engine keys it per task.
  const auto other = random_params(46);
  const auto shifted = wire.decode(buf.data(), buf.size(), &other);
  for (std::size_t t = 0; t < ps.size(); ++t)
    for (std::size_t i = 0; i < ps[t].numel(); ++i)
      EXPECT_NEAR(shifted[t][i] - back[t][i], other[t][i] - ref[t][i], 1e-4f);
}

TEST(WirePolicy, DeltaComposesWithQuantization) {
  // Quantizing a small-range delta is far gentler than quantizing raw
  // weights: the quantization step scales with the tensor's range.
  auto ps = random_params(47);
  auto ref = ps;
  Rng rng(48);
  for (auto& t : ps)  // a training-sized nudge away from the reference
    for (std::size_t i = 0; i < t.numel(); ++i)
      t.data()[i] += 0.01f * float(rng.normal());

  fl::DeltaWire delta_q(std::make_unique<fl::QuantizedWire>());
  EXPECT_EQ(delta_q.name(), "delta+quantized");
  std::string buf;
  delta_q.encode(ps, &ref, buf);
  const auto back = delta_q.decode(buf.data(), buf.size(), &ref);

  fl::QuantizedWire raw_q;
  const auto back_raw = roundtrip(raw_q, ps);

  double err_delta = 0.0, err_raw = 0.0;
  for (std::size_t t = 0; t < ps.size(); ++t)
    for (std::size_t i = 0; i < ps[t].numel(); ++i) {
      err_delta += std::fabs(double(back[t][i]) - double(ps[t][i]));
      err_raw += std::fabs(double(back_raw[t][i]) - double(ps[t][i]));
    }
  EXPECT_LT(err_delta * 10, err_raw);

  // Delta wires do not nest: the inner encoder must be reference-free.
  EXPECT_THROW(fl::DeltaWire(std::make_unique<fl::DeltaWire>()), CheckError);
}

// -- the bandwidth-aware clock ----------------------------------------------

TEST(WirePolicy, BandwidthClockPricesPayloadSize) {
  auto make = [](std::size_t bytes) {
    fl::BandwidthClock clock(std::make_unique<fl::VirtualClock>(7, 1.0, 0.0),
                             /*mean_bandwidth=*/1000.0, /*log_spread=*/0.6,
                             /*seed=*/11);
    clock.set_upload_bytes(bytes);
    return clock;
  };
  fl::BandwidthClock small = make(1000), big = make(4000);
  for (std::size_t c = 0; c < 8; ++c) {
    // duration = compute (exactly 1.0 here) + bytes / bandwidth(c).
    EXPECT_TRUE(bits_equal(small.duration(c, 0),
                           1.0 + 1000.0 / small.bandwidth(c)));
    // A 4x payload is strictly slower to ship on every link.
    EXPECT_GT(big.duration(c, 0), small.duration(c, 0));
    // The link speed is a durable per-client property.
    EXPECT_TRUE(bits_equal(small.bandwidth(c), big.bandwidth(c)));
  }
  // Spread 0.6 makes distinct per-client links: persistent stragglers.
  EXPECT_NE(small.bandwidth(0), small.bandwidth(1));
}

// -- engine integration ------------------------------------------------------

TEST(WireEngine, NullWireMatchesExplicitDenseBitForBit) {
  std::vector<std::vector<Tensor>> finals;
  std::vector<std::vector<fl::StepResult>> results;
  for (int explicit_dense = 0; explicit_dense < 2; ++explicit_dense) {
    Fed fed = make_fed(4, 240, 60, 701);
    fl::FlConfig cfg = fast_cfg();
    cfg.async.buffer_size = 2;
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
    fl::Scenario s = eng.async_scenario(4);
    if (explicit_dense) s.wire = std::make_unique<fl::DenseWire>();
    results.push_back(eng.collect(std::move(s)));
    finals.push_back(eng.global_model().snapshot());
  }
  EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[1]));
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t a = 0; a < results[0].size(); ++a) {
    EXPECT_TRUE(bits_equal(results[0][a].global_accuracy,
                           results[1][a].global_accuracy));
    EXPECT_EQ(results[0][a].upload_bytes, results[1][a].upload_bytes);
    // Dense telemetry: real nonzero byte counts, zero encode error, and the
    // per-step total is exactly K uploads of the constant encoded size.
    EXPECT_GT(results[0][a].upload_bytes, 0u);
    EXPECT_EQ(results[0][a].bytes_uplinked,
              results[0][a].upload_bytes *
                  std::size_t(results[0][a].updates_consumed));
    EXPECT_EQ(results[0][a].encode_error, 0.0);
  }
}

/// Each lossy wire must still be bit-identical across thread counts: the
/// encoders are pure functions and the engine consumes updates in planned
/// order, so parallelism never leaks into the result.
void expect_thread_deterministic(
    const std::function<std::unique_ptr<fl::WirePolicy>()>& make_wire,
    double min_encode_error) {
  std::vector<std::vector<Tensor>> finals;
  std::vector<std::vector<fl::StepResult>> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    Fed fed = make_fed(4, 240, 60, 703);
    fl::FlConfig cfg = fast_cfg();
    cfg.threads = threads;
    cfg.async.buffer_size = 2;
    cfg.async.duration_log_jitter = 0.5;  // real skew → real staleness
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
    fl::Scenario s = eng.async_scenario(5);
    s.wire = make_wire();
    results.push_back(eng.collect(std::move(s)));
    finals.push_back(eng.global_model().snapshot());
  }
  ASSERT_EQ(results[0].size(), 5u);
  for (const fl::StepResult& r : results[0])
    EXPECT_GE(r.encode_error, min_encode_error);
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[i]));
    ASSERT_EQ(results[0].size(), results[i].size());
    for (std::size_t a = 0; a < results[0].size(); ++a) {
      EXPECT_TRUE(bits_equal(results[0][a].global_accuracy,
                             results[i][a].global_accuracy));
      EXPECT_TRUE(bits_equal(results[0][a].encode_error,
                             results[i][a].encode_error));
      EXPECT_EQ(results[0][a].upload_bytes, results[i][a].upload_bytes);
      EXPECT_EQ(results[0][a].bytes_uplinked, results[i][a].bytes_uplinked);
    }
  }
}

TEST(WireEngine, QuantizedDeterministicAcrossThreadCounts) {
  expect_thread_deterministic(
      [] { return std::make_unique<fl::QuantizedWire>(); }, 1e-8);
}

TEST(WireEngine, TopKDeterministicAcrossThreadCounts) {
  expect_thread_deterministic(
      [] { return std::make_unique<fl::TopKWire>(0.25); }, 1e-8);
}

TEST(WireEngine, DeltaQuantizedDeterministicAcrossThreadCounts) {
  // Delta wires consume the broadcast reference inside the worker task (the
  // engine holds version v's parameters through the wire roundtrip), under
  // real version skew from the jittered clock.
  expect_thread_deterministic(
      [] { return std::make_unique<fl::DeltaWire>(
               std::make_unique<fl::QuantizedWire>()); }, 0.0);
}

TEST(WireEngine, LossyWiresShrinkUploadsWithinAccuracyTolerance) {
  // The acceptance axis: quantized and top-k(0.1) uploads are >= 3x smaller
  // than dense, and accuracy stays within the tolerances documented in
  // src/fl/README.md — <= 2 points for quantized, <= 10 points for
  // delta+topk(0.1) (no error feedback, so aggressive sparsification lags
  // hardest early in training; this workload is 6 aggregations from
  // scratch). Top-k rides on the delta composition — sparsifying raw
  // weights would zero 90% of the model, sparsifying the *update* is the
  // standard gradient-compression move.
  auto run = [](std::unique_ptr<fl::WirePolicy> wire) {
    Fed fed = make_fed(4, 400, 100, 705);
    fl::FlConfig cfg = fast_cfg();
    cfg.async.buffer_size = 2;
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
    fl::Scenario s = eng.async_scenario(6);
    s.wire = std::move(wire);
    return eng.collect(std::move(s)).back();
  };
  const fl::StepResult dense = run(std::make_unique<fl::DenseWire>());
  const fl::StepResult quant = run(std::make_unique<fl::QuantizedWire>());
  const fl::StepResult topk = run(std::make_unique<fl::DeltaWire>(
      std::make_unique<fl::TopKWire>(0.1)));

  EXPECT_GT(dense.upload_bytes, 0u);
  EXPECT_GE(dense.upload_bytes, 3 * quant.upload_bytes);
  EXPECT_GE(dense.upload_bytes, 3 * topk.upload_bytes);
  EXPECT_NEAR(quant.global_accuracy, dense.global_accuracy, 2.0);
  EXPECT_NEAR(topk.global_accuracy, dense.global_accuracy, 10.0);
}

TEST(WireEngine, RunAsyncProjectsWireTelemetry) {
  // The legacy facade reports the new fields too: dense wire, so real bytes
  // and zero injected error.
  Fed fed = make_fed(3, 180, 45, 707);
  fl::FlConfig cfg = fast_cfg();
  cfg.async.buffer_size = 2;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  const auto steps = sim.run_async(3);
  ASSERT_EQ(steps.size(), 3u);
  for (const auto& s : steps) {
    EXPECT_GT(s.upload_bytes, 0u);
    EXPECT_EQ(s.bytes_uplinked, s.upload_bytes * 2u);
    EXPECT_EQ(s.encode_error, 0.0);
  }
}

TEST(WireEngine, BandwidthClockMakesSmallUploadsFinishSooner) {
  // End to end: under the same bandwidth-aware clock, the quantized
  // scenario's buffers fill strictly earlier in virtual time than the dense
  // one's — stragglers emerge from payload size, not synthetic jitter.
  auto run = [](std::unique_ptr<fl::WirePolicy> wire) {
    Fed fed = make_fed(4, 240, 60, 709);
    fl::FlConfig cfg = fast_cfg();
    cfg.async.buffer_size = 2;
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
    fl::Scenario s = eng.async_scenario(4);
    s.clock = std::make_unique<fl::BandwidthClock>(
        std::make_unique<fl::VirtualClock>(cfg.seed, 1.0, 0.0),
        /*mean_bandwidth=*/50000.0, /*log_spread=*/0.5, cfg.seed);
    s.wire = std::move(wire);
    return eng.collect(std::move(s));
  };
  const auto dense = run(std::make_unique<fl::DenseWire>());
  const auto quant = run(std::make_unique<fl::QuantizedWire>());
  ASSERT_EQ(dense.size(), quant.size());
  for (std::size_t a = 0; a < dense.size(); ++a)
    EXPECT_LT(quant[a].virtual_time, dense[a].virtual_time);
}

}  // namespace
}  // namespace goldfish
