#include "fl/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>

#include "metrics/membership_inference.h"
#include "runtime/gemm.h"
#include "tensor/ops.h"

namespace goldfish::fl {

namespace {

/// Satellite of the Engine ctor: reject malformed configs up front with a
/// specific std::invalid_argument instead of late or silent misbehavior.
FlConfig validated(FlConfig cfg, std::size_t num_clients) {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("fl::FlConfig: " + msg);
  };
  if (cfg.robust.krum_f < 0) fail("robust.krum_f must be >= 0");
  if (cfg.robust.krum_m < 1) fail("robust.krum_m must be >= 1");
  if (cfg.robust.hier_edge < 1) fail("robust.hier_edge must be >= 1");
  // The registry is the single source of truth for names (it grows:
  // "hier+<base>" prefixes compose recursively), so probe it instead of
  // mirroring a list here.
  try {
    make_aggregator(cfg.aggregator, cfg.robust);
  } catch (const std::exception& e) {
    fail("unknown aggregator '" + cfg.aggregator +
         "' (expected fedavg | uniform | adaptive | krum | multi-krum | "
         "trimmed-mean | median | norm-clip, optionally prefixed hier+): " +
         e.what());
  }
  // The krum capacity checks apply to the base strategy under any number of
  // hier+ wrappers (the wrapper delegates robust bases wholesale).
  std::string base_name = cfg.aggregator;
  while (base_name.rfind("hier+", 0) == 0) base_name = base_name.substr(5);
  if ((base_name == "krum" || base_name == "multi-krum") &&
      cfg.robust.krum_f >= static_cast<long>(num_clients))
    fail("robust.krum_f (" + std::to_string(cfg.robust.krum_f) +
         ") must be below the client count (" + std::to_string(num_clients) +
         "): krum scoring needs n >= f+3 updates and assumes an honest "
         "majority");
  if (!(cfg.robust.trim_fraction >= 0.0 && cfg.robust.trim_fraction < 0.5))
    fail("robust.trim_fraction must be in [0, 0.5) — trimming half or more "
         "per side leaves nothing to average");
  if (!(cfg.robust.clip_norm > 0.0))
    fail("robust.clip_norm must be positive");
  if (cfg.async.buffer_size < 0)
    fail("async.buffer_size must be >= 0 (0 means all clients)");
  if (cfg.async.buffer_size > static_cast<long>(num_clients))
    fail("async.buffer_size (" + std::to_string(cfg.async.buffer_size) +
         ") exceeds the client count (" + std::to_string(num_clients) +
         "): FedBuff's K <= C contract — a larger buffer would always "
         "wait on repeat updates from the same clients");
  if (!(cfg.async.staleness_alpha >= 0.0))
    fail("async.staleness_alpha must be >= 0 (0 disables decay)");
  if (!(cfg.async.mean_duration > 0.0))
    fail("async.mean_duration must be positive");
  if (!(cfg.async.duration_log_jitter >= 0.0))
    fail("async.duration_log_jitter must be >= 0");
  if (cfg.eval_batch < 0) fail("eval_batch must be >= 0 (0 means auto)");
  return cfg;
}

/// One scenario event reference on the merged timeline. Kind order is the
/// tie-break at equal times: events mutating *existing* clients (deletions,
/// leaves, label flips, backdoor injections) apply before joins introduce
/// new ids, aggregator swaps after that, and audit activations last. The
/// relative order of the original four kinds is unchanged, so legacy
/// scenarios replay bit-identically.
struct TimelineRef {
  enum Kind {
    kDeletion = 0,
    kLeave = 1,
    kFlip = 2,
    kBackdoor = 3,
    kJoin = 4,
    kSwap = 5,
    kAudit = 6,
  };
  double time = 0.0;
  int kind = kDeletion;
  std::size_t index = 0;  // into the scenario vector of that kind
};

/// Merge every scenario event onto one timeline, ordered (time, kind,
/// declaration index). Shared by Phase A (schedule construction) and the
/// dataset-epoch materialization, which must replay data mutations in
/// exactly the order the schedule applied them. Sybil bursts never appear
/// here — Engine::run expands them into ordinary joins first.
std::vector<TimelineRef> merged_timeline(const Scenario& s) {
  std::vector<TimelineRef> timeline;
  timeline.reserve(s.deletions.size() + s.leaves.size() +
                   s.label_flips.size() + s.backdoors.size() +
                   s.joins.size() + s.aggregator_swaps.size() +
                   s.audits.size());
  for (std::size_t i = 0; i < s.deletions.size(); ++i)
    timeline.push_back({s.deletions[i].time, TimelineRef::kDeletion, i});
  for (std::size_t i = 0; i < s.leaves.size(); ++i)
    timeline.push_back({s.leaves[i].time, TimelineRef::kLeave, i});
  for (std::size_t i = 0; i < s.label_flips.size(); ++i)
    timeline.push_back({s.label_flips[i].time, TimelineRef::kFlip, i});
  for (std::size_t i = 0; i < s.backdoors.size(); ++i)
    timeline.push_back({s.backdoors[i].time, TimelineRef::kBackdoor, i});
  for (std::size_t i = 0; i < s.joins.size(); ++i)
    timeline.push_back({s.joins[i].time, TimelineRef::kJoin, i});
  for (std::size_t i = 0; i < s.aggregator_swaps.size(); ++i)
    timeline.push_back({s.aggregator_swaps[i].time, TimelineRef::kSwap, i});
  for (std::size_t i = 0; i < s.audits.size(); ++i)
    timeline.push_back({s.audits[i].time, TimelineRef::kAudit, i});
  std::sort(timeline.begin(), timeline.end(),
            [](const TimelineRef& a, const TimelineRef& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.index < b.index;
            });
  return timeline;
}

/// RNG stream salt for BackdoorInjectEvent row selection (cf. the policy
/// salts in fl/policies.cpp).
constexpr std::uint64_t kBackdoorSalt = 0xBADC0DEDB00ULL;

/// Relative L2 reconstruction error ‖decoded − trained‖ / ‖trained‖ across a
/// whole snapshot: how much the wire encoding perturbed this upload.
/// Accumulated in a fixed order, so it is deterministic per task.
double wire_reconstruction_error(const std::vector<Tensor>& trained,
                                 const std::vector<Tensor>& decoded) {
  double num = 0.0, den = 0.0;
  for (std::size_t t = 0; t < trained.size(); ++t) {
    const float* a = trained[t].data();
    const float* b = decoded[t].data();
    for (std::size_t i = 0; i < trained[t].numel(); ++i) {
      const double d = double(a[i]) - double(b[i]);
      num += d * d;
      den += double(a[i]) * double(a[i]);
    }
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

}  // namespace

/// Phase A output: the complete event plan, fixed before any training runs.
struct Engine::Schedule {
  /// One planned local-training execution on the virtual timeline.
  struct Task {
    std::size_t client = 0;
    long index = 0;         ///< per-client sequence number (RNG stream step)
    long from_version = 0;  ///< server version the client downloaded
    int epoch = 0;          ///< which of the client's datasets it trains on
    double finish = 0.0;
    long staleness = 0;     ///< server lag when consumed
    long consumed_by = -1;  ///< aggregation index; -1 = dropped / never used
  };

  /// One planned buffer aggregation: the task ids it consumes, in arrival
  /// order (virtual time, client id).
  struct Agg {
    double time = 0.0;
    std::vector<std::size_t> tasks;
    long dropped_so_far = 0;
    std::size_t aggregator = 0;  ///< 0 = configured strategy, i+1 = swap i
    std::size_t audit = 0;       ///< 0 = no audit active, i+1 = audit i
    std::size_t active_clients = 0;
  };

  std::vector<Task> tasks;
  std::vector<Agg> aggs;
  /// merged_timeline of the planned scenario, cached for the epoch replay.
  std::vector<TimelineRef> timeline;
  /// Max tasks any one client started: how many (client, round) RNG steps
  /// the run consumed. Fast clients lap the aggregation count, so advancing
  /// the round counter by less than this would hand later rounds
  /// already-used training streams.
  long rounds_consumed = 0;
  std::size_t total_clients = 0;        ///< pre-run clients + joins
  std::vector<std::size_t> join_order;  ///< scenario.joins indices, id order
};

Engine::Engine(nn::Model global, std::vector<data::Dataset> client_data,
               data::Dataset server_test, FlConfig cfg)
    : global_(std::move(global)),
      replica_template_(global_),
      clients_(std::move(client_data)),
      active_(clients_.size(), true),
      test_(std::move(server_test)),
      cfg_(validated(std::move(cfg), clients_.size())),
      sched_(&runtime::scheduler_for(cfg_.threads, owned_sched_)),
      eval_(test_, cfg_.eval_batch) {
  GOLDFISH_CHECK(!clients_.empty(), "engine needs clients");
  GOLDFISH_CHECK(!test_.empty(), "engine needs a server test set");
  stackable_ = stackable_mlp();
  // Default behaviour: Algorithm 1's LocalTraining. Each (client, round)
  // pair gets its own RNG stream via the collision-free splitmix mix.
  update_fn_ = [this](std::size_t cid, nn::Model& model,
                      const data::Dataset& ds, long round) {
    TrainOptions opts = cfg_.local;
    opts.seed = mix_seed(cfg_.seed, cid, static_cast<std::uint64_t>(round));
    train_local(model, ds, opts);
  };
}

Engine::Engine(nn::Model global, population::Population pop,
               data::Dataset server_test, FlConfig cfg)
    : global_(std::move(global)),
      replica_template_(global_),
      pop_(std::make_unique<population::Population>(std::move(pop))),
      active_(pop_->clients.num_clients(), true),
      test_(std::move(server_test)),
      cfg_(validated(std::move(cfg), pop_->clients.num_clients())),
      sched_(&runtime::scheduler_for(cfg_.threads, owned_sched_)),
      eval_(test_, cfg_.eval_batch) {
  GOLDFISH_CHECK(pop_->clients.num_clients() > 0, "engine needs clients");
  GOLDFISH_CHECK(!test_.empty(), "engine needs a server test set");
  stackable_ = stackable_mlp();
  update_fn_ = [this](std::size_t cid, nn::Model& model,
                      const data::Dataset& ds, long round) {
    TrainOptions opts = cfg_.local;
    opts.seed = mix_seed(cfg_.seed, cid, static_cast<std::uint64_t>(round));
    train_local(model, ds, opts);
  };
}

Engine::ModelLease::ModelLease(Engine& eng) : eng_(eng) {
  {
    std::lock_guard<std::mutex> lock(eng_.pool_mu_);
    if (!eng_.pool_.empty()) {
      model_ = std::move(eng_.pool_.back());
      eng_.pool_.pop_back();
      return;
    }
    ++eng_.pool_total_;
  }
  // First time this concurrency depth is reached (at most the scheduler's
  // parallelism): seed a fresh replica. Every later lease reuses it. Cloned
  // from the immutable template, not global_: the aggregation loop writes
  // global_ while worker-thread leases may still be growing the pool.
  model_ = std::make_unique<nn::Model>(eng_.replica_template_);
}

Engine::ModelLease::~ModelLease() {
  std::lock_guard<std::mutex> lock(eng_.pool_mu_);
  eng_.pool_.push_back(std::move(model_));
}

void Engine::set_client_update(ClientUpdateFn fn) {
  if (running())
    throw std::logic_error(
        "fl::Engine: set_client_update while a run is in flight");
  update_fn_ = std::move(fn);
}

void Engine::set_client_data(std::size_t c, data::Dataset ds) {
  if (running())
    throw std::logic_error(
        "fl::Engine: set_client_data while a run is in flight would race a "
        "leased replica's training task; inject a DeletionEvent into the "
        "scenario instead");
  GOLDFISH_CHECK(c < num_clients(), "client id out of range");
  if (pop_) {
    // Re-spill the cold record in place — the old payload is never decoded.
    pop_->clients.replace(c, ds);
    return;
  }
  clients_[c] = std::move(ds);
}

const data::Dataset& Engine::client_data(std::size_t c) const {
  GOLDFISH_CHECK(!pop_,
                 "client_data() is resident-mode only; population engines "
                 "keep clients cold (population()->clients)");
  GOLDFISH_CHECK(c < clients_.size(), "client id out of range");
  return clients_[c];
}

std::size_t Engine::active_clients() const {
  return static_cast<std::size_t>(
      std::count(active_.begin(), active_.end(), true));
}

bool Engine::stackable_mlp() const {
  // The `mlp<h>` factory family: Sequential[Linear → ReLU → Linear], whose
  // parameters are exactly [W1 (h,D), b1 (h), W2 (K,h), b2 (K)]. Anything
  // else (conv nets, deeper stacks) evaluates per client through the pool.
  if (global_.arch_name().rfind("mlp", 0) != 0) return false;
  const auto ps = global_.params();
  if (ps.size() != 4) return false;
  return ps[0].value->rank() == 2 && ps[1].value->rank() == 1 &&
         ps[2].value->rank() == 2 && ps[3].value->rank() == 1 &&
         ps[0].value->dim(0) == ps[1].value->dim(0) &&
         ps[2].value->dim(1) == ps[0].value->dim(0) &&
         ps[2].value->dim(0) == ps[3].value->dim(0);
}

void Engine::stacked_local_accuracy(const std::vector<ClientUpdate>& updates,
                                    std::vector<double>& local_acc) {
  const long n = static_cast<long>(updates.size());
  const long h = updates[0].params[0].dim(0);   // hidden width per client
  const long d = updates[0].params[0].dim(1);   // input features
  const long k = updates[0].params[2].dim(0);   // classes
  const long nh = n * h;

  // Concatenate every client's hidden layer: rows [c·h, (c+1)·h) of the
  // stacked weight matrix are client c's W1.
  stacked_w_.resize_uninit({nh, d});
  stacked_b_.resize_uninit({nh});
  for (long c = 0; c < n; ++c) {
    const Tensor& w1 = updates[static_cast<std::size_t>(c)].params[0];
    const Tensor& b1 = updates[static_cast<std::size_t>(c)].params[1];
    std::memcpy(stacked_w_.data() + c * h * d, w1.data(),
                static_cast<std::size_t>(h * d) * sizeof(float));
    std::memcpy(stacked_b_.data() + c * h, b1.data(),
                static_cast<std::size_t>(h) * sizeof(float));
  }

  const long rows_total = test_.size();
  // Bound the stacked activation block (chunk × K·h floats) when no explicit
  // evaluation batch is configured.
  long chunk = cfg_.eval_batch;
  if (chunk == 0 && rows_total * nh > (1L << 24))
    chunk = std::max(256L, (1L << 24) / nh);
  if (chunk == 0 || chunk > rows_total) chunk = rows_total;

  std::vector<long> correct(static_cast<std::size_t>(n), 0);
  for (long lo = 0; lo < rows_total; lo += chunk) {
    const long hi = std::min(rows_total, lo + chunk);
    const long rows = hi - lo;
    const bool whole = lo == 0 && hi == rows_total;
    Tensor x_chunk;
    const long* y;
    if (whole) {
      y = test_.labels.data();
    } else {
      auto view = test_.batch_view(lo, hi);
      x_chunk = std::move(view.first);
      y = view.second;
    }
    const Tensor& x = whole ? test_.features : x_chunk;
    // All clients' hidden activations in one fused GEMM: relu(x·Wᵀ + b),
    // exactly the peepholed Linear→ReLU forward, column block c = client c.
    gemm_fused_into(stacked_y_, x, stacked_w_, false, true,
                    runtime::Epilogue::kBiasColRelu, stacked_b_);
    // Each client's logits head reads its strided slice of the block.
    // grain=1: each body is a whole per-client head GEMM — coarse enough
    // that per-item claims are noise and load balance matters more.
    sched_->parallel_map(
        static_cast<std::size_t>(n),
        [&](std::size_t c) {
          const Tensor& w2 = updates[c].params[2];
          const Tensor& b2 = updates[c].params[3];
          Tensor logits = Tensor::uninit({rows, k});
          runtime::sgemm(false, true, rows, k, h,
                         stacked_y_.data() + static_cast<long>(c) * h, nh,
                         w2.data(), h, logits.data(), k, /*beta=*/0.0f,
                         runtime::Epilogue::kBiasCol, b2.data());
          correct[c] += metrics::correct_predictions(logits, y, rows);
        },
        /*grain=*/1);
  }
  for (long c = 0; c < n; ++c)
    local_acc[static_cast<std::size_t>(c)] =
        100.0 * double(correct[static_cast<std::size_t>(c)]) /
        double(rows_total);
}

// -- scenario validation and Phase A (schedule construction) ---------------

void Engine::validate_scenario(const Scenario& s) const {
  GOLDFISH_CHECK(s.aggregations >= 0, "negative aggregation count");
  const std::size_t total = num_clients() + s.joins.size();
  std::vector<bool> has_deletion(total, false);
  for (const DeletionEvent& d : s.deletions) {
    GOLDFISH_CHECK(d.client < total, "deletion for unknown client");
    GOLDFISH_CHECK(!d.new_data.empty(),
                   "deletion would leave a client without data");
    // Each event carries the client's *entire* remaining dataset, split
    // from the pre-run data (core::make_async_deletion): a second event for
    // the same client would have been split from that same pre-run data too
    // and silently resurrect the first event's deleted rows. Issue
    // follow-up deletions in a later run, where the split sees the shrunk
    // data.
    GOLDFISH_CHECK(!has_deletion[d.client],
                   "multiple deletions for one client in a single "
                   "run; split them across runs");
    has_deletion[d.client] = true;
  }
  for (const ClientLeaveEvent& l : s.leaves)
    GOLDFISH_CHECK(l.client < total, "leave event for unknown client");
  for (const ClientJoinEvent& j : s.joins)
    GOLDFISH_CHECK(!j.dataset.empty(), "joining client needs data");
  for (const AggregatorSwapEvent& ev : s.aggregator_swaps)
    make_aggregator(ev.aggregator, cfg_.robust);  // throws on unknown name
  for (const LabelFlipEvent& f : s.label_flips)
    GOLDFISH_CHECK(f.client < total, "label flip for unknown client");
  for (const BackdoorInjectEvent& b : s.backdoors) {
    GOLDFISH_CHECK(b.client < total, "backdoor injection for unknown client");
    GOLDFISH_CHECK(b.fraction > 0.0f && b.fraction <= 1.0f,
                   "backdoor fraction must be in (0, 1]");
  }
  for (const AuditEvent& a : s.audits) {
    GOLDFISH_CHECK(!a.probe.empty(), "audit needs a trigger probe set");
    GOLDFISH_CHECK(a.members.empty() == a.nonmembers.empty(),
                   "audit member and nonmember sets come together (both "
                   "empty disables the MIA block)");
  }
}

Engine::Schedule Engine::build_schedule(const Scenario& s) const {
  Schedule plan;
  const std::size_t n0 = num_clients();

  // Per-client builder state; grows when clients join.
  std::vector<long> next_index(n0, 0);
  std::vector<int> epoch(n0, 0);
  // A client has at most one task in flight; `poisoned` marks an in-flight
  // task that must never reach the buffer (its data had rows deleted, or
  // the client left before the upload).
  std::vector<bool> poisoned(n0, false);
  std::vector<bool> in_flight(n0, false);
  std::vector<bool> parked(n0, false);  // refused by the participation policy
  std::vector<bool> active(active_.begin(), active_.end());

  std::vector<std::size_t> buffer;
  long server_version = 0;
  long dropped = 0;
  std::size_t current_agg = 0;    // aggregator sequence index (0 = configured)
  std::size_t current_audit = 0;  // active audit, 0 = none
  double last_time = 0.0;

  ParticipationPolicy& who = *s.participation;
  BufferPolicy& how_many = *s.buffer;
  ClockPolicy& clock = *s.clock;

  const auto active_count = [&]() -> std::size_t {
    return static_cast<std::size_t>(
        std::count(active.begin(), active.end(), true));
  };

  // Min-heap of completions keyed (finish time, client id, task id); the
  // client id breaks virtual-time ties deterministically.
  using Completion = std::tuple<double, std::size_t, std::size_t>;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions;
  // Participation retry wake-ups, keyed (time, client id).
  using Wake = std::pair<double, std::size_t>;
  std::priority_queue<Wake, std::vector<Wake>, std::greater<Wake>> wakes;

  const auto start_task = [&](std::size_t c, double now) {
    Schedule::Task tp;
    tp.client = c;
    tp.index = next_index[c]++;
    tp.from_version = server_version;
    tp.epoch = epoch[c];
    const double dur = clock.duration(c, tp.index);
    GOLDFISH_CHECK(dur > 0.0, "clock policy returned a non-positive duration");
    tp.finish = now + dur;
    in_flight[c] = true;
    parked[c] = false;
    completions.emplace(tp.finish, c, plan.tasks.size());
    plan.tasks.push_back(tp);
  };

  const auto maybe_start = [&](std::size_t c, double now) {
    if (!active[c] || in_flight[c]) return;
    if (who.participates(c, server_version, now)) {
      start_task(c, now);
      return;
    }
    parked[c] = true;
    const double retry = who.retry_at(c, server_version, now);
    if (retry > now) wakes.emplace(retry, c);
  };

  const auto evict_buffered = [&](std::size_t c) {
    auto evicted =
        std::remove_if(buffer.begin(), buffer.end(), [&](std::size_t id) {
          return plan.tasks[id].client == c;
        });
    dropped += buffer.end() - evicted;
    buffer.erase(evicted, buffer.end());
  };

  // The scenario's events on one timeline, ordered (time, kind, declaration
  // index): state changes always apply before completions at the same
  // virtual time.
  std::vector<TimelineRef> timeline_storage = merged_timeline(s);
  const std::vector<TimelineRef>& timeline = timeline_storage;
  std::size_t next_event = 0;

  const auto apply_event = [&](const TimelineRef& ev, bool live) {
    switch (ev.kind) {
      case TimelineRef::kDeletion: {
        const DeletionEvent& d = s.deletions[ev.index];
        GOLDFISH_CHECK(d.client < next_index.size(),
                       "deletion targets a client that has not joined yet");
        ++epoch[d.client];
        // Evict its buffered updates: they trained on deleted rows.
        evict_buffered(d.client);
        // Its in-flight task (if any) is void on arrival.
        if (in_flight[d.client]) poisoned[d.client] = true;
        break;
      }
      case TimelineRef::kLeave: {
        const ClientLeaveEvent& l = s.leaves[ev.index];
        GOLDFISH_CHECK(l.client < next_index.size(),
                       "leave targets a client that has not joined yet");
        active[l.client] = false;
        parked[l.client] = false;
        // The device is gone: its in-flight upload never arrives. Updates
        // it already buffered on the server stay valid.
        if (in_flight[l.client]) poisoned[l.client] = true;
        break;
      }
      case TimelineRef::kJoin: {
        const std::size_t id = next_index.size();
        next_index.push_back(0);
        epoch.push_back(0);
        poisoned.push_back(false);
        in_flight.push_back(false);
        parked.push_back(false);
        active.push_back(true);
        plan.join_order.push_back(ev.index);
        if (live) maybe_start(id, s.joins[ev.index].time);
        break;
      }
      case TimelineRef::kSwap:
        current_agg = ev.index + 1;
        break;
      case TimelineRef::kFlip: {
        const LabelFlipEvent& f = s.label_flips[ev.index];
        GOLDFISH_CHECK(f.client < next_index.size(),
                       "label flip targets a client that has not joined yet");
        // Only tasks started after the event train on the hostile data:
        // buffered updates and the in-flight task keep their honest epoch.
        ++epoch[f.client];
        break;
      }
      case TimelineRef::kBackdoor: {
        const BackdoorInjectEvent& b = s.backdoors[ev.index];
        GOLDFISH_CHECK(b.client < next_index.size(),
                       "backdoor targets a client that has not joined yet");
        ++epoch[b.client];
        break;
      }
      case TimelineRef::kAudit:
        current_audit = ev.index + 1;
        break;
    }
  };

  // Buffer size for the first aggregation.
  long k = std::max(1L, how_many.size(0, 0.0, 0, active_count()));

  // Every active client downloads version 0 and starts at t = 0 (subject to
  // the participation policy). A zero-aggregation horizon plans no tasks at
  // all, so it consumes no RNG rounds — only the timeline's durable effects
  // apply. A cohort-enumerating policy visits only version 0's cohort —
  // scheduling work per version stays O(cohort) even with 10^5+ registered
  // clients (the population-scale contract, docs/population.md).
  if (s.aggregations > 0) {
    if (who.enumerates_cohort())
      for (std::size_t c : who.cohort(0, n0)) maybe_start(c, 0.0);
    else
      for (std::size_t c = 0; c < n0; ++c) maybe_start(c, 0.0);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (static_cast<long>(plan.aggs.size()) < s.aggregations) {
    const double t_comp =
        completions.empty() ? kInf : std::get<0>(completions.top());
    const double t_wake = wakes.empty() ? kInf : wakes.top().first;
    const double t_event =
        next_event < timeline.size() ? timeline[next_event].time : kInf;

    // Timeline events apply before anything else at the same instant.
    if (t_event <= t_comp && t_event <= t_wake) {
      last_time = std::max(last_time, t_event);
      apply_event(timeline[next_event++], /*live=*/true);
      continue;
    }
    // Stall: nothing in flight and no wake pending. The progress guarantee:
    // re-admit every idle active client at the current instant, bypassing
    // the participation policy — an empty sampled cohort must trade
    // staleness for progress, never deadlock the server.
    if (t_comp == kInf && t_wake == kInf) {
      bool any = false;
      for (std::size_t c = 0; c < next_index.size(); ++c)
        if (active[c] && !in_flight[c]) {
          start_task(c, last_time);
          any = true;
        }
      GOLDFISH_CHECK(any,
                     "scenario stalled: no active clients remain to fill "
                     "the aggregation buffer");
      continue;
    }
    // Participation retries run strictly before completions at the same
    // time: a retried task can only finish later, never at this instant.
    if (t_wake <= t_comp) {
      last_time = std::max(last_time, t_wake);
      while (!wakes.empty() && wakes.top().first == t_wake) {
        const std::size_t c = wakes.top().second;
        wakes.pop();
        if (parked[c]) maybe_start(c, t_wake);
      }
      continue;
    }

    const double now = t_comp;
    last_time = std::max(last_time, now);
    // Same-timestamp completions are buffered as a batch (client-id order)
    // before any of those clients re-downloads; this is the tie-break that
    // makes the jitter-free K = n schedule identical to synchronous rounds.
    std::vector<std::size_t> batch;
    while (!completions.empty() &&
           std::get<0>(completions.top()) == now) {
      batch.push_back(std::get<2>(completions.top()));
      completions.pop();
    }
    bool version_advanced = false;
    for (std::size_t id : batch) {
      Schedule::Task& tp = plan.tasks[id];
      in_flight[tp.client] = false;
      if (poisoned[tp.client]) {
        poisoned[tp.client] = false;
        ++dropped;
        continue;
      }
      buffer.push_back(id);
      if (static_cast<long>(buffer.size()) == k) {
        Schedule::Agg ap;
        ap.time = now;
        double staleness_sum = 0.0;
        long staleness_max = 0;
        for (std::size_t bid : buffer) {
          plan.tasks[bid].staleness =
              server_version - plan.tasks[bid].from_version;
          plan.tasks[bid].consumed_by = static_cast<long>(plan.aggs.size());
          staleness_sum += double(plan.tasks[bid].staleness);
          staleness_max = std::max(staleness_max, plan.tasks[bid].staleness);
        }
        const double staleness_mean = staleness_sum / double(buffer.size());
        ap.tasks = std::move(buffer);
        buffer.clear();
        ap.dropped_so_far = dropped;
        ap.aggregator = current_agg;
        ap.audit = current_audit;
        ap.active_clients = active_count();
        ++server_version;
        version_advanced = true;
        plan.aggs.push_back(std::move(ap));
        if (static_cast<long>(plan.aggs.size()) == s.aggregations) break;
        // The next aggregation's K, informed by the staleness just observed.
        k = std::max(1L, how_many.size(static_cast<long>(plan.aggs.size()),
                                       staleness_mean, staleness_max,
                                       active_count()));
      }
    }
    if (static_cast<long>(plan.aggs.size()) == s.aggregations) break;
    // Every completed client re-downloads the current model and trains on;
    // a version bump also re-checks clients the policy had parked. An
    // enumerating policy pins the new version's cohort first (so the
    // completed clients' membership probes answer against it) and the
    // rescan then visits cohort members only — never the whole population.
    if (version_advanced && who.enumerates_cohort())
      who.cohort(server_version, next_index.size());
    for (std::size_t id : batch) maybe_start(plan.tasks[id].client, now);
    if (version_advanced) {
      if (who.enumerates_cohort()) {
        for (std::size_t c : who.cohort(server_version, next_index.size()))
          maybe_start(c, now);
      } else {
        for (std::size_t c = 0; c < next_index.size(); ++c)
          if (parked[c]) maybe_start(c, now);
      }
    }
  }
  // Events beyond the run's horizon still take durable effect before the
  // run returns (there is no later virtual time to wait for).
  while (next_event < timeline.size())
    apply_event(timeline[next_event++], /*live=*/false);

  plan.rounds_consumed =
      next_index.empty()
          ? 0
          : *std::max_element(next_index.begin(), next_index.end());
  plan.total_clients = next_index.size();
  plan.timeline = std::move(timeline_storage);
  return plan;
}

/// Every dataset version each client trains on during the run, in epoch
/// order (Schedule::Task::epoch indexes epochs[client]). Deletion payloads
/// and join payloads are borrowed from the scenario; flipped and poisoned
/// versions are derived here and owned by the table.
struct Engine::EpochTable {
  std::vector<std::vector<const data::Dataset*>> epochs;
  std::vector<std::unique_ptr<data::Dataset>> owned;
  /// Per client: index into `owned` of its final (post-run) dataset when
  /// the last data mutation was a derived one (flip / backdoor), else -1.
  /// Engine::run commits these durably after the deletion/join commits.
  std::vector<int> final_owned;
};

Engine::EpochTable Engine::materialize_epochs(const Scenario& s,
                                              const Schedule& plan) const {
  EpochTable t;
  t.epochs.resize(plan.total_clients);
  t.final_owned.assign(plan.total_clients, -1);
  const std::size_t n0 = num_clients();
  // Epoch 0: pre-run data for existing clients, the join payload for joined
  // ones (ids are assigned in join-application order).
  if (pop_) {
    // Population mode: decode a client's cold record only if the run
    // actually reads its data — a consumed training task, or a flip /
    // backdoor derivation (which transforms the current data). A client
    // whose only event is a deletion stays cold: its epoch-0 entry is a
    // never-dereferenced placeholder, and the commit path re-spills the
    // record without reading it (the eviction-without-materialization
    // contract, pinned by ClientStateStore::materializations()).
    std::vector<bool> needs(n0, false);
    for (const Schedule::Task& tp : plan.tasks)
      if (tp.consumed_by >= 0 && tp.client < n0) needs[tp.client] = true;
    for (const LabelFlipEvent& f : s.label_flips)
      if (f.client < n0) needs[f.client] = true;
    for (const BackdoorInjectEvent& b : s.backdoors)
      if (b.client < n0) needs[b.client] = true;
    for (std::size_t c = 0; c < n0; ++c)
      t.epochs[c].push_back(needs[c] ? &pop_->clients.materialize(c)
                                     : nullptr);
  } else {
    for (std::size_t c = 0; c < n0; ++c) t.epochs[c].push_back(&clients_[c]);
  }
  for (std::size_t p = 0; p < plan.join_order.size(); ++p)
    t.epochs[n0 + p].push_back(&s.joins[plan.join_order[p]].dataset);

  // Replay the data-mutating events in the exact merged order Phase A
  // applied them, so epoch numbers line up with the schedule's counters —
  // a flip after a deletion flips the post-deletion remainder, a backdoor
  // after a flip poisons the flipped data.
  for (const TimelineRef& ev : plan.timeline) {
    switch (ev.kind) {
      case TimelineRef::kDeletion: {
        const DeletionEvent& d = s.deletions[ev.index];
        t.epochs[d.client].push_back(&d.new_data);
        t.final_owned[d.client] = -1;
        break;
      }
      case TimelineRef::kFlip: {
        const LabelFlipEvent& f = s.label_flips[ev.index];
        auto ds = std::make_unique<data::Dataset>(*t.epochs[f.client].back());
        data::flip_labels(*ds);
        t.epochs[f.client].push_back(ds.get());
        t.final_owned[f.client] = static_cast<int>(t.owned.size());
        t.owned.push_back(std::move(ds));
        break;
      }
      case TimelineRef::kBackdoor: {
        const BackdoorInjectEvent& b = s.backdoors[ev.index];
        // Row selection draws from a per-event seeded stream — a pure
        // function of (seed, event index), never of thread timing.
        Rng rng(mix_seed(cfg_.seed ^ kBackdoorSalt, ev.index, 0));
        auto ds = std::make_unique<data::Dataset>(
            data::poison_dataset(*t.epochs[b.client].back(), b.spec,
                                 b.fraction, rng)
                .poisoned);
        t.epochs[b.client].push_back(ds.get());
        t.final_owned[b.client] = static_cast<int>(t.owned.size());
        t.owned.push_back(std::move(ds));
        break;
      }
      default:
        break;  // joins/leaves/swaps/audits do not version datasets
    }
  }
  return t;
}

// -- Phase B (plan execution) ----------------------------------------------

void Engine::execute(const Scenario& scenario, const Schedule& plan,
                     const EpochTable& epochs, const StepSink& sink) {
  const long aggregations = static_cast<long>(plan.aggs.size());

  // Per-client dataset epochs, materialized by materialize_epochs in merged
  // timeline order: 0 = the client's starting data, 1.. = post-deletion
  // remainders and flipped/poisoned versions.
  const std::vector<std::vector<const data::Dataset*>>& epoch_data =
      epochs.epochs;

  // The run's aggregator sequence: index 0 is the configured strategy, each
  // swap event appends its own, and the scenario's staleness discounting
  // wraps every entry uniformly.
  const double alpha = scenario.staleness_alpha < 0.0
                           ? cfg_.async.staleness_alpha
                           : scenario.staleness_alpha;
  const auto wrapped =
      [&](const std::string& name) -> std::unique_ptr<Aggregator> {
    std::unique_ptr<Aggregator> base = make_aggregator(name, cfg_.robust);
    if (alpha > 0.0)
      return std::make_unique<StalenessAggregator>(std::move(base), alpha);
    return base;
  };
  std::vector<std::unique_ptr<Aggregator>> aggregators;
  aggregators.push_back(wrapped(cfg_.aggregator));
  for (const AggregatorSwapEvent& ev : scenario.aggregator_swaps)
    aggregators.push_back(wrapped(ev.aggregator));

  // Group the *consumed* tasks by the server version they download;
  // everything else (evicted or past the horizon) never executes.
  const std::size_t num_tasks = plan.tasks.size();
  std::vector<std::vector<std::size_t>> by_version(
      static_cast<std::size_t>(aggregations) + 1);
  std::vector<std::atomic<long>> version_refs(
      static_cast<std::size_t>(aggregations) + 1);
  for (std::size_t id = 0; id < num_tasks; ++id) {
    const Schedule::Task& tp = plan.tasks[id];
    if (tp.consumed_by < 0) continue;
    by_version[static_cast<std::size_t>(tp.from_version)].push_back(id);
    version_refs[static_cast<std::size_t>(tp.from_version)].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Version v's parameters live until the last task downloading them has
  // broadcast (the releasing task parks the storage back in the recycler).
  std::vector<std::vector<Tensor>> version_params(
      static_cast<std::size_t>(aggregations) + 1);
  std::vector<std::future<void>> futures(num_tasks);
  std::vector<ClientUpdate> task_updates(num_tasks);
  std::vector<std::size_t> wire_bytes(num_tasks, 0);
  std::vector<double> task_err(num_tasks, 0.0);
  // Reference-needing wires (delta) read version v's parameters during the
  // encode/decode roundtrip, so the version-release refcount drop moves
  // after the wire path for them.
  const WirePolicy* wirep = scenario.wire.get();
  const bool hold_ref = wirep->needs_reference();
  const bool lossy = !wirep->lossless();
  // Per-task local accuracy for architectures whose evaluation cannot be
  // stacked: measured on the still-leased replica right after training,
  // like the historical synchronous round did.
  const bool eval_in_task = scenario.local_accuracy && !stackable_;
  std::vector<double> task_local_acc(eval_in_task ? num_tasks : 0, 0.0);
  const long round_base = round_;

  const auto submit_version = [&](std::size_t v) {
    if (version_refs[v].load(std::memory_order_relaxed) == 0) {
      version_params[v].clear();  // nobody downloads this version
      return;
    }
    for (std::size_t id : by_version[v]) {
      futures[id] = sched_->submit([this, id, &plan, &epoch_data,
                                    &version_params, &version_refs,
                                    &task_updates, &wire_bytes, &task_err,
                                    &task_local_acc, eval_in_task, wirep,
                                    hold_ref, lossy, round_base] {
        const Schedule::Task& tp = plan.tasks[id];
        const std::size_t from_v = static_cast<std::size_t>(tp.from_version);
        ModelLease lease(*this);
        nn::Model& local = lease.get();
        // Broadcast: load version v's parameters and zero the gradient
        // accumulators (exactly what copy_from does for a deep clone).
        local.load(version_params[from_v]);
        local.zero_grad();
        if (!hold_ref &&
            version_refs[from_v].fetch_sub(1, std::memory_order_acq_rel) == 1)
          version_params[from_v].clear();
        const data::Dataset& ds =
            *epoch_data[tp.client][static_cast<std::size_t>(tp.epoch)];
        update_fn_(tp.client, local, ds, round_base + tp.index);
        // The upload travels as real bytes: the client encodes its trained
        // parameters, the server decodes them — what aggregation sees is the
        // decoded (possibly lossy) reconstruction. One buffer per worker
        // thread; its capacity is retained across tasks.
        static thread_local std::string wire_buf;
        std::vector<Tensor> snap = local.snapshot();
        const std::vector<Tensor>* ref = hold_ref ? &version_params[from_v] : nullptr;
        wirep->encode(snap, ref, wire_buf);
        wire_bytes[id] = wire_buf.size();
        task_updates[id].params =
            wirep->decode(wire_buf.data(), wire_buf.size(), ref);
        if (lossy)
          task_err[id] = wire_reconstruction_error(snap, task_updates[id].params);
        if (hold_ref &&
            version_refs[from_v].fetch_sub(1, std::memory_order_acq_rel) == 1)
          version_params[from_v].clear();
        task_updates[id].dataset_size = ds.size();
        task_updates[id].staleness = tp.staleness;
        if (eval_in_task) task_local_acc[id] = eval_.accuracy(local);
      });
    }
  };

  version_params[0] = global_.snapshot();
  // Population mode: every broadcast version is interned into the
  // content-addressed snapshot store at publish time — identical replicas
  // dedupe to one refcounted buffer. The handles pin the versions for the
  // duration of the run; run() transfers pins to the clients that
  // downloaded them and releases the rest.
  if (pop_) {
    run_version_handles_.assign(static_cast<std::size_t>(aggregations) + 1,
                                population::SnapshotStore::Handle{});
    run_version_handles_[0] = pop_->snapshots.intern(version_params[0]);
  }
  submit_version(0);

  try {
    for (long a = 0; a < aggregations; ++a) {
      const Schedule::Agg& ap = plan.aggs[static_cast<std::size_t>(a)];
      const Aggregator& agg = *aggregators[ap.aggregator];
      // Consume the buffer in its deterministic arrival order. Draining
      // participates in the scheduler's queue, so this never deadlocks —
      // even at parallelism 1 the waiter executes the tasks itself.
      std::vector<ClientUpdate> updates;
      updates.reserve(ap.tasks.size());
      StepResult r;
      for (std::size_t id : ap.tasks) {
        sched_->drain_until_ready(futures[id]);
        futures[id].get();  // rethrows task failures
        updates.push_back(std::move(task_updates[id]));
        r.bytes_uplinked += wire_bytes[id];
        r.encode_error += task_err[id];
        r.mean_staleness += double(plan.tasks[id].staleness);
        r.max_staleness = std::max(r.max_staleness, plan.tasks[id].staleness);
      }
      r.upload_bytes = wire_bytes[ap.tasks.front()];
      r.encode_error /= double(ap.tasks.size());
      if (agg.capabilities().needs_mse) {
        // grain=1: one body is a full-model MSE evaluation.
        sched_->parallel_map(
            updates.size(),
            [&](std::size_t i) {
              ModelLease lease(*this);
              nn::Model& scratch = lease.get();
              scratch.load(updates[i].params);
              updates[i].mse = eval_.mse(scratch);
            },
            /*grain=*/1);
      }
      std::vector<Tensor> merged = agg.aggregate(updates);
      global_.load(merged);
      version_params[static_cast<std::size_t>(a) + 1] = std::move(merged);
      if (pop_)
        run_version_handles_[static_cast<std::size_t>(a) + 1] =
            pop_->snapshots.intern(
                version_params[static_cast<std::size_t>(a) + 1]);
      submit_version(static_cast<std::size_t>(a) + 1);

      r.step = a;
      r.virtual_time = ap.time;
      r.global_accuracy = eval_.accuracy(global_);
      if (ap.audit > 0) {
        // Audit the freshly aggregated model on the main thread — a pure
        // batched forward pass, so the curve is bit-identical at any thread
        // count.
        const AuditEvent& audit = scenario.audits[ap.audit - 1];
        r.has_audit = true;
        r.attack_success = metrics::attack_success_rate(global_, audit.probe);
        if (!audit.members.empty()) {
          const metrics::MiaResult mia = metrics::membership_inference(
              global_, audit.members, audit.nonmembers);
          r.mia_auc = mia.auc;
          r.mia_accuracy = mia.best_accuracy;
        }
      }
      r.mean_staleness /= double(ap.tasks.size());
      r.updates_consumed = static_cast<long>(ap.tasks.size());
      r.dropped_updates = ap.dropped_so_far;
      r.active_clients = ap.active_clients;
      r.aggregator = agg.name();
      if (scenario.local_accuracy) {
        std::vector<double> local_acc(updates.size(), 0.0);
        if (stackable_) {
          stacked_local_accuracy(updates, local_acc);
        } else {
          for (std::size_t i = 0; i < ap.tasks.size(); ++i)
            local_acc[i] = task_local_acc[ap.tasks[i]];
        }
        r.has_local_accuracy = true;
        r.min_local_accuracy =
            *std::min_element(local_acc.begin(), local_acc.end());
        r.max_local_accuracy =
            *std::max_element(local_acc.begin(), local_acc.end());
        double mean = 0.0;
        for (double acc : local_acc) mean += acc;
        r.mean_local_accuracy = mean / double(local_acc.size());
      }
      if (sink) sink(r);
    }
  } catch (...) {
    // A failed client task must not leave siblings running against local
    // state that is about to be destroyed; wait them out, then rethrow.
    for (std::future<void>& f : futures)
      if (f.valid()) {
        sched_->drain_until_ready(f);
        try {
          f.get();
        } catch (...) {
        }
      }
    if (pop_) {
      // The aborted run commits nothing: drop the version pins and free the
      // cohort slots so the stores are consistent for the next run.
      for (const population::SnapshotStore::Handle& h : run_version_handles_)
        pop_->snapshots.release(h);
      run_version_handles_.clear();
      pop_->clients.release_all();
    }
    throw;
  }
  if (pop_) run_wire_bytes_ = std::move(wire_bytes);
}

void Engine::run(Scenario scenario, const StepSink& sink) {
  if (running_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("fl::Engine: run() is not reentrant");
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  // Expand sybil bursts into ordinary joins before anything looks at the
  // timeline: ids stay dense, joins stay durable, and DeletionEvent /
  // ClientLeaveEvent can target each sybil individually. Expanded joins
  // carry higher declaration indices than every declared join, so at an
  // equal instant the declared joins are assigned ids first.
  for (SybilJoinEvent& sv : scenario.sybil_joins) {
    GOLDFISH_CHECK(sv.count >= 1, "sybil burst needs count >= 1");
    GOLDFISH_CHECK(!sv.dataset.empty(), "sybil clients need data");
    for (std::size_t i = 0; i + 1 < sv.count; ++i)
      scenario.joins.push_back({sv.time, sv.dataset});
    scenario.joins.push_back({sv.time, std::move(sv.dataset)});
  }
  scenario.sybil_joins.clear();

  validate_scenario(scenario);
  // Null policies mean "the legacy behaviour derived from FlConfig".
  if (!scenario.participation)
    scenario.participation = std::make_unique<FullParticipation>();
  if (!scenario.buffer)
    scenario.buffer = std::make_unique<FixedBuffer>(cfg_.async.buffer_size);
  if (!scenario.clock)
    scenario.clock = std::make_unique<VirtualClock>(
        cfg_.seed, cfg_.async.mean_duration, cfg_.async.duration_log_jitter);
  if (!scenario.wire) scenario.wire = std::make_unique<DenseWire>();
  // Announce the encoded upload size before Phase A builds the schedule:
  // every wire's byte count is a pure function of parameter *shapes*, never
  // values, so bandwidth-aware clocks can price uploads without the schedule
  // ever depending on training results.
  scenario.clock->set_upload_bytes(
      scenario.wire->encoded_bytes(replica_template_.snapshot()));

  const Schedule plan = build_schedule(scenario);
  EpochTable epochs = materialize_epochs(scenario, plan);
  execute(scenario, plan, epochs, sink);

  // Commit the run's durable effects. Subsequent runs (and their RNG
  // streams) continue after every stream this run touched — fast clients
  // consume more task indices than there were aggregations, so the
  // aggregation count alone would under-advance.
  round_ += plan.rounds_consumed;
  if (pop_) {
    population::ClientStateStore& store = pop_->clients;
    for (std::size_t ji : plan.join_order) {
      store.add(scenario.joins[ji].dataset);
      active_.push_back(true);
    }
    // Durable telemetry and reference snapshots, from the executed plan. A
    // client's reference points at the newest version it downloaded — the
    // base DeltaWire's needs_reference() path would diff against — and the
    // set_reference acquire keeps that version's deduped buffer alive.
    std::vector<long> newest(plan.total_clients, -1);
    for (std::size_t id = 0; id < plan.tasks.size(); ++id) {
      const Schedule::Task& tp = plan.tasks[id];
      store.bump_tasks_started(tp.client, 1);
      newest[tp.client] = std::max(newest[tp.client], tp.from_version);
      if (tp.consumed_by >= 0) {
        store.bump_updates_aggregated(tp.client, 1);
        store.bump_bytes_uplinked(tp.client, run_wire_bytes_[id]);
      }
    }
    for (std::size_t c = 0; c < plan.total_clients; ++c)
      if (newest[c] >= 0) {
        store.set_last_version(c, newest[c]);
        pop_->set_reference(
            c, run_version_handles_[static_cast<std::size_t>(newest[c])]);
      }
    // Deletions re-spill the cold record in place (the old payload is never
    // decoded) and drop the client's snapshot reference, so a departed
    // replica's refcount can reach zero. Order matches resident mode:
    // deletion payloads commit before the derived flip/backdoor data (and
    // materialize_epochs clears final_owned when a deletion came last).
    for (const DeletionEvent& d : scenario.deletions) {
      store.replace(d.client, d.new_data);
      pop_->drop_reference(d.client);
    }
    for (std::size_t c = 0; c < epochs.final_owned.size(); ++c)
      if (epochs.final_owned[c] >= 0)
        store.replace(
            c,
            *epochs.owned[static_cast<std::size_t>(epochs.final_owned[c])]);
    for (const ClientLeaveEvent& l : scenario.leaves)
      active_[l.client] = false;
    // End of run: drop the run's own version pins (a version no client
    // references evaporates from the store) and return every materialized
    // cohort slot — steady-state resident memory goes back to zero.
    for (const population::SnapshotStore::Handle& h : run_version_handles_)
      pop_->snapshots.release(h);
    run_version_handles_.clear();
    run_wire_bytes_.clear();
    store.release_all();
    return;
  }
  for (std::size_t ji : plan.join_order) {
    clients_.push_back(std::move(scenario.joins[ji].dataset));
    active_.push_back(true);
  }
  for (DeletionEvent& d : scenario.deletions)
    clients_[d.client] = std::move(d.new_data);
  // Adversarial data mutations are durable too: a client whose *last*
  // mutation was a flip or backdoor keeps the hostile dataset (a later
  // deletion supersedes both — its payload just committed above).
  for (std::size_t c = 0; c < epochs.final_owned.size(); ++c)
    if (epochs.final_owned[c] >= 0)
      clients_[c] = std::move(
          *epochs.owned[static_cast<std::size_t>(epochs.final_owned[c])]);
  for (const ClientLeaveEvent& l : scenario.leaves) active_[l.client] = false;
}

std::vector<StepResult> Engine::collect(Scenario scenario) {
  std::vector<StepResult> out;
  if (scenario.aggregations > 0)
    out.reserve(static_cast<std::size_t>(scenario.aggregations));
  run(std::move(scenario), [&](const StepResult& r) { out.push_back(r); });
  return out;
}

Scenario Engine::sync_scenario(long rounds, bool local_accuracy) const {
  Scenario s;
  s.aggregations = rounds;
  s.participation = std::make_unique<FullParticipation>();
  s.buffer = std::make_unique<FixedBuffer>(0);  // K = all active clients
  s.clock = std::make_unique<VirtualClock>(cfg_.seed, 1.0, 0.0);
  s.staleness_alpha = 0.0;
  s.local_accuracy = local_accuracy;
  return s;
}

Scenario Engine::async_scenario(long aggregations,
                                std::vector<DeletionEvent> deletions) const {
  Scenario s;
  s.aggregations = aggregations;
  s.participation = std::make_unique<FullParticipation>();
  s.buffer = std::make_unique<FixedBuffer>(cfg_.async.buffer_size);
  s.clock = std::make_unique<VirtualClock>(cfg_.seed, cfg_.async.mean_duration,
                                           cfg_.async.duration_log_jitter);
  s.staleness_alpha = cfg_.async.staleness_alpha;
  s.deletions = std::move(deletions);
  return s;
}

}  // namespace goldfish::fl
