#include "nn/model.h"

namespace goldfish::nn {

void Model::attach() {
  if (root_ == nullptr) {
    ws_.reset();
    return;
  }
  if (ws_ == nullptr) ws_ = std::make_unique<Workspace>();
  std::size_t next_key = 0;
  root_->attach_workspace(ws_.get(), next_key);
  // Pre-size the slot table now: acquire may never reallocate it mid-pass
  // (layers hold references into it across a whole forward/backward chain).
  ws_->ensure(next_key);
}

Model::Model(std::string arch_name, std::unique_ptr<Layer> root,
             long num_classes)
    : arch_name_(std::move(arch_name)),
      root_(std::move(root)),
      num_classes_(num_classes) {
  GOLDFISH_CHECK(root_ != nullptr, "model requires a root layer");
  GOLDFISH_CHECK(num_classes_ > 0, "model requires a class count");
  attach();
}

Model::Model(const Model& other)
    : arch_name_(other.arch_name_),
      root_(other.root_ ? other.root_->clone() : nullptr),
      num_classes_(other.num_classes_) {
  attach();
}

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  arch_name_ = other.arch_name_;
  root_ = other.root_ ? other.root_->clone() : nullptr;
  num_classes_ = other.num_classes_;
  // Keep the existing arena object: slot storage is recycled where shapes
  // match and regrows where they don't.
  attach();
  return *this;
}

void Model::copy_from(const Model& other) {
  GOLDFISH_CHECK(valid() && other.valid(), "copy_from needs valid models");
  GOLDFISH_CHECK(arch_name_ == other.arch_name_ &&
                     num_classes_ == other.num_classes_,
                 "copy_from across different architectures");
  auto dst = root_->params();
  auto src = other.params();
  GOLDFISH_CHECK(dst.size() == src.size(),
                 "copy_from parameter count mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    GOLDFISH_CHECK(dst[i].value->same_shape(*src[i].value),
                   "copy_from shape mismatch at " + dst[i].name);
    *dst[i].value = *src[i].value;
    if (dst[i].grad != nullptr) dst[i].grad->zero();
  }
}

void Model::zero_grad() {
  for (ParamRef p : root_->params())
    if (p.grad != nullptr) p.grad->zero();
}

std::size_t Model::num_scalars() const {
  std::size_t n = 0;
  for (const ConstParamRef& p : params()) n += p.value->numel();
  return n;
}

std::vector<Tensor> Model::snapshot() const {
  std::vector<Tensor> out;
  for (const ConstParamRef& p : params()) out.push_back(*p.value);
  return out;
}

void Model::load(const std::vector<Tensor>& values) {
  auto ps = root_->params();
  GOLDFISH_CHECK(ps.size() == values.size(),
                 "snapshot size mismatch in Model::load");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    GOLDFISH_CHECK(ps[i].value->same_shape(values[i]),
                   "snapshot shape mismatch at " + ps[i].name);
    *ps[i].value = values[i];
  }
}

GOLDFISH_HOT void axpy(std::vector<Tensor>& result,
                       const std::vector<Tensor>& delta, float scale) {
  GOLDFISH_CHECK(result.size() == delta.size(), "axpy snapshot size");
  for (std::size_t i = 0; i < result.size(); ++i)
    result[i].add_scaled(delta[i], scale);
}

GOLDFISH_HOT std::vector<Tensor> weighted_average(
    const std::vector<const std::vector<Tensor>*>& snaps,
    const std::vector<float>& weights) {
  GOLDFISH_CHECK(!snaps.empty(), "no snapshots to average");
  GOLDFISH_CHECK(snaps.size() == weights.size(), "weights size mismatch");
  float total = 0.0f;
  for (float w : weights) {
    GOLDFISH_CHECK(w >= 0.0f, "negative aggregation weight");
    total += w;
  }
  GOLDFISH_CHECK(total > 0.0f, "aggregation weights sum to zero");

  // First snapshot written in place (out[i] = w0·a0[i] — the same FP ops as
  // the historical copy-then-scale, so results are bit-identical), the rest
  // accumulated with axpy. No input snapshot is ever copied.
  const std::vector<Tensor>& first = *snaps[0];
  const float w0 = weights[0] / total;
  std::vector<Tensor> out;
  // goldfish-lint: allow(ALLOC002) output header vector sized once per
  // aggregate; the element FloatBuffers come from the round's buffer pool
  out.reserve(first.size());
  for (const Tensor& t : first) {
    Tensor acc = Tensor::uninit(t.shape());
    const float* src = t.data();
    float* dst = acc.data();
    for (std::size_t i = 0; i < t.numel(); ++i) dst[i] = src[i] * w0;
    // goldfish-lint: allow(ALLOC002) within the capacity reserved above
    out.push_back(std::move(acc));
  }
  for (std::size_t s = 1; s < snaps.size(); ++s) {
    GOLDFISH_CHECK(snaps[s]->size() == out.size(),
                   "snapshot layout mismatch");
    axpy(out, *snaps[s], weights[s] / total);
  }
  return out;
}

std::vector<Tensor> weighted_average(
    const std::vector<std::vector<Tensor>>& snaps,
    const std::vector<float>& weights) {
  std::vector<const std::vector<Tensor>*> views;
  views.reserve(snaps.size());
  for (const std::vector<Tensor>& s : snaps) views.push_back(&s);
  return weighted_average(views, weights);
}

float snapshot_distance_sq(const std::vector<Tensor>& a,
                           const std::vector<Tensor>& b) {
  GOLDFISH_CHECK(a.size() == b.size(), "snapshot layout mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    GOLDFISH_CHECK(a[i].same_shape(b[i]), "snapshot shape mismatch");
    for (std::size_t j = 0; j < a[i].numel(); ++j) {
      const double d = double(a[i][j]) - double(b[i][j]);
      acc += d * d;
    }
  }
  return static_cast<float>(acc);
}

}  // namespace goldfish::nn
