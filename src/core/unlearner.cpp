#include "core/unlearner.h"

namespace goldfish::core {

GoldfishUnlearner::GoldfishUnlearner(nn::Model global, nn::Model fresh_init,
                                     std::vector<data::Dataset> client_data,
                                     data::Dataset server_test,
                                     UnlearnConfig cfg)
    : teacher_(std::move(global)), cfg_(std::move(cfg)) {
  GOLDFISH_CHECK(!client_data.empty(), "unlearner needs clients");
  removed_.resize(client_data.size());

  fl::FlConfig fcfg;
  fcfg.aggregator = cfg_.aggregator;
  fcfg.threads = cfg_.threads;
  fcfg.seed = cfg_.seed;
  engine_ = std::make_unique<fl::Engine>(std::move(fresh_init),
                                         std::move(client_data),
                                         std::move(server_test), fcfg);

  // The client update is Goldfish distillation instead of LocalTraining:
  // the student is the engine's broadcast replica (the current, partially
  // rebuilt global model), the teacher is the frozen pre-unlearning model.
  // Each client gets its own teacher replica: forward passes mutate layer
  // caches, so sharing one teacher across threads would race.
  engine_->set_client_update([this](std::size_t c, nn::Model& student,
                                    const data::Dataset& d_r, long round) {
    nn::Model teacher = teacher_;
    DistillOptions opts = cfg_.distill;
    // Collision-free (client, round) stream separation; the old xor mix let
    // distinct pairs reuse each other's RNG streams (see mix_seed).
    opts.seed = mix_seed(cfg_.seed ^ 0xC0FFEEull, c,
                         static_cast<std::uint64_t>(round));
    const data::Dataset& d_f =
        c < removed_.size() ? removed_[c] : no_removed_;
    const float ref = reference_loss_of(teacher, d_r, opts);
    const DistillResult res =
        goldfish_distill(student, teacher, d_r, d_f, ref, opts);
    std::lock_guard<std::mutex> lock(stats_mu_);
    epochs_run_ += res.epochs_run;
    if (res.terminated_early) ++terminated_early_;
    if (c >= temps_.size()) temps_.resize(c + 1, 0.0);
    temps_[c] = res.temperature_used;
  });
}

DeletionSplit split_deletion(const data::Dataset& local,
                             const UnlearnRequest& req) {
  std::vector<bool> is_removed(static_cast<std::size_t>(local.size()), false);
  for (std::size_t r : req.rows) {
    GOLDFISH_CHECK(r < static_cast<std::size_t>(local.size()),
                   "deletion row out of range");
    is_removed[r] = true;
  }
  std::vector<std::size_t> keep, drop;
  for (std::size_t i = 0; i < is_removed.size(); ++i)
    (is_removed[i] ? drop : keep).push_back(i);
  GOLDFISH_CHECK(!keep.empty(), "client would have no remaining data");
  return {local.subset(keep), local.subset(drop)};
}

AsyncDeletionPlan make_async_deletion(const fl::FederatedSim& sim,
                                      const UnlearnRequest& req,
                                      double vtime) {
  GOLDFISH_CHECK(req.client_id < sim.num_clients(),
                 "deletion request for unknown client");
  DeletionSplit split = split_deletion(sim.client_data(req.client_id), req);
  AsyncDeletionPlan plan;
  plan.event.time = vtime;
  plan.event.client = req.client_id;
  plan.event.new_data = std::move(split.remaining);
  plan.removed = std::move(split.removed);
  return plan;
}

void GoldfishUnlearner::request_deletion(
    const std::vector<UnlearnRequest>& requests) {
  // Check the engine's in-flight guard before touching removed_: rejecting
  // halfway through would leave rows listed as D_f while still training as
  // D_r (and a retry would concatenate them twice). Mid-run requests go
  // through make_async_deletion + a scenario DeletionEvent instead.
  if (engine_->running())
    throw std::logic_error(
        "GoldfishUnlearner: request_deletion while a run is in flight; "
        "inject a DeletionEvent into the scenario instead");
  for (const UnlearnRequest& req : requests) {
    GOLDFISH_CHECK(req.client_id < engine_->num_clients(),
                   "deletion request for unknown client");
    DeletionSplit split =
        split_deletion(engine_->client_data(req.client_id), req);
    if (req.client_id >= removed_.size())
      removed_.resize(req.client_id + 1);
    removed_[req.client_id] =
        data::Dataset::concat(removed_[req.client_id], split.removed);
    engine_->set_client_data(req.client_id, std::move(split.remaining));
  }
}

const data::Dataset& GoldfishUnlearner::removed_data(
    std::size_t client) const {
  GOLDFISH_CHECK(client < engine_->num_clients(), "client out of range");
  return client < removed_.size() ? removed_[client] : no_removed_;
}

const data::Dataset& GoldfishUnlearner::remaining_data(
    std::size_t client) const {
  return engine_->client_data(client);
}

UnlearnRoundResult GoldfishUnlearner::run_round() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    epochs_run_ = 0;
    terminated_early_ = 0;
    temps_.assign(engine_->num_clients(), 0.0);
  }

  UnlearnRoundResult r;
  const long base = engine_->rounds_completed();
  engine_->run(engine_->sync_scenario(1, /*local_accuracy=*/false),
               [&](const fl::StepResult& s) {
                 r.round = base + s.step;
                 r.global_accuracy = s.global_accuracy;
               });

  std::lock_guard<std::mutex> lock(stats_mu_);
  r.total_epochs_run = epochs_run_;
  r.clients_terminated_early = terminated_early_;
  double tsum = 0.0;
  for (double t : temps_) tsum += t;
  r.mean_temperature = tsum / double(temps_.size());
  return r;
}

std::vector<UnlearnRoundResult> GoldfishUnlearner::run(long rounds) {
  std::vector<UnlearnRoundResult> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (long i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

}  // namespace goldfish::core
