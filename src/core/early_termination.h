// Early termination guided by excess empirical risk (Eq. 7):
//
//   err(ω_c^t, ω^{t−1}) = | (1/n)·Σᵢ L(ω_c^t(i)) − L(ω^{t−1}) |
//
// Local training stops once the running mean of the student's per-epoch
// losses is within δ of the previous global model's loss — the student has
// re-converged to the teacher's risk level and further epochs are wasted.
#pragma once

#include <cstddef>
#include <vector>

namespace goldfish::core {

class ExcessRiskTracker {
 public:
  /// `reference_loss` is L(ω^{t−1}) — the previous global model's loss on
  /// the client's (remaining) data; δ is the stopping threshold.
  ExcessRiskTracker(float reference_loss, float delta);

  /// Record the loss of one completed local epoch (L(ω_c^t(i))).
  void record_epoch(float loss);

  /// Current excess empirical risk; +inf before any epoch is recorded.
  float excess_risk() const;

  /// True once excess_risk() ≤ δ.
  bool should_stop() const;

  std::size_t epochs_recorded() const { return losses_.size(); }
  float reference_loss() const { return reference_; }
  float delta() const { return delta_; }

 private:
  float reference_;
  float delta_;
  std::vector<float> losses_;
};

}  // namespace goldfish::core
