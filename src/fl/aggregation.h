// Server-side model aggregation: FedAvg (McMahan et al.) and the paper's
// adaptive-weight extension (Eq. 12–13).
#pragma once

#include <memory>

#include "data/dataset.h"
#include "nn/model.h"

namespace goldfish::fl {

/// One client's upload: a parameter snapshot plus its dataset size.
struct ClientUpdate {
  std::vector<Tensor> params;
  long dataset_size = 0;
  /// MSE of the client model on the server's test set; filled by the server
  /// before adaptive aggregation (Eq. 12 is computed "at the central
  /// server").
  double mse = 0.0;
};

/// Aggregation strategy interface.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates) const = 0;
  virtual std::string name() const = 0;
};

/// FedAvg: weights proportional to |D_c|.
class FedAvgAggregator final : public Aggregator {
 public:
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "fedavg"; }
};

/// Uniform (equal-weight) parameter averaging: ω = (1/C)·Σ ω_c. This is the
/// naive FedAvg variant many FL implementations ship (and the behaviour the
/// paper's Fig. 8/9 comparison exhibits — see EXPERIMENTS.md); kept distinct
/// from the size-weighted FedAvgAggregator above.
class UniformAggregator final : public Aggregator {
 public:
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "uniform"; }
};

/// Goldfish adaptive weights (Eq. 12–13):
///   W_c = exp(−(me_c − mē)/mē),  ω = (1/θ)·Σ W_c·ω_c, θ = Σ W_c.
/// Lower test MSE ⇒ exponentially larger weight.
class AdaptiveAggregator final : public Aggregator {
 public:
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "adaptive"; }

  /// The raw Eq. 12 weights (exposed for tests/benches).
  static std::vector<float> weights_from_mse(const std::vector<double>& mses);
};

std::unique_ptr<Aggregator> make_aggregator(const std::string& name);

}  // namespace goldfish::fl
