#include "metrics/evaluation.h"

#include <algorithm>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace goldfish::metrics {

namespace {

/// Run fn over the dataset in sequential batches (no shuffling).
template <typename Fn>
void for_batches(nn::Model& model, const data::Dataset& ds, long batch_size,
                 Fn&& fn) {
  GOLDFISH_CHECK(!ds.empty(), "evaluating on an empty dataset");
  const long n = ds.size();
  for (long lo = 0; lo < n; lo += batch_size) {
    const long hi = std::min(n, lo + batch_size);
    std::vector<std::size_t> idx;
    idx.reserve(static_cast<std::size_t>(hi - lo));
    for (long i = lo; i < hi; ++i)
      idx.push_back(static_cast<std::size_t>(i));
    auto [x, y] = ds.batch(idx);
    const Tensor logits = model.forward(x, /*train=*/false);
    fn(logits, y);
  }
}

}  // namespace

double accuracy(nn::Model& model, const data::Dataset& ds, long batch_size) {
  long correct = 0;
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const std::vector<long>& y) {
                const std::vector<long> pred = argmax_rows(logits);
                for (std::size_t i = 0; i < y.size(); ++i)
                  if (pred[i] == y[i]) ++correct;
              });
  return 100.0 * double(correct) / double(ds.size());
}

double attack_success_rate(nn::Model& model, const data::Dataset& probe,
                           long batch_size) {
  if (probe.empty()) return 0.0;
  return accuracy(model, probe, batch_size);
}

double mse(nn::Model& model, const data::Dataset& ds, long batch_size) {
  double total = 0.0;
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const std::vector<long>& y) {
                const Tensor p = softmax_rows(logits);
                const long c = p.dim(1);
                for (long i = 0; i < p.dim(0); ++i) {
                  for (long j = 0; j < c; ++j) {
                    const double target =
                        (j == y[static_cast<std::size_t>(i)]) ? 1.0 : 0.0;
                    const double d = double(p.at(i, j)) - target;
                    total += d * d;
                  }
                }
              });
  return total / (double(ds.size()) * double(ds.num_classes));
}

std::vector<double> mean_prediction(nn::Model& model, const data::Dataset& ds,
                                    long batch_size) {
  std::vector<double> mean(static_cast<std::size_t>(ds.num_classes), 0.0);
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const std::vector<long>&) {
                const Tensor p = softmax_rows(logits);
                for (long i = 0; i < p.dim(0); ++i)
                  for (long j = 0; j < p.dim(1); ++j)
                    mean[static_cast<std::size_t>(j)] += p.at(i, j);
              });
  for (double& v : mean) v /= double(ds.size());
  return mean;
}

std::vector<double> confidence_series(nn::Model& model,
                                      const data::Dataset& ds,
                                      long batch_size) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(ds.size()));
  for_batches(model, ds, batch_size,
              [&](const Tensor& logits, const std::vector<long>&) {
                const Tensor p = softmax_rows(logits);
                for (long i = 0; i < p.dim(0); ++i) {
                  float mx = 0.0f;
                  for (long j = 0; j < p.dim(1); ++j)
                    mx = std::max(mx, p.at(i, j));
                  out.push_back(mx);
                }
              });
  return out;
}

}  // namespace goldfish::metrics
