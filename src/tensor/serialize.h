// Binary (de)serialization of tensors and parameter lists.
//
// Format: little-endian, magic "GFT1", rank, dims, raw float payload. Used
// for model checkpoints (shard snapshots in the optimization module) and for
// shipping client updates through the in-process FL "network". Compressed
// wire records ("GFQ1" int8 quantization, "GFK1" top-k sparsification) share
// the same list framing; the full byte-level spec is docs/wire-format.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/annotations.h"
#include "tensor/tensor.h"

namespace goldfish {

/// Write one tensor to a binary stream. Throws on stream failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Read one tensor from a binary stream. Throws on malformed input.
Tensor read_tensor(std::istream& is);

/// Write a parameter list (e.g. Model::parameters snapshot) to a file.
void save_tensors(const std::string& path, const std::vector<Tensor>& ts);

/// Read a parameter list back. Throws if the file is missing or malformed.
std::vector<Tensor> load_tensors(const std::string& path);

/// Serialize a parameter list into `out` (cleared first, capacity reused) in
/// exactly the bytes save_tensors would write. The FL upload path keeps one
/// such buffer per worker thread so steady-state rounds stop allocating.
GOLDFISH_HOT void serialize_tensors(const std::vector<Tensor>& ts,
                                    std::string& out);

/// Parse a buffer produced by serialize_tensors / save_tensors. Throws on
/// malformed or truncated input.
std::vector<Tensor> deserialize_tensors(const char* data, std::size_t size);

/// Append one "GFT1" tensor record (magic, rank, dims, raw float payload) to
/// `out` *without* the count:u32 list framing — for callers embedding tensor
/// records inside their own containers (the population cold store prefixes a
/// client-state header, then writes dataset tensors record by record).
/// serialize_tensors is exactly this per tensor, so embedded records are
/// byte-identical to list entries.
GOLDFISH_HOT void append_tensor_record(std::string& out, const Tensor& t);

/// Parse one "GFT1" record at `data + *offset`, writing into `t` — storage
/// is reused via Tensor::resize_uninit, so re-reading records of a shape the
/// tensor has already held performs zero heap allocations (the pooled
/// materialization fast path). Advances `*offset` past the record. Throws on
/// malformed or truncated input.
GOLDFISH_HOT void read_tensor_record_into(const char* data, std::size_t size,
                                          std::size_t* offset, Tensor& t);

/// Round-trip through an in-memory buffer; used by the FL transport to model
/// the serialize-upload-deserialize path clients take in a real deployment.
/// The wire buffer is thread_local and reused across calls.
std::vector<Tensor> roundtrip_through_bytes(const std::vector<Tensor>& ts,
                                            std::size_t* bytes_on_wire);

// -- compressed wire records (docs/wire-format.md) --------------------------
//
// Same list framing as serialize_tensors (count:u32, then one record per
// tensor), but lossy per-tensor payloads. Encoded byte counts are pure
// functions of the tensor *shapes* — never their values — which is what lets
// the FL engine feed byte-true upload sizes to bandwidth-aware clock
// policies before any training has run (fl/policies.h).

/// Int8 per-tensor affine quantization ("GFQ1"): each tensor is stored as
/// its [min, max] range plus one byte per element, q = round((v − min)/s)
/// with s = (max − min)/255. Rounding is std::lround (ties away from zero,
/// independent of the FP rounding mode), so encodings are bit-reproducible
/// across machines. Constant tensors (max == min) decode exactly.
void serialize_quantized(const std::vector<Tensor>& ts, std::string& out);

/// Parse a "GFQ1" buffer back into dequantized float tensors
/// (v = min + q·s). Throws on malformed or truncated input.
std::vector<Tensor> deserialize_quantized(const char* data, std::size_t size);

/// Top-k magnitude sparsification ("GFK1"): per tensor, keep the
/// topk_count(numel, fraction) entries of largest |v| (ties broken toward
/// the lower flat index, so the kept set is unique) as ascending
/// (index:u32, value:f32) pairs; dropped entries decode to zero.
void serialize_topk(const std::vector<Tensor>& ts, double fraction,
                    std::string& out);

/// Parse a "GFK1" buffer back into dense tensors (zeros + scatter). Throws
/// on malformed or truncated input (bad magic, k > numel, out-of-range or
/// non-ascending indices).
std::vector<Tensor> deserialize_topk(const char* data, std::size_t size);

/// The k used for one tensor of `numel` elements at `fraction` ∈ (0, 1]:
/// ceil(fraction·numel), at least 1 for non-empty tensors. Shared by the
/// encoder and the byte-size predictors so the two can never disagree.
long topk_count(long numel, double fraction);

}  // namespace goldfish
