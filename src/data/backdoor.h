// Backdoor attack machinery — the paper's unlearning-validity probe (§IV-A,
// following Wu et al.'s federated-unlearning-with-distillation protocol).
//
// A pixel-pattern trigger is stamped onto a fraction of one client's samples
// and those samples are relabeled to a target class. After training, the
// model misclassifies any triggered input as the target → high attack
// success rate (ASR). A valid unlearning run removes exactly those samples,
// and ASR collapses.
#pragma once

#include "data/dataset.h"

namespace goldfish::data {

struct BackdoorSpec {
  long target_label = 0;
  long patch = 3;          ///< trigger is a patch×patch corner block
  float trigger_value = 2.5f;  ///< well outside the clean pixel range
};

/// Stamp the trigger onto one flat feature row (all channels).
void stamp_trigger(float* row, const nn::InputGeom& geom,
                   const BackdoorSpec& spec);

/// Result of poisoning: the dataset with triggers applied in-place on the
/// chosen rows, plus the indices of those rows (they become D_f when the
/// deletion request arrives).
struct PoisonResult {
  Dataset poisoned;
  std::vector<std::size_t> poisoned_indices;
};

/// Poison `fraction` of the dataset: trigger stamped, label switched to the
/// target. Rows are chosen uniformly among samples whose label differs from
/// the target (stamping a target-labeled row teaches nothing).
PoisonResult poison_dataset(const Dataset& clean, const BackdoorSpec& spec,
                            float fraction, Rng& rng);

/// Build the ASR probe set: every test sample whose true label differs from
/// the target gets the trigger; ASR = fraction the model then classifies as
/// the target label.
Dataset make_trigger_probe(const Dataset& test, const BackdoorSpec& spec);

/// Label-flipping attack: every label y becomes num_classes−1−y in place —
/// the classic untargeted data poisoning (a hostile client trains on
/// systematically wrong labels). An involution: flipping twice restores the
/// original labels.
void flip_labels(Dataset& ds);

}  // namespace goldfish::data
