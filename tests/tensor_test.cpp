// Unit tests for the Tensor value type: construction, shape handling,
// arithmetic, reductions, and contract violations.
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace goldfish {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 3, 2});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(2), 2);
  EXPECT_EQ(t.shape_str(), "[4, 3, 2]");
  EXPECT_THROW(t.dim(3), CheckError);
}

TEST(Tensor, FromInitializerList) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, From2d) {
  Tensor t = Tensor::from2d({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);
}

TEST(Tensor, From2dRaggedThrows) {
  EXPECT_THROW(Tensor::from2d({{1, 2}, {3}}), CheckError);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), CheckError);
}

TEST(Tensor, FullAndOnes) {
  Tensor f = Tensor::full({3}, 2.5f);
  EXPECT_FLOAT_EQ(f[0], 2.5f);
  Tensor o = Tensor::ones({2, 2});
  EXPECT_FLOAT_EQ(o.sum(), 4.0f);
}

TEST(Tensor, Reshape) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({2, 3});
  EXPECT_FLOAT_EQ(r.at(1, 0), 4.0f);
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  Tensor c = a + b;
  EXPECT_FLOAT_EQ(c[0], 5.0f);
  EXPECT_FLOAT_EQ(c[2], 9.0f);
  Tensor d = b - a;
  EXPECT_FLOAT_EQ(d[1], 3.0f);
  Tensor e = a * 2.0f;
  EXPECT_FLOAT_EQ(e[2], 6.0f);
  Tensor f = 3.0f * a;
  EXPECT_FLOAT_EQ(f[0], 3.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(a += b, CheckError);
  EXPECT_THROW(a -= b, CheckError);
  EXPECT_THROW(a.add_scaled(b, 1.0f), CheckError);
}

TEST(Tensor, AddScaled) {
  Tensor a = Tensor::from({1, 1});
  Tensor b = Tensor::from({2, 4});
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from({-1, 0, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.squared_norm(), 1 + 0 + 9 + 4);
}

TEST(Tensor, EmptyReductionsThrow) {
  Tensor t;
  EXPECT_THROW(t.mean(), CheckError);
  EXPECT_THROW(t.min(), CheckError);
  EXPECT_THROW(t.max(), CheckError);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(7.0f);
  EXPECT_FLOAT_EQ(t.sum(), 21.0f);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 42.0f;
  // Row-major: ((n*C + c)*H + h)*W + w
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 42.0f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(123);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
  double var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double d = t[i] - t.mean();
    var += d * d;
  }
  var /= double(t.numel());
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Tensor, RandUniformBounds) {
  Rng rng(9);
  Tensor t = Tensor::rand_uniform({1000}, rng, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({2, -1}), CheckError);
}

}  // namespace
}  // namespace goldfish
