// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, data synthesis,
// client sampling, shard assignment) draws from an explicitly seeded Rng so
// experiments and tests are bit-reproducible across runs and machines.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace goldfish {

/// The SplitMix64 finalizer: a full-avalanche 64-bit mix (every input bit
/// flips each output bit with probability ~1/2). Usable standalone as a hash.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Collision-resistant stream seed for (base seed, stream, step) — e.g.
/// (config seed, client id, round). Chains the SplitMix64 finalizer so every
/// input fully avalanches before the next is folded in. The ad-hoc mix this
/// replaced (`seed ^ (K·(stream+1)) ^ step`) was xor-linear: distinct
/// (stream, step) pairs such as (0, K1^K2) and (1, 0) collided exactly and
/// reused each other's RNG streams.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream,
                              std::uint64_t step) {
  return splitmix64(splitmix64(splitmix64(seed) ^ stream) ^ step);
}

/// SplitMix64-based generator with normal/uniform helpers.
///
/// SplitMix64 passes BigCrush, needs only 64 bits of state, and — unlike
/// std::mt19937 — has an implementation-pinned output sequence, which keeps
/// synthetic datasets identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64 step).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform float in [0, 1).
  float uniform() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box–Muller (caches the second deviate).
  float normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    // Rejection-free polar form would also work; classic Box–Muller keeps
    // the state evolution simple and deterministic.
    float u1 = uniform();
    float u2 = uniform();
    if (u1 < 1e-12f) u1 = 1e-12f;
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530717958647692f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(float p) { return uniform() < p; }

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A derived generator; lets one seed fan out into independent streams
  /// (e.g. one per client) without correlated sequences.
  Rng split() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  std::uint64_t state_;
  bool has_cached_ = false;
  float cached_ = 0.0f;
};

/// Returns a shuffled identity permutation [0, n).
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace goldfish
