// Scenario example: the data-partition optimization (Fig. 2–3, Eq. 8–10).
//
// One client's local data is split into shards, each with its own model;
// the client's model is the size-weighted shard average. A deletion request
// touches only some shards, so only those retrain — from their checkpoints,
// not from scratch. This example measures the retraining saving directly.
//
// Sharding is the *intra-client* deletion optimization; the *server-side*
// half of a deletion (evicting the client's stale uploads mid-buffer) is a
// fl::DeletionEvent on the engine's scenario timeline — see
// examples/scenario_stream.cpp for the two composed in one run.
//
// Run: ./build/examples/sharded_deletion
#include <chrono>
#include <iostream>

#include "core/sharding.h"
#include "data/synthetic.h"
#include "metrics/evaluation.h"
#include "metrics/report.h"
#include "nn/models.h"

int main() {
  using namespace goldfish;
  using Clock = std::chrono::steady_clock;
  std::cout << "== Sharded deletion demo ==\n";

  // Large-ish local dataset with moderated noise so every shard has enough
  // rows to train (the paper shards a 60k-sample MNIST).
  auto spec = data::default_spec(data::DatasetKind::Mnist, 70, 1800, 200);
  spec.noise_scale = 0.6f;
  auto tt = data::make_synthetic(spec);
  Rng mrng(71);
  nn::Model init = nn::make_mlp(tt.train.geom, 64, 10, mrng);
  fl::TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 50;
  opts.lr = 0.05f;

  for (long shards : {1L, 6L}) {
    Rng rng(72);
    core::ShardManager mgr(init, tt.train, shards, rng);
    for (int r = 0; r < 3; ++r) mgr.train_all(opts);

    // The deletion request: 24 rows that all live in the last shard (one
    // user's data is typically colocated, which is what makes sharding pay
    // off — only that shard retrains).
    const auto& victim_rows = mgr.shard_row_ids(shards - 1);
    std::vector<std::size_t> doomed(victim_rows.begin(),
                                    victim_rows.begin() + 24);
    nn::Model m = init;
    m.load(mgr.aggregate());
    std::cout << "\nτ = " << shards << " shard(s): accuracy before deletion "
              << metrics::fmt(metrics::accuracy(m, tt.test)) << "%\n";

    const auto t0 = Clock::now();
    const auto report = mgr.delete_rows(doomed, opts);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - t0)
                        .count();
    m.load(mgr.aggregate());
    std::cout << "  deletion touched " << report.affected_shards.size()
              << "/" << shards << " shards, retrained "
              << report.rows_retrained << "/" << mgr.total_rows()
              << " rows in " << ms << " ms\n"
              << "  accuracy after deletion "
              << metrics::fmt(metrics::accuracy(m, tt.test)) << "%\n";
  }
  std::cout << "\nexpected shape: with τ = 6 only a fraction of rows "
               "retrain, so deletion is markedly cheaper than τ = 1 at "
               "similar accuracy.\n";
  return 0;
}
