// Buffered-asynchronous federated rounds (FederatedSim::run_async): the
// virtual-clock schedule must make results bit-identical at any thread
// count, degenerate to the synchronous path when K = num_clients with
// constant durations, apply staleness decay through the aggregator stack,
// evict deleted-data updates mid-buffer, and stay allocation-free at steady
// state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/unlearner.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "tensor/buffer_pool.h"

namespace goldfish {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool snapshots_bitwise_equal(const std::vector<Tensor>& a,
                             const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (!a[t].same_shape(b[t])) return false;
    if (std::memcmp(a[t].data(), b[t].data(),
                    a[t].numel() * sizeof(float)) != 0)
      return false;
  }
  return true;
}

struct Fed {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;
};

Fed make_fed(long clients, long train_rows, long test_rows,
             std::uint64_t seed) {
  auto tt = data::make_synthetic(data::default_spec(
      data::DatasetKind::Mnist, seed, train_rows, test_rows));
  Rng rng(seed + 1);
  Fed fed;
  fed.parts = data::partition_iid(tt.train, clients, rng);
  fed.test = std::move(tt.test);
  fed.global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  return fed;
}

fl::FlConfig fast_cfg() {
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  return cfg;
}

// K = num_clients with constant durations reproduces the synchronous
// schedule exactly: every aggregation consumes one fresh update per client,
// in client order. Checked bitwise against run_round for both a plain and
// an MSE-weighted aggregator, with decay off and (since every staleness is
// 0, where the decay factor is exactly 1) with decay on.
TEST(AsyncRound, MatchesSyncWhenBufferEqualsClients) {
  struct Case {
    const char* aggregator;
    double alpha;
  };
  for (const Case& tc : {Case{"fedavg", 0.0}, Case{"adaptive", 0.0},
                         Case{"fedavg", 0.5}}) {
    fl::FlConfig cfg = fast_cfg();
    cfg.aggregator = tc.aggregator;
    cfg.async.buffer_size = 0;  // → num_clients
    cfg.async.duration_log_jitter = 0.0;
    cfg.async.staleness_alpha = tc.alpha;

    Fed fed_sync = make_fed(3, 300, 90, 211);
    fl::FederatedSim sync(fed_sync.global, fed_sync.parts, fed_sync.test,
                          cfg);
    Fed fed_async = make_fed(3, 300, 90, 211);
    fl::FederatedSim async(fed_async.global, fed_async.parts, fed_async.test,
                           cfg);

    const auto want = sync.run(3);
    const auto got = async.run_async(3);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(
          bits_equal(got[i].global_accuracy, want[i].global_accuracy))
          << tc.aggregator << " alpha=" << tc.alpha << " agg " << i;
      EXPECT_EQ(got[i].bytes_uplinked, want[i].bytes_uplinked);
      EXPECT_EQ(got[i].max_staleness, 0);
      EXPECT_EQ(got[i].updates_consumed, 3);
      EXPECT_EQ(got[i].dropped_updates, 0);
    }
    EXPECT_TRUE(snapshots_bitwise_equal(sync.global_model().snapshot(),
                                        async.global_model().snapshot()))
        << tc.aggregator << " alpha=" << tc.alpha;
  }
}

// The virtual clock, not the wall clock, orders completions: the whole
// async run — final parameters and every telemetry field — is bit-identical
// with 1, 2 and 8 threads, stragglers and stale updates included.
TEST(AsyncRound, DeterministicAcrossThreadCounts) {
  std::vector<std::vector<Tensor>> finals;
  std::vector<std::vector<fl::AsyncRoundResult>> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    Fed fed = make_fed(4, 400, 100, 223);
    fl::FlConfig cfg = fast_cfg();
    cfg.threads = threads;
    cfg.aggregator = "adaptive";
    cfg.async.buffer_size = 2;
    cfg.async.duration_log_jitter = 0.5;
    cfg.async.staleness_alpha = 0.5;
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
    results.push_back(sim.run_async(6));
    finals.push_back(sim.global_model().snapshot());
  }
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[i]));
    ASSERT_EQ(results[0].size(), results[i].size());
    for (std::size_t a = 0; a < results[0].size(); ++a) {
      EXPECT_TRUE(bits_equal(results[0][a].global_accuracy,
                             results[i][a].global_accuracy));
      EXPECT_TRUE(bits_equal(results[0][a].virtual_time,
                             results[i][a].virtual_time));
      EXPECT_TRUE(bits_equal(results[0][a].mean_staleness,
                             results[i][a].mean_staleness));
      EXPECT_EQ(results[0][a].max_staleness, results[i][a].max_staleness);
      EXPECT_EQ(results[0][a].bytes_uplinked, results[i][a].bytes_uplinked);
    }
  }
}

// With a small buffer and heterogeneous durations, fast clients lap slow
// ones: some consumed update must be stale, and the run must still finish
// the requested number of aggregations.
TEST(AsyncRound, StragglersProduceStaleUpdates) {
  Fed fed = make_fed(4, 200, 60, 227);
  fl::FlConfig cfg = fast_cfg();
  cfg.async.buffer_size = 2;
  cfg.async.duration_log_jitter = 1.0;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);

  // Record the (client, round) RNG steps the async run consumes.
  std::mutex mu;
  long max_async_round = -1;
  sim.set_client_update([&](std::size_t cid, nn::Model& model,
                            const data::Dataset& ds, long round) {
    {
      std::lock_guard<std::mutex> lock(mu);
      max_async_round = std::max(max_async_round, round);
    }
    fl::TrainOptions opts = cfg.local;
    opts.seed = mix_seed(cfg.seed, cid, static_cast<std::uint64_t>(round));
    fl::train_local(model, ds, opts);
  });

  const auto r = sim.run_async(8);
  ASSERT_EQ(r.size(), 8u);
  long max_staleness = 0;
  for (const auto& agg : r)
    max_staleness = std::max(max_staleness, agg.max_staleness);
  EXPECT_GE(max_staleness, 1);
  // Virtual time advances monotonically.
  for (std::size_t i = 1; i < r.size(); ++i)
    EXPECT_GE(r[i].virtual_time, r[i - 1].virtual_time);
  // Fast clients consumed task indices beyond the aggregation count; a
  // following synchronous round must draw strictly fresh RNG streams, not
  // reuse any (client, round) step the async run already trained with.
  const long max_seen_async = max_async_round;
  const auto next = sim.run_round();
  EXPECT_GT(next.round, max_seen_async);
}

// A deletion request arriving mid-buffer (built by the unlearning driver's
// make_async_deletion) must evict the client's pending/in-flight updates —
// they trained on the deleted rows — and retrain the client on its
// remaining data from its next download.
TEST(AsyncRound, DeletionMidBufferEvictsAndRetrains) {
  Fed fed = make_fed(3, 300, 60, 229);
  const long full_rows = fed.parts[0].size();
  fl::FlConfig cfg = fast_cfg();
  cfg.async.buffer_size = 3;
  cfg.async.duration_log_jitter = 0.0;  // everyone completes at t=1,2,3,...
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);

  // Record every local-training call: (client, rows trained on).
  std::mutex mu;
  std::vector<std::pair<std::size_t, long>> calls;
  sim.set_client_update([&](std::size_t cid, nn::Model& model,
                            const data::Dataset& ds, long round) {
    {
      std::lock_guard<std::mutex> lock(mu);
      calls.push_back({cid, ds.size()});
    }
    fl::TrainOptions opts = cfg.local;
    opts.seed = mix_seed(cfg.seed, cid, static_cast<std::uint64_t>(round));
    fl::train_local(model, ds, opts);
  });

  // Forget rows {0,1,2} of client 0 at virtual time 0.5 — before any
  // completion, so client 0's very first (in-flight) update is void and the
  // first buffer must wait for its retrained replacement.
  core::UnlearnRequest req;
  req.client_id = 0;
  req.rows = {0, 1, 2};
  auto plan = core::make_async_deletion(sim, req, 0.5);
  EXPECT_EQ(plan.removed.size(), 3);

  std::vector<fl::AsyncDeletion> dels;
  dels.push_back(std::move(plan.event));
  const auto r = sim.run_async(2, std::move(dels));
  ASSERT_EQ(r.size(), 2u);
  // Exactly one update (client 0's poisoned first task) was dropped.
  EXPECT_EQ(r.back().dropped_updates, 1);
  // The sim's view of client 0 is durably the remaining data.
  EXPECT_EQ(sim.client_data(0).size(), full_rows - 3);
  // Client 0 trained once on the full set (the voided task) and afterwards
  // only on the remaining rows; no aggregated update saw deleted data after
  // the trigger.
  long full_calls = 0, reduced_calls = 0;
  for (const auto& [cid, rows] : calls) {
    if (cid != 0) continue;
    if (rows == full_rows) ++full_calls;
    if (rows == full_rows - 3) ++reduced_calls;
  }
  EXPECT_EQ(full_calls, 0);  // the poisoned task is never even executed
  EXPECT_GE(reduced_calls, 1);

  // A second deletion for the same client within one run would have been
  // split from the same pre-run dataset and resurrect the first one's
  // deleted rows; run_async rejects it loudly. (Sequential deletions go in
  // separate runs, where the split sees the already-shrunk data.)
  core::UnlearnRequest req2;
  req2.client_id = 1;
  req2.rows = {0};
  std::vector<fl::AsyncDeletion> twice;
  twice.push_back(std::move(core::make_async_deletion(sim, req2, 1.0).event));
  twice.push_back(std::move(core::make_async_deletion(sim, req2, 2.0).event));
  EXPECT_THROW(sim.run_async(1, std::move(twice)), CheckError);
}

// Steady-state async aggregation touches the heap exactly zero times, like
// the pooled synchronous round.
TEST(AsyncRound, SteadyStateAllocatesNothing) {
  if (!alloc_stats::enabled())
    GTEST_SKIP() << "built without GOLDFISH_ALLOC_STATS";
  Fed fed = make_fed(3, 150, 60, 233);
  fl::FlConfig cfg = fast_cfg();
  cfg.local.batch_size = 25;
  cfg.async.buffer_size = 2;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  sim.run_async(3);  // warm-up: pool, arenas, recycler
  sim.run_async(3);
  const std::size_t before = alloc_stats::heap_allocations();
  sim.run_async(3);
  EXPECT_EQ(alloc_stats::heap_allocations() - before, 0u);
}

// The splitmix64-based (seed, client, round) mix has none of the old xor
// mix's collisions: the documented colliding pair draws distinct streams,
// and a dense grid of (client, round) pairs is collision-free.
TEST(MixSeed, DistinctStreamsForClientRoundPairs) {
  const std::uint64_t seed = 7;
  // The replaced mix was xor-linear in the round: client 0 at round K1^K2
  // and client 1 at round 0 drew the *same* stream.
  const auto old_mix = [seed](std::uint64_t c, std::uint64_t r) {
    return seed ^ (0x9E3779B9u * (c + 1)) ^ r;
  };
  const std::uint64_t collide_r =
      (0x9E3779B9u * 1ull) ^ (0x9E3779B9u * 2ull);
  EXPECT_EQ(old_mix(0, collide_r), old_mix(1, 0));  // the documented bug
  EXPECT_NE(mix_seed(seed, 0, collide_r), mix_seed(seed, 1, 0));

  std::vector<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 8; ++c)
    for (std::uint64_t r = 0; r < 64; ++r)
      seen.push_back(mix_seed(seed, c, r));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace goldfish
