// Distillation and confusion losses (Eq. 2–5 of the paper).
#pragma once

#include "losses/hard_loss.h"

namespace goldfish::losses {

/// Distillation loss (Eq. 5): L_d = −Σᵢ P_T(xᵢ)·log P_S(xᵢ), where both
/// confidence vectors are temperature-softened softmaxes (Eq. 3–4).
/// Returned value is the batch mean; the gradient is w.r.t. the *student*
/// logits ((P_S − P_T)/T per sample — the teacher is a constant).
LossResult distillation_loss(const Tensor& teacher_logits,
                             const Tensor& student_logits, float temperature);

/// Confusion loss (Eq. 2): L_c = (1/|D_f|)·Σⱼ √Var(M_S(xⱼ)), the mean
/// standard deviation of the student's predicted probability vector on the
/// removed data. Minimizing it pushes predictions on D_f towards the uniform
/// distribution, erasing any confident (e.g. backdoored) pattern.
/// Gradient is w.r.t. the student logits.
LossResult confusion_loss(const Tensor& student_logits);

}  // namespace goldfish::losses
