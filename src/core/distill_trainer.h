// The Goldfish procedure (Algorithm 1, lines 24–35): knowledge-distillation
// retraining of a student model against a fixed teacher, with the composite
// loss of Eq. 1–6, adaptive temperature (Eq. 11), and early termination by
// excess empirical risk (Eq. 7).
#pragma once

#include "core/adaptive_temperature.h"
#include "data/dataset.h"
#include "losses/goldfish_loss.h"
#include "nn/model.h"

namespace goldfish::core {

struct DistillOptions {
  long max_epochs = 5;    ///< n in Algorithm 1 (upper bound when early
                          ///< termination is enabled)
  long batch_size = 100;  ///< paper: B = 100
  float lr = 0.001f;      ///< paper: η = 0.001
  float momentum = 0.9f;  ///< paper: β = 0.9
  losses::GoldfishLossConfig loss;
  /// Extension module: adapt T to the client's deletion fraction (Eq. 11).
  bool use_adaptive_temperature = true;
  AdaptiveTemperature temperature;
  /// Optimization module: stop when excess empirical risk ≤ delta (Eq. 7).
  bool use_early_termination = true;
  float delta = 0.05f;
  std::uint64_t seed = 1;
};

struct DistillResult {
  std::vector<float> epoch_losses;  ///< student total loss per local epoch
  long epochs_run = 0;
  bool terminated_early = false;
  float final_excess_risk = 0.0f;
  float temperature_used = 0.0f;
};

/// Run the Goldfish local update. `teacher` provides soft targets (its
/// weights are never modified; non-const because forward passes mutate layer
/// caches). `reference_loss` is L(ω^{t−1}) for Eq. 7 — pass the teacher's
/// hard loss on d_r (helper below). `d_f` may be empty (normal clients,
/// Algorithm 1 line 32).
DistillResult goldfish_distill(nn::Model& student, nn::Model& teacher,
                               const data::Dataset& d_r,
                               const data::Dataset& d_f, float reference_loss,
                               const DistillOptions& opts);

/// L(ω^{t−1}): the previous global model's hard loss on the remaining data,
/// the reference point of the early-termination criterion.
float reference_loss_of(nn::Model& prev_global, const data::Dataset& d_r,
                        const DistillOptions& opts);

}  // namespace goldfish::core
