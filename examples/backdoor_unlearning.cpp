// Scenario example: surviving a sybil backdoor attack — the adversarial
// timeline end to end, on one event-driven engine run.
//
// A burst of sybil clients joins the federation sharing a heavily poisoned
// dataset (pixel-trigger backdoor → target class). Under plain fedavg the
// backdoor takes over within a few aggregations. The server then defends on
// the same timeline: it hot-swaps to coordinate-wise trimmed-mean and files
// deletion requests replacing the sybils' data with its clean remainder. An
// audit event samples the attack success rate and a membership-inference
// attack into every step of the telemetry stream — the printed curve shows
// the attack succeeding and then being contained.
//
// Containment is not removal: the backdoor is already in the weights, and
// robust aggregation only stops *new* poison. The finale is the paper's
// answer — Goldfish unlearning distills the contaminated model from a fresh
// init, with the poisoned rows as the forget set, and the ASR collapses
// while accuracy recovers.
//
// Run: ./build/examples/backdoor_unlearning
#include <iostream>
#include <memory>

#include "core/unlearner.h"
#include "data/backdoor.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "metrics/evaluation.h"
#include "metrics/report.h"
#include "nn/models.h"

int main() {
  using namespace goldfish;
  std::cout << "== Sybil backdoor vs robust aggregation + unlearning ==\n";

  constexpr long kHonest = 6;
  constexpr long kSybils = 3;
  constexpr double kDefenseTime = 5.5;
  constexpr long kAggregations = 10;

  // Federated dataset: kHonest honest clients plus one extra partition that
  // becomes the sybils' shared payload, 90% backdoor-poisoned.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 7, 700, 200));
  Rng rng(8);
  auto parts = data::partition_iid(tt.train, kHonest + 1, rng);
  data::Dataset sybil_clean = std::move(parts.back());
  parts.pop_back();

  data::BackdoorSpec attack;
  attack.target_label = 0;
  attack.patch = 4;
  auto poisoned = data::poison_dataset(sybil_clean, attack, 0.9f, rng);
  const data::Dataset probe = data::make_trigger_probe(tt.test, attack);
  std::cout << "sybil payload: " << poisoned.poisoned_indices.size() << " of "
            << sybil_clean.size() << " rows poisoned (target label "
            << attack.target_label << ")\n\n";

  Rng mrng(9);
  nn::Model fresh = nn::make_mlp(tt.train.geom, 48, 10, mrng);

  fl::FlConfig cfg;
  cfg.local.epochs = 4;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  cfg.seed = 10;
  cfg.robust.trim_fraction = 0.4;  // k = 3 per side at K = 9

  // The timeline: audit from the start, sybil burst at t=0.1, defense
  // (robust swap + deletion of the poisoned rows) at t=5.5.
  fl::Engine eng(fresh, parts, tt.test, cfg);
  fl::Scenario s;
  s.aggregations = kAggregations;
  s.staleness_alpha = 0.0;
  s.buffer = std::make_unique<fl::FixedBuffer>(0);  // K = active clients
  s.clock = std::make_unique<fl::VirtualClock>(cfg.seed, 1.0, 0.0);

  fl::AuditEvent audit;
  audit.time = 0.05;
  audit.probe = probe;
  audit.members = poisoned.poisoned;
  audit.nonmembers = tt.test;
  s.audits.push_back(std::move(audit));

  fl::SybilJoinEvent burst;
  burst.time = 0.1;
  burst.count = kSybils;
  burst.dataset = poisoned.poisoned;
  s.sybil_joins.push_back(std::move(burst));

  s.aggregator_swaps.push_back({kDefenseTime, "trimmed-mean"});
  for (long i = 0; i < kSybils; ++i) {
    fl::DeletionEvent del;
    del.time = kDefenseTime;
    del.client = parts.size() + static_cast<std::size_t>(i);
    del.new_data = sybil_clean;
    s.deletions.push_back(std::move(del));
  }

  std::cout << "step  t      aggregator     acc%    ASR%   MIA-AUC\n";
  eng.run(std::move(s), [&](const fl::StepResult& r) {
    std::cout << "  " << r.step << "   " << metrics::fmt(r.virtual_time)
              << "  " << r.aggregator
              << std::string(r.aggregator.size() < 13
                                 ? 13 - r.aggregator.size()
                                 : 1, ' ')
              << metrics::fmt(r.global_accuracy) << "  "
              << metrics::fmt(r.attack_success) << "  "
              << metrics::fmt(r.mia_auc) << "\n";
  });

  nn::Model contaminated = eng.global_model();
  const auto report = [&](const char* name, nn::Model& m) {
    std::cout << "  " << name << ": accuracy "
              << metrics::fmt(metrics::accuracy(m, tt.test)) << "%, ASR "
              << metrics::fmt(metrics::attack_success_rate(m, probe))
              << "%\n";
  };
  std::cout << "\nafter the timeline (attack contained, not removed):\n";
  report("global", contaminated);

  // The finale: Goldfish unlearning. The contaminated global is the
  // teacher; the federation is the post-attack one (sybils still holding
  // the poisoned payload) and the deletion requests name exactly the
  // poisoned rows as the forget set.
  std::vector<data::Dataset> federation = parts;
  std::vector<core::UnlearnRequest> requests;
  for (long i = 0; i < kSybils; ++i) {
    requests.push_back({federation.size(), poisoned.poisoned_indices});
    federation.push_back(poisoned.poisoned);
  }
  core::UnlearnConfig ucfg;
  ucfg.distill.max_epochs = 6;
  ucfg.distill.lr = 0.03f;
  ucfg.distill.use_early_termination = false;
  core::GoldfishUnlearner unlearner(contaminated, fresh, federation, tt.test,
                                    ucfg);
  unlearner.request_deletion(requests);
  std::cout << "\nGoldfish unlearning (distilling from fresh init):\n";
  for (const auto& round : unlearner.run(8))
    std::cout << "    distill round " << round.round + 1 << ": accuracy "
              << metrics::fmt(round.global_accuracy) << "%, epochs "
              << round.total_epochs_run << "\n";
  report("Goldfish (unlearned)", unlearner.global_model());

  std::cout << "\nexpected shape: ASR rockets under fedavg, plateaus once "
               "trimmed-mean + deletion land, and collapses (< 10%) after "
               "unlearning, with accuracy recovered.\n";
  return 0;
}
