file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_shard_deletion.dir/bench_fig7_shard_deletion.cpp.o"
  "CMakeFiles/bench_fig7_shard_deletion.dir/bench_fig7_shard_deletion.cpp.o.d"
  "bench_fig7_shard_deletion"
  "bench_fig7_shard_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_shard_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
