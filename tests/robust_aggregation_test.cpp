// Byzantine-robust aggregation: hand-computed krum / trimmed-mean / median /
// norm-clip fixtures, equivalence with the weight-based family in the
// degenerate configurations, poisoned-update suppression, staleness
// layering over robust bases, adversarial scenario events (label flips,
// backdoor injections, sybil bursts, audits) with thread-count determinism,
// and the end-to-end attack → robust-swap → deletion → audit golden
// timeline.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/unlearner.h"
#include "data/backdoor.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "metrics/evaluation.h"
#include "nn/models.h"

namespace goldfish {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool snapshots_bitwise_equal(const std::vector<Tensor>& a,
                             const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (!a[t].same_shape(b[t])) return false;
    if (std::memcmp(a[t].data(), b[t].data(),
                    a[t].numel() * sizeof(float)) != 0)
      return false;
  }
  return true;
}

/// A one-tensor update whose parameter vector is `vals`.
fl::ClientUpdate upd(const std::vector<float>& vals, long dataset_size = 1,
                     long staleness = 0) {
  Tensor t({static_cast<long>(vals.size())});
  for (std::size_t i = 0; i < vals.size(); ++i) t[i] = vals[i];
  fl::ClientUpdate u;
  u.params.push_back(std::move(t));
  u.dataset_size = dataset_size;
  u.staleness = staleness;
  return u;
}

// -- krum -------------------------------------------------------------------

TEST(RobustAggregation, KrumScoresMatchHandComputation) {
  // Four updates in R², f = 0: each score sums the n−f−2 = 2 smallest
  // squared distances to the others.
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({0.0f, 0.0f}));     // a
  ups.push_back(upd({0.3f, 0.0f}));     // b
  ups.push_back(upd({0.1f, 0.05f}));    // c
  ups.push_back(upd({10.0f, 10.0f}));   // adversary
  // Pairwise squared distances: ab=0.09, ac=0.0125, bc=0.0425; the
  // adversary's distances all exceed 194.
  const auto sc = fl::KrumAggregator::scores(ups, /*f=*/0);
  ASSERT_EQ(sc.size(), 4u);
  EXPECT_NEAR(sc[0], 0.0125 + 0.09, 1e-5);    // a: ac + ab
  EXPECT_NEAR(sc[1], 0.0425 + 0.09, 1e-5);    // b: bc + ab
  EXPECT_NEAR(sc[2], 0.0125 + 0.0425, 1e-5);  // c: ac + bc — the winner
  EXPECT_GT(sc[3], 300.0);                    // adversary
  // Classic krum (m = 1) returns the winner's parameters exactly.
  fl::KrumAggregator krum(/*f=*/0, /*m=*/1);
  const auto agg = krum.aggregate(ups);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_FLOAT_EQ(agg[0][0], 0.1f);
  EXPECT_FLOAT_EQ(agg[0][1], 0.05f);
}

TEST(RobustAggregation, KrumIgnoresArbitrarilyExtremeAdversary) {
  // The suppression property: one Byzantine update, no matter how extreme,
  // is never selected — the krum winner always comes from the honest
  // cluster, so the aggregate is bit-identical to one of the honest
  // updates.
  std::vector<fl::ClientUpdate> honest;
  honest.push_back(upd({1.0f, 2.0f}));
  honest.push_back(upd({1.1f, 2.1f}));
  honest.push_back(upd({0.9f, 1.9f}));
  honest.push_back(upd({1.05f, 2.05f}));
  std::vector<fl::ClientUpdate> attacked = honest;
  attacked.push_back(upd({1e8f, -1e8f}));
  fl::KrumAggregator krum(/*f=*/1, /*m=*/1);
  const auto defended = krum.aggregate(attacked);
  bool matches_honest = false;
  for (const fl::ClientUpdate& h : honest)
    matches_honest |= snapshots_bitwise_equal(defended, h.params);
  EXPECT_TRUE(matches_honest);
  // And the adversary's score dwarfs every honest one.
  const auto sc = fl::KrumAggregator::scores(attacked, /*f=*/1);
  for (std::size_t i = 0; i + 1 < sc.size(); ++i)
    EXPECT_LT(sc[i], sc.back() / 1e6);
}

TEST(RobustAggregation, KrumRejectsTooFewUpdates) {
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({0.0f}));
  ups.push_back(upd({1.0f}));
  ups.push_back(upd({2.0f}));
  // n = 3, f = 1 → needs n >= f+3 = 4.
  fl::KrumAggregator krum(/*f=*/1);
  EXPECT_THROW(krum.aggregate(ups), CheckError);
}

TEST(RobustAggregation, MultiKrumSelectingAllEqualsUniform) {
  // f = 0, m = n selects every update with weight 1 — the same borrowed-view
  // averaging path as UniformAggregator, bit for bit.
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({0.5f, -1.0f, 3.0f}));
  ups.push_back(upd({1.5f, 0.25f, -2.0f}));
  ups.push_back(upd({-0.5f, 2.0f, 0.125f}));
  ups.push_back(upd({2.5f, 1.0f, 1.0f}));
  fl::KrumAggregator all(/*f=*/0, /*m=*/4);
  fl::UniformAggregator uniform;
  EXPECT_TRUE(
      snapshots_bitwise_equal(all.aggregate(ups), uniform.aggregate(ups)));
}

// -- trimmed mean and median ------------------------------------------------

TEST(RobustAggregation, TrimmedMeanMatchesHandComputation) {
  // n = 5, β = 0.2 → k = 1 per side: coordinate 0 averages {2,3,4} → 3,
  // coordinate 1 averages {−1,0,1} → 0 (the 100s and −50 are trimmed).
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({1.0f, 100.0f}));
  ups.push_back(upd({2.0f, 0.0f}));
  ups.push_back(upd({3.0f, -50.0f}));
  ups.push_back(upd({4.0f, 1.0f}));
  ups.push_back(upd({100.0f, -1.0f}));
  fl::TrimmedMeanAggregator trim(0.2);
  const auto agg = trim.aggregate(ups);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_FLOAT_EQ(agg[0][0], 3.0f);
  EXPECT_FLOAT_EQ(agg[0][1], 0.0f);
}

TEST(RobustAggregation, TrimmedMeanWithZeroFractionMatchesUniform) {
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({0.25f, -3.0f}));
  ups.push_back(upd({1.75f, 2.0f}));
  ups.push_back(upd({-0.5f, 4.5f}));
  fl::TrimmedMeanAggregator trim(0.0);
  fl::UniformAggregator uniform;
  const auto a = trim.aggregate(ups);
  const auto b = uniform.aggregate(ups);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a[0].numel(); ++i)
    EXPECT_NEAR(a[0][i], b[0][i], 1e-6f);
}

TEST(RobustAggregation, TrimmedMeanBoundsPoisonedCoordinates) {
  // With one adversary and k >= 1, every aggregated coordinate stays inside
  // the honest values' range (Yin et al.'s coordinate-wise guarantee).
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({1.0f, -2.0f}));
  ups.push_back(upd({1.2f, -1.8f}));
  ups.push_back(upd({0.8f, -2.2f}));
  ups.push_back(upd({1.1f, -1.9f}));
  ups.push_back(upd({1e6f, -1e6f}));  // adversary
  fl::TrimmedMeanAggregator trim(0.2);
  const auto agg = trim.aggregate(ups);
  EXPECT_GE(agg[0][0], 0.8f);
  EXPECT_LE(agg[0][0], 1.2f);
  EXPECT_GE(agg[0][1], -2.2f);
  EXPECT_LE(agg[0][1], -1.8f);
}

TEST(RobustAggregation, MedianMatchesHandComputation) {
  std::vector<fl::ClientUpdate> odd;
  odd.push_back(upd({1.0f}));
  odd.push_back(upd({100.0f}));
  odd.push_back(upd({2.0f}));
  fl::MedianAggregator median;
  EXPECT_FLOAT_EQ(median.aggregate(odd)[0][0], 2.0f);

  std::vector<fl::ClientUpdate> even = odd;
  even.push_back(upd({3.0f}));
  // Even count: mean of the two central values (2 and 3).
  EXPECT_FLOAT_EQ(median.aggregate(even)[0][0], 2.5f);
}

TEST(RobustAggregation, MedianOfIdenticalUpdatesIsTheUpdate) {
  std::vector<fl::ClientUpdate> ups;
  for (int i = 0; i < 4; ++i) ups.push_back(upd({0.75f, -1.25f}));
  fl::MedianAggregator median;
  const auto agg = median.aggregate(ups);
  EXPECT_FLOAT_EQ(agg[0][0], 0.75f);
  EXPECT_FLOAT_EQ(agg[0][1], -1.25f);
}

// -- norm clipping ----------------------------------------------------------

TEST(RobustAggregation, NormClipScalesOversizedUpdates) {
  // A single update of norm 5 under clip 1: the aggregate is the update
  // scaled to norm 1.
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({3.0f, 4.0f}));
  fl::NormClipAggregator clip(1.0);
  EXPECT_DOUBLE_EQ(fl::NormClipAggregator::snapshot_norm(ups[0].params), 5.0);
  const auto agg = clip.aggregate(ups);
  EXPECT_NEAR(agg[0][0], 0.6f, 1e-6f);
  EXPECT_NEAR(agg[0][1], 0.8f, 1e-6f);
}

TEST(RobustAggregation, NormClipWithHugeThresholdMatchesUniformBitwise) {
  // No update reaches the threshold → every clip factor is exactly 1 and
  // the accumulation mirrors nn::weighted_average operation for operation.
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({0.5f, -1.0f, 3.0f}));
  ups.push_back(upd({1.5f, 0.25f, -2.0f}));
  ups.push_back(upd({-0.5f, 2.0f, 0.125f}));
  fl::NormClipAggregator clip(1e9);
  fl::UniformAggregator uniform;
  EXPECT_TRUE(
      snapshots_bitwise_equal(clip.aggregate(ups), uniform.aggregate(ups)));
}

TEST(RobustAggregation, NormClipBoundsAdversarialMass) {
  // The adversary's pull on the mean is bounded by C/n no matter its norm.
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({0.0f, 0.0f}));
  ups.push_back(upd({0.0f, 0.0f}));
  ups.push_back(upd({0.0f, 0.0f}));
  ups.push_back(upd({1e8f, 0.0f}));  // adversary
  fl::NormClipAggregator clip(2.0);
  const auto agg = clip.aggregate(ups);
  // Honest zeros contribute nothing; the adversary lands at C/n = 0.5.
  EXPECT_NEAR(agg[0][0], 0.5f, 1e-6f);
  EXPECT_FLOAT_EQ(agg[0][1], 0.0f);
}

// -- the seam: capabilities, weights(), staleness layering ------------------

TEST(RobustAggregation, RobustAggregatorsHaveNoScalarWeights) {
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({1.0f}));
  EXPECT_THROW(fl::TrimmedMeanAggregator(0.1).weights(ups), std::logic_error);
  EXPECT_THROW(fl::MedianAggregator().weights(ups), std::logic_error);
  EXPECT_THROW(fl::NormClipAggregator(1.0).weights(ups), std::logic_error);
  EXPECT_THROW(fl::KrumAggregator(0).weights(ups), std::logic_error);
}

TEST(RobustAggregation, ConstructorValidation) {
  EXPECT_THROW(fl::KrumAggregator(-1), CheckError);
  EXPECT_THROW(fl::KrumAggregator(0, 0), CheckError);
  EXPECT_THROW(fl::TrimmedMeanAggregator(0.5), CheckError);
  EXPECT_THROW(fl::TrimmedMeanAggregator(-0.1), CheckError);
  EXPECT_THROW(fl::NormClipAggregator(0.0), CheckError);
  EXPECT_THROW(fl::NormClipAggregator(-1.0), CheckError);
}

TEST(RobustAggregation, StalenessLayersOverRobustBases) {
  // Fresh updates (staleness 0) decay by exactly 1, so the wrapper must
  // reproduce the robust base bit for bit — the multiplier seam at work.
  std::vector<fl::ClientUpdate> ups;
  ups.push_back(upd({1.0f, 2.0f}, 1, 0));
  ups.push_back(upd({1.5f, 2.5f}, 1, 0));
  ups.push_back(upd({0.5f, 1.5f}, 1, 0));
  ups.push_back(upd({9.0f, -9.0f}, 1, 0));
  fl::StalenessAggregator wrapped(fl::make_aggregator("krum"), 0.5);
  fl::KrumAggregator base(/*f=*/1, /*m=*/1);
  EXPECT_TRUE(
      snapshots_bitwise_equal(wrapped.aggregate(ups), base.aggregate(ups)));
  EXPECT_EQ(wrapped.name(), "krum+staleness");
  // Capabilities compose: the wrapper keeps the base's robust flag and adds
  // the staleness requirement.
  EXPECT_TRUE(wrapped.capabilities().robust);
  EXPECT_TRUE(wrapped.capabilities().needs_staleness);

  // A stale adversary under trimmed-mean+staleness: survivors are weighted
  // by decay, so the stale honest update pulls less than a fresh one.
  std::vector<fl::ClientUpdate> mixed;
  mixed.push_back(upd({0.0f}, 1, 0));
  mixed.push_back(upd({0.0f}, 1, 0));
  mixed.push_back(upd({1.0f}, 1, 3));  // stale: decay (1+3)^-1 = 0.25
  fl::StalenessAggregator trim_stale(
      std::make_unique<fl::TrimmedMeanAggregator>(0.0), 1.0);
  // Weighted mean (0+0+0.25·1)/(1+1+0.25) = 0.111…, not the plain 1/3.
  EXPECT_NEAR(trim_stale.aggregate(mixed)[0][0], 0.25f / 2.25f, 1e-6f);
}

// -- adversarial scenario events --------------------------------------------

TEST(RobustAggregation, FlipLabelsIsAnInvolution) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 11, 60, 20));
  const std::vector<long> before = tt.train.labels;
  data::flip_labels(tt.train);
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(tt.train.labels[i], tt.train.num_classes - 1 - before[i]);
    changed |= tt.train.labels[i] != before[i];
  }
  EXPECT_TRUE(changed);
  data::flip_labels(tt.train);
  EXPECT_EQ(tt.train.labels, before);
}

struct AdversarialFed {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;
  data::BackdoorSpec spec;
  data::Dataset sybil_data;  ///< heavily poisoned shared sybil payload
  data::Dataset sybil_clean; ///< its clean remainder (the deletion payload)
  std::vector<std::size_t> poisoned_rows;  ///< D_f indices in sybil_data
  data::Dataset probe;
};

AdversarialFed make_adversarial_fed(long clients, long train_rows,
                                    long test_rows, long hidden,
                                    std::uint64_t seed) {
  auto tt = data::make_synthetic(data::default_spec(
      data::DatasetKind::Mnist, seed, train_rows, test_rows));
  Rng rng(seed + 1);
  AdversarialFed fed;
  // One extra partition becomes the sybils' shared local dataset.
  auto parts = data::partition_iid(tt.train, clients + 1, rng);
  fed.sybil_clean = std::move(parts.back());
  parts.pop_back();
  fed.parts = std::move(parts);
  fed.test = std::move(tt.test);
  fed.global = nn::make_mlp({1, 28, 28}, hidden, 10, rng);
  fed.spec.target_label = 0;
  fed.spec.patch = 4;
  auto poisoned = data::poison_dataset(fed.sybil_clean, fed.spec, 0.9f, rng);
  fed.sybil_data = std::move(poisoned.poisoned);
  fed.poisoned_rows = std::move(poisoned.poisoned_indices);
  fed.probe = data::make_trigger_probe(fed.test, fed.spec);
  return fed;
}

/// The attack → robust-swap → deletion → audit timeline at test scale.
/// `swap_to` is the robust strategy the server hot-swaps to mid-run.
fl::Scenario adversarial_timeline(const AdversarialFed& fed, long sybils,
                                  long aggregations, double defense_time,
                                  const std::string& swap_to) {
  fl::Scenario s;
  s.aggregations = aggregations;
  s.staleness_alpha = 0.0;
  // Audit from the start: every step carries the ASR/MIA curve.
  fl::AuditEvent audit;
  audit.time = 0.05;
  audit.probe = fed.probe;
  audit.members = fed.sybil_data;
  audit.nonmembers = fed.test;
  s.audits.push_back(std::move(audit));
  // The sybil burst joins just after the honest cohort starts.
  fl::SybilJoinEvent burst;
  burst.time = 0.1;
  burst.count = static_cast<std::size_t>(sybils);
  burst.dataset = fed.sybil_data;
  s.sybil_joins.push_back(std::move(burst));
  // Defense: swap to the robust aggregator and unlearn the sybils' poisoned
  // rows (their datasets are replaced by the clean remainder).
  s.aggregator_swaps.push_back({defense_time, swap_to});
  for (long i = 0; i < sybils; ++i) {
    fl::DeletionEvent del;
    del.time = defense_time;
    del.client = fed.parts.size() + static_cast<std::size_t>(i);
    del.new_data = fed.sybil_clean;
    s.deletions.push_back(std::move(del));
  }
  return s;
}

TEST(AdversarialScenario, EventsAreDeterministicAcrossThreadCounts) {
  // Every adversarial event kind on one timeline — label flip, backdoor
  // injection, sybil burst, audit, robust swap, deletion — must be
  // bit-identical at 1, 2 and 8 threads: Phase A plans on the virtual
  // clock, Phase B only respects data dependencies.
  std::vector<std::vector<fl::StepResult>> streams;
  std::vector<std::vector<Tensor>> finals;
  for (std::size_t threads : {1u, 2u, 8u}) {
    auto tt = data::make_synthetic(
        data::default_spec(data::DatasetKind::Mnist, 17, 120, 40));
    Rng rng(18);
    auto parts = data::partition_iid(tt.train, 4, rng);
    nn::Model global = nn::make_mlp({1, 28, 28}, 12, 10, rng);
    fl::FlConfig cfg;
    cfg.local.epochs = 1;
    cfg.local.batch_size = 30;
    cfg.local.lr = 0.05f;
    cfg.threads = threads;
    cfg.seed = 19;
    data::BackdoorSpec spec;
    spec.target_label = 1;
    spec.patch = 3;

    fl::Engine eng(global, parts, tt.test, cfg);
    fl::Scenario s = eng.async_scenario(6);
    s.staleness_alpha = 0.0;
    fl::AuditEvent audit;
    audit.time = 0.0;
    audit.probe = data::make_trigger_probe(tt.test, spec);
    s.audits.push_back(std::move(audit));
    s.label_flips.push_back({1.2, 0});
    fl::BackdoorInjectEvent inject;
    inject.time = 1.5;
    inject.client = 1;
    inject.spec = spec;
    inject.fraction = 0.5f;
    s.backdoors.push_back(std::move(inject));
    fl::SybilJoinEvent burst;
    burst.time = 0.6;
    burst.count = 2;
    burst.dataset = parts[2];
    s.sybil_joins.push_back(std::move(burst));
    s.aggregator_swaps.push_back({2.5, "median"});
    fl::DeletionEvent del;
    del.time = 3.0;
    del.client = 0;
    del.new_data = parts[0].subset({0, 1, 2, 3, 4});
    s.deletions.push_back(std::move(del));

    streams.push_back(eng.collect(std::move(s)));
    finals.push_back(eng.global_model().snapshot());
  }
  for (std::size_t v = 1; v < streams.size(); ++v) {
    ASSERT_EQ(streams[v].size(), streams[0].size());
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      const fl::StepResult& a = streams[0][i];
      const fl::StepResult& b = streams[v][i];
      EXPECT_TRUE(bits_equal(a.global_accuracy, b.global_accuracy));
      EXPECT_TRUE(bits_equal(a.virtual_time, b.virtual_time));
      EXPECT_EQ(a.has_audit, b.has_audit);
      EXPECT_TRUE(bits_equal(a.attack_success, b.attack_success));
      EXPECT_TRUE(bits_equal(a.mia_auc, b.mia_auc));
      EXPECT_TRUE(bits_equal(a.mia_accuracy, b.mia_accuracy));
      EXPECT_EQ(a.aggregator, b.aggregator);
      EXPECT_EQ(a.updates_consumed, b.updates_consumed);
      EXPECT_EQ(a.dropped_updates, b.dropped_updates);
      EXPECT_EQ(a.active_clients, b.active_clients);
    }
    EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[v]));
  }
  // The timeline exercised what it claims: audits ran, the swap landed.
  ASSERT_FALSE(streams[0].empty());
  EXPECT_TRUE(streams[0].front().has_audit);
  EXPECT_EQ(streams[0].back().aggregator, "median");
}

TEST(AdversarialScenario, LabelFlipOnlyPoisonsTasksStartedAfterTheEvent) {
  // Two 2-round runs: one clean, one with a flip at t = 0.5 — mid-flight
  // for round 1 (started at t = 0), before round 2 starts (t = 1). Round 1
  // must be bit-identical (in-flight tasks stay honest), round 2 must
  // diverge (flipped epoch), and the flip must commit durably.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 23, 80, 30));
  Rng rng(24);
  auto parts = data::partition_iid(tt.train, 2, rng);
  nn::Model global = nn::make_mlp({1, 28, 28}, 8, 10, rng);
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 40;
  cfg.local.lr = 0.05f;
  cfg.seed = 25;

  const std::vector<long> labels_before = parts[0].labels;
  fl::Engine clean_eng(global, parts, tt.test, cfg);
  const auto clean = clean_eng.collect(clean_eng.sync_scenario(2, false));

  fl::Engine flip_eng(global, parts, tt.test, cfg);
  fl::Scenario s = flip_eng.sync_scenario(2, false);
  s.label_flips.push_back({0.5, 0});
  const auto flipped = flip_eng.collect(std::move(s));

  ASSERT_EQ(clean.size(), 2u);
  ASSERT_EQ(flipped.size(), 2u);
  // Round 1 trained on the honest data in both runs.
  EXPECT_TRUE(
      bits_equal(clean[0].global_accuracy, flipped[0].global_accuracy));
  // Round 2 trained on the flipped epoch: the models diverge.
  EXPECT_FALSE(snapshots_bitwise_equal(clean_eng.global_model().snapshot(),
                                       flip_eng.global_model().snapshot()));
  // Durable: the engine's copy of client 0's data is now flipped.
  const std::vector<long>& after = flip_eng.client_data(0).labels;
  ASSERT_EQ(after.size(), labels_before.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_EQ(after[i], parts[0].num_classes - 1 - labels_before[i]);
}

TEST(AdversarialScenario, ValidationRejectsMalformedEvents) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 29, 60, 20));
  Rng rng(30);
  auto parts = data::partition_iid(tt.train, 2, rng);
  nn::Model global = nn::make_mlp({1, 28, 28}, 8, 10, rng);
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 30;
  cfg.local.lr = 0.05f;
  fl::Engine eng(global, parts, tt.test, cfg);

  {
    fl::Scenario s = eng.sync_scenario(1, false);
    s.label_flips.push_back({0.5, 7});  // unknown client
    EXPECT_THROW(eng.collect(std::move(s)), CheckError);
  }
  {
    fl::Scenario s = eng.sync_scenario(1, false);
    fl::BackdoorInjectEvent ev;
    ev.client = 0;
    ev.fraction = 0.0f;  // poisons nothing
    s.backdoors.push_back(std::move(ev));
    EXPECT_THROW(eng.collect(std::move(s)), CheckError);
  }
  {
    fl::Scenario s = eng.sync_scenario(1, false);
    fl::SybilJoinEvent ev;
    ev.count = 0;  // empty burst
    ev.dataset = parts[0];
    s.sybil_joins.push_back(std::move(ev));
    EXPECT_THROW(eng.collect(std::move(s)), CheckError);
  }
  {
    fl::Scenario s = eng.sync_scenario(1, false);
    fl::AuditEvent ev;  // no probe set
    s.audits.push_back(std::move(ev));
    EXPECT_THROW(eng.collect(std::move(s)), CheckError);
  }
  {
    fl::Scenario s = eng.sync_scenario(1, false);
    fl::AuditEvent ev;
    ev.probe = parts[0];
    ev.members = parts[0];  // members without nonmembers
    s.audits.push_back(std::move(ev));
    EXPECT_THROW(eng.collect(std::move(s)), CheckError);
  }
}

// -- the golden timeline ----------------------------------------------------

TEST(AdversarialGolden, AttackSwapDeletionAuditTimeline) {
  // The acceptance scenario, end to end: a sybil backdoor burst
  // contaminates fedavg; the server swaps to trimmed-mean and deletes the
  // sybils' poisoned rows (both on the scenario timeline, audited every
  // step, bit-identical at 1, 2 and 8 threads); then Goldfish unlearning
  // distills the contaminated model from a fresh init — the backdoor
  // collapses below 10% ASR while accuracy recovers.
  AdversarialFed fed = make_adversarial_fed(/*clients=*/6, /*train_rows=*/700,
                                            /*test_rows=*/200, /*hidden=*/48,
                                            /*seed=*/41);
  std::vector<std::vector<fl::StepResult>> streams;
  std::vector<std::vector<Tensor>> finals;
  for (std::size_t threads : {1u, 2u, 8u}) {
    fl::FlConfig cfg;
    cfg.local.epochs = 4;
    cfg.local.batch_size = 50;
    cfg.local.lr = 0.05f;
    cfg.threads = threads;
    cfg.seed = 42;
    cfg.robust.trim_fraction = 0.4;  // 3 sybils of 9: trim must cover 1/3
    fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
    fl::Scenario s = adversarial_timeline(fed, /*sybils=*/3,
                                          /*aggregations=*/10,
                                          /*defense_time=*/5.5,
                                          "trimmed-mean");
    s.buffer = std::make_unique<fl::FixedBuffer>(0);  // K = active clients
    s.clock = std::make_unique<fl::VirtualClock>(cfg.seed, 1.0, 0.0);
    streams.push_back(eng.collect(std::move(s)));
    finals.push_back(eng.global_model().snapshot());
  }
  for (std::size_t v = 1; v < streams.size(); ++v) {
    ASSERT_EQ(streams[v].size(), streams[0].size());
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      EXPECT_TRUE(bits_equal(streams[0][i].global_accuracy,
                             streams[v][i].global_accuracy));
      EXPECT_TRUE(bits_equal(streams[0][i].attack_success,
                             streams[v][i].attack_success));
      EXPECT_TRUE(bits_equal(streams[0][i].mia_auc, streams[v][i].mia_auc));
    }
    EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[v]));
  }

  const std::vector<fl::StepResult>& run = streams[0];
  ASSERT_EQ(run.size(), 10u);
  double peak_asr = 0.0;
  for (const fl::StepResult& r : run) {
    ASSERT_TRUE(r.has_audit);
    peak_asr = std::max(peak_asr, r.attack_success);
  }
  // The attack works under fedavg...
  EXPECT_GT(peak_asr, 40.0);
  EXPECT_EQ(run.front().aggregator, "fedavg");
  // ...and the swap lands on the timeline.
  EXPECT_EQ(run.back().aggregator, "trimmed-mean");

  // Phase 2 — Goldfish unlearning: the contaminated global becomes the
  // teacher, the federation is the post-attack one (sybils still holding
  // their poisoned data), and the deletion request names exactly the
  // poisoned rows.
  nn::Model contaminated = fed.global;
  contaminated.load(finals[0]);
  const double asr_before =
      metrics::attack_success_rate(contaminated, fed.probe);
  EXPECT_GT(asr_before, 40.0);

  std::vector<data::Dataset> federation = fed.parts;
  std::vector<core::UnlearnRequest> requests;
  for (std::size_t i = 0; i < 3; ++i) {
    requests.push_back({federation.size(), fed.poisoned_rows});
    federation.push_back(fed.sybil_data);
  }
  core::UnlearnConfig ucfg;
  ucfg.distill.max_epochs = 6;
  ucfg.distill.lr = 0.03f;
  ucfg.distill.use_early_termination = false;
  ucfg.seed = 43;
  core::GoldfishUnlearner ul(contaminated, fed.global, federation, fed.test,
                             ucfg);
  ul.request_deletion(requests);
  ul.run(8);

  // The audit after unlearning: backdoor below 10%, model still useful.
  const double asr_after =
      metrics::attack_success_rate(ul.global_model(), fed.probe);
  EXPECT_LT(asr_after, 10.0);
  EXPECT_GT(metrics::accuracy(ul.global_model(), fed.test), 45.0);
}

}  // namespace
}  // namespace goldfish
