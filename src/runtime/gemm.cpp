#include "runtime/gemm.h"

#include <algorithm>
#include <vector>

#include "runtime/scheduler.h"

namespace goldfish::runtime {

namespace {

// Microkernel tile, sized so the accumulator block fills most of the
// vector register file of the widest ISA the compiler targets: 8×32 under
// AVX-512 (16 of 32 zmm accumulators), 6×16 under AVX/AVX2 (12 of 16 ymm),
// 4×8 for plain SSE (8 of 16 xmm).
#if defined(__AVX512F__)
constexpr long MR = 8, NR = 32;
#elif defined(__AVX2__) || defined(__AVX__)
constexpr long MR = 6, NR = 16;
#else
constexpr long MR = 4, NR = 8;
#endif
constexpr long KC = 256;       // inner-dimension slice (packed panels in L1/L2)
constexpr long MC = MR * 16;   // row panel height per parallel task
constexpr long NC = NR * 64;   // column panel width (packed B slice in L2/L3)

// Below this flop count the packing and scheduling overhead dominates;
// run the packed loop serially on the calling thread.
constexpr long kParallelFlops = 1L << 18;

inline float elem_a(const float* A, long lda, bool trans, long i, long p) {
  return trans ? A[p * lda + i] : A[i * lda + p];
}

inline float elem_b(const float* B, long ldb, bool trans, long p, long j) {
  return trans ? B[j * ldb + p] : B[p * ldb + j];
}

/// Pack op(A)[i0:i0+mc, p0:p0+kc] into MR-tall micro-panels: panel ir holds
/// kc groups of MR consecutive row elements, zero-padded past mc.
void pack_a(const float* A, long lda, bool trans, long i0, long mc, long p0,
            long kc, float* dst) {
  for (long ir = 0; ir < mc; ir += MR) {
    const long mr = std::min(MR, mc - ir);
    for (long p = 0; p < kc; ++p) {
      for (long i = 0; i < mr; ++i)
        dst[i] = elem_a(A, lda, trans, i0 + ir + i, p0 + p);
      for (long i = mr; i < MR; ++i) dst[i] = 0.0f;
      dst += MR;
    }
  }
}

/// Pack op(B)[p0:p0+kc, j0:j0+nc] into NR-wide micro-panels: panel jr holds
/// kc groups of NR consecutive column elements, zero-padded past nc.
void pack_b(const float* B, long ldb, bool trans, long p0, long kc, long j0,
            long nc, float* dst) {
  for (long jr = 0; jr < nc; jr += NR) {
    const long nr = std::min(NR, nc - jr);
    for (long p = 0; p < kc; ++p) {
      for (long j = 0; j < nr; ++j)
        dst[j] = elem_b(B, ldb, trans, p0 + p, j0 + jr + j);
      for (long j = nr; j < NR; ++j) dst[j] = 0.0f;
      dst += NR;
    }
  }
}

// Register-tiled microkernel: acc(MR×NR) = Σ_p Ap[p]·Bp[p] over one packed
// panel pair, then accumulate the valid mr×nr region into C. Written with
// GCC/Clang vector extensions because the auto-vectorizer reliably fails
// to promote a scalar float acc[MR][NR] into full-width registers (it
// picked 128-bit lanes and spilled); an explicit vector accumulator block
// pins both the width and the register residency.
#if defined(__AVX__) || defined(__AVX512F__)

#if defined(__AVX512F__)
typedef float vecf __attribute__((vector_size(64), aligned(4)));
#else
typedef float vecf __attribute__((vector_size(32), aligned(4)));
#endif
constexpr long VL = static_cast<long>(sizeof(vecf) / sizeof(float));
static_assert(NR == 2 * VL, "microkernel assumes two vectors per row");

void micro_kernel(long kc, const float* Ap, const float* Bp, float* C,
                  long ldc, long mr, long nr) {
  vecf acc0[MR] = {};
  vecf acc1[MR] = {};
  for (long p = 0; p < kc; ++p) {
    const vecf b0 = *reinterpret_cast<const vecf*>(Bp + p * NR);
    const vecf b1 = *reinterpret_cast<const vecf*>(Bp + p * NR + VL);
    const float* a = Ap + p * MR;
    for (long i = 0; i < MR; ++i) {  // constant bound → fully unrolled
      acc0[i] += a[i] * b0;          // scalar a[i] splats across the lanes
      acc1[i] += a[i] * b1;
    }
  }
  if (mr == MR && nr == NR) {
    for (long i = 0; i < MR; ++i) {
      vecf* c = reinterpret_cast<vecf*>(C + i * ldc);
      c[0] += acc0[i];
      c[1] += acc1[i];
    }
  } else {
    for (long i = 0; i < mr; ++i) {
      const float* row0 = reinterpret_cast<const float*>(&acc0[i]);
      const float* row1 = reinterpret_cast<const float*>(&acc1[i]);
      for (long j = 0; j < nr; ++j)
        C[i * ldc + j] += j < VL ? row0[j] : row1[j - VL];
    }
  }
}

#else  // scalar fallback (no AVX): small tile, plain float accumulators

void micro_kernel(long kc, const float* Ap, const float* Bp, float* C,
                  long ldc, long mr, long nr) {
  float acc[MR][NR] = {};
  for (long p = 0; p < kc; ++p) {
    const float* b = Bp + p * NR;
    const float* a = Ap + p * MR;
    for (long i = 0; i < MR; ++i) {
      const float ai = a[i];
      for (long j = 0; j < NR; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (long i = 0; i < mr; ++i)
    for (long j = 0; j < nr; ++j) C[i * ldc + j] += acc[i][j];
}

#endif

}  // namespace

void sgemm(bool transa, bool transb, long m, long n, long k, const float* A,
           long lda, const float* B, long ldb, float* C, long ldc,
           Scheduler* sched) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (sched == nullptr) sched = &Scheduler::global();
  const bool parallel = m * n * k >= kParallelFlops;

  std::vector<float> bp(static_cast<std::size_t>(
      ((std::min(n, NC) + NR - 1) / NR) * NR * std::min(k, KC)));

  for (long jc = 0; jc < n; jc += NC) {
    const long nc = std::min(NC, n - jc);
    for (long pc = 0; pc < k; pc += KC) {
      const long kc = std::min(KC, k - pc);
      pack_b(B, ldb, transb, pc, kc, jc, nc, bp.data());

      const long num_row_panels = (m + MC - 1) / MC;
      if (num_row_panels > 1) {
        // Tall C: split row panels across the pool (each task packs its
        // own A panel). Both branches reduce k in the same fixed order,
        // so the branch choice never affects the result.
        const auto row_panel = [&](long lo, long hi) {
          std::vector<float> ap(static_cast<std::size_t>(MC * kc));
          for (long panel = lo; panel < hi; ++panel) {
            const long ic = panel * MC;
            const long mc = std::min(MC, m - ic);
            pack_a(A, lda, transa, ic, mc, pc, kc, ap.data());
            for (long jr = 0; jr < nc; jr += NR) {
              const float* bpanel = bp.data() + (jr / NR) * kc * NR;
              for (long ir = 0; ir < mc; ir += MR) {
                micro_kernel(kc, ap.data() + (ir / MR) * kc * MR, bpanel,
                             C + (ic + ir) * ldc + jc + jr, ldc,
                             std::min(MR, mc - ir), std::min(NR, nc - jr));
              }
            }
          }
        };
        if (parallel) {
          sched->parallel_for(num_row_panels, row_panel, /*grain=*/1);
        } else {
          row_panel(0, num_row_panels);
        }
      } else {
        // Short-fat C (m ≤ MC — conv forward is outC × N·oh·ow): a single
        // row panel would serialize everything, so pack A once and split
        // the NR-wide column tiles across the pool instead.
        std::vector<float> ap(static_cast<std::size_t>(MC * kc));
        pack_a(A, lda, transa, 0, m, pc, kc, ap.data());
        const long num_col_tiles = (nc + NR - 1) / NR;
        const auto col_tiles = [&](long lo, long hi) {
          for (long tile = lo; tile < hi; ++tile) {
            const long jr = tile * NR;
            const float* bpanel = bp.data() + tile * kc * NR;
            for (long ir = 0; ir < m; ir += MR) {
              micro_kernel(kc, ap.data() + (ir / MR) * kc * MR, bpanel,
                           C + ir * ldc + jc + jr, ldc,
                           std::min(MR, m - ir), std::min(NR, nc - jr));
            }
          }
        };
        if (parallel && num_col_tiles > 1) {
          sched->parallel_for(num_col_tiles, col_tiles, /*grain=*/4);
        } else {
          col_tiles(0, num_col_tiles);
        }
      }
    }
  }
}

}  // namespace goldfish::runtime
