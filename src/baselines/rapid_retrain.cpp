#include "baselines/rapid_retrain.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace goldfish::baselines {

std::vector<Tensor> diagonal_fim(nn::Model& model, const data::Dataset& ds,
                                 const losses::HardLoss& loss,
                                 long batch_size) {
  GOLDFISH_CHECK(!ds.empty(), "FIM over an empty dataset");
  model.zero_grad();
  auto params = model.params();
  std::vector<Tensor> fim;
  fim.reserve(params.size());
  for (const nn::ParamRef& p : params)
    fim.push_back(Tensor::zeros(p.value->shape()));

  long batches = 0;
  const long n = ds.size();
  for (long lo = 0; lo < n; lo += batch_size) {
    const long hi = std::min(n, lo + batch_size);
    std::vector<std::size_t> idx;
    for (long i = lo; i < hi; ++i) idx.push_back(std::size_t(i));
    auto [x, y] = ds.batch(idx);
    const Tensor& logits = model.forward(x, /*train=*/true);
    losses::LossResult r = loss.eval(logits, y);
    model.backward(r.grad_logits);
    // Accumulate squared gradients, then clear for the next batch.
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (params[i].grad == nullptr) continue;
      const Tensor& g = *params[i].grad;
      Tensor& f = fim[i];
      for (std::size_t j = 0; j < g.numel(); ++j) f[j] += g[j] * g[j];
      params[i].grad->zero();
    }
    ++batches;
  }
  for (Tensor& f : fim) f *= (1.0f / static_cast<float>(batches));
  return fim;
}

namespace {

/// Per-coordinate preconditioner p = clamp(mean(F̂+λ)/(F̂ᵢᵢ+λ), 1/boost, boost):
/// flat curvature directions get amplified steps, sharp ones damped — the
/// practical effect of the natural-gradient approximation.
std::vector<Tensor> preconditioner_from_fim(const std::vector<Tensor>& fim,
                                            float damping, float max_boost) {
  double mean = 0.0;
  std::size_t count = 0;
  for (const Tensor& f : fim) {
    for (std::size_t j = 0; j < f.numel(); ++j) mean += f[j];
    count += f.numel();
  }
  mean = mean / double(count) + damping;

  std::vector<Tensor> pre;
  pre.reserve(fim.size());
  for (const Tensor& f : fim) {
    Tensor p(f.shape());
    for (std::size_t j = 0; j < f.numel(); ++j) {
      const float raw = static_cast<float>(mean) / (f[j] + damping);
      p[j] = std::clamp(raw, 1.0f / max_boost, max_boost);
    }
    pre.push_back(std::move(p));
  }
  return pre;
}

/// Local training with a per-coordinate preconditioned SGD step.
void train_preconditioned(nn::Model& model, const data::Dataset& ds,
                          const fl::TrainOptions& opts,
                          const std::vector<Tensor>& pre) {
  auto loss = losses::make_hard_loss(opts.loss);
  Rng rng(opts.seed);
  auto params = model.params();
  GOLDFISH_CHECK(params.size() == pre.size(), "preconditioner layout");
  std::vector<Tensor> velocity;
  velocity.reserve(params.size());
  for (const nn::ParamRef& p : params)
    velocity.push_back(Tensor::zeros(p.value->shape()));

  for (long e = 0; e < opts.epochs; ++e) {
    data::BatchIterator it(ds, opts.batch_size, rng);
    for (std::size_t b = 0; b < it.num_batches(); ++b) {
      auto [x, y] = ds.batch(it.batch_indices(b));
      const Tensor& logits = model.forward(x, /*train=*/true);
      losses::LossResult r = loss->eval(logits, y);
      model.backward(r.grad_logits);
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i].grad == nullptr) continue;
        Tensor& v = velocity[i];
        float* wd = params[i].value->data();
        const float* gd = params[i].grad->data();
        const float* pd = pre[i].data();
        for (std::size_t j = 0; j < v.numel(); ++j) {
          v[j] = opts.momentum * v[j] + gd[j] * pd[j];
          wd[j] -= opts.lr * v[j];
        }
        params[i].grad->zero();
      }
    }
  }
}

}  // namespace

std::vector<fl::RoundResult> rapid_retrain(
    const nn::Model& fresh_init, nn::Model& trained_model,
    std::vector<data::Dataset> remaining, data::Dataset server_test,
    const RapidRetrainConfig& cfg, long rounds, nn::Model* model_out) {
  // Server-side curvature capture: pool the remaining data the clients hold.
  // (In deployment each client would upload its local FIM; pooling is
  // equivalent for the diagonal empirical Fisher up to batch composition.)
  data::Dataset pooled;
  for (const data::Dataset& d : remaining)
    pooled = data::Dataset::concat(pooled, d);
  const auto hard = losses::make_hard_loss(cfg.fl.local.loss);
  const std::vector<Tensor> fim =
      diagonal_fim(trained_model, pooled, *hard, cfg.fl.local.batch_size);
  const std::vector<Tensor> pre =
      preconditioner_from_fim(fim, cfg.damping, cfg.max_boost);

  fl::FederatedSim sim(fresh_init, std::move(remaining),
                       std::move(server_test), cfg.fl);
  sim.set_client_update([&](std::size_t cid, nn::Model& local,
                            const data::Dataset& ds, long round) {
    fl::TrainOptions opts = cfg.fl.local;
    opts.seed = cfg.fl.seed ^ (0xB2B2ull * (cid + 1)) ^
                static_cast<std::uint64_t>(round);
    train_preconditioned(local, ds, opts, pre);
  });
  std::vector<fl::RoundResult> results = sim.run(rounds);
  if (model_out != nullptr) *model_out = sim.global_model();
  return results;
}

}  // namespace goldfish::baselines
