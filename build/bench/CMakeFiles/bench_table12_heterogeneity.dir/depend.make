# Empty dependencies file for bench_table12_heterogeneity.
# This may be replaced when dependencies are built.
