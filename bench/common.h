// Shared experiment harness for the bench binaries.
//
// Every bench regenerates one table or figure of the paper. Two scales:
//   * quick (default): small synthetic datasets and lighter architectures so
//     the full bench suite finishes in minutes on a laptop;
//   * full (GOLDFISH_SCALE=full): the paper's architectures (LeNet-5,
//     modified LeNet-5, ResNet-32/56) and 4× data/rounds.
// The *shape* of every result (who wins, where curves cross) is stable
// across scales; see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <sys/stat.h>

#include "baselines/incompetent_teacher.h"
#include "baselines/rapid_retrain.h"
#include "baselines/retrain_scratch.h"
#include "core/unlearner.h"
#include "data/backdoor.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/divergence.h"
#include "metrics/evaluation.h"
#include "metrics/report.h"
#include "nn/models.h"

namespace goldfish::bench {

/// Process peak resident set size (VmHWM) in bytes, read from
/// /proc/self/status — the OS-level counterpart of the population store's
/// own resident_bytes accounting. 0 where procfs is unavailable, so gates
/// built on it must pair with the store counters rather than replace them.
inline std::size_t process_peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr)
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  std::fclose(f);
  return kb * 1024;
}

/// Where CSV outputs land (next to the binary's working directory).
inline std::string csv_dir() {
  static const std::string dir = [] {
    ::mkdir("bench_results", 0755);
    return std::string("bench_results");
  }();
  return dir;
}

/// Per-dataset experiment profile.
struct DatasetProfile {
  data::DatasetKind kind;
  std::string arch;        // architecture at this scale
  long train_size;         // total federated training set
  long test_size;
  long clients = 3;
  long fl_rounds;          // original federated training rounds
  long local_epochs = 3;
  float lr = 0.05f;
  long batch = 50;
};

/// Profiles per dataset. Quick scale trades the paper's exact conv
/// architectures for small ones; full scale uses the paper's models.
inline DatasetProfile profile(data::DatasetKind kind) {
  const bool full = metrics::full_scale();
  DatasetProfile p;
  p.kind = kind;
  switch (kind) {
    case data::DatasetKind::Mnist:
    case data::DatasetKind::FashionMnist:
      p.arch = full ? "lenet5" : "mlp64";
      p.train_size = full ? 2400 : 600;
      p.test_size = full ? 600 : 200;
      p.fl_rounds = full ? 10 : 6;
      break;
    case data::DatasetKind::Cifar10:
      p.arch = full ? "modified_lenet5" : "mlp96";
      p.train_size = full ? 1800 : 600;
      p.test_size = full ? 500 : 200;
      p.fl_rounds = full ? 10 : 6;
      break;
    case data::DatasetKind::Cifar100:
      p.arch = full ? "resnet56" : "mlp128";
      p.train_size = full ? 1500 : 800;
      p.test_size = full ? 500 : 250;
      p.fl_rounds = full ? 10 : 8;
      p.lr = 0.05f;
      break;
  }
  return p;
}

/// A fully prepared backdoor-unlearning scenario: federated training data
/// (client 0 poisoned), the contaminated global model, the clean test set
/// and the trigger probe.
struct Scenario {
  DatasetProfile prof;
  data::TrainTest tt;
  std::vector<data::Dataset> parts;
  std::vector<std::size_t> poisoned_rows;  // rows of client 0
  data::BackdoorSpec spec;
  data::Dataset probe;
  nn::Model fresh;    // ω0
  nn::Model trained;  // contaminated global model ("origin")

  /// Remaining/removed split of the victim client.
  std::vector<data::Dataset> remaining() const {
    std::vector<data::Dataset> r = parts;
    r[0] = parts[0].subset(kept_rows());
    return r;
  }
  std::vector<data::Dataset> removed() const {
    std::vector<data::Dataset> r(parts.size());
    r[0] = parts[0].subset(poisoned_rows);
    return r;
  }
  std::vector<std::size_t> kept_rows() const {
    std::vector<std::size_t> keep;
    std::set<std::size_t> bad(poisoned_rows.begin(), poisoned_rows.end());
    for (long i = 0; i < parts[0].size(); ++i)
      if (bad.count(static_cast<std::size_t>(i)) == 0)
        keep.push_back(static_cast<std::size_t>(i));
    return keep;
  }
};

/// Build a scenario: synthesize the dataset, partition IID, poison
/// `deletion_rate` of client 0, and federatedly train the original model.
inline Scenario make_scenario(data::DatasetKind kind, float deletion_rate,
                              std::uint64_t seed) {
  Scenario s;
  s.prof = profile(kind);
  s.tt = data::make_synthetic(
      data::default_spec(kind, seed, s.prof.train_size, s.prof.test_size));
  Rng rng(seed ^ 0xABCD);
  s.parts = data::partition_iid(s.tt.train, s.prof.clients, rng);

  s.spec.target_label = 0;
  s.spec.patch = 4;
  auto poisoned = data::poison_dataset(s.parts[0], s.spec, deletion_rate, rng);
  s.parts[0] = poisoned.poisoned;
  s.poisoned_rows = poisoned.poisoned_indices;
  s.probe = data::make_trigger_probe(s.tt.test, s.spec);

  Rng mrng(seed ^ 0xBEEF);
  s.fresh = nn::make_model(s.prof.arch, s.tt.train.geom,
                           s.tt.train.num_classes, mrng);
  s.trained = s.fresh;
  fl::FlConfig cfg;
  cfg.local.epochs = s.prof.local_epochs;
  cfg.local.batch_size = s.prof.batch;
  cfg.local.lr = s.prof.lr;
  cfg.seed = seed;
  fl::FederatedSim sim(s.trained, s.parts, s.tt.test, cfg);
  sim.run(s.prof.fl_rounds);
  s.trained = sim.global_model();
  return s;
}

/// Unlearning-method outcomes used by several tables.
struct MethodResult {
  nn::Model model;
  double accuracy = 0.0;
  double asr = 0.0;
};

inline MethodResult eval_model(nn::Model model, const Scenario& s) {
  MethodResult r;
  r.accuracy = metrics::accuracy(model, s.tt.test);
  r.asr = metrics::attack_success_rate(model, s.probe);
  r.model = std::move(model);
  return r;
}

/// Goldfish unlearning (ours): distillation-based retraining.
inline MethodResult run_ours(const Scenario& s, long rounds,
                             std::uint64_t seed = 1001) {
  core::UnlearnConfig cfg;
  cfg.distill.max_epochs = s.prof.local_epochs + 1;
  cfg.distill.batch_size = s.prof.batch;
  cfg.distill.lr = s.prof.lr;
  cfg.distill.use_early_termination = false;
  cfg.seed = seed;
  core::GoldfishUnlearner ul(s.trained, s.fresh, s.parts, s.tt.test, cfg);
  ul.request_deletion({{0, s.poisoned_rows}});
  ul.run(rounds);
  return eval_model(ul.global_model(), s);
}

/// B1: retrain from scratch on remaining data.
inline MethodResult run_b1(const Scenario& s, long rounds,
                           std::uint64_t seed = 2002) {
  fl::FlConfig cfg;
  cfg.local.epochs = s.prof.local_epochs;
  cfg.local.batch_size = s.prof.batch;
  cfg.local.lr = s.prof.lr;
  cfg.seed = seed;
  nn::Model out;
  baselines::retrain_from_scratch(s.fresh, s.remaining(), s.tt.test, cfg,
                                  rounds, &out);
  return eval_model(std::move(out), s);
}

/// B2: rapid retraining (diag-FIM preconditioned).
inline MethodResult run_b2(const Scenario& s, long rounds,
                           std::uint64_t seed = 3003) {
  baselines::RapidRetrainConfig cfg;
  cfg.fl.local.epochs = s.prof.local_epochs;
  cfg.fl.local.batch_size = s.prof.batch;
  cfg.fl.local.lr = s.prof.lr;
  cfg.fl.seed = seed;
  nn::Model trained = s.trained;
  nn::Model out;
  baselines::rapid_retrain(s.fresh, trained, s.remaining(), s.tt.test, cfg,
                           rounds, &out);
  return eval_model(std::move(out), s);
}

/// B3: incompetent-teacher unlearning.
inline MethodResult run_b3(const Scenario& s, long rounds,
                           std::uint64_t seed = 4004) {
  baselines::IncompetentTeacherConfig cfg;
  cfg.fl.local.epochs = s.prof.local_epochs + 1;
  cfg.fl.local.batch_size = s.prof.batch;
  cfg.fl.local.lr = s.prof.lr;
  cfg.fl.seed = seed;
  cfg.forget_weight = 2.0f;
  Rng rng(seed ^ 0xF00D);
  nn::Model incompetent = nn::make_model(
      s.prof.arch, s.tt.train.geom, s.tt.train.num_classes, rng);
  nn::Model out;
  baselines::incompetent_teacher_unlearn(s.trained, incompetent,
                                         s.remaining(), s.removed(),
                                         s.tt.test, cfg, rounds, &out);
  return eval_model(std::move(out), s);
}

/// Deletion-rate sweep used by Fig. 5 and Tables III–VI (percent values).
inline std::vector<float> deletion_rates() {
  return {0.02f, 0.04f, 0.06f, 0.08f, 0.10f, 0.12f};
}

inline void print_header(const std::string& what) {
  std::cout << "goldfish bench — " << what
            << (metrics::full_scale() ? " [scale=full]" : " [scale=quick]")
            << "\n";
}

}  // namespace goldfish::bench
