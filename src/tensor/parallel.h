// Minimal data parallelism helper.
//
// Heavy kernels (matmul over im2col matrices) split their row range across a
// few std::threads. Threads are spawned per call: at the sizes where the
// threshold fires, spawn cost (~tens of µs) is noise, and per-call threads
// avoid interaction with the FL simulator's own client-level thread pool
// (no shared queues → no oversubscription deadlocks, merely brief
// oversubscription, which the OS scheduler handles fine).
#pragma once

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

namespace goldfish {

/// Run fn(begin, end) over [0, n) split into roughly equal contiguous chunks.
/// Falls back to a single inline call when n < min_per_thread.
inline void parallel_for(long n, const std::function<void(long, long)>& fn,
                         long min_per_thread = 1024) {
  if (n <= 0) return;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const long max_threads = static_cast<long>(std::min<unsigned>(hw, 8));
  const long threads = std::clamp(n / min_per_thread, 1L, max_threads);
  if (threads == 1) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const long chunk = (n + threads - 1) / threads;
  for (long t = 0; t < threads; ++t) {
    const long lo = t * chunk;
    const long hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace goldfish
