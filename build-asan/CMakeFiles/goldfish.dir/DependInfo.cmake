
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/incompetent_teacher.cpp" "CMakeFiles/goldfish.dir/src/baselines/incompetent_teacher.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/baselines/incompetent_teacher.cpp.o.d"
  "/root/repo/src/baselines/rapid_retrain.cpp" "CMakeFiles/goldfish.dir/src/baselines/rapid_retrain.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/baselines/rapid_retrain.cpp.o.d"
  "/root/repo/src/baselines/retrain_scratch.cpp" "CMakeFiles/goldfish.dir/src/baselines/retrain_scratch.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/baselines/retrain_scratch.cpp.o.d"
  "/root/repo/src/core/adaptive_temperature.cpp" "CMakeFiles/goldfish.dir/src/core/adaptive_temperature.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/core/adaptive_temperature.cpp.o.d"
  "/root/repo/src/core/distill_trainer.cpp" "CMakeFiles/goldfish.dir/src/core/distill_trainer.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/core/distill_trainer.cpp.o.d"
  "/root/repo/src/core/early_termination.cpp" "CMakeFiles/goldfish.dir/src/core/early_termination.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/core/early_termination.cpp.o.d"
  "/root/repo/src/core/sharded_client.cpp" "CMakeFiles/goldfish.dir/src/core/sharded_client.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/core/sharded_client.cpp.o.d"
  "/root/repo/src/core/sharding.cpp" "CMakeFiles/goldfish.dir/src/core/sharding.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/core/sharding.cpp.o.d"
  "/root/repo/src/core/unlearner.cpp" "CMakeFiles/goldfish.dir/src/core/unlearner.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/core/unlearner.cpp.o.d"
  "/root/repo/src/data/backdoor.cpp" "CMakeFiles/goldfish.dir/src/data/backdoor.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/data/backdoor.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/goldfish.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "CMakeFiles/goldfish.dir/src/data/partition.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/data/partition.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/goldfish.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/fl/aggregation.cpp" "CMakeFiles/goldfish.dir/src/fl/aggregation.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/fl/aggregation.cpp.o.d"
  "/root/repo/src/fl/simulation.cpp" "CMakeFiles/goldfish.dir/src/fl/simulation.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/fl/simulation.cpp.o.d"
  "/root/repo/src/fl/trainer.cpp" "CMakeFiles/goldfish.dir/src/fl/trainer.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/fl/trainer.cpp.o.d"
  "/root/repo/src/losses/distillation.cpp" "CMakeFiles/goldfish.dir/src/losses/distillation.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/losses/distillation.cpp.o.d"
  "/root/repo/src/losses/goldfish_loss.cpp" "CMakeFiles/goldfish.dir/src/losses/goldfish_loss.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/losses/goldfish_loss.cpp.o.d"
  "/root/repo/src/losses/hard_loss.cpp" "CMakeFiles/goldfish.dir/src/losses/hard_loss.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/losses/hard_loss.cpp.o.d"
  "/root/repo/src/metrics/divergence.cpp" "CMakeFiles/goldfish.dir/src/metrics/divergence.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/metrics/divergence.cpp.o.d"
  "/root/repo/src/metrics/evaluation.cpp" "CMakeFiles/goldfish.dir/src/metrics/evaluation.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/metrics/evaluation.cpp.o.d"
  "/root/repo/src/metrics/membership_inference.cpp" "CMakeFiles/goldfish.dir/src/metrics/membership_inference.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/metrics/membership_inference.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "CMakeFiles/goldfish.dir/src/metrics/report.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/metrics/report.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "CMakeFiles/goldfish.dir/src/nn/activations.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "CMakeFiles/goldfish.dir/src/nn/batchnorm.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "CMakeFiles/goldfish.dir/src/nn/conv.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/conv.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/goldfish.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "CMakeFiles/goldfish.dir/src/nn/model.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/model.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "CMakeFiles/goldfish.dir/src/nn/models.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/models.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "CMakeFiles/goldfish.dir/src/nn/pooling.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "CMakeFiles/goldfish.dir/src/nn/sequential.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "CMakeFiles/goldfish.dir/src/nn/sgd.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/nn/sgd.cpp.o.d"
  "/root/repo/src/runtime/gemm.cpp" "CMakeFiles/goldfish.dir/src/runtime/gemm.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/runtime/gemm.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "CMakeFiles/goldfish.dir/src/runtime/scheduler.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/runtime/scheduler.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/goldfish.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/rng.cpp" "CMakeFiles/goldfish.dir/src/tensor/rng.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/tensor/rng.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "CMakeFiles/goldfish.dir/src/tensor/serialize.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/tensor/serialize.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/goldfish.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/goldfish.dir/src/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
