// The composite Goldfish loss (Eq. 1–6):
//
//   L = L_h + µ_c·L_c + µ_d·L_d,   L_h = L_r − L_f
//
// where L_r / L_f are hard losses on the remaining / removed batch, L_c is
// the confusion loss on the removed batch, and L_d the distillation loss on
// the remaining batch. Ablation toggles (Table X) switch individual terms
// off; the hard loss itself is pluggable (Table XI).
#pragma once

#include <memory>

#include "losses/distillation.h"
#include "losses/hard_loss.h"

namespace goldfish::losses {

struct GoldfishLossConfig {
  float mu_c = 0.25f;        ///< confusion weight µ_c (paper §IV-B)
  float mu_d = 1.0f;         ///< distillation weight µ_d (paper §IV-B)
  float temperature = 3.0f;  ///< distillation temperature T (paper §IV-B)
  /// Saturation point of the −L_f term. Eq. 1 is unbounded below (maximizing
  /// the forget loss); once the per-batch forget loss exceeds this cap its
  /// gradient contribution is dropped, which keeps unlearning stable while
  /// preserving the paper's intent (deconfidence on D_f). ≈ −log(1/C) for
  /// C=400 — comfortably past "uniform prediction".
  float forget_cap = 6.0f;
  std::string hard_loss_name = "cross_entropy";
  // Ablation switches (Table X rows).
  bool use_forget_term = true;   ///< the −L_f part of L_h
  bool use_confusion = true;     ///< µ_c·L_c
  bool use_distillation = true;  ///< µ_d·L_d
};

/// Per-batch evaluation result. Gradients are w.r.t. the student logits on
/// the corresponding batch; `grad_f` is empty when no removed data was given.
struct GoldfishBatchLoss {
  float total = 0.0f;
  float hard_r = 0.0f;
  float hard_f = 0.0f;
  float confusion = 0.0f;
  float distillation = 0.0f;
  Tensor grad_r;
  Tensor grad_f;
};

/// Stateless evaluator for the composite loss.
class GoldfishLoss {
 public:
  explicit GoldfishLoss(GoldfishLossConfig cfg = GoldfishLossConfig());
  GoldfishLoss(const GoldfishLoss& other);
  GoldfishLoss& operator=(const GoldfishLoss& other);

  const GoldfishLossConfig& config() const { return cfg_; }
  void set_temperature(float t) { cfg_.temperature = t; }

  /// Full unlearning batch: remaining data with teacher guidance plus a
  /// (possibly empty) removed batch. Pass empty tensors/labels for D_f when
  /// the client has no deletion request (Algorithm 1 line 32).
  GoldfishBatchLoss eval(const Tensor& student_logits_r,
                         const std::vector<long>& labels_r,
                         const Tensor& teacher_logits_r,
                         const Tensor& student_logits_f,
                         const std::vector<long>& labels_f) const;

  /// Convenience overload without removed data.
  GoldfishBatchLoss eval(const Tensor& student_logits_r,
                         const std::vector<long>& labels_r,
                         const Tensor& teacher_logits_r) const;

  /// Remaining-data terms only (L_r + µ_d·L_d); fills grad_r. The training
  /// loop evaluates D_r and D_f in separate forward/backward passes because
  /// layer caches hold one batch at a time.
  GoldfishBatchLoss eval_remaining(const Tensor& student_logits_r,
                                   const std::vector<long>& labels_r,
                                   const Tensor& teacher_logits_r) const;

  /// Removed-data terms only (−L_f + µ_c·L_c); fills grad_f.
  GoldfishBatchLoss eval_forget(const Tensor& student_logits_f,
                                const std::vector<long>& labels_f) const;

 private:
  GoldfishLossConfig cfg_;
  std::unique_ptr<HardLoss> hard_;
};

}  // namespace goldfish::losses
