# Empty dependencies file for goldfish.
# This may be replaced when dependencies are built.
