// Byzantine-robust aggregation benchmarks (google-benchmark): the cost of
// each robust strategy against the fedavg fast path at buffer sizes 16 and
// 64 on a realistic MLP snapshot, plus the backdoor-success-under-defense
// axis — a sybil-poisoned federation run undefended (fedavg) and defended
// (trimmed-mean sized to the sybil fraction), both deterministic per seed.
//
// Ratchet hooks (bench/baseline_ci.json):
//   * BM_AggregateFedAvg/64's allocs_per_agg counter gates the
//     zero-steady-state-allocation property of the shared borrowed-view
//     weighted-average path — the robust seam must not cost the weight-based
//     family its zero-allocation fast path.
//   * BM_RobustScenarioDefense reports backdoor_asr_undefended /
//     backdoor_asr_defended from a matched scenario pair; counters_min /
//     counters_max pin "the attack works against plain averaging and is
//     suppressed by the robust aggregator". Exact, not noisy: both runs are
//     bit-deterministic per seed.
//
// items_per_second of the BM_Aggregate* family is client updates consumed
// per second — one unit across strategies, so the robust-vs-fedavg overhead
// at each buffer size reads directly off the report.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "data/backdoor.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "nn/models.h"
#include "tensor/buffer_pool.h"

namespace goldfish {
namespace {

/// A 256-hidden MLP update (~204k parameters): large enough that the
/// per-coordinate work of the robust strategies, not fixed overhead,
/// dominates.
std::vector<Tensor> update_params(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> ps;
  ps.push_back(Tensor::randn({256, 784}, rng));
  ps.push_back(Tensor::randn({256}, rng));
  ps.push_back(Tensor::randn({10, 256}, rng));
  ps.push_back(Tensor::randn({10}, rng));
  return ps;
}

std::vector<fl::ClientUpdate> make_updates(long n) {
  std::vector<fl::ClientUpdate> ups;
  for (long i = 0; i < n; ++i) {
    fl::ClientUpdate u;
    u.params = update_params(2000 + static_cast<std::uint64_t>(i));
    u.dataset_size = 100 + i;
    u.staleness = i % 4;
    ups.push_back(std::move(u));
  }
  return ups;
}

void agg_loop(benchmark::State& state, fl::Aggregator& agg) {
  BufferPoolScope recycle;  // aggregate outputs recycle between iterations
  const std::vector<fl::ClientUpdate> ups = make_updates(state.range(0));
  {
    auto warm = agg.aggregate(ups);  // warm the pool and the recycler
    benchmark::DoNotOptimize(warm.front().data());
  }
  for (auto _ : state) {
    std::vector<Tensor> out = agg.aggregate(ups);
    benchmark::DoNotOptimize(out.front().data());
  }
  // Items = updates consumed, one unit across strategies: the robust
  // overhead at this buffer size is fedavg's items/s over this one's.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  // Steady-state FloatBuffer allocations per aggregate, outside the timing
  // loop. Only reported when the GOLDFISH_ALLOC_STATS hook is compiled in —
  // the CI gate fails absent rather than silently passing.
  if (alloc_stats::enabled()) {
    const std::size_t before = alloc_stats::heap_allocations();
    auto out = agg.aggregate(ups);
    benchmark::DoNotOptimize(out.front().data());
    state.counters["allocs_per_agg"] =
        double(alloc_stats::heap_allocations() - before);
  }
}

void BM_AggregateFedAvg(benchmark::State& state) {
  fl::FedAvgAggregator agg;
  agg_loop(state, agg);
}
BENCHMARK(BM_AggregateFedAvg)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_AggregateKrum(benchmark::State& state) {
  fl::KrumAggregator agg(/*f=*/2, /*m=*/1);
  agg_loop(state, agg);
}
BENCHMARK(BM_AggregateKrum)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_AggregateTrimmedMean(benchmark::State& state) {
  fl::TrimmedMeanAggregator agg(0.2);
  agg_loop(state, agg);
}
BENCHMARK(BM_AggregateTrimmedMean)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_AggregateMedian(benchmark::State& state) {
  fl::MedianAggregator agg;
  agg_loop(state, agg);
}
BENCHMARK(BM_AggregateMedian)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_AggregateNormClip(benchmark::State& state) {
  fl::NormClipAggregator agg(10.0);
  agg_loop(state, agg);
}
BENCHMARK(BM_AggregateNormClip)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// -- backdoor success under defense, end to end -----------------------------

constexpr long kHonest = 6;
// Two sybils against a k = ⌊0.4·8⌋ = 3 per-side trim: the trim margin must
// strictly exceed the colluding cohort for full suppression. (At 3 sybils
// of 9 — margin equal, not exceeding — the coordinate-wise defenses only
// partially suppress: ~33% ASR leaks through; see docs/threat-model.md.)
constexpr long kSybils = 2;
constexpr long kTrainRows = 700;  // split kHonest+1 ways; the extra
                                  // partition is the sybils' shared payload
constexpr long kTestRows = 200;
constexpr long kHidden = 48;
constexpr long kAggs = 8;

struct AttackedFederation {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;
  data::Dataset sybil_data;
  data::Dataset probe;

  AttackedFederation() {
    auto tt = data::make_synthetic(
        data::default_spec(data::DatasetKind::Mnist, 41, kTrainRows,
                           kTestRows));
    Rng rng(42);
    auto all = data::partition_iid(tt.train, kHonest + 1, rng);
    data::Dataset payload = std::move(all.back());
    all.pop_back();
    parts = std::move(all);
    test = std::move(tt.test);
    global = nn::make_mlp({1, 28, 28}, kHidden, 10, rng);
    data::BackdoorSpec spec;
    spec.target_label = 0;
    spec.patch = 4;
    sybil_data = data::poison_dataset(payload, spec, 0.9f, rng).poisoned;
    probe = data::make_trigger_probe(test, spec);
  }
};

/// One sybil-attack run: a burst of poisoned clients joins just after the
/// honest cohort starts, audited every step. `aggregator` is the server's
/// strategy from the start — "fedavg" is the undefended baseline,
/// "trimmed-mean" (trim sized past the sybil fraction) the defense.
double final_asr(const AttackedFederation& fed, const std::string& agg) {
  fl::FlConfig cfg;
  cfg.local.epochs = 4;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  cfg.seed = 43;
  cfg.aggregator = agg;
  cfg.robust.trim_fraction = 0.4;  // k = 3 per side > kSybils = 2
  fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
  fl::Scenario s;
  s.aggregations = kAggs;
  s.staleness_alpha = 0.0;
  s.buffer = std::make_unique<fl::FixedBuffer>(0);  // K = active clients
  s.clock = std::make_unique<fl::VirtualClock>(cfg.seed, 1.0, 0.0);
  fl::AuditEvent audit;
  audit.time = 0.05;
  audit.probe = fed.probe;
  s.audits.push_back(std::move(audit));
  fl::SybilJoinEvent burst;
  burst.time = 0.1;
  burst.count = kSybils;
  burst.dataset = fed.sybil_data;
  s.sybil_joins.push_back(std::move(burst));
  return eng.collect(std::move(s)).back().attack_success;
}

void BM_RobustScenarioDefense(benchmark::State& state) {
  AttackedFederation fed;
  // The gated counters come from a matched pair — identical federation,
  // identical sybil burst, identical schedule; only the aggregator differs.
  // Deterministic per seed, so the gates are exact, not noisy.
  const double undefended = final_asr(fed, "fedavg");
  const double defended = final_asr(fed, "trimmed-mean");
  for (auto _ : state) {
    const double asr = final_asr(fed, "trimmed-mean");
    benchmark::DoNotOptimize(asr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kAggs);
  state.counters["backdoor_asr_undefended"] = undefended;
  state.counters["backdoor_asr_defended"] = defended;
}
BENCHMARK(BM_RobustScenarioDefense)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goldfish

BENCHMARK_MAIN();
