// Core Goldfish modules: early termination (Eq. 7), adaptive temperature
// (Eq. 11), the distillation trainer (Algorithm 1), and sharding (Eq. 8–10).
#include <gtest/gtest.h>

#include <cmath>

#include "core/distill_trainer.h"
#include "core/early_termination.h"
#include "core/sharding.h"
#include "core/unlearner.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/trainer.h"
#include "metrics/evaluation.h"
#include "nn/models.h"

namespace goldfish {
namespace {

TEST(ExcessRisk, InfiniteBeforeFirstEpoch) {
  core::ExcessRiskTracker t(1.0f, 0.1f);
  EXPECT_TRUE(std::isinf(t.excess_risk()));
  EXPECT_FALSE(t.should_stop());
}

TEST(ExcessRisk, RunningMeanAgainstReference) {
  core::ExcessRiskTracker t(1.0f, 0.1f);
  t.record_epoch(2.0f);  // mean 2.0, err 1.0
  EXPECT_NEAR(t.excess_risk(), 1.0f, 1e-6f);
  EXPECT_FALSE(t.should_stop());
  t.record_epoch(0.2f);  // mean 1.1, err 0.1
  EXPECT_NEAR(t.excess_risk(), 0.1f, 1e-5f);
  EXPECT_TRUE(t.should_stop());
}

TEST(ExcessRisk, AbsoluteValueOfGap) {
  core::ExcessRiskTracker t(2.0f, 0.05f);
  t.record_epoch(1.0f);  // student *below* reference still counts
  EXPECT_NEAR(t.excess_risk(), 1.0f, 1e-6f);
}

TEST(ExcessRisk, RejectsBadInputs) {
  EXPECT_THROW(core::ExcessRiskTracker(1.0f, -0.1f), CheckError);
  core::ExcessRiskTracker t(1.0f, 0.1f);
  EXPECT_THROW(t.record_epoch(std::nanf("")), CheckError);
}

TEST(AdaptiveTemperature, NoDeletionGivesT0) {
  core::AdaptiveTemperature at;  // α = e
  // |D_f| = 0 → exponent −1, α·e⁻¹ = 1 → T = T0.
  EXPECT_NEAR(at(1000, 0), at.t0, 1e-3f);
}

TEST(AdaptiveTemperature, MoreDeletionHigherTemperature) {
  core::AdaptiveTemperature at;
  const float t_small = at(980, 20);
  const float t_big = at(700, 300);
  EXPECT_GT(t_big, t_small);
  EXPECT_GT(t_small, at(1000, 0));
}

TEST(AdaptiveTemperature, MatchesEquation11) {
  core::AdaptiveTemperature at;
  at.t0 = 2.0f;
  at.alpha = 1.5f;
  const float expected =
      1.5f * 2.0f * std::exp(-900.0f / 1000.0f);
  EXPECT_NEAR(at(900, 100), std::max(expected, at.min_temperature), 1e-4f);
}

TEST(AdaptiveTemperature, FlooredAtOne) {
  core::AdaptiveTemperature at;
  at.t0 = 0.5f;
  at.alpha = 1.0f;
  EXPECT_FLOAT_EQ(at(1000, 0), 1.0f);  // raw value ≈ 0.18 → floored
}

TEST(AdaptiveTemperature, EmptyClientThrows) {
  core::AdaptiveTemperature at;
  EXPECT_THROW(at(0, 0), CheckError);
}

// -- distillation trainer ----------------------------------------------------

struct DistillFixture {
  data::TrainTest tt;
  nn::Model teacher;

  DistillFixture()
      : tt(data::make_synthetic(
            data::default_spec(data::DatasetKind::Mnist, 51, 400, 100))),
        teacher([] {
          Rng rng(52);
          return nn::make_mlp({1, 28, 28}, 32, 10, rng);
        }()) {
    fl::TrainOptions opts;
    opts.epochs = 8;
    opts.lr = 0.01f;
    fl::train_local(teacher, tt.train, opts);
  }
};

DistillFixture& distill_fixture() {
  static DistillFixture f;
  return f;
}

TEST(DistillTrainer, StudentApproachesTeacherAccuracy) {
  auto& f = distill_fixture();
  Rng rng(53);
  nn::Model student = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  core::DistillOptions opts;
  opts.max_epochs = 8;
  opts.lr = 0.01f;
  opts.use_early_termination = false;
  nn::Model teacher = f.teacher;
  const float ref = core::reference_loss_of(teacher, f.tt.train, opts);
  const auto res = core::goldfish_distill(student, teacher, f.tt.train,
                                          data::Dataset(), ref, opts);
  EXPECT_EQ(res.epochs_run, 8);
  const double teacher_acc = metrics::accuracy(teacher, f.tt.test);
  const double student_acc = metrics::accuracy(student, f.tt.test);
  EXPECT_GT(student_acc, 0.7 * teacher_acc);
}

TEST(DistillTrainer, EarlyTerminationStopsSooner) {
  auto& f = distill_fixture();
  Rng rng(54);
  nn::Model student = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  core::DistillOptions opts;
  opts.max_epochs = 30;
  opts.lr = 0.02f;
  opts.use_early_termination = true;
  opts.delta = 1.5f;  // generous threshold → stops early for sure
  nn::Model teacher = f.teacher;
  const float ref = core::reference_loss_of(teacher, f.tt.train, opts);
  const auto res = core::goldfish_distill(student, teacher, f.tt.train,
                                          data::Dataset(), ref, opts);
  EXPECT_TRUE(res.terminated_early);
  EXPECT_LT(res.epochs_run, 30);
  EXPECT_LE(res.final_excess_risk, 1.5f);
}

TEST(DistillTrainer, AdaptiveTemperatureRecorded) {
  auto& f = distill_fixture();
  Rng rng(55);
  nn::Model student = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  core::DistillOptions opts;
  opts.max_epochs = 1;
  opts.use_adaptive_temperature = true;
  nn::Model teacher = f.teacher;
  data::Dataset d_f = f.tt.train.subset({0, 1, 2, 3, 4});
  const auto res = core::goldfish_distill(student, teacher, f.tt.train, d_f,
                                          2.0f, opts);
  EXPECT_NEAR(res.temperature_used,
              opts.temperature(f.tt.train.size(), 5), 1e-5f);
  // Fixed temperature when the extension is off.
  nn::Model student2 = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  opts.use_adaptive_temperature = false;
  const auto res2 = core::goldfish_distill(student2, teacher, f.tt.train,
                                           d_f, 2.0f, opts);
  EXPECT_FLOAT_EQ(res2.temperature_used, opts.loss.temperature);
}

TEST(DistillTrainer, EmptyRemainingThrows) {
  auto& f = distill_fixture();
  Rng rng(56);
  nn::Model student = nn::make_mlp({1, 28, 28}, 8, 10, rng);
  nn::Model teacher = f.teacher;
  core::DistillOptions opts;
  EXPECT_THROW(core::goldfish_distill(student, teacher, data::Dataset(),
                                      data::Dataset(), 1.0f, opts),
               CheckError);
}

// -- sharding ---------------------------------------------------------------

struct ShardFixture {
  data::TrainTest tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 61, 240, 60));
  nn::Model init = [] {
    Rng rng(62);
    return nn::make_mlp({1, 28, 28}, 16, 10, rng);
  }();
};

TEST(Sharding, SplitsAllRows) {
  ShardFixture f;
  Rng rng(63);
  core::ShardManager mgr(f.init, f.tt.train, 6, rng);
  EXPECT_EQ(mgr.num_shards(), 6);
  EXPECT_EQ(mgr.total_rows(), 240);
  for (long s = 0; s < 6; ++s) EXPECT_EQ(mgr.shard_rows(s), 40);
}

TEST(Sharding, AggregateOfIdenticalModelsIsIdentity) {
  ShardFixture f;
  Rng rng(64);
  core::ShardManager mgr(f.init, f.tt.train, 4, rng);
  // No training yet: every shard holds the init weights.
  const auto agg = mgr.aggregate();
  EXPECT_NEAR(nn::snapshot_distance_sq(agg, f.init.snapshot()), 0.0f, 1e-8f);
}

TEST(Sharding, Equation10RecoversStoredWeights) {
  ShardFixture f;
  Rng rng(65);
  core::ShardManager mgr(f.init, f.tt.train, 3, rng);
  fl::TrainOptions opts;
  opts.epochs = 1;
  opts.lr = 0.01f;
  mgr.train_all(opts);
  // ω_i reconstructed from the aggregate must equal the stored shard model.
  for (long s = 0; s < 3; ++s) {
    const auto recovered = mgr.recover_shard_weights(s);
    const auto stored = mgr.shard_model(s).snapshot();
    EXPECT_LT(nn::snapshot_distance_sq(recovered, stored), 1e-4f)
        << "shard " << s;
  }
}

TEST(Sharding, DeletionRetrainsOnlyAffectedShards) {
  ShardFixture f;
  Rng rng(66);
  core::ShardManager mgr(f.init, f.tt.train, 6, rng);
  fl::TrainOptions opts;
  opts.epochs = 1;
  opts.lr = 0.01f;
  mgr.train_all(opts);

  // Find rows all living in one shard: take 3 rows of shard 2 by probing
  // membership through deletion on a copy is overkill — instead delete rows
  // we know exist and check the report's shard count is small.
  std::vector<std::vector<Tensor>> before;
  for (long s = 0; s < 6; ++s)
    before.push_back(mgr.shard_model(s).snapshot());

  const auto report = mgr.delete_rows({0, 1, 2}, opts);
  EXPECT_EQ(report.rows_deleted, 3);
  EXPECT_LE(static_cast<long>(report.affected_shards.size()), 3);
  EXPECT_EQ(mgr.total_rows(), 237);

  // Unaffected shards' models must be bit-identical.
  std::set<long> affected(report.affected_shards.begin(),
                          report.affected_shards.end());
  for (long s = 0; s < 6; ++s) {
    if (affected.count(s)) continue;
    EXPECT_NEAR(nn::snapshot_distance_sq(before[static_cast<std::size_t>(s)],
                                         mgr.shard_model(s).snapshot()),
                0.0f, 1e-10f)
        << "untouched shard " << s << " changed";
  }
}

TEST(Sharding, AffectedShardRetrainsFromReinitialization) {
  // Unlearning guarantee: an affected shard's old weights carry the deleted
  // rows' influence and must be discarded. With a 0-epoch retrain the
  // affected shard model must equal the pristine init, not its trained
  // weights.
  ShardFixture f;
  Rng rng(69);
  core::ShardManager mgr(f.init, f.tt.train, 4, rng);
  fl::TrainOptions opts;
  opts.epochs = 2;
  opts.lr = 0.02f;
  mgr.train_all(opts);

  const std::vector<std::size_t> doomed{mgr.shard_row_ids(1).front()};
  fl::TrainOptions no_train = opts;
  no_train.epochs = 0;
  const auto report = mgr.delete_rows(doomed, no_train);
  ASSERT_EQ(report.affected_shards.size(), 1u);
  ASSERT_EQ(report.affected_shards[0], 1);
  EXPECT_NEAR(nn::snapshot_distance_sq(mgr.shard_model(1).snapshot(),
                                       f.init.snapshot()),
              0.0f, 1e-10f);
  // Untouched shards keep trained weights (≠ init).
  EXPECT_GT(nn::snapshot_distance_sq(mgr.shard_model(0).snapshot(),
                                     f.init.snapshot()),
            1e-6f);
}

TEST(Sharding, DeletingUnknownRowsIsNoop) {
  ShardFixture f;
  Rng rng(67);
  core::ShardManager mgr(f.init, f.tt.train, 4, rng);
  fl::TrainOptions opts;
  opts.epochs = 1;
  const auto report = mgr.delete_rows({100000}, opts);
  EXPECT_EQ(report.rows_deleted, 0);
  EXPECT_TRUE(report.affected_shards.empty());
  EXPECT_EQ(mgr.total_rows(), 240);
}

TEST(Sharding, ParallelDeletionMatchesSerial) {
  ShardFixture f;
  Rng rng(68);
  core::ShardManager serial(f.init, f.tt.train, 6, rng);
  Rng rng2(68);
  core::ShardManager parallel(f.init, f.tt.train, 6, rng2);
  fl::TrainOptions opts;
  opts.epochs = 1;
  opts.lr = 0.01f;
  serial.train_all(opts);
  parallel.train_all(opts);
  std::vector<std::size_t> doomed;
  for (std::size_t i = 0; i < 30; ++i) doomed.push_back(i);
  runtime::Scheduler serial_sched(1);
  runtime::Scheduler parallel_sched(4);
  serial.delete_rows(doomed, opts, &serial_sched);
  parallel.delete_rows(doomed, opts, &parallel_sched);
  EXPECT_NEAR(
      nn::snapshot_distance_sq(serial.aggregate(), parallel.aggregate()),
      0.0f, 1e-8f);
}

// -- unlearner orchestration (small smoke; the full path is covered by the
//    integration test) --------------------------------------------------------

TEST(Unlearner, RequestSplitsClientData) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 71, 120, 40));
  Rng rng(72);
  auto parts = data::partition_iid(tt.train, 2, rng);
  nn::Model trained = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  nn::Model fresh = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  core::UnlearnConfig cfg;
  core::GoldfishUnlearner ul(trained, fresh, parts, tt.test, cfg);
  const long before = parts[0].size();
  ul.request_deletion({{0, {0, 1, 2, 3}}});
  EXPECT_EQ(ul.remaining_data(0).size(), before - 4);
  EXPECT_EQ(ul.removed_data(0).size(), 4);
  EXPECT_EQ(ul.removed_data(1).size(), 0);
}

TEST(Unlearner, RejectsBadRequests) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 73, 60, 20));
  Rng rng(74);
  auto parts = data::partition_iid(tt.train, 2, rng);
  nn::Model m = nn::make_mlp({1, 28, 28}, 8, 10, rng);
  core::UnlearnConfig cfg;
  core::GoldfishUnlearner ul(m, m, parts, tt.test, cfg);
  EXPECT_THROW(ul.request_deletion({{7, {0}}}), CheckError);
  EXPECT_THROW(ul.request_deletion({{0, {100000}}}), CheckError);
}

}  // namespace
}  // namespace goldfish
