#!/usr/bin/env python3
"""Golden-fixture tests for goldfish_lint.py.

Each fixture under tools/lint/fixtures/ carries `// EXPECT: RULE[, RULE]`
markers on the offending line (or `// EXPECT-NEXT: RULE` on the line above,
for findings that land on comment lines, e.g. SUP001). The suite asserts the
linter reports exactly the expected (file, line, rule) set — no misses, no
extras — for the token engine always, and for the libclang engine when the
bindings are available. Suppression semantics and the baseline round-trip
(update → clean → new finding fails → stale entry reported) are covered with
temp dirs, exercising the real CLI.

Run directly (python3 tools/lint/test_goldfish_lint.py) or via ctest
(registered as lint_fixtures in tests/CMakeLists.txt) or the CI lint job.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.realpath(__file__))
REPO = os.path.realpath(os.path.join(HERE, "..", ".."))
LINT = os.path.join(HERE, "goldfish_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

sys.path.insert(0, HERE)
import goldfish_lint  # noqa: E402

EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([A-Z0-9, ]+)")
EXPECT_NEXT_RE = re.compile(r"//\s*EXPECT-NEXT:\s*([A-Z0-9, ]+)")


def expected_findings(fixture_dir):
    """{(relpath, line, rule)} parsed from EXPECT / EXPECT-NEXT markers."""
    expected = set()
    for fn in sorted(os.listdir(fixture_dir)):
        if not fn.endswith(".cpp"):
            continue
        with open(os.path.join(fixture_dir, fn)) as fh:
            lines = fh.read().splitlines()
        for idx, line in enumerate(lines):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((fn, idx + 1, rule.strip()))
            m = EXPECT_NEXT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((fn, idx + 2, rule.strip()))
    return expected


def run_lint(args, cwd=None):
    proc = subprocess.run(
        [sys.executable, LINT] + args,
        capture_output=True, text=True, cwd=cwd or REPO)
    return proc


def reported(proc):
    data = json.loads(proc.stdout)
    return {(f["file"], f["line"], f["rule"]) for f in data["new"]}


class FixtureTests(unittest.TestCase):
    """The diagnostics themselves: each rule fires where pinned, nowhere
    else."""

    def run_engine(self, engine):
        proc = run_lint(["--engine", engine, "--no-baseline", "--json",
                         "--repo", FIXTURES, "--det-scope", ".", "--",
                         FIXTURES])
        self.assertIn(proc.returncode, (0, 1), proc.stderr)
        return reported(proc), proc

    def check_engine(self, engine):
        got, proc = self.run_engine(engine)
        expected = expected_findings(FIXTURES)
        missing = expected - got
        extra = got - expected
        self.assertFalse(
            missing or extra,
            f"[{engine}] missing: {sorted(missing)}\n"
            f"extra: {sorted(extra)}\nstderr: {proc.stderr}")
        self.assertEqual(proc.returncode, 1)  # findings => exit 1

    def test_token_engine_matches_fixtures(self):
        self.check_engine("token")

    @unittest.skipUnless(goldfish_lint.load_libclang() is not None,
                         "libclang python bindings not available")
    def test_clang_engine_matches_fixtures(self):
        self.check_engine("clang")

    def test_unordered_aggregation_loop_is_flagged(self):
        """The headline case: an unordered_map-fed aggregation loop whose FP
        sum order leaks into StepResult must raise DET003."""
        got, _ = self.run_engine("token")
        self.assertIn(("det_unordered_aggregation.cpp", 21, "DET003"), got)

    def test_rules_have_catalog_entries(self):
        for _file, _line, rule in expected_findings(FIXTURES):
            self.assertIn(rule, goldfish_lint.RULES)


class SuppressionTests(unittest.TestCase):
    def lint_source(self, source):
        with tempfile.TemporaryDirectory() as td:
            path = os.path.join(td, "case.cpp")
            with open(path, "w") as fh:
                fh.write(source)
            proc = run_lint(["--engine", "token", "--no-baseline", "--json",
                             "--repo", td, "--det-scope", ".", "--", path])
            return reported(proc)

    def test_same_line_allow(self):
        got = self.lint_source(
            "long f() { return time(nullptr); }"
            "  // goldfish-lint: allow(DET002) replay harness boundary\n")
        self.assertEqual(got, set())

    def test_standalone_allow_covers_next_code_line(self):
        got = self.lint_source(
            "// goldfish-lint: allow(DET002) replay harness boundary\n"
            "// (continuation comment between allow and code is fine)\n"
            "long f() { return time(nullptr); }\n")
        self.assertEqual(got, set())

    def test_allow_is_rule_specific(self):
        got = self.lint_source(
            "// goldfish-lint: allow(DET001) wrong rule for this line\n"
            "long f() { return time(nullptr); }\n")
        self.assertEqual({r for (_f, _l, r) in got}, {"DET002"})

    def test_allow_without_reason_is_sup001_and_does_not_suppress(self):
        got = self.lint_source(
            "// goldfish-lint: allow(DET002)\n"
            "long f() { return time(nullptr); }\n")
        self.assertEqual({r for (_f, _l, r) in got}, {"SUP001", "DET002"})


class BaselineTests(unittest.TestCase):
    """Round-trip: baselined findings pass, new findings fail, fixed
    findings surface as stale entries."""

    def setUp(self):
        self.td = tempfile.mkdtemp()
        self.addCleanup(shutil.rmtree, self.td)
        self.src = os.path.join(self.td, "legacy.cpp")
        shutil.copy(os.path.join(FIXTURES, "det_wallclock.cpp"), self.src)
        self.baseline = os.path.join(self.td, "baseline.json")

    def lint(self, *extra):
        return run_lint(["--engine", "token", "--repo", self.td,
                         "--baseline", self.baseline, "--det-scope", ".",
                         *extra, "--", self.src])

    def test_roundtrip(self):
        # 1. Without a baseline, the legacy findings fail the run.
        proc = self.lint("--json")
        self.assertEqual(proc.returncode, 1)
        legacy = reported(proc)
        self.assertTrue(legacy)

        # 2. Burn them into the baseline: the run is now clean.
        proc = self.lint("--update-baseline")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        with open(self.baseline) as fh:
            entries = json.load(fh)["findings"]
        self.assertEqual(len(entries), len(legacy))
        proc = self.lint("--json")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        data = json.loads(proc.stdout)
        self.assertEqual(data["new"], [])
        self.assertEqual(data["baselined"], len(legacy))

        # 3. A new violation fails — and only the new one is reported,
        #    even though it shifts every legacy finding down a line.
        with open(self.src) as fh:
            body = fh.read()
        with open(self.src, "w") as fh:
            fh.write("#include <cstdlib>\n"
                     "int fresh() { return std::rand(); }\n" + body)
        proc = self.lint("--json")
        self.assertEqual(proc.returncode, 1)
        new = reported(proc)
        self.assertEqual({(f, r) for (f, _l, r) in new},
                         {("legacy.cpp", "DET001")})

        # 4. Fixing everything leaves stale baseline entries: reported,
        #    not fatal.
        with open(self.src, "w") as fh:
            fh.write("int clean() { return 0; }\n")
        proc = self.lint("--json")
        self.assertEqual(proc.returncode, 0)
        data = json.loads(proc.stdout)
        self.assertEqual(data["new"], [])
        self.assertEqual(data["stale_baseline_entries"], len(legacy))

        # 5. --update-baseline prunes the stale entries.
        proc = self.lint("--update-baseline")
        self.assertEqual(proc.returncode, 0)
        with open(self.baseline) as fh:
            self.assertEqual(json.load(fh)["findings"], [])


class RepoGateTests(unittest.TestCase):
    """The tree itself must be clean against the checked-in baseline — the
    same invocation CI runs."""

    def test_repo_is_clean(self):
        proc = run_lint([])
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
