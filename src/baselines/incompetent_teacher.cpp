#include "baselines/incompetent_teacher.h"

#include "losses/distillation.h"
#include "nn/sgd.h"
#include "tensor/check.h"

namespace goldfish::baselines {

namespace {

/// One client's incompetent-teacher local update.
void local_unlearn(nn::Model& student, nn::Model& competent,
                   nn::Model& incompetent, const data::Dataset& d_r,
                   const data::Dataset& d_f,
                   const IncompetentTeacherConfig& cfg,
                   std::uint64_t seed) {
  nn::Sgd::Options sgd_opts;
  sgd_opts.lr = cfg.fl.local.lr;
  sgd_opts.momentum = cfg.fl.local.momentum;
  nn::Sgd sgd(sgd_opts);
  Rng rng(seed);

  const bool have_forget = !d_f.empty();
  for (long e = 0; e < cfg.fl.local.epochs; ++e) {
    data::BatchIterator it_r(d_r, cfg.fl.local.batch_size, rng);
    data::BatchIterator it_f(have_forget ? d_f : d_r,
                             cfg.fl.local.batch_size, rng);
    const std::size_t f_batches = have_forget ? it_f.num_batches() : 0;
    for (std::size_t b = 0; b < it_r.num_batches(); ++b) {
      {
        auto [x, y] = d_r.batch(it_r.batch_indices(b));
        const Tensor& t_logits = competent.forward(x, /*train=*/false);
        const Tensor& s_logits = student.forward(x, /*train=*/true);
        losses::LossResult kd =
            losses::distillation_loss(t_logits, s_logits,
                                      cfg.kd_temperature);
        student.backward(kd.grad_logits);
      }
      if (have_forget) {
        auto [xf, yf] = d_f.batch(it_f.batch_indices(b % f_batches));
        const Tensor& t_logits = incompetent.forward(xf, /*train=*/false);
        const Tensor& s_logits = student.forward(xf, /*train=*/true);
        losses::LossResult kd =
            losses::distillation_loss(t_logits, s_logits,
                                      cfg.kd_temperature);
        kd.grad_logits *= cfg.forget_weight;
        student.backward(kd.grad_logits);
      }
      sgd.step(student);
    }
  }
}

}  // namespace

std::vector<fl::RoundResult> incompetent_teacher_unlearn(
    const nn::Model& trained, const nn::Model& incompetent_init,
    std::vector<data::Dataset> remaining, std::vector<data::Dataset> removed,
    data::Dataset server_test, const IncompetentTeacherConfig& cfg,
    long rounds, nn::Model* model_out) {
  GOLDFISH_CHECK(remaining.size() == removed.size(),
                 "remaining/removed client count mismatch");
  // Keep a copy of the per-client removed sets; the sim only carries D_r.
  auto removed_copy =
      std::make_shared<std::vector<data::Dataset>>(std::move(removed));
  auto competent = std::make_shared<nn::Model>(trained);
  auto incompetent = std::make_shared<nn::Model>(incompetent_init);

  fl::FederatedSim sim(trained, std::move(remaining), std::move(server_test),
                       cfg.fl);
  sim.set_client_update([&, removed_copy, competent, incompetent](
                            std::size_t cid, nn::Model& local,
                            const data::Dataset& ds, long round) {
    // Thread-local teacher replicas (forward mutates caches).
    nn::Model competent_local = *competent;
    nn::Model incompetent_local = *incompetent;
    local_unlearn(local, competent_local, incompetent_local, ds,
                  (*removed_copy)[cid], cfg,
                  cfg.fl.seed ^ (0xB3B3ull * (cid + 1)) ^
                      static_cast<std::uint64_t>(round));
  });
  std::vector<fl::RoundResult> results = sim.run(rounds);
  if (model_out != nullptr) *model_out = sim.global_model();
  return results;
}

}  // namespace goldfish::baselines
