#include "nn/linear.h"

#include <cmath>
#include <sstream>

#include "tensor/ops.h"

namespace goldfish::nn {

Linear::Linear(long in_features, long out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng, 0.0f,
                            std::sqrt(2.0f / static_cast<float>(in_features)))),
      bias_(Tensor::zeros({out_features})),
      grad_weight_(Tensor::zeros({out_features, in_features})),
      grad_bias_(Tensor::zeros({out_features})) {
  GOLDFISH_CHECK(in_features > 0 && out_features > 0, "bad linear dims");
}

const Tensor& Linear::forward(const Tensor& x, bool /*train*/) {
  GOLDFISH_CHECK(x.rank() == 2 && x.dim(1) == in_,
                 "linear input shape " + x.shape_str());
  cached_input_ = x;  // member copy: capacity reused across steps
  // Bias (and the peepholed ReLU) ride the GEMM writeback — no extra pass.
  Tensor& y = slot(0, {x.dim(0), out_});
  gemm_fused_into(y, x, weight_, false, true,
                  fuse_relu_ ? runtime::Epilogue::kBiasColRelu
                             : runtime::Epilogue::kBiasCol,
                  bias_);  // (N, out)
  if (fuse_relu_) cached_output_ = y;
  return y;
}

const Tensor& Linear::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(grad_output.rank() == 2 && grad_output.dim(1) == out_,
                 "linear grad shape");
  GOLDFISH_CHECK(!cached_input_.empty(), "backward before forward");
  const Tensor* grad = &grad_output;
  if (fuse_relu_) {
    // The folded ReLU's mask: post-activation > 0 ⟺ pre-activation > 0.
    GOLDFISH_CHECK(grad_output.same_shape(cached_output_),
                   "fused relu grad shape");
    Tensor& masked = slot(1, grad_output.shape());
    const float* gd_in = grad_output.data();
    const float* yd = cached_output_.data();
    float* gd = masked.data();
    for (std::size_t i = 0; i < masked.numel(); ++i)
      gd[i] = gd_in[i] * (yd[i] > 0.0f ? 1.0f : 0.0f);  // = ReLU::backward
    grad = &masked;
  }
  // dW = gradᵀ · x (accumulated in place) ; db = column sums ; dx = grad · W
  gemm_acc(grad_weight_, *grad, cached_input_, true, false);
  const long n = grad->dim(0);
  for (long i = 0; i < n; ++i)
    for (long j = 0; j < out_; ++j)
      grad_bias_[std::size_t(j)] += grad->at(i, j);
  Tensor& dx = slot(2, {n, in_});
  gemm_into(dx, *grad, weight_, false, false);
  return dx;
}

std::vector<ParamRef> Linear::params() {
  return {{"weight", &weight_, &grad_weight_},
          {"bias", &bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(*this);
  copy->grad_weight_.zero();
  copy->grad_bias_.zero();
  copy->cached_input_ = Tensor();
  copy->cached_output_ = Tensor();
  // The fuse flag is container-managed state (Sequential re-sets it on
  // every forward); a standalone clone must behave as a plain linear.
  copy->fuse_relu_ = false;
  return copy;
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "linear(" << in_ << "->" << out_ << ")";
  return os.str();
}

}  // namespace goldfish::nn
