// Scheduler micro-benchmarks: the work-stealing Scheduler against a
// verbatim copy of the pre-PR single-queue scheduler (one mutex-guarded
// std::deque + one condvar), kept here the same way bench_fl_round keeps
// the pre-pool round — so the stealing win is gated in CI as a
// machine-independent ratio, not an absolute number.
//
//   BM_SchedulerFanout      N tiny submit() tasks, caller participates
//   BM_ParallelForFine      back-to-back small-grain parallel_for regions
//   BM_NestedClientKernel   engine-shaped nesting: clients × inner kernel
//
// Each has a *Legacy twin running the identical workload on the old
// scheduler; check_bench_ratchet.py enforces the new/old ratios recorded
// in baseline_ci.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/scheduler.h"

namespace {

using goldfish::runtime::Scheduler;

// -- the pre-work-stealing scheduler, verbatim ------------------------------
// Single shared queue: every enqueue, try_run_one and worker wakeup
// serializes on one mutex; workers park on one condvar and are notified on
// every push.
class LegacyScheduler {
 public:
  explicit LegacyScheduler(std::size_t parallelism) {
    workers_.reserve(parallelism - 1);
    for (std::size_t i = 0; i + 1 < parallelism; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~LegacyScheduler() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  bool try_run_one() {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) return false;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    return true;
  }

  void parallel_for(long n, const std::function<void(long, long)>& fn,
                    long grain = 1) {
    if (n <= 0) return;
    grain = std::max(1L, grain);
    if (workers_.empty() || n <= grain) {
      fn(0, n);
      return;
    }
    auto region = std::make_shared<Region>();
    region->fn = &fn;
    region->n = n;
    region->chunk = grain;
    region->nchunks = (n + grain - 1) / grain;
    const std::size_t helpers = std::min<std::size_t>(
        workers_.size(), static_cast<std::size_t>(region->nchunks - 1));
    for (std::size_t h = 0; h < helpers; ++h)
      enqueue([region] { run_chunks(region); });
    run_chunks(region);
    {
      std::unique_lock<std::mutex> lock(region->mu);
      region->done_cv.wait(lock, [&] {
        return region->completed.load(std::memory_order_acquire) ==
               region->nchunks;
      });
    }
    if (region->error) std::rethrow_exception(region->error);
  }

 private:
  struct Region {
    const std::function<void(long, long)>* fn = nullptr;
    long n = 0;
    long chunk = 1;
    long nchunks = 0;
    std::atomic<long> next{0};
    std::atomic<long> completed{0};
    std::atomic<bool> abort{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };

  void enqueue(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  static void run_chunks(const std::shared_ptr<Region>& region) {
    Region& r = *region;
    for (;;) {
      const long c = r.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= r.nchunks) return;
      if (!r.abort.load(std::memory_order_relaxed)) {
        const long lo = c * r.chunk;
        const long hi = std::min(r.n, lo + r.chunk);
        try {
          (*r.fn)(lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lock(r.mu);
          if (!r.error) r.error = std::current_exception();
          r.abort.store(true, std::memory_order_relaxed);
        }
      }
      if (r.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          r.nchunks) {
        std::lock_guard<std::mutex> lock(r.mu);
        r.done_cv.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// At least a few workers even on small CI boxes, so the enqueue/steal
// machinery — not the inline fallback — is what gets measured everywhere.
// Scheduler throughput is a wall-clock property (legacy workers sleep in
// syscalls that cost latency but no CPU), so every bench uses UseRealTime.
std::size_t bench_parallelism() {
  return std::max<std::size_t>(4, std::thread::hardware_concurrency());
}

// -- workloads (identical bodies for both schedulers) -----------------------

constexpr int kFanoutTasks = 2048;
constexpr long kFineN = 512;
constexpr long kFineGrain = 8;
constexpr long kClients = 8;
constexpr long kRows = 64;
constexpr long kDim = 64;

template <typename S>
void fanout_round(S& sched, std::atomic<long>& done) {
  done.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kFanoutTasks; ++i)
    sched.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  // The producer participates, like the FedBuff server draining futures.
  while (done.load(std::memory_order_relaxed) < kFanoutTasks)
    if (!sched.try_run_one()) std::this_thread::yield();
}

template <typename S>
void fine_region_round(S& sched, std::vector<float>& v) {
  sched.parallel_for(
      kFineN,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) v[static_cast<std::size_t>(i)] += 1.0f;
      },
      kFineGrain);
}

// Engine-shaped nesting: an outer per-client region whose body runs an
// inner rowwise kernel on the same pool (client × GEMM, in miniature).
template <typename S>
void nested_round(S& sched, const std::vector<float>& a,
                  const std::vector<float>& b, std::vector<float>& out) {
  sched.parallel_for(
      kClients,
      [&](long clo, long chi) {
        for (long c = clo; c < chi; ++c)
          sched.parallel_for(
              kRows,
              [&, c](long rlo, long rhi) {
                for (long r = rlo; r < rhi; ++r) {
                  float acc = 0.0f;
                  const std::size_t off =
                      static_cast<std::size_t>(r) * kDim;
                  for (long k = 0; k < kDim; ++k)
                    acc += a[off + static_cast<std::size_t>(k)] *
                           b[off + static_cast<std::size_t>(k)];
                  out[static_cast<std::size_t>(c * kRows + r)] = acc;
                }
              },
              /*grain=*/8);
      },
      /*grain=*/1);
}

// -- benchmarks -------------------------------------------------------------

void BM_SchedulerFanout(benchmark::State& state) {
  Scheduler sched(bench_parallelism());
  std::atomic<long> done{0};
  for (auto _ : state) fanout_round(sched, done);
  state.SetItemsProcessed(state.iterations() * kFanoutTasks);
}
BENCHMARK(BM_SchedulerFanout)->UseRealTime();

void BM_SchedulerFanoutLegacy(benchmark::State& state) {
  LegacyScheduler sched(bench_parallelism());
  std::atomic<long> done{0};
  for (auto _ : state) fanout_round(sched, done);
  state.SetItemsProcessed(state.iterations() * kFanoutTasks);
}
BENCHMARK(BM_SchedulerFanoutLegacy)->UseRealTime();

void BM_ParallelForFine(benchmark::State& state) {
  Scheduler sched(bench_parallelism());
  std::vector<float> v(static_cast<std::size_t>(kFineN), 0.0f);
  for (auto _ : state) fine_region_round(sched, v);
  benchmark::DoNotOptimize(v.data());
  state.SetItemsProcessed(state.iterations() * kFineN);
}
BENCHMARK(BM_ParallelForFine)->UseRealTime();

void BM_ParallelForFineLegacy(benchmark::State& state) {
  LegacyScheduler sched(bench_parallelism());
  std::vector<float> v(static_cast<std::size_t>(kFineN), 0.0f);
  for (auto _ : state) fine_region_round(sched, v);
  benchmark::DoNotOptimize(v.data());
  state.SetItemsProcessed(state.iterations() * kFineN);
}
BENCHMARK(BM_ParallelForFineLegacy)->UseRealTime();

void BM_NestedClientKernel(benchmark::State& state) {
  Scheduler sched(bench_parallelism());
  std::vector<float> a(static_cast<std::size_t>(kRows * kDim), 1.5f);
  std::vector<float> b(static_cast<std::size_t>(kRows * kDim), 0.5f);
  std::vector<float> out(static_cast<std::size_t>(kClients * kRows));
  for (auto _ : state) nested_round(sched, a, b, out);
  benchmark::DoNotOptimize(out.data());
  state.SetItemsProcessed(state.iterations() * kClients);
}
BENCHMARK(BM_NestedClientKernel)->UseRealTime();

void BM_NestedClientKernelLegacy(benchmark::State& state) {
  LegacyScheduler sched(bench_parallelism());
  std::vector<float> a(static_cast<std::size_t>(kRows * kDim), 1.5f);
  std::vector<float> b(static_cast<std::size_t>(kRows * kDim), 0.5f);
  std::vector<float> out(static_cast<std::size_t>(kClients * kRows));
  for (auto _ : state) nested_round(sched, a, b, out);
  benchmark::DoNotOptimize(out.data());
  state.SetItemsProcessed(state.iterations() * kClients);
}
BENCHMARK(BM_NestedClientKernelLegacy)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
