#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "tensor/check.h"

namespace goldfish {

namespace {

constexpr std::uint32_t kMagic = 0x31544647;  // "GFT1"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  GOLDFISH_CHECK(bool(is), "truncated tensor stream");
  return v;
}

void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  GOLDFISH_CHECK(bool(is), "truncated tensor stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u32(os, kMagic);
  write_u32(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i) write_i64(os, t.dim(i));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  GOLDFISH_CHECK(bool(os), "tensor write failed");
}

Tensor read_tensor(std::istream& is) {
  GOLDFISH_CHECK(read_u32(is) == kMagic, "bad tensor magic");
  const std::uint32_t rank = read_u32(is);
  GOLDFISH_CHECK(rank <= 8, "implausible tensor rank");
  Shape shape(rank);
  for (std::uint32_t i = 0; i < rank; ++i) {
    shape[i] = read_i64(is);
    GOLDFISH_CHECK(shape[i] >= 0 && shape[i] < (1L << 32), "bad dim");
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  GOLDFISH_CHECK(bool(is), "truncated tensor payload");
  return t;
}

void save_tensors(const std::string& path, const std::vector<Tensor>& ts) {
  std::ofstream os(path, std::ios::binary);
  GOLDFISH_CHECK(os.is_open(), "cannot open for write: " + path);
  write_u32(os, static_cast<std::uint32_t>(ts.size()));
  for (const Tensor& t : ts) write_tensor(os, t);
}

std::vector<Tensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GOLDFISH_CHECK(is.is_open(), "cannot open for read: " + path);
  const std::uint32_t n = read_u32(is);
  GOLDFISH_CHECK(n < (1u << 20), "implausible tensor count");
  std::vector<Tensor> ts;
  ts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ts.push_back(read_tensor(is));
  return ts;
}

namespace {

/// Bounded little-endian reader over a raw byte buffer: the deserialization
/// twin of the append-based serializer, with the same truncation checks the
/// stream path enforces.
struct ByteReader {
  const char* p;
  std::size_t left;

  template <typename T>
  T take() {
    GOLDFISH_CHECK(left >= sizeof(T), "truncated tensor stream");
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }
};

template <typename T>
void append(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

}  // namespace

void serialize_tensors(const std::vector<Tensor>& ts, std::string& out) {
  out.clear();
  std::size_t total = sizeof(std::uint32_t);
  for (const Tensor& t : ts)
    total += 2 * sizeof(std::uint32_t) + t.rank() * sizeof(std::int64_t) +
             t.numel() * sizeof(float);
  out.reserve(total);
  append(out, static_cast<std::uint32_t>(ts.size()));
  for (const Tensor& t : ts) {
    append(out, kMagic);
    append(out, static_cast<std::uint32_t>(t.rank()));
    for (std::size_t i = 0; i < t.rank(); ++i)
      append(out, static_cast<std::int64_t>(t.dim(i)));
    if (t.numel() != 0)
      out.append(reinterpret_cast<const char*>(t.data()),
                 t.numel() * sizeof(float));
  }
}

std::vector<Tensor> deserialize_tensors(const char* data, std::size_t size) {
  ByteReader r{data, size};
  const std::uint32_t n = r.take<std::uint32_t>();
  GOLDFISH_CHECK(n < (1u << 20), "implausible tensor count");
  std::vector<Tensor> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GOLDFISH_CHECK(r.take<std::uint32_t>() == kMagic, "bad tensor magic");
    const std::uint32_t rank = r.take<std::uint32_t>();
    GOLDFISH_CHECK(rank <= 8, "implausible tensor rank");
    Shape shape(rank);
    for (std::uint32_t d = 0; d < rank; ++d) {
      shape[d] = static_cast<long>(r.take<std::int64_t>());
      GOLDFISH_CHECK(shape[d] >= 0 && shape[d] < (1L << 32), "bad dim");
    }
    Tensor t = Tensor::uninit(std::move(shape));
    const std::size_t payload = t.numel() * sizeof(float);
    GOLDFISH_CHECK(r.left >= payload, "truncated tensor payload");
    if (payload != 0) std::memcpy(t.data(), r.p, payload);
    r.p += payload;
    r.left -= payload;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tensor> roundtrip_through_bytes(const std::vector<Tensor>& ts,
                                            std::size_t* bytes_on_wire) {
  // One wire buffer per worker thread: client uploads are encoded inside
  // scheduler tasks, and the buffer's capacity is reused round after round.
  static thread_local std::string wire;
  serialize_tensors(ts, wire);
  if (bytes_on_wire != nullptr) *bytes_on_wire = wire.size();
  return deserialize_tensors(wire.data(), wire.size());
}

}  // namespace goldfish
