// The GEMM epilogue mechanism: beta=0 overwrite vs beta=1 accumulate against
// the naive reference, fused bias / bias+ReLU writebacks proven bit-exact
// against the two-pass result (both broadcast orientations, shapes crossing
// the KC slice and partial tiles), thread-count determinism through the
// fused path, and the Linear→ReLU peephole at the layer/container level.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "runtime/gemm.h"
#include "runtime/scheduler.h"
#include "tensor/ops.h"

namespace goldfish {
namespace {

using runtime::Epilogue;

/// Naive triple loop, double-accumulated (same as gemm_test's reference).
Tensor reference_gemm(const Tensor& a, const Tensor& b) {
  const long m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (long i = 0; i < m; ++i)
    for (long j = 0; j < n; ++j) {
      double acc = 0.0;
      for (long p = 0; p < k; ++p) acc += double(a.at(i, p)) * b.at(p, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

/// The pre-fusion epilogue: separate bias-broadcast and ReLU passes over C.
Tensor two_pass(const Tensor& product, const Tensor& bias, Epilogue ep) {
  Tensor y = product;
  const long m = y.dim(0), n = y.dim(1);
  const bool per_col = ep == Epilogue::kBiasCol || ep == Epilogue::kBiasColRelu;
  for (long i = 0; i < m; ++i)
    for (long j = 0; j < n; ++j)
      y.at(i, j) += per_col ? bias[std::size_t(j)] : bias[std::size_t(i)];
  if (ep == Epilogue::kBiasColRelu || ep == Epilogue::kBiasRowRelu)
    for (float& v : y.vec()) v = v > 0.0f ? v : 0.0f;
  return y;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

TEST(GemmBeta, Beta0OverwritesWithoutReadingC) {
  Rng rng(21);
  // k=300 crosses the KC=256 slice; m/n sizes leave partial tiles.
  Tensor a = Tensor::randn({13, 300}, rng);
  Tensor b = Tensor::randn({300, 37}, rng);
  const Tensor expect = reference_gemm(a, b);
  // Poison C: beta=0 must never read these values (NaN would propagate).
  Tensor c = Tensor::full({13, 37}, std::nanf(""));
  runtime::sgemm(false, false, 13, 37, 300, a.data(), 300, b.data(), 37,
                 c.data(), 37, /*beta=*/0.0f, Epilogue::kNone, nullptr);
  for (std::size_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], expect[i], 1e-3f * (1.0f + std::abs(expect[i])));
}

TEST(GemmBeta, Beta1AccumulatesOnTopOfC) {
  Rng rng(22);
  Tensor a = Tensor::randn({9, 270}, rng);
  Tensor b = Tensor::randn({270, 17}, rng);
  const Tensor expect = reference_gemm(a, b);
  Tensor c = Tensor::full({9, 17}, 2.5f);
  runtime::sgemm(false, false, 9, 17, 270, a.data(), 270, b.data(), 17,
                 c.data(), 17, /*beta=*/1.0f, Epilogue::kNone, nullptr);
  for (std::size_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], expect[i] + 2.5f, 1e-3f * (1.0f + std::abs(expect[i])));
}

TEST(GemmBeta, Beta0EqualsBeta1FromZeroBitwise) {
  Rng rng(23);
  Tensor a = Tensor::randn({65, 310}, rng);  // multiple row panels, k > KC
  Tensor b = Tensor::randn({310, 43}, rng);
  Tensor c0 = Tensor::uninit({65, 43});
  Tensor c1({65, 43});  // zero-initialized
  runtime::sgemm(false, false, 65, 43, 310, a.data(), 310, b.data(), 43,
                 c0.data(), 43, 0.0f, Epilogue::kNone, nullptr);
  runtime::sgemm(false, false, 65, 43, 310, a.data(), 310, b.data(), 43,
                 c1.data(), 43);  // accumulate entry point
  EXPECT_TRUE(bitwise_equal(c0, c1));
}

class EpilogueBitExact : public ::testing::TestWithParam<Epilogue> {};

TEST_P(EpilogueBitExact, FusedMatchesTwoPassBitwise) {
  const Epilogue ep = GetParam();
  Rng rng(31);
  // Shapes chosen to cross the KC slice (k=300), multiple row panels
  // (m=131 > MC on every ISA) and partial edge tiles in both dimensions.
  const long m = 131, k = 300, n = 53;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  const bool per_col = ep == Epilogue::kBiasCol || ep == Epilogue::kBiasColRelu;
  Tensor bias = Tensor::randn({per_col ? n : m}, rng);

  const Tensor fused = gemm_fused(a, b, false, false, ep, bias);
  const Tensor unfused = two_pass(gemm(a, b, false, false), bias, ep);
  EXPECT_TRUE(bitwise_equal(fused, unfused));
}

TEST_P(EpilogueBitExact, FusedMatchesTwoPassTransposedOperands) {
  const Epilogue ep = GetParam();
  Rng rng(32);
  const long m = 34, k = 260, n = 19;
  Tensor at = Tensor::randn({k, m}, rng);  // stored transposed
  Tensor bt = Tensor::randn({n, k}, rng);
  const bool per_col = ep == Epilogue::kBiasCol || ep == Epilogue::kBiasColRelu;
  Tensor bias = Tensor::randn({per_col ? n : m}, rng);

  const Tensor fused = gemm_fused(at, bt, true, true, ep, bias);
  const Tensor unfused = two_pass(gemm(at, bt, true, true), bias, ep);
  EXPECT_TRUE(bitwise_equal(fused, unfused));
}

INSTANTIATE_TEST_SUITE_P(AllEpilogues, EpilogueBitExact,
                         ::testing::Values(Epilogue::kBiasCol,
                                           Epilogue::kBiasColRelu,
                                           Epilogue::kBiasRow,
                                           Epilogue::kBiasRowRelu));

TEST(GemmEpilogue, DeterministicAcrossThreadCountsThroughFusedPath) {
  Rng rng(41);
  // Large enough to trigger the parallel path and multiple row panels.
  Tensor a = Tensor::randn({256, 256}, rng);
  Tensor b = Tensor::randn({256, 256}, rng);
  Tensor bias = Tensor::randn({256}, rng);
  Tensor c1 = Tensor::uninit({256, 256});
  Tensor c8 = Tensor::uninit({256, 256});
  runtime::Scheduler one(1);
  runtime::Scheduler eight(8);
  runtime::sgemm(false, false, 256, 256, 256, a.data(), 256, b.data(), 256,
                 c1.data(), 256, 0.0f, Epilogue::kBiasColRelu, bias.data(),
                 &one);
  runtime::sgemm(false, false, 256, 256, 256, a.data(), 256, b.data(), 256,
                 c8.data(), 256, 0.0f, Epilogue::kBiasColRelu, bias.data(),
                 &eight);
  // Bit-identical, not merely close: parallelism only splits output tiles,
  // never the k reduction, and the epilogue is elementwise per tile.
  EXPECT_TRUE(bitwise_equal(c1, c8));
}

TEST(GemmEpilogue, DegenerateKAppliesBetaAndEpilogue) {
  // k=0: the product term is empty; beta=0 + bias+relu must still define C.
  Tensor bias = Tensor::from({-1.0f, 0.5f, 2.0f});
  Tensor c = Tensor::full({2, 3}, std::nanf(""));
  runtime::sgemm(false, false, 2, 3, 0, nullptr, 1, nullptr, 3, c.data(), 3,
                 0.0f, Epilogue::kBiasColRelu, bias.data());
  for (long i = 0; i < 2; ++i) {
    EXPECT_EQ(0.0f, c.at(i, 0));  // relu(-1)
    EXPECT_EQ(0.5f, c.at(i, 1));
    EXPECT_EQ(2.0f, c.at(i, 2));
  }
}

TEST(GemmEpilogue, FusedShapeChecks) {
  Rng rng(51);
  Tensor a = Tensor::randn({4, 5}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  Tensor bias_n = Tensor::randn({6}, rng);
  Tensor bias_m = Tensor::randn({4}, rng);
  EXPECT_NO_THROW(gemm_fused(a, b, false, false, Epilogue::kBiasCol, bias_n));
  EXPECT_NO_THROW(gemm_fused(a, b, false, false, Epilogue::kBiasRow, bias_m));
  // Wrong orientation for the chosen epilogue.
  EXPECT_THROW(gemm_fused(a, b, false, false, Epilogue::kBiasCol, bias_m),
               CheckError);
  EXPECT_THROW(gemm_fused(a, b, false, false, Epilogue::kBiasRow, bias_n),
               CheckError);
  EXPECT_THROW(gemm_fused(a, b, false, false, Epilogue::kNone, bias_n),
               CheckError);
}

TEST(LinearFusedRelu, ForwardMatchesUnfusedPairBitwise) {
  Rng rng(61);
  nn::Linear fused(33, 21, rng);
  auto unfused_owner = fused.clone();
  auto* unfused = static_cast<nn::Linear*>(unfused_owner.get());
  nn::ReLU relu;
  fused.set_fuse_relu(true);
  unfused->set_fuse_relu(false);

  Tensor x = Tensor::randn({29, 33}, rng);
  const Tensor y_fused = fused.forward(x, true);
  const Tensor y_unfused = relu.forward(unfused->forward(x, true), true);
  EXPECT_TRUE(bitwise_equal(y_fused, y_unfused));
}

TEST(LinearFusedRelu, BackwardMatchesUnfusedPair) {
  Rng rng(62);
  nn::Linear fused(18, 11, rng);
  auto unfused_owner = fused.clone();
  auto* unfused = static_cast<nn::Linear*>(unfused_owner.get());
  nn::ReLU relu;
  fused.set_fuse_relu(true);
  unfused->set_fuse_relu(false);

  Tensor x = Tensor::randn({25, 18}, rng);
  fused.forward(x, true);
  relu.forward(unfused->forward(x, true), true);

  Tensor g = Tensor::randn({25, 11}, rng);
  const Tensor gx_fused = fused.backward(g);
  const Tensor gx_unfused = unfused->backward(relu.backward(g));
  ASSERT_TRUE(gx_fused.same_shape(gx_unfused));
  for (std::size_t i = 0; i < gx_fused.numel(); ++i)
    EXPECT_EQ(gx_fused[i], gx_unfused[i]);

  // Parameter gradients must agree too (dW, db accumulate the masked grad).
  auto pf = fused.params();
  auto pu = unfused->params();
  ASSERT_EQ(pf.size(), pu.size());
  for (std::size_t p = 0; p < pf.size(); ++p) {
    ASSERT_EQ(pf[p].grad->numel(), pu[p].grad->numel());
    for (std::size_t i = 0; i < pf[p].grad->numel(); ++i)
      EXPECT_EQ((*pf[p].grad)[i], (*pu[p].grad)[i]) << pf[p].name;
  }
}

TEST(SequentialPeephole, MlpMatchesManualLayerChain) {
  Rng rng(71);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>(12, 16, rng));
  seq.add(std::make_unique<nn::ReLU>());
  seq.add(std::make_unique<nn::Linear>(16, 5, rng));

  // Manual chain over clones of the same layers, run unfused.
  auto l0_owner = seq.layer(0).clone();
  auto l2_owner = seq.layer(2).clone();
  auto* l0 = static_cast<nn::Linear*>(l0_owner.get());
  auto* l2 = static_cast<nn::Linear*>(l2_owner.get());
  l0->set_fuse_relu(false);
  l2->set_fuse_relu(false);
  nn::ReLU relu;

  Tensor x = Tensor::randn({8, 12}, rng);
  const Tensor y_seq = seq.forward(x, true);
  const Tensor y_manual =
      l2->forward(relu.forward(l0->forward(x, true), true), true);
  EXPECT_TRUE(bitwise_equal(y_seq, y_manual));

  Tensor g = Tensor::randn({8, 5}, rng);
  const Tensor gx_seq = seq.backward(g);
  const Tensor gx_manual = l0->backward(relu.backward(l2->backward(g)));
  ASSERT_TRUE(gx_seq.same_shape(gx_manual));
  for (std::size_t i = 0; i < gx_seq.numel(); ++i)
    EXPECT_EQ(gx_seq[i], gx_manual[i]);

  auto ps = seq.params();
  std::vector<nn::ParamRef> pm;
  for (nn::ParamRef p : l0->params()) pm.push_back(p);
  for (nn::ParamRef p : l2->params()) pm.push_back(p);
  ASSERT_EQ(ps.size(), pm.size());
  for (std::size_t p = 0; p < ps.size(); ++p)
    for (std::size_t i = 0; i < ps[p].grad->numel(); ++i)
      EXPECT_EQ((*ps[p].grad)[i], (*pm[p].grad)[i]) << ps[p].name;
}

TEST(SequentialPeephole, ReluNotAfterLinearStillRuns) {
  Rng rng(72);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::ReLU>());  // leading ReLU: no pair to fuse
  seq.add(std::make_unique<nn::Linear>(6, 4, rng));

  Tensor x = Tensor::randn({3, 6}, rng);
  const Tensor y = seq.forward(x, true);
  ASSERT_EQ(2u, y.rank());
  // Backward must traverse both layers (the ReLU was not folded).
  Tensor g = Tensor::randn({3, 4}, rng);
  const Tensor gx = seq.backward(g);
  EXPECT_TRUE(gx.same_shape(x));
}

}  // namespace
}  // namespace goldfish
