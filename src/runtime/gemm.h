// Single blocked GEMM backbone: every matrix product in the library — all
// four transpose combinations — lowers to this one kernel.
//
// Algorithm (BLIS-style three-level blocking over row-major storage):
//   for each NC-wide column panel of C:
//     for each KC-deep slice of the inner dimension:
//       pack op(B) slice into contiguous NR-wide micro-panels (zero-padded)
//       for each MC-tall row panel of C (parallel across the Scheduler):
//         pack op(A) slice into contiguous MR-tall micro-panels
//         for each MR×NR tile: register-tiled microkernel, accumulating the
//         full KC product into local registers before touching C
//
// Packing makes the microkernel's loads unit-stride regardless of the
// transpose flags, so transposes are never materialized. C is *accumulated*
// (C += op(A)·op(B)); callers wanting a plain product pass zeroed C.
//
// Determinism: the k-dimension is reduced in a fixed order (KC blocks outer,
// packed k inner) and parallelism only splits independent output tiles of C
// (row panels when C is tall, NR-wide column tiles when C is short-fat), so
// results are bit-identical for any thread count.
#pragma once

namespace goldfish::runtime {

class Scheduler;

/// C(m×n) += op(A)·op(B) with op(X) = Xᵀ when the flag is set. All matrices
/// row-major; `lda`/`ldb`/`ldc` are the stored row lengths (A is stored k×m
/// when `transa`, likewise B is stored n×k when `transb`). C must not alias
/// A or B. `sched == nullptr` uses the process-wide Scheduler.
void sgemm(bool transa, bool transb, long m, long n, long k, const float* A,
           long lda, const float* B, long ldb, float* C, long ldc,
           Scheduler* sched = nullptr);

}  // namespace goldfish::runtime
