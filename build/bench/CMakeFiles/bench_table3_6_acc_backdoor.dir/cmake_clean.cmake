file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_6_acc_backdoor.dir/bench_table3_6_acc_backdoor.cpp.o"
  "CMakeFiles/bench_table3_6_acc_backdoor.dir/bench_table3_6_acc_backdoor.cpp.o.d"
  "bench_table3_6_acc_backdoor"
  "bench_table3_6_acc_backdoor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_6_acc_backdoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
