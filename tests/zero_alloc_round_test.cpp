// The zero-allocation federated round: pooled client models + per-model
// workspace arenas + batched client evaluation must be bit-identical to the
// historical allocate-everything path at any thread count, and a steady-state
// round must perform zero FloatBuffer heap allocations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "metrics/evaluation.h"
#include "nn/models.h"
#include "tensor/buffer_pool.h"
#include "tensor/serialize.h"

namespace goldfish {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool snapshots_bitwise_equal(const std::vector<Tensor>& a,
                             const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (!a[t].same_shape(b[t])) return false;
    if (std::memcmp(a[t].data(), b[t].data(),
                    a[t].numel() * sizeof(float)) != 0)
      return false;
  }
  return true;
}

struct Fed {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;
};

Fed make_fed(const char* arch, long clients, long train_rows, long test_rows,
             std::uint64_t seed) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, seed, train_rows,
                         test_rows));
  Rng rng(seed + 1);
  Fed fed;
  fed.parts = data::partition_iid(tt.train, clients, rng);
  fed.test = std::move(tt.test);
  fed.global = nn::make_model(arch, {1, 28, 28}, 10, rng);
  return fed;
}

// The pre-pool round, replicated verbatim (modulo the per-client seed mix,
// regenerated to the collision-free mix_seed golden stream): deep model copy
// per client, stringstream wire path, per-client evaluation. run_round must
// match it bit for bit.
fl::RoundResult reference_round(nn::Model& global,
                                const std::vector<data::Dataset>& clients,
                                const data::Dataset& test,
                                const fl::FlConfig& cfg, long round) {
  const std::size_t n = clients.size();
  std::vector<fl::ClientUpdate> updates(n);
  std::vector<double> local_acc(n, 0.0);
  std::atomic<std::size_t> bytes{0};
  auto agg = fl::make_aggregator(cfg.aggregator);

  for (std::size_t c = 0; c < n; ++c) {
    nn::Model local = global;  // broadcast: deep copy of global weights
    fl::TrainOptions opts = cfg.local;
    opts.seed = mix_seed(cfg.seed, c, static_cast<std::uint64_t>(round));
    fl::train_local(local, clients[c], opts);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    const auto snap = local.snapshot();
    const std::uint32_t count = static_cast<std::uint32_t>(snap.size());
    ss.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Tensor& t : snap) write_tensor(ss, t);
    const std::string buf = ss.str();
    bytes.fetch_add(buf.size());
    std::stringstream in(buf, std::ios::in | std::ios::binary);
    std::uint32_t cnt = 0;
    in.read(reinterpret_cast<char*>(&cnt), sizeof(cnt));
    updates[c].params.reserve(cnt);
    for (std::uint32_t i = 0; i < cnt; ++i)
      updates[c].params.push_back(read_tensor(in));
    updates[c].dataset_size = clients[c].size();
    local_acc[c] = metrics::accuracy(local, test);
  }

  if (agg->name() == "adaptive") {
    for (std::size_t c = 0; c < n; ++c) {
      nn::Model scratch = global;
      scratch.load(updates[c].params);
      updates[c].mse = metrics::mse(scratch, test);
    }
  }

  global.load(agg->aggregate(updates));

  fl::RoundResult r;
  r.round = round;
  r.global_accuracy = metrics::accuracy(global, test);
  r.bytes_uplinked = bytes.load();
  r.min_local_accuracy = *std::min_element(local_acc.begin(), local_acc.end());
  r.max_local_accuracy = *std::max_element(local_acc.begin(), local_acc.end());
  double mean = 0.0;
  for (double a : local_acc) mean += a;
  r.mean_local_accuracy = mean / double(n);
  return r;
}

void expect_rounds_bitwise_equal(const fl::RoundResult& a,
                                 const fl::RoundResult& b) {
  EXPECT_TRUE(bits_equal(a.global_accuracy, b.global_accuracy));
  EXPECT_TRUE(bits_equal(a.min_local_accuracy, b.min_local_accuracy));
  EXPECT_TRUE(bits_equal(a.max_local_accuracy, b.max_local_accuracy));
  EXPECT_TRUE(bits_equal(a.mean_local_accuracy, b.mean_local_accuracy));
  EXPECT_EQ(a.bytes_uplinked, b.bytes_uplinked);
}

TEST(ZeroAllocRound, MatchesLegacyPathBitwiseMlp) {
  // Stacked (batched) client evaluation path.
  for (const char* agg : {"fedavg", "adaptive"}) {
    Fed fed = make_fed("mlp16", 3, 300, 90, 101);
    nn::Model ref_global = fed.global;
    fl::FlConfig cfg;
    cfg.aggregator = agg;
    cfg.local.epochs = 2;
    cfg.local.batch_size = 50;
    cfg.local.lr = 0.05f;
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
    for (long r = 0; r < 3; ++r) {
      const auto got = sim.run_round();
      const auto want =
          reference_round(ref_global, fed.parts, fed.test, cfg, r);
      expect_rounds_bitwise_equal(got, want);
    }
    EXPECT_TRUE(snapshots_bitwise_equal(sim.global_model().snapshot(),
                                        ref_global.snapshot()));
  }
}

TEST(ZeroAllocRound, MatchesLegacyPathBitwiseConv) {
  // Per-model pooled evaluation path (conv nets are not weight-stackable).
  Fed fed = make_fed("lenet5", 2, 120, 60, 103);
  nn::Model ref_global = fed.global;
  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 30;
  cfg.local.lr = 0.05f;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  for (long r = 0; r < 2; ++r) {
    const auto got = sim.run_round();
    const auto want = reference_round(ref_global, fed.parts, fed.test, cfg, r);
    expect_rounds_bitwise_equal(got, want);
  }
  EXPECT_TRUE(snapshots_bitwise_equal(sim.global_model().snapshot(),
                                      ref_global.snapshot()));
}

TEST(ZeroAllocRound, DeterministicAcrossThreadCounts) {
  std::vector<std::vector<Tensor>> finals;
  std::vector<fl::RoundResult> lasts;
  for (std::size_t threads : {1u, 2u, 8u}) {
    Fed fed = make_fed("mlp16", 4, 400, 100, 107);
    fl::FlConfig cfg;
    cfg.threads = threads;
    cfg.local.epochs = 1;
    cfg.local.batch_size = 50;
    cfg.local.lr = 0.05f;
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
    fl::RoundResult last;
    for (long r = 0; r < 3; ++r) last = sim.run_round();
    finals.push_back(sim.global_model().snapshot());
    lasts.push_back(last);
  }
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_TRUE(snapshots_bitwise_equal(finals[0], finals[i]));
    expect_rounds_bitwise_equal(lasts[0], lasts[i]);
  }
}

TEST(ZeroAllocRound, PooledModelAndArenaMatchFreshClones) {
  // Reusing one pooled model (copy_from + warm arena) across training runs
  // with a mid-run batch-size change must match training fresh clones.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 109, 200, 50));
  Rng rng(110);
  nn::Model global = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  nn::Model pooled = global;  // the "pool": one replica, reused in place

  for (long run = 0; run < 3; ++run) {
    fl::TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = run == 1 ? 32 : 50;  // arena regrows mid-sequence
    opts.lr = 0.05f;
    opts.seed = 1000 + static_cast<std::uint64_t>(run);

    pooled.copy_from(global);
    fl::train_local(pooled, tt.train, opts);

    nn::Model fresh = global;  // the legacy path: deep copy every time
    fl::train_local(fresh, tt.train, opts);

    EXPECT_TRUE(
        snapshots_bitwise_equal(pooled.snapshot(), fresh.snapshot()));
    EXPECT_TRUE(bits_equal(metrics::accuracy(pooled, tt.test),
                           metrics::accuracy(fresh, tt.test)));
  }
}

TEST(ZeroAllocRound, BatchedEvaluatorMatchesAnyChunking) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 111, 300, 130));
  Rng rng(112);
  nn::Model m = nn::make_mlp({1, 28, 28}, 16, 10, rng);
  fl::TrainOptions opts;
  opts.epochs = 1;
  opts.lr = 0.05f;
  fl::train_local(m, tt.train, opts);

  const double want_acc = metrics::accuracy(m, tt.test);  // 256-row batches
  const double want_mse = metrics::mse(m, tt.test);
  for (long chunk : {0L, 1L, 7L, 64L, 256L, 1000L}) {
    metrics::BatchedEvaluator ev(tt.test, chunk);
    EXPECT_TRUE(bits_equal(ev.accuracy(m), want_acc)) << "chunk " << chunk;
    EXPECT_TRUE(bits_equal(ev.mse(m), want_mse)) << "chunk " << chunk;
  }
}

TEST(ZeroAllocRound, SteadyStateRoundsAllocateNothing) {
  if (!alloc_stats::enabled())
    GTEST_SKIP() << "built without GOLDFISH_ALLOC_STATS";
  for (const char* arch : {"mlp16", "lenet5"}) {
    Fed fed = make_fed(arch, 3, 150, 60, 113);
    fl::FlConfig cfg;
    cfg.local.epochs = 1;
    cfg.local.batch_size = 25;
    fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
    sim.run_round();  // warm-up: pool, arenas, recycler all sized here
    sim.run_round();
    for (long r = 0; r < 2; ++r) {
      const std::size_t before = alloc_stats::heap_allocations();
      sim.run_round();
      EXPECT_EQ(alloc_stats::heap_allocations() - before, 0u)
          << arch << " round " << r;
    }
  }
}

TEST(ZeroAllocRound, PoolBoundedByParallelism) {
  Fed fed = make_fed("mlp16", 6, 300, 60, 115);
  fl::FlConfig cfg;
  cfg.threads = 2;
  fl::FederatedSim sim(fed.global, fed.parts, fed.test, cfg);
  sim.run_round();
  sim.run_round();
  EXPECT_GE(sim.pool_size(), 1u);
  EXPECT_LE(sim.pool_size(), 2u);  // never one replica per client
}

TEST(ZeroAllocRound, ModelCopyFromRequiresMatchingStructure) {
  Rng rng(117);
  nn::Model a = nn::make_mlp({1, 4, 4}, 8, 3, rng);
  nn::Model b = nn::make_mlp({1, 4, 4}, 8, 3, rng);
  b.copy_from(a);
  EXPECT_TRUE(snapshots_bitwise_equal(a.snapshot(), b.snapshot()));
  nn::Model c = nn::make_mlp({1, 4, 4}, 4, 3, rng);
  EXPECT_THROW(c.copy_from(a), CheckError);
}

}  // namespace
}  // namespace goldfish
