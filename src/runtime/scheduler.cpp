#include "runtime/scheduler.h"

#include "tensor/annotations.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace goldfish::runtime {

namespace {

/// CPUs this process may actually run on. In cgroup-limited containers and
/// under taskset this is smaller than hardware_concurrency(), which reports
/// the whole machine and makes a naive pool oversubscribe its quota.
std::vector<int> affinity_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    std::vector<int> cpus;
    for (int c = 0; c < CPU_SETSIZE; ++c)
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    return cpus;
  }
#endif
  return {};
}

std::size_t default_parallelism() {
  if (const char* env = std::getenv("GOLDFISH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const std::vector<int> cpus = affinity_cpus();
  if (!cpus.empty()) return cpus.size();
  return std::max(1u, std::thread::hardware_concurrency());
}

bool pinning_requested() {
  const char* env = std::getenv("GOLDFISH_PIN_THREADS");
  return env != nullptr && env[0] == '1';
}

/// Polite busy-wait step: a pipeline hint on x86, a scheduler hint where
/// spinning would starve the thread we are waiting on (1-CPU containers).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// xorshift64* — cheap per-thread stream for randomized victim selection.
/// Steal order only affects which thread runs a task, never the result
/// (see the determinism contract in scheduler.h), so any seed is fine.
inline std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

}  // namespace

thread_local Scheduler::TlsBinding Scheduler::tls_binding_;

/// RAII claim of an external deque slot for a non-worker caller. Nested
/// calls on a thread already bound to this scheduler (its own workers, or
/// an outer region on the same pool) are no-ops. Slots hand off cleanly
/// between threads: tasks left behind by a previous owner are either live
/// (a worker will steal and run them) or stale region helpers (no-ops),
/// so the next owner can push and pop without coordination beyond the
/// claim bit's acquire/release.
class Scheduler::CallerSlot {
 public:
  explicit CallerSlot(Scheduler& sched) : sched_(sched), prev_(tls_binding_) {
    if (prev_.sched == &sched) return;  // already a lane of this scheduler
    rebound_ = true;
    std::uint32_t claimed =
        sched.external_claimed_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t free_bits =
          ~claimed & ((1u << kExternalSlots) - 1u);
      if (free_bits == 0) {
        // Every external slot busy (>kExternalSlots concurrent outside
        // callers): fall back to the injection queue for this call.
        tls_binding_ = {&sched, nullptr};
        return;
      }
      const int bit = std::countr_zero(free_bits);
      if (sched.external_claimed_.compare_exchange_weak(
              claimed, claimed | (1u << bit), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        claimed_bit_ = bit;
        tls_binding_ = {
            &sched,
            sched.slots_[sched.workers_.size() + std::size_t(bit)].get()};
        return;
      }
    }
  }

  ~CallerSlot() {
    if (!rebound_) return;
    if (claimed_bit_ >= 0)
      sched_.external_claimed_.fetch_and(~(1u << claimed_bit_),
                                         std::memory_order_acq_rel);
    tls_binding_ = prev_;
  }

  CallerSlot(const CallerSlot&) = delete;
  CallerSlot& operator=(const CallerSlot&) = delete;

 private:
  Scheduler& sched_;
  TlsBinding prev_;
  bool rebound_ = false;
  int claimed_bit_ = -1;
};

Scheduler::Scheduler(std::size_t parallelism) {
  if (parallelism == 0) parallelism = default_parallelism();
  const std::size_t nworkers = parallelism - 1;
  slots_.reserve(nworkers + kExternalSlots);
  for (std::size_t i = 0; i < nworkers + kExternalSlots; ++i)
    slots_.push_back(std::make_unique<Slot>());
  workers_.reserve(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
#if defined(__linux__)
  if (pinning_requested() && !workers_.empty()) {
    const std::vector<int> cpus = affinity_cpus();
    if (!cpus.empty()) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        // Round-robin over the allowed mask; CPU 0 of the mask is left to
        // the participating caller so pinned workers don't stack on it.
        cpu_set_t one;
        CPU_ZERO(&one);
        CPU_SET(cpus[(i + 1) % cpus.size()], &one);
        pthread_setaffinity_np(workers_[i].native_handle(), sizeof(one),
                               &one);
      }
    }
  }
#endif
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Mop up anything still queued (stale region helpers, or tasks pushed by
  // the last tasks the workers ran as they drained toward exit).
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  while (Task* task = acquire_task(nullptr, rng)) run_task(task);
}

Scheduler& Scheduler::global() {
  static Scheduler instance;
  return instance;
}

void Scheduler::enqueue(std::function<void()> fn) {
  // A zero-worker scheduler has no consumer for the queues; run the task
  // inline so submit() futures complete instead of blocking forever.
  if (workers_.empty()) {
    fn();
    return;
  }
  if (stopping_.load(std::memory_order_acquire))
    throw std::runtime_error("submit on stopped scheduler");
  CallerSlot guard(*this);
  push_task(new Task{std::move(fn), nullptr});
}

GOLDFISH_HOT void Scheduler::push_task(Task* task) {
  Slot* own = (tls_binding_.sched == this) ? tls_binding_.slot : nullptr;
  if (own == nullptr || !own->deque.push(task)) inject(task);
  wake_one();
}

void Scheduler::inject(Task* task) {
  {
    std::lock_guard<std::mutex> lock(injection_mu_);
    injection_.push_back(task);
  }
  injection_size_.fetch_add(1, std::memory_order_seq_cst);
}

Scheduler::Task* Scheduler::pop_injection() {
  std::lock_guard<std::mutex> lock(injection_mu_);
  if (injection_.empty()) return nullptr;
  Task* task = injection_.front();
  injection_.pop_front();
  injection_size_.fetch_sub(1, std::memory_order_seq_cst);
  return task;
}

GOLDFISH_HOT Scheduler::Task* Scheduler::acquire_task(
    Slot* own, std::uint64_t& rng_state) {
  if (own != nullptr)
    if (Task* task = own->deque.pop()) return task;
  if (injection_size_.load(std::memory_order_relaxed) > 0)
    if (Task* task = pop_injection()) return task;
  // Randomized sweep over every other deque (workers and external callers
  // alike): a random start point spreads thieves across victims instead of
  // convoying on slot 0.
  const std::size_t nslots = slots_.size();
  const std::size_t start =
      static_cast<std::size_t>(next_rand(rng_state)) % nslots;
  for (std::size_t k = 0; k < nslots; ++k) {
    Slot* victim = slots_[(start + k) % nslots].get();
    if (victim == own) continue;
    if (Task* task = victim->deque.steal()) return task;
  }
  return nullptr;
}

void Scheduler::run_task(Task* task) {
  if (task->region) {
    std::shared_ptr<Region> region = std::move(task->region);
    delete task;
    run_chunks(region);
    return;
  }
  std::function<void()> fn = std::move(task->fn);
  delete task;
  fn();  // submit() wraps in packaged_task, so this never throws
}

bool Scheduler::has_pending_work() {
  if (injection_size_.load(std::memory_order_seq_cst) > 0) return true;
  for (const auto& slot : slots_)
    if (!slot->deque.empty()) return true;
  return false;
}

GOLDFISH_HOT void Scheduler::wake_one() {
  // Dekker pair with the parking sequence in worker_loop: the push that
  // preceded this call was seq_cst, so either we observe the sleeper here
  // or the sleeper's post-registration sweep observes our push.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    ++wake_signals_;
  }
  sleep_cv_.notify_one();
}

GOLDFISH_HOT bool Scheduler::try_run_one() {
  thread_local std::uint64_t rng_state =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1u;
  Slot* own = (tls_binding_.sched == this) ? tls_binding_.slot : nullptr;
  Task* task = acquire_task(own, rng_state);
  if (task == nullptr) return false;
  run_task(task);
  return true;
}

void Scheduler::worker_loop(std::size_t slot_index) {
  Slot* own = slots_[slot_index].get();
  tls_binding_ = {this, own};
  std::uint64_t rng_state = 0x9E3779B97F4A7C15ull * (slot_index + 2) | 1u;
  int idle_sweeps = 0;
  constexpr int kSweepsBeforePark = 4;
  for (;;) {
    if (Task* task = acquire_task(own, rng_state)) {
      run_task(task);
      idle_sweeps = 0;
      continue;
    }
    if (++idle_sweeps < kSweepsBeforePark) {
      for (int p = 0; p < 32; ++p) cpu_relax();
      if (idle_sweeps > 1) std::this_thread::yield();
      continue;
    }
    idle_sweeps = 0;
    // Parking protocol: register as a sleeper (seq_cst), then re-sweep.
    // A producer pushes (seq_cst) and then reads sleepers_; whichever of
    // the two raced ahead, one side sees the other — no lost wakeups.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (has_pending_work()) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    bool stop = false;
    {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      // The timed wait is belt-and-braces only: the protocol above already
      // rules out lost wakeups, so the 2 ms tick merely bounds the damage
      // of any future regression to latency instead of a hang.
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
        return stopping_.load(std::memory_order_relaxed) || wake_signals_ > 0;
      });
      if (wake_signals_ > 0) --wake_signals_;
      stop = stopping_.load(std::memory_order_relaxed);
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stop && !has_pending_work()) return;  // stopping and drained
  }
}

void Scheduler::run_chunks(const std::shared_ptr<Region>& region) {
  Region& r = *region;
  for (;;) {
    const long c = r.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= r.nchunks) return;
    if (!r.abort.load(std::memory_order_relaxed)) {
      const long lo = c * r.chunk;
      const long hi = std::min(r.n, lo + r.chunk);
      try {
        (*r.fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(r.mu);
        if (!r.error) r.error = std::current_exception();
        r.abort.store(true, std::memory_order_relaxed);
      }
    }
    // Even aborted chunks count as completed so the opener's wait ends.
    // Dekker pair with wait_region: count (seq_cst), then check whether an
    // opener registered as waiting.
    if (r.completed.fetch_add(1, std::memory_order_seq_cst) + 1 ==
        r.nchunks) {
      if (r.waiting.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lock(r.mu);
        r.done_cv.notify_all();
      }
    }
  }
}

void Scheduler::wait_region(Region& r) {
  // The opener already claimed every unclaimed chunk, so only chunks
  // actively running on other threads remain — for fine regions they
  // finish within the spin, avoiding both syscalls of a condvar rendezvous.
  for (int spin = 0; spin < 128; ++spin) {
    if (r.completed.load(std::memory_order_acquire) == r.nchunks) return;
    cpu_relax();
  }
  for (int y = 0; y < 16; ++y) {
    if (r.completed.load(std::memory_order_acquire) == r.nchunks) return;
    std::this_thread::yield();
  }
  r.waiting.store(true, std::memory_order_seq_cst);
  std::unique_lock<std::mutex> lock(r.mu);
  r.done_cv.wait(lock, [&r] {
    return r.completed.load(std::memory_order_seq_cst) == r.nchunks;
  });
}

void Scheduler::parallel_for(long n,
                             const std::function<void(long, long)>& fn,
                             long grain) {
  if (n <= 0) return;
  grain = std::max(1L, grain);
  if (workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }
  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->n = n;
  region->chunk = grain;
  region->nchunks = (n + grain - 1) / grain;

  // Helpers beyond the chunk count would only spin on an exhausted counter;
  // don't enqueue them. The caller is one of the lanes.
  const std::size_t helpers = std::min<std::size_t>(
      workers_.size(), static_cast<std::size_t>(region->nchunks - 1));
  {
    CallerSlot guard(*this);
    for (std::size_t h = 0; h < helpers; ++h)
      push_task(new Task{{}, region});
    run_chunks(region);
    wait_region(*region);
  }
  if (region->error) std::rethrow_exception(region->error);
}

void Scheduler::parallel_map(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             long grain) {
  if (grain <= 0)
    grain = std::max(
        1L, static_cast<long>(n) / (4L * static_cast<long>(parallelism())));
  parallel_for(
      static_cast<long>(n),
      [&fn](long lo, long hi) {
        for (long i = lo; i < hi; ++i)
          fn(static_cast<std::size_t>(i));
      },
      grain);
}

}  // namespace goldfish::runtime
