#include "baselines/retrain_scratch.h"

namespace goldfish::baselines {

std::vector<fl::RoundResult> retrain_from_scratch(
    const nn::Model& fresh_init, std::vector<data::Dataset> remaining,
    data::Dataset server_test, const fl::FlConfig& cfg, long rounds,
    nn::Model* model_out) {
  fl::FederatedSim sim(fresh_init, std::move(remaining),
                       std::move(server_test), cfg);
  std::vector<fl::RoundResult> results = sim.run(rounds);
  if (model_out != nullptr) *model_out = sim.global_model();
  return results;
}

}  // namespace goldfish::baselines
