// Population façade: one object bundling the two population-scale stores
// (docs/population.md) so the engine carries a single optional member.
//
// - `clients` — cold client-state store: datasets + durable telemetry live
//   as compact byte records; only active-cohort members are materialized.
// - `snapshots` — content-addressed model snapshot store: broadcast versions
//   and client reference snapshots dedupe by content hash.
//
// The glue here is reference bookkeeping: a client's reference snapshot (the
// DeltaWire `needs_reference()` base) is a SnapshotStore handle recorded in
// the client store. set_reference/drop_reference keep the acquire/release
// pairing in one place so refcounts provably reach zero when the last
// referencing client is deleted.
#pragma once

#include "fl/population/client_store.h"
#include "fl/population/snapshot_store.h"

namespace goldfish::fl::population {

struct Population {
  ClientStateStore clients;
  SnapshotStore snapshots;

  /// Point client `id`'s reference snapshot at `h`: acquires the new handle,
  /// releases the old one (order matters when old == new).
  void set_reference(std::size_t id, const SnapshotStore::Handle& h) {
    const SnapshotStore::Handle old = clients.reference(id);
    snapshots.acquire(h);
    snapshots.release(old);
    clients.set_reference(id, h);
  }

  /// Drop client `id`'s reference snapshot (DeletionEvent commit: the
  /// departed client must stop pinning its replica so dedup refcounts can
  /// reach zero). Works on cold clients — no materialization involved.
  void drop_reference(std::size_t id) {
    snapshots.release(clients.reference(id));
    clients.set_reference(id, SnapshotStore::Handle{});
  }
};

}  // namespace goldfish::fl::population
