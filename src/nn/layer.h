// Layer abstraction: explicit forward/backward, no autograd tape.
//
// Each layer caches what its backward pass needs during forward, produces an
// input-gradient in backward, and accumulates parameter gradients internally.
// This is deliberately simpler than a tape: every layer's gradient is
// unit-testable in isolation against finite differences (see
// tests/nn_gradcheck_test.cpp), which is how we guarantee the substrate the
// unlearning results rest on is numerically correct.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace goldfish::nn {

/// A named view over a parameter and its gradient accumulator.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Base class for all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` toggles training-only behaviour (batch-norm
  /// statistics). Implementations cache activations needed by backward.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: input is ∂L/∂output, returns ∂L/∂input, and *adds*
  /// parameter gradients into the layer's accumulators (so multiple loss
  /// terms can be backpropagated before one optimizer step).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Parameters and their gradient accumulators, if any.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Deep copy, including parameter values (running stats too) but with
  /// freshly zeroed gradients. Needed to spawn teacher/student and per-shard
  /// model replicas.
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Short diagnostic name ("linear(400->120)").
  virtual std::string name() const = 0;

  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;
};

}  // namespace goldfish::nn
