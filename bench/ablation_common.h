// Shared harness for the loss-function studies (Tables X and XI): train a
// student against the contaminated teacher under a given loss configuration,
// recording accuracy and backdoor ASR at epoch checkpoints.
#pragma once

#include "bench/common.h"

namespace goldfish::bench {

struct CheckpointRow {
  long epoch = 0;
  double accuracy = 0.0;
  double asr = 0.0;
};

/// Centralized (single-client view, matching the paper's ablation protocol)
/// distillation run: pooled remaining data + removed data, checkpointed.
inline std::vector<CheckpointRow> run_loss_study(
    const Scenario& s, const losses::GoldfishLossConfig& loss_cfg,
    const std::vector<long>& checkpoints, std::uint64_t seed = 11011) {
  data::Dataset d_r;
  for (const data::Dataset& d : s.remaining())
    d_r = data::Dataset::concat(d_r, d);
  data::Dataset d_f = s.removed()[0];

  nn::Model student = s.fresh;
  nn::Model teacher = s.trained;

  core::DistillOptions opts;
  opts.batch_size = s.prof.batch;
  opts.lr = s.prof.lr;
  opts.loss = loss_cfg;
  opts.use_early_termination = false;
  opts.use_adaptive_temperature = false;

  std::vector<CheckpointRow> rows;
  long done = 0;
  const float ref = core::reference_loss_of(teacher, d_r, opts);
  for (long cp : checkpoints) {
    opts.max_epochs = cp - done;
    opts.seed = seed + static_cast<std::uint64_t>(cp);
    core::goldfish_distill(student, teacher, d_r, d_f, ref, opts);
    done = cp;
    CheckpointRow row;
    row.epoch = cp;
    row.accuracy = metrics::accuracy(student, s.tt.test);
    row.asr = metrics::attack_success_rate(student, s.probe);
    rows.push_back(row);
  }
  return rows;
}

/// Checkpoints per scale; the paper reports epochs {10,20,30,40}.
inline std::vector<long> study_checkpoints() {
  if (metrics::full_scale()) return {10, 20, 30, 40};
  return {3, 6, 9, 12};
}

}  // namespace goldfish::bench
