// Two-tier hierarchical aggregation (docs/population.md §tree-reduction).
//
// Edge aggregators reduce fixed-size cohort chunks; the root reduces the
// edge partials. The reduction tree is deliberately LEFT-DEEP, not
// balanced: float addition is non-associative, so a balanced tree of edge
// partials ((u0+u1)+(u2+u3)) cannot be bitwise-identical to the engine's
// flat left fold (((u0+u1)+u2)+u3. Instead each edge *streams* its chunk
// into the running accumulator handed down from the previous edge —
// exactly the FP op sequence of nn::weighted_average over the flat update
// list, in arrival order, with the global weight total computed up front in
// flat order. Hierarchical output is therefore bit-identical to flat
// aggregation at any thread count and any edge size
// (tests/population_test.cpp memcmps it across 1/2/8 threads).
//
// What the tiers buy, then, is not a different answer but a different
// working set: an edge only ever needs its `edge_size` client uploads plus
// the one chained accumulator resident — the population-scale engine
// retires each cohort chunk's buffers before the next edge runs.
//
// Robust bases (krum, trimmed-mean, median, norm-clip) are order
// statistics / selection over the WHOLE update set — they do not decompose
// into per-edge partials at all (the coordinate-wise median of medians is
// not the median). For those the root delegates wholesale to
// base->aggregate(), which is both the only correct reduction and still
// bitwise-identical to flat by construction.
#pragma once

#include <memory>

#include "fl/aggregation.h"

namespace goldfish::fl::population {

class HierarchicalAggregator final : public Aggregator {
 public:
  using Aggregator::aggregate;
  /// `base` supplies the weights (or, if robust, the whole reduction);
  /// `edge_size` ≥ 1 is the cohort-chunk width of one edge aggregator.
  HierarchicalAggregator(std::unique_ptr<Aggregator> base, long edge_size);

  Capabilities capabilities() const override { return base_->capabilities(); }
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates,
      const std::vector<float>* multipliers) const override;
  std::string name() const override { return "hier+" + base_->name(); }

  long edge_size() const { return edge_size_; }
  const Aggregator& base() const { return *base_; }

  /// Edge reductions performed over this aggregator's lifetime (exposed so
  /// tests can pin that the tiering actually ran).
  std::size_t edge_reductions() const { return edge_reductions_; }

 private:
  std::unique_ptr<Aggregator> base_;
  long edge_size_;
  mutable std::size_t edge_reductions_ = 0;
};

}  // namespace goldfish::fl::population
