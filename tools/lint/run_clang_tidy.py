#!/usr/bin/env python3
"""Run the repo's curated clang-tidy profile (.clang-tidy) over the tree,
gated by a fingerprint baseline — the same burn-down model as
goldfish_lint.py.

  python3 tools/lint/run_clang_tidy.py            # lint, fail on new findings
  python3 tools/lint/run_clang_tidy.py --update-baseline
  python3 tools/lint/run_clang_tidy.py --require  # CI: missing binary fails

Files come from build/compile_commands.json (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON, the default here), filtered to in-tree
sources — fetched third-party code (build/_deps) is never linted. Findings
are fingerprinted as sha1(check|file|normalized-line)[:occurrence] so
baseline entries survive unrelated line shifts; `--update-baseline` rewrites
tools/lint/clang_tidy_baseline.json.

Without a clang-tidy binary the script reports SKIPPED and exits 0 (the dev
container ships gcc only); pass --require to turn that into a failure — CI
does, after installing clang-tidy.

Exit codes: 0 clean/skipped, 1 new findings, 2 infrastructure error.
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys

IN_TREE = ("src/", "tests/", "bench/", "examples/")
DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<sev>warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[^\]]+)\]\s*$")


def find_clang_tidy(explicit=None):
    candidates = [explicit] if explicit else []
    candidates += ["clang-tidy"] + [f"clang-tidy-{v}"
                                    for v in range(22, 11, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return shutil.which(c)
    return None


def tree_files(compdb_path, repo_root):
    """In-tree translation units from compile_commands.json, deduped."""
    try:
        with open(compdb_path) as fh:
            entries = json.load(fh)
    except (OSError, ValueError) as e:
        raise SystemExit(
            f"run_clang_tidy: cannot read {compdb_path} ({e}); configure "
            "with cmake -B build first") from e
    files = set()
    for e in entries:
        path = os.path.realpath(
            os.path.join(e.get("directory", "."), e["file"]))
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        if rel.startswith(IN_TREE) and os.path.isfile(path):
            files.add(path)
    return sorted(files)


def normalize(text):
    return re.sub(r"\s+", " ", text).strip()


def parse_diagnostics(output, repo_root):
    """[(check, relfile, line, message, source_line_text)] from one run."""
    found = []
    for raw in output.splitlines():
        m = DIAG_RE.match(raw)
        if not m:
            continue
        path = os.path.realpath(m.group("file"))
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        if rel.startswith(".."):  # diagnostics from system headers
            continue
        found.append((m.group("check"), rel, int(m.group("line")),
                      m.group("msg")))
    return found


def snippet(repo_root, rel, line):
    try:
        with open(os.path.join(repo_root, rel), encoding="utf-8",
                  errors="replace") as fh:
            lines = fh.read().splitlines()
        return lines[line - 1] if 1 <= line <= len(lines) else ""
    except OSError:
        return ""


def fingerprints(findings, repo_root):
    """{fingerprint: finding}: sha1 of (check|file|normalized snippet) with
    an occurrence counter, line-number independent."""
    seen = {}
    fps = {}
    for f in sorted(findings, key=lambda f: (f[1], f[2], f[0])):
        check, rel, line, _msg = f
        base = f"{check}|{rel}|{normalize(snippet(repo_root, rel, line))}"
        n = seen.get(base, 0)
        seen[base] = n + 1
        fp = hashlib.sha1(f"{base}|{n}".encode()).hexdigest()[:16]
        fps[fp] = f
    return fps


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compdb", default=None)
    ap.add_argument("--repo", default=None)
    ap.add_argument("--clang-tidy", default=None, dest="binary")
    ap.add_argument("--baseline", default=None)
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--require", action="store_true",
                    help="fail (exit 2) when no clang-tidy binary exists")
    ap.add_argument("-j", "--jobs", type=int,
                    default=min(8, os.cpu_count() or 1))
    args = ap.parse_args(argv)

    repo_root = os.path.realpath(
        args.repo or os.path.join(os.path.dirname(
            os.path.realpath(__file__)), "..", ".."))
    compdb = args.compdb or os.path.join(repo_root, "build",
                                         "compile_commands.json")
    baseline_path = args.baseline or os.path.join(
        repo_root, "tools", "lint", "clang_tidy_baseline.json")

    binary = find_clang_tidy(args.binary)
    if binary is None:
        msg = "run_clang_tidy: no clang-tidy binary found"
        if args.require:
            print(msg + " (--require set)", file=sys.stderr)
            return 2
        print(msg + "; SKIPPED")
        return 0

    files = tree_files(compdb, repo_root)
    if not files:
        print("run_clang_tidy: no in-tree files in compile database",
              file=sys.stderr)
        return 2

    build_dir = os.path.dirname(os.path.realpath(compdb))

    def run_one(path):
        proc = subprocess.run(
            [binary, "-p", build_dir, "--quiet", path],
            capture_output=True, text=True, cwd=repo_root)
        return parse_diagnostics(proc.stdout, repo_root)

    findings = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        for batch in ex.map(run_one, files):
            findings.extend(batch)
    # The same header diagnostic surfaces once per includer; one finding.
    findings = sorted({f for f in findings})

    fps = fingerprints(findings, repo_root)

    if args.update_baseline:
        payload = {
            "_comment": "clang-tidy baseline: legacy findings that do not "
                        "fail CI. Burn down by fixing + rerunning "
                        "run_clang_tidy.py --update-baseline; new findings "
                        "always fail. See docs/static-analysis.md.",
            "version": 1,
            "findings": [
                {"fingerprint": fp, "check": f[0], "file": f[1],
                 "line": f[2], "message": f[3]}
                for fp, f in sorted(fps.items(),
                                    key=lambda kv: (kv[1][1], kv[1][2]))],
        }
        with open(baseline_path, "w") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"run_clang_tidy: baseline updated with {len(fps)} finding(s)"
              f" -> {os.path.relpath(baseline_path, repo_root)}")
        return 0

    known = set()
    if os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            known = {e["fingerprint"]
                     for e in json.load(fh).get("findings", [])}

    new = {fp: f for fp, f in fps.items() if fp not in known}
    stale = known - set(fps)
    for fp, (check, rel, line, msg) in sorted(new.items(),
                                              key=lambda kv: (kv[1][1],
                                                              kv[1][2])):
        print(f"{rel}:{line}: {msg} [{check}] ({fp})", file=sys.stderr)
    print(f"run_clang_tidy: {len(files)} file(s), {len(fps)} finding(s), "
          f"{len(new)} new, {len(fps) - len(new)} baselined"
          + (f", {len(stale)} stale baseline entr(y/ies) — run "
             "--update-baseline" if stale else ""))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
