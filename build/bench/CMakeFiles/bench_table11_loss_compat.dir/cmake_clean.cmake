file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_loss_compat.dir/bench_table11_loss_compat.cpp.o"
  "CMakeFiles/bench_table11_loss_compat.dir/bench_table11_loss_compat.cpp.o.d"
  "bench_table11_loss_compat"
  "bench_table11_loss_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_loss_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
