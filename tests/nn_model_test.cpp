// Model-level semantics: snapshot/load, cloning, parameter-space arithmetic,
// SGD behaviour, and that training actually learns.
#include <gtest/gtest.h>

#include "nn/models.h"
#include "nn/sgd.h"
#include "losses/hard_loss.h"

namespace goldfish {
namespace {

nn::Model tiny_mlp(std::uint64_t seed = 1) {
  Rng rng(seed);
  return nn::make_mlp({1, 2, 2}, 8, 3, rng);
}

TEST(Model, SnapshotLoadRoundTrip) {
  nn::Model m = tiny_mlp();
  auto snap = m.snapshot();
  // Perturb, then restore.
  auto ps = m.params();
  (*ps[0].value)[0] += 5.0f;
  m.load(snap);
  EXPECT_FLOAT_EQ((*m.params()[0].value)[0], snap[0][0]);
}

TEST(Model, LoadRejectsWrongLayout) {
  nn::Model m = tiny_mlp();
  auto snap = m.snapshot();
  snap.pop_back();
  EXPECT_THROW(m.load(snap), CheckError);
}

TEST(Model, CopyIsDeep) {
  nn::Model a = tiny_mlp();
  nn::Model b = a;
  (*a.params()[0].value)[0] += 3.0f;
  EXPECT_NE((*a.params()[0].value)[0], (*b.params()[0].value)[0]);
}

TEST(Model, ZeroGradClearsAccumulators) {
  nn::Model m = tiny_mlp();
  Rng rng(2);
  Tensor x = Tensor::randn({4, 4}, rng);
  losses::CrossEntropyLoss ce;
  const std::vector<long> y{0, 1, 2, 0};
  auto r = ce.eval(m.forward(x, true), y);
  m.backward(r.grad_logits);
  bool any_nonzero = false;
  for (auto p : m.params())
    if (p.grad != nullptr && p.grad->squared_norm() > 0) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
  m.zero_grad();
  for (auto p : m.params()) {
    if (p.grad != nullptr) {
      EXPECT_FLOAT_EQ(p.grad->squared_norm(), 0.0f);
    }
  }
}

TEST(SnapshotArithmetic, AxpyAndDistance) {
  nn::Model a = tiny_mlp(1);
  nn::Model b = tiny_mlp(2);
  auto sa = a.snapshot();
  auto sb = b.snapshot();
  const float d0 = nn::snapshot_distance_sq(sa, sb);
  EXPECT_GT(d0, 0.0f);
  // sa + 1.0·(sb − sa) = sb
  std::vector<Tensor> diff = sb;
  nn::axpy(diff, sa, -1.0f);
  nn::axpy(sa, diff, 1.0f);
  EXPECT_NEAR(nn::snapshot_distance_sq(sa, sb), 0.0f, 1e-8f);
}

TEST(SnapshotArithmetic, WeightedAverageInterpolates) {
  nn::Model a = tiny_mlp(3);
  nn::Model b = tiny_mlp(4);
  auto avg = nn::weighted_average({a.snapshot(), b.snapshot()}, {1.0f, 1.0f});
  for (std::size_t t = 0; t < avg.size(); ++t)
    for (std::size_t i = 0; i < avg[t].numel(); ++i)
      EXPECT_NEAR(avg[t][i],
                  0.5f * (a.snapshot()[t][i] + b.snapshot()[t][i]), 1e-6f);
}

TEST(SnapshotArithmetic, WeightedAverageUnnormalizedWeights) {
  nn::Model a = tiny_mlp(5);
  auto avg =
      nn::weighted_average({a.snapshot(), a.snapshot()}, {2.0f, 6.0f});
  // Averaging a model with itself is identity regardless of weights.
  EXPECT_NEAR(nn::snapshot_distance_sq(avg, a.snapshot()), 0.0f, 1e-10f);
}

TEST(SnapshotArithmetic, ZeroWeightsThrow) {
  nn::Model a = tiny_mlp(6);
  EXPECT_THROW(nn::weighted_average({a.snapshot()}, {0.0f}), CheckError);
  EXPECT_THROW(nn::weighted_average({a.snapshot()}, {-1.0f}), CheckError);
}

TEST(Sgd, StepMovesAgainstGradient) {
  nn::Model m = tiny_mlp(7);
  nn::Sgd::Options o;
  o.lr = 0.1f;
  o.momentum = 0.0f;
  o.clip_norm = 0.0f;
  nn::Sgd sgd(o);
  auto ps = m.params();
  const float w0 = (*ps[0].value)[0];
  (*ps[0].grad)[0] = 2.0f;
  sgd.step(m);
  EXPECT_FLOAT_EQ((*m.params()[0].value)[0], w0 - 0.2f);
  // Gradients cleared after the step.
  EXPECT_FLOAT_EQ((*m.params()[0].grad)[0], 0.0f);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Model m = tiny_mlp(8);
  nn::Sgd::Options o;
  o.lr = 1.0f;
  o.momentum = 0.5f;
  o.clip_norm = 0.0f;
  nn::Sgd sgd(o);
  const float w0 = (*m.params()[0].value)[0];
  (*m.params()[0].grad)[0] = 1.0f;
  sgd.step(m);  // v=1, w -= 1
  (*m.params()[0].grad)[0] = 1.0f;
  sgd.step(m);  // v=1.5, w -= 1.5
  EXPECT_NEAR((*m.params()[0].value)[0], w0 - 2.5f, 1e-6f);
}

TEST(Sgd, ClipNormLimitsStep) {
  nn::Model m = tiny_mlp(9);
  nn::Sgd::Options o;
  o.lr = 1.0f;
  o.momentum = 0.0f;
  o.clip_norm = 1.0f;
  nn::Sgd sgd(o);
  const float w0 = (*m.params()[0].value)[0];
  (*m.params()[0].grad)[0] = 100.0f;  // norm 100 → scaled to 1
  sgd.step(m);
  EXPECT_NEAR((*m.params()[0].value)[0], w0 - 1.0f, 1e-4f);
}

TEST(Training, MlpLearnsSeparableBlobs) {
  // Two Gaussian blobs in 2-D; an MLP should reach near-perfect train
  // accuracy in a few epochs — the "does anything learn at all" smoke test.
  Rng rng(10);
  const long n = 200;
  Tensor x({n, 4});
  std::vector<long> y(n);
  for (long i = 0; i < n; ++i) {
    const long label = i % 2;
    for (long j = 0; j < 4; ++j)
      x.at(i, j) = rng.normal(label == 0 ? -1.0f : 1.0f, 0.4f);
    y[static_cast<std::size_t>(i)] = label;
  }
  nn::Model m = nn::make_mlp({1, 2, 2}, 16, 2, rng);
  losses::CrossEntropyLoss ce;
  nn::Sgd::Options o;
  o.lr = 0.1f;
  nn::Sgd sgd(o);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 30; ++epoch) {
    auto r = ce.eval(m.forward(x, true), y);
    m.backward(r.grad_logits);
    sgd.step(m);
    if (epoch == 0) first_loss = r.value;
    last_loss = r.value;
  }
  EXPECT_LT(last_loss, 0.25f * first_loss);
}

}  // namespace
}  // namespace goldfish
