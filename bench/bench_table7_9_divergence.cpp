// Tables VII–IX: JSD and L2 distance of (B3, Ours) against the B1 reference
// retrain, plus a Welch t-test of each method's prediction-confidence series
// against the original (contaminated) model, on MNIST / FMNIST / CIFAR-10.
// Paper shape: both methods land close to B1 (small L2); Ours has JSD ≤ B3
// and smaller t-test p-values (more separated from the backdoored model).
#include "bench/common.h"

namespace goldfish::bench {
namespace {

const char* table_number(data::DatasetKind kind) {
  switch (kind) {
    case data::DatasetKind::Mnist:
      return "VII";
    case data::DatasetKind::FashionMnist:
      return "VIII";
    default:
      return "IX";
  }
}

void run_dataset(data::DatasetKind kind) {
  const long rounds = metrics::full_scale() ? 6 : 3;
  metrics::TableReporter table(
      std::string("Table ") + table_number(kind) +
          " — JSD / L2 / t-test vs B1, " + data::dataset_name(kind),
      {"rate%", "B3 JSD", "B3 L2", "B3 T-test", "Ours JSD", "Ours L2",
       "Ours T-test"});
  for (float rate : deletion_rates()) {
    Scenario s = make_scenario(kind, rate,
                               8000 + static_cast<std::uint64_t>(rate * 1e4));
    MethodResult ours = run_ours(s, rounds);
    MethodResult b1 = run_b1(s, rounds);
    MethodResult b3 = run_b3(s, rounds);

    // JSD / L2 are computed on the trigger-probe set: that is where any
    // residual backdoor bias lives, so distance-to-B1 there measures how
    // thoroughly each method matched the reference retrain's forgetting.
    const auto p_b1 = metrics::mean_prediction(b1.model, s.probe);
    const auto p_b3 = metrics::mean_prediction(b3.model, s.probe);
    const auto p_ours = metrics::mean_prediction(ours.model, s.probe);

    // t-test: clean-test confidence series, method vs origin. Low p ⇒ the
    // unlearned model's prediction pattern differs significantly from the
    // backdoored model's.
    nn::Model origin = s.trained;
    const auto c_origin = metrics::confidence_series(origin, s.tt.test);
    const auto c_b3 = metrics::confidence_series(b3.model, s.tt.test);
    const auto c_ours = metrics::confidence_series(ours.model, s.tt.test);

    table.add_row(
        {metrics::fmt(rate * 100, 0),
         metrics::fmt(metrics::jensen_shannon_divergence(p_b3, p_b1)),
         metrics::fmt(metrics::l2_distance(p_b3, p_b1)),
         metrics::fmt(metrics::welch_ttest(c_b3, c_origin).p_value),
         metrics::fmt(metrics::jensen_shannon_divergence(p_ours, p_b1)),
         metrics::fmt(metrics::l2_distance(p_ours, p_b1)),
         metrics::fmt(metrics::welch_ttest(c_ours, c_origin).p_value)});
  }
  table.print();
  table.write_csv(csv_dir() + "/table" + table_number(kind) + "_" +
                  data::dataset_name(kind) + ".csv");
}

}  // namespace
}  // namespace goldfish::bench

int main() {
  using goldfish::data::DatasetKind;
  goldfish::bench::print_header("Tables VII–IX: statistical similarity to B1");
  for (auto kind : {DatasetKind::Mnist, DatasetKind::FashionMnist,
                    DatasetKind::Cifar10})
    goldfish::bench::run_dataset(kind);
  return 0;
}
