# Empty dependencies file for bench_fig7_shard_deletion.
# This may be replaced when dependencies are built.
