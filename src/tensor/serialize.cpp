#include "tensor/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <numeric>

#include "tensor/annotations.h"
#include "tensor/check.h"

namespace goldfish {

namespace {

constexpr std::uint32_t kMagic = 0x31544647;      // "GFT1"
constexpr std::uint32_t kQuantMagic = 0x31514647;  // "GFQ1"
constexpr std::uint32_t kTopKMagic = 0x314B4647;   // "GFK1"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  GOLDFISH_CHECK(bool(is), "truncated tensor stream");
  return v;
}

void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  GOLDFISH_CHECK(bool(is), "truncated tensor stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u32(os, kMagic);
  write_u32(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i) write_i64(os, t.dim(i));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  GOLDFISH_CHECK(bool(os), "tensor write failed");
}

Tensor read_tensor(std::istream& is) {
  GOLDFISH_CHECK(read_u32(is) == kMagic, "bad tensor magic");
  const std::uint32_t rank = read_u32(is);
  GOLDFISH_CHECK(rank <= 8, "implausible tensor rank");
  Shape shape(rank);
  for (std::uint32_t i = 0; i < rank; ++i) {
    shape[i] = read_i64(is);
    GOLDFISH_CHECK(shape[i] >= 0 && shape[i] < (1L << 32), "bad dim");
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  GOLDFISH_CHECK(bool(is), "truncated tensor payload");
  return t;
}

void save_tensors(const std::string& path, const std::vector<Tensor>& ts) {
  std::ofstream os(path, std::ios::binary);
  GOLDFISH_CHECK(os.is_open(), "cannot open for write: " + path);
  write_u32(os, static_cast<std::uint32_t>(ts.size()));
  for (const Tensor& t : ts) write_tensor(os, t);
}

std::vector<Tensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GOLDFISH_CHECK(is.is_open(), "cannot open for read: " + path);
  const std::uint32_t n = read_u32(is);
  GOLDFISH_CHECK(n < (1u << 20), "implausible tensor count");
  std::vector<Tensor> ts;
  ts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ts.push_back(read_tensor(is));
  return ts;
}

namespace {

/// Bounded little-endian reader over a raw byte buffer: the deserialization
/// twin of the append-based serializer, with the same truncation checks the
/// stream path enforces.
struct ByteReader {
  const char* p;
  std::size_t left;

  template <typename T>
  T take() {
    GOLDFISH_CHECK(left >= sizeof(T), "truncated tensor stream");
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }
};

template <typename T>
void append(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

}  // namespace

GOLDFISH_HOT void serialize_tensors(const std::vector<Tensor>& ts,
                                    std::string& out) {
  out.clear();
  std::size_t total = sizeof(std::uint32_t);
  for (const Tensor& t : ts)
    total += 2 * sizeof(std::uint32_t) + t.rank() * sizeof(std::int64_t) +
             t.numel() * sizeof(float);
  // goldfish-lint: allow(ALLOC002) callers pass a thread_local wire buffer
  // whose capacity is monotonic — steady-state rounds reuse it, alloc-free
  out.reserve(total);
  append(out, static_cast<std::uint32_t>(ts.size()));
  for (const Tensor& t : ts) append_tensor_record(out, t);
}

GOLDFISH_HOT void append_tensor_record(std::string& out, const Tensor& t) {
  append(out, kMagic);
  append(out, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i)
    append(out, static_cast<std::int64_t>(t.dim(i)));
  if (t.numel() != 0)
    // goldfish-lint: allow(ALLOC002) appends into a caller-owned record
    // buffer whose capacity is monotonic — steady-state spills reuse it
    out.append(reinterpret_cast<const char*>(t.data()),
               t.numel() * sizeof(float));
}

GOLDFISH_HOT void read_tensor_record_into(const char* data, std::size_t size,
                                          std::size_t* offset, Tensor& t) {
  GOLDFISH_CHECK(offset != nullptr && *offset <= size, "bad record offset");
  ByteReader r{data + *offset, size - *offset};
  GOLDFISH_CHECK(r.take<std::uint32_t>() == kMagic, "bad tensor magic");
  const std::uint32_t rank = r.take<std::uint32_t>();
  GOLDFISH_CHECK(rank <= 8, "implausible tensor rank");
  Shape shape(rank);
  for (std::uint32_t d = 0; d < rank; ++d) {
    shape[d] = static_cast<long>(r.take<std::int64_t>());
    GOLDFISH_CHECK(shape[d] >= 0 && shape[d] < (1L << 32), "bad dim");
  }
  // In-place landing: a no-op when the destination already holds this shape
  // (the cold store's pooled slots), a pool-recycled growth otherwise.
  t.resize_uninit(shape);
  const std::size_t payload = t.numel() * sizeof(float);
  GOLDFISH_CHECK(r.left >= payload, "truncated tensor payload");
  if (payload != 0) std::memcpy(t.data(), r.p, payload);
  *offset = size - (r.left - payload);
}

std::vector<Tensor> deserialize_tensors(const char* data, std::size_t size) {
  ByteReader r{data, size};
  const std::uint32_t n = r.take<std::uint32_t>();
  GOLDFISH_CHECK(n < (1u << 20), "implausible tensor count");
  std::vector<Tensor> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GOLDFISH_CHECK(r.take<std::uint32_t>() == kMagic, "bad tensor magic");
    const std::uint32_t rank = r.take<std::uint32_t>();
    GOLDFISH_CHECK(rank <= 8, "implausible tensor rank");
    Shape shape(rank);
    for (std::uint32_t d = 0; d < rank; ++d) {
      shape[d] = static_cast<long>(r.take<std::int64_t>());
      GOLDFISH_CHECK(shape[d] >= 0 && shape[d] < (1L << 32), "bad dim");
    }
    Tensor t = Tensor::uninit(std::move(shape));
    const std::size_t payload = t.numel() * sizeof(float);
    GOLDFISH_CHECK(r.left >= payload, "truncated tensor payload");
    if (payload != 0) std::memcpy(t.data(), r.p, payload);
    r.p += payload;
    r.left -= payload;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tensor> roundtrip_through_bytes(const std::vector<Tensor>& ts,
                                            std::size_t* bytes_on_wire) {
  // One wire buffer per worker thread: client uploads are encoded inside
  // scheduler tasks, and the buffer's capacity is reused round after round.
  static thread_local std::string wire;
  serialize_tensors(ts, wire);
  if (bytes_on_wire != nullptr) *bytes_on_wire = wire.size();
  return deserialize_tensors(wire.data(), wire.size());
}

// -- compressed wire records ------------------------------------------------

namespace {

/// Shared per-record prefix of every wire record kind: magic, rank, dims.
void append_record_header(std::string& out, std::uint32_t magic,
                          const Tensor& t) {
  append(out, magic);
  append(out, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i)
    append(out, static_cast<std::int64_t>(t.dim(i)));
}

/// Reads the record prefix written by append_record_header and returns the
/// (still uninitialized) tensor of the recorded shape.
Tensor read_record_header(ByteReader& r, std::uint32_t magic,
                          const char* what) {
  GOLDFISH_CHECK(r.take<std::uint32_t>() == magic,
                 std::string("bad ") + what + " record magic");
  const std::uint32_t rank = r.take<std::uint32_t>();
  GOLDFISH_CHECK(rank <= 8, "implausible tensor rank");
  Shape shape(rank);
  for (std::uint32_t d = 0; d < rank; ++d) {
    shape[d] = static_cast<long>(r.take<std::int64_t>());
    GOLDFISH_CHECK(shape[d] >= 0 && shape[d] < (1L << 32), "bad dim");
  }
  return Tensor::uninit(std::move(shape));
}

}  // namespace

void serialize_quantized(const std::vector<Tensor>& ts, std::string& out) {
  out.clear();
  std::size_t total = sizeof(std::uint32_t);
  for (const Tensor& t : ts)
    total += 2 * sizeof(std::uint32_t) + t.rank() * sizeof(std::int64_t) +
             2 * sizeof(float) + t.numel();
  out.reserve(total);
  append(out, static_cast<std::uint32_t>(ts.size()));
  for (const Tensor& t : ts) {
    append_record_header(out, kQuantMagic, t);
    const float mn = t.empty() ? 0.0f : t.min();
    const float mx = t.empty() ? 0.0f : t.max();
    const float scale = (mx - mn) / 255.0f;
    append(out, mn);
    append(out, scale);
    const float* p = t.data();
    const std::size_t base = out.size();
    out.resize(base + t.numel());
    char* q = &out[base];
    if (scale > 0.0f) {
      const float inv = 1.0f / scale;
      for (std::size_t i = 0; i < t.numel(); ++i) {
        // lround ties away from zero regardless of the FP rounding mode, so
        // the encoding is deterministic across machines; the clamp absorbs
        // (v − mn)/s landing a ULP above 255.
        const long level = std::lround((p[i] - mn) * inv);
        q[i] = static_cast<char>(
            static_cast<unsigned char>(std::clamp(level, 0L, 255L)));
      }
    } else {
      std::memset(q, 0, t.numel());  // constant tensor: everything is mn
    }
  }
}

std::vector<Tensor> deserialize_quantized(const char* data, std::size_t size) {
  ByteReader r{data, size};
  const std::uint32_t n = r.take<std::uint32_t>();
  GOLDFISH_CHECK(n < (1u << 20), "implausible tensor count");
  std::vector<Tensor> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Tensor t = read_record_header(r, kQuantMagic, "quantized");
    const float mn = r.take<float>();
    const float scale = r.take<float>();
    GOLDFISH_CHECK(r.left >= t.numel(), "truncated quantized payload");
    float* p = t.data();
    for (std::size_t j = 0; j < t.numel(); ++j)
      p[j] = mn + float(static_cast<unsigned char>(r.p[j])) * scale;
    r.p += t.numel();
    r.left -= t.numel();
    out.push_back(std::move(t));
  }
  return out;
}

long topk_count(long numel, double fraction) {
  if (numel <= 0) return 0;
  const long k = static_cast<long>(std::ceil(fraction * double(numel)));
  return std::clamp(k, 1L, numel);
}

void serialize_topk(const std::vector<Tensor>& ts, double fraction,
                    std::string& out) {
  GOLDFISH_CHECK(fraction > 0.0 && fraction <= 1.0,
                 "top-k fraction must be in (0, 1]");
  out.clear();
  std::size_t total = sizeof(std::uint32_t);
  for (const Tensor& t : ts)
    total += 3 * sizeof(std::uint32_t) + t.rank() * sizeof(std::int64_t) +
             static_cast<std::size_t>(topk_count(long(t.numel()), fraction)) *
                 (sizeof(std::uint32_t) + sizeof(float));
  out.reserve(total);
  append(out, static_cast<std::uint32_t>(ts.size()));
  // Selection scratch, reused across tensors and calls (the FL upload path
  // encodes inside scheduler tasks, one buffer per worker thread).
  static thread_local std::vector<std::uint32_t> order;
  for (const Tensor& t : ts) {
    GOLDFISH_CHECK(t.numel() < (1ULL << 32), "tensor too large for top-k");
    append_record_header(out, kTopKMagic, t);
    const long k = topk_count(static_cast<long>(t.numel()), fraction);
    append(out, static_cast<std::uint32_t>(k));
    const float* p = t.data();
    order.resize(t.numel());
    std::iota(order.begin(), order.end(), 0u);
    // Strict total order (|value| descending, flat index ascending as the
    // tie-break), so the kept set — and therefore the byte stream — is
    // unique no matter how nth_element partitions.
    const auto larger = [p](std::uint32_t a, std::uint32_t b) {
      const float fa = std::fabs(p[a]), fb = std::fabs(p[b]);
      if (fa != fb) return fa > fb;
      return a < b;
    };
    if (static_cast<std::size_t>(k) < order.size())
      std::nth_element(order.begin(), order.begin() + k, order.end(), larger);
    std::sort(order.begin(), order.begin() + k);  // canonical: ascending index
    for (long j = 0; j < k; ++j) append(out, order[static_cast<std::size_t>(j)]);
    for (long j = 0; j < k; ++j)
      append(out, p[order[static_cast<std::size_t>(j)]]);
  }
}

std::vector<Tensor> deserialize_topk(const char* data, std::size_t size) {
  ByteReader r{data, size};
  const std::uint32_t n = r.take<std::uint32_t>();
  GOLDFISH_CHECK(n < (1u << 20), "implausible tensor count");
  std::vector<Tensor> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Tensor t = read_record_header(r, kTopKMagic, "top-k");
    const std::uint32_t k = r.take<std::uint32_t>();
    GOLDFISH_CHECK(k <= t.numel(), "top-k k exceeds element count");
    GOLDFISH_CHECK(r.left >= std::size_t(k) * (sizeof(std::uint32_t) +
                                               sizeof(float)),
                   "truncated top-k payload");
    std::memset(t.data(), 0, t.numel() * sizeof(float));
    const char* idx_bytes = r.p;
    const char* val_bytes = r.p + std::size_t(k) * sizeof(std::uint32_t);
    std::uint32_t prev = 0;
    for (std::uint32_t j = 0; j < k; ++j) {
      std::uint32_t idx;
      float val;
      std::memcpy(&idx, idx_bytes + std::size_t(j) * sizeof(idx), sizeof(idx));
      std::memcpy(&val, val_bytes + std::size_t(j) * sizeof(val), sizeof(val));
      GOLDFISH_CHECK(idx < t.numel(), "top-k index out of range");
      GOLDFISH_CHECK(j == 0 || idx > prev, "top-k indices not ascending");
      prev = idx;
      t.data()[idx] = val;
    }
    const std::size_t payload =
        std::size_t(k) * (sizeof(std::uint32_t) + sizeof(float));
    r.p += payload;
    r.left -= payload;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace goldfish
