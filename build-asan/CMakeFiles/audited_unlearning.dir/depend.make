# Empty dependencies file for audited_unlearning.
# This may be replaced when dependencies are built.
