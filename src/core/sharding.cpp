#include "core/sharding.h"

#include <algorithm>
#include <unordered_set>

#include "data/partition.h"
#include "tensor/check.h"

namespace goldfish::core {

ShardManager::ShardManager(const nn::Model& init, data::Dataset local_data,
                           long num_shards, Rng& rng)
    : init_(init) {
  const auto idx = data::shard_indices(local_data.size(), num_shards, rng);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (const auto& rows : idx) {
    Shard s;
    s.data = local_data.subset(rows);
    s.row_ids = rows;
    s.model = init;  // deep copy
    shards_.push_back(std::move(s));
  }
}

long ShardManager::total_rows() const {
  long n = 0;
  for (const Shard& s : shards_) n += s.data.size();
  return n;
}

long ShardManager::shard_rows(long shard) const {
  GOLDFISH_CHECK(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<std::size_t>(shard)].data.size();
}

void ShardManager::train_all(const fl::TrainOptions& opts,
                             runtime::Scheduler* sched) {
  if (sched == nullptr) sched = &runtime::Scheduler::global();
  // grain=1: one body retrains a whole shard.
  sched->parallel_map(
      shards_.size(),
      [&](std::size_t i) {
        Shard& s = shards_[i];
        if (s.data.empty()) return;
        fl::TrainOptions o = opts;
        o.seed = opts.seed ^ (train_seed_ + i * 0x9E3779B9ull);
        fl::train_local(s.model, s.data, o);
      },
      /*grain=*/1);
  ++train_seed_;
}

std::vector<Tensor> ShardManager::aggregate() const {
  std::vector<std::vector<Tensor>> snaps;
  std::vector<float> weights;
  for (const Shard& s : shards_) {
    if (s.data.empty()) continue;
    snaps.push_back(s.model.snapshot());
    weights.push_back(static_cast<float>(s.data.size()));
  }
  GOLDFISH_CHECK(!snaps.empty(), "all shards empty");
  return nn::weighted_average(snaps, weights);
}

ShardManager::DeletionReport ShardManager::delete_rows(
    const std::vector<std::size_t>& rows, const fl::TrainOptions& opts,
    runtime::Scheduler* sched) {
  const std::unordered_set<std::size_t> doomed(rows.begin(), rows.end());
  DeletionReport report;

  // Phase 1: drop rows shard by shard; note which shards were touched.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    std::vector<std::size_t> keep_local;
    for (std::size_t r = 0; r < s.row_ids.size(); ++r) {
      if (doomed.count(s.row_ids[r]) == 0) {
        keep_local.push_back(r);
      } else {
        ++report.rows_deleted;
      }
    }
    if (keep_local.size() == s.row_ids.size()) continue;  // untouched
    report.affected_shards.push_back(static_cast<long>(i));
    std::vector<std::size_t> new_row_ids;
    new_row_ids.reserve(keep_local.size());
    for (std::size_t r : keep_local) new_row_ids.push_back(s.row_ids[r]);
    s.data = s.data.subset(keep_local);
    s.row_ids = std::move(new_row_ids);
  }

  // Phase 2: affected shards reset to the pristine initial weights and
  // retrain on their remaining rows — the deleted data's influence lives in
  // the old shard weights, so they cannot be reused. Only the *unaffected*
  // shards keep their weights (the Eq. 9 checkpoint). Parallel when several
  // shards are involved (Fig. 3).
  for (const long shard : report.affected_shards)
    report.rows_retrained += shards_[static_cast<std::size_t>(shard)]
                                 .data.size();
  if (sched == nullptr) sched = &runtime::Scheduler::global();
  // grain=1: one body retrains a whole affected shard from scratch.
  sched->parallel_map(
      report.affected_shards.size(),
      [&](std::size_t k) {
        const long shard = report.affected_shards[k];
        Shard& s = shards_[static_cast<std::size_t>(shard)];
        s.model = init_;
        if (s.data.empty()) return;
        fl::TrainOptions o = opts;
        o.seed = opts.seed ^ (0xDE1E7Eull + static_cast<std::size_t>(shard));
        fl::train_local(s.model, s.data, o);
      },
      /*grain=*/1);
  return report;
}

std::vector<Tensor> ShardManager::recover_shard_weights(long shard) const {
  GOLDFISH_CHECK(shard >= 0 && shard < num_shards(), "shard out of range");
  const Shard& target = shards_[static_cast<std::size_t>(shard)];
  GOLDFISH_CHECK(!target.data.empty(), "cannot recover an empty shard");
  const long total = total_rows();

  // Eq. 10: ω_i = (|D|/|D_i|)·(ω − Σ_{j≠i} (|D_j|/|D|)·ω_j)
  std::vector<Tensor> acc = aggregate();
  for (std::size_t j = 0; j < shards_.size(); ++j) {
    const Shard& other = shards_[j];
    if (static_cast<long>(j) == shard || other.data.empty()) continue;
    const float w = static_cast<float>(other.data.size()) /
                    static_cast<float>(total);
    nn::axpy(acc, other.model.snapshot(), -w);
  }
  const float scale = static_cast<float>(total) /
                      static_cast<float>(target.data.size());
  for (Tensor& t : acc) t *= scale;
  return acc;
}

nn::Model& ShardManager::shard_model(long shard) {
  GOLDFISH_CHECK(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<std::size_t>(shard)].model;
}

const data::Dataset& ShardManager::shard_data(long shard) const {
  GOLDFISH_CHECK(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<std::size_t>(shard)].data;
}

const std::vector<std::size_t>& ShardManager::shard_row_ids(
    long shard) const {
  GOLDFISH_CHECK(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<std::size_t>(shard)].row_ids;
}

}  // namespace goldfish::core
