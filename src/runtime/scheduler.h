// Unified parallel runtime: one process-wide worker pool shared by every
// layer of the library, from kernel-level `parallel_for` inside GEMM up to
// the FL simulator's "foreach client in parallel" loops.
//
// The previous substrate was split in two — spawn-per-call std::threads for
// tensor kernels and a blocking fixed pool (`fl::ThreadPool`) for client
// tasks — which oversubscribed the machine whenever a client task hit a
// parallel kernel. The Scheduler fixes this with *caller participation*:
// a thread that opens a parallel region claims and executes chunks itself
// while idle workers help. Nested regions therefore never deadlock and
// never spawn threads; at worst they run inline on the calling worker.
//
// Determinism: chunk *assignment* to threads is dynamic, but chunk contents
// and the per-chunk execution order are fixed independent of the thread
// count, so any data-race-free body whose chunks touch disjoint state
// produces identical results with 1 or N threads (the GEMM backbone relies
// on this; see runtime/gemm.h).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace goldfish::runtime {

class Scheduler {
 public:
  /// `parallelism == 0` → GOLDFISH_THREADS env var, else hardware
  /// concurrency. A parallelism of p spawns p−1 workers; the thread that
  /// opens a parallel region is always the p-th lane. `Scheduler(1)` spawns
  /// no threads at all and runs everything inline (the serial baseline for
  /// determinism tests).
  explicit Scheduler(std::size_t parallelism = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Degree of parallelism (worker threads + the participating caller).
  std::size_t parallelism() const { return workers_.size() + 1; }

  /// The process-wide scheduler every layer shares by default.
  static Scheduler& global();

  /// Run fn(begin, end) over [0, n) split into contiguous chunks of at
  /// least `grain` indices. The caller executes chunks too, so calling this
  /// from inside a worker task is safe and deadlock-free. Blocks until all
  /// chunks finish; the first exception thrown by fn is rethrown here.
  void parallel_for(long n, const std::function<void(long, long)>& fn,
                    long grain = 1);

  /// Apply fn(i) for i in [0, n); task-level parallelism for coarse work
  /// (FL clients, shard retraining). Same nesting and exception rules as
  /// parallel_for.
  void parallel_map(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueue a standalone task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Pop one queued task and run it on the calling thread; false when the
  /// queue is empty. The caller-participation primitive for submit():
  /// threads waiting on futures execute pending work instead of blocking.
  bool try_run_one();

  /// Block until `fut` is ready, draining queued tasks on this thread while
  /// waiting. This is how a consumer collects submit() futures in its own
  /// completion order (the async FL loop drains them in virtual-clock
  /// order): deadlock-free at any parallelism, because the waiter is itself
  /// a worker lane — even at parallelism 1, where no worker threads exist.
  template <typename T>
  void drain_until_ready(const std::future<T>& fut) {
    while (fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      // Nothing runnable here: the task is mid-flight on another worker.
      // A short timed wait bounds the latency of noticing completion.
      if (!try_run_one()) fut.wait_for(std::chrono::microseconds(200));
    }
  }

 private:
  /// Shared bookkeeping of one parallel region.
  struct Region {
    const std::function<void(long, long)>* fn = nullptr;
    long n = 0;
    long chunk = 1;
    long nchunks = 0;
    std::atomic<long> next{0};
    std::atomic<long> completed{0};
    std::atomic<bool> abort{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };

  void enqueue(std::function<void()> task);
  void worker_loop();
  static void run_chunks(const std::shared_ptr<Region>& region);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Resolve a config's thread-count knob: 0 → the shared global Scheduler,
/// non-zero → a private pool with that parallelism, kept alive in `owned`.
/// Shared by every component exposing a `threads` field (FlConfig,
/// UnlearnConfig) so their selection semantics cannot drift apart.
inline Scheduler& scheduler_for(std::size_t threads,
                                std::unique_ptr<Scheduler>& owned) {
  if (threads != 0) {
    owned = std::make_unique<Scheduler>(threads);
    return *owned;
  }
  return Scheduler::global();
}

}  // namespace goldfish::runtime

namespace goldfish {

/// Kernel-level data parallelism on the shared global scheduler. The grain
/// default suits elementwise/rowwise loops: regions smaller than one grain
/// run inline with zero scheduling cost.
inline void parallel_for(long n, const std::function<void(long, long)>& fn,
                         long grain = 1024) {
  runtime::Scheduler::global().parallel_for(n, fn, grain);
}

}  // namespace goldfish
