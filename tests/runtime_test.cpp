// The unified parallel runtime: caller-participating Scheduler shared by
// kernel-level parallel_for and task-level parallel_map, including the
// nested-parallelism guarantees the FL simulator relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/scheduler.h"

namespace goldfish {
namespace {

TEST(Scheduler, RunsAllTasks) {
  runtime::Scheduler sched(4);
  std::atomic<int> count{0};
  sched.parallel_map(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, SubmitReturnsValue) {
  runtime::Scheduler sched(2);
  auto fut = sched.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(Scheduler, SubmitOnSerialSchedulerRunsInline) {
  // A zero-worker scheduler has no queue consumer; submit must still
  // complete the future (inline) rather than deadlock.
  runtime::Scheduler sched(1);
  auto fut = sched.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(Scheduler, ExceptionsPropagate) {
  runtime::Scheduler sched(2);
  EXPECT_THROW(
      sched.parallel_map(4,
                         [](std::size_t i) {
                           if (i == 2) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(Scheduler, ActuallyParallel) {
  runtime::Scheduler sched(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  sched.parallel_map(8, [&](std::size_t) {
    const int now = concurrent.fetch_add(1) + 1;
    int expect = peak.load();
    while (now > expect && !peak.compare_exchange_weak(expect, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    concurrent.fetch_sub(1);
  });
  EXPECT_GT(peak.load(), 1);
}

TEST(Scheduler, SerialSchedulerSpawnsNoThreads) {
  runtime::Scheduler sched(1);
  EXPECT_EQ(sched.parallelism(), 1u);
  const auto caller = std::this_thread::get_id();
  sched.parallel_for(100, [&](long, long) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(Scheduler, ParallelForCoversEveryIndexOnce) {
  runtime::Scheduler sched(4);
  std::vector<std::atomic<int>> hits(1000);
  sched.parallel_for(
      1000,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i)
          hits[static_cast<std::size_t>(i)].fetch_add(1);
      },
      /*grain=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ChunksRespectGrain) {
  runtime::Scheduler sched(4);
  std::atomic<long> calls{0};
  sched.parallel_for(
      100,
      [&](long lo, long hi) {
        EXPECT_GE(hi - lo, 1L);
        EXPECT_LE(hi - lo, 30L);
        calls.fetch_add(1);
      },
      /*grain=*/30);
  EXPECT_EQ(calls.load(), 4);  // ceil(100/30)
}

// The property the single-pool design exists for: a parallel_for opened
// from inside a parallel_map task (kernel inside an FL client) completes
// without deadlock and without spawning extra threads, even when every
// worker is busy with client tasks.
TEST(Scheduler, NestedParallelismDoesNotDeadlock) {
  runtime::Scheduler sched(3);
  std::atomic<long> total{0};
  sched.parallel_map(8, [&](std::size_t) {
    sched.parallel_for(
        64, [&](long lo, long hi) { total.fetch_add(hi - lo); },
        /*grain=*/4);
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(Scheduler, DeeplyNestedRegionsComplete) {
  runtime::Scheduler sched(2);
  std::atomic<long> leaves{0};
  sched.parallel_map(4, [&](std::size_t) {
    sched.parallel_map(4, [&](std::size_t) {
      sched.parallel_for(4, [&](long lo, long hi) {
        leaves.fetch_add(hi - lo);
      });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(Scheduler, GlobalIsSingleInstance) {
  runtime::Scheduler& a = runtime::Scheduler::global();
  runtime::Scheduler& b = runtime::Scheduler::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.parallelism(), 1u);
}

TEST(Scheduler, FreeParallelForRunsInlineBelowGrain) {
  const auto caller = std::this_thread::get_id();
  long covered = 0;
  // n < default grain → must run inline on the caller, zero scheduling.
  parallel_for(100, [&](long lo, long hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    covered += hi - lo;
  });
  EXPECT_EQ(covered, 100);
}

}  // namespace
}  // namespace goldfish
