// DET001 fixture: banned randomness sources. Every engine-visible random
// stream must come from a seeded generator (tensor/rng.h) so runs replay
// bit-identically; ambient entropy below breaks that silently.
// The `EXPECT: <rule>` markers are what test_goldfish_lint.py pins.
#include <cstdlib>
#include <random>

int ambient_entropy() {
  std::random_device rd;              // EXPECT: DET001
  return static_cast<int>(rd());
}

int libc_rand() {
  std::srand(42);                     // EXPECT: DET001
  return std::rand();                 // EXPECT: DET001
}

double posix_rand() {
  return drand48();                   // EXPECT: DET001
}

// Seeded engines are fine: the seed is part of the scenario, so the stream
// is reproducible. No finding expected.
int seeded_ok(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<int>(gen());
}
