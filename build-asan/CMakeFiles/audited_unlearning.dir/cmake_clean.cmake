file(REMOVE_RECURSE
  "CMakeFiles/audited_unlearning.dir/examples/audited_unlearning.cpp.o"
  "CMakeFiles/audited_unlearning.dir/examples/audited_unlearning.cpp.o.d"
  "audited_unlearning"
  "audited_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audited_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
