// Model evaluation: accuracy, backdoor attack success rate, MSE — the
// quantities every table in the paper reports.
#pragma once

#include "data/dataset.h"
#include "nn/model.h"

namespace goldfish::metrics {

/// Number of rows of `logits` whose argmax equals labels[i]. Strict '>'
/// keeps the first maximum, so ties resolve identically everywhere accuracy
/// is counted (free-function, batched-evaluator and stacked-client paths).
long correct_predictions(const Tensor& logits, const long* labels, long rows);

/// total += Σ over rows and classes of (probs[i,j] − onehot(labels[i]))²,
/// accumulated in row-major order (the Eq. 12 inner sum; the fixed order
/// keeps MSE bit-identical across evaluation chunkings).
void accumulate_squared_error(const Tensor& probs, const long* labels,
                              long rows, double& total);

/// Classification accuracy (%) of a model over a dataset, evaluated in
/// batches (eval mode, running batch-norm stats).
double accuracy(nn::Model& model, const data::Dataset& ds,
                long batch_size = 256);

/// Backdoor attack success rate (%): fraction of a trigger-probe set
/// classified as the attacker's target label. The probe set already carries
/// the target label on every row, so this is accuracy on the probe.
double attack_success_rate(nn::Model& model, const data::Dataset& probe,
                           long batch_size = 256);

/// Mean squared error between the model's softmax outputs and one-hot
/// labels — the "me" quantity of the adaptive-weight mechanism (Eq. 12).
double mse(nn::Model& model, const data::Dataset& ds, long batch_size = 256);

/// Mean softmax output of a model over a dataset (one probability vector),
/// the distribution compared by JSD/L2 in Tables VII–IX.
std::vector<double> mean_prediction(nn::Model& model, const data::Dataset& ds,
                                    long batch_size = 256);

/// Per-sample max-confidence values (input to the t-test of Tables VII–IX).
std::vector<double> confidence_series(nn::Model& model,
                                      const data::Dataset& ds,
                                      long batch_size = 256);

/// Batched evaluation over one fixed dataset: the server-side evaluator the
/// FL round loop runs every pooled client model (and the global model)
/// through. The dataset is "stacked" once — its feature matrix is already
/// contiguous, so a chunk covering the whole set goes through the model as
/// a single batch with one fused GEMM per layer and zero copies; larger
/// sets run in contiguous batch_view slices (no index-vector gather).
/// chunk_rows == 0 picks an automatic bound (~2^21 input floats per chunk,
/// whole-set below that). Per-row results are bit-identical for any
/// chunking: the GEMM backbone reduces k in a fixed order per output
/// element regardless of the batch dimension.
class BatchedEvaluator {
 public:
  explicit BatchedEvaluator(const data::Dataset& ds, long chunk_rows = 0);

  double accuracy(nn::Model& model) const;
  double mse(nn::Model& model) const;

  const data::Dataset& dataset() const { return *ds_; }

 private:
  template <typename Fn>
  void for_chunks(nn::Model& model, Fn&& fn) const;

  const data::Dataset* ds_;
  long chunk_;  // rows per forward; 0 = whole set
};

}  // namespace goldfish::metrics
