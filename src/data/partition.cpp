#include "data/partition.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace goldfish::data {

std::vector<Dataset> partition_iid(const Dataset& ds, long num_clients,
                                   Rng& rng) {
  GOLDFISH_CHECK(num_clients > 0, "need at least one client");
  GOLDFISH_CHECK(ds.size() >= num_clients, "fewer samples than clients");
  auto perm = random_permutation(static_cast<std::size_t>(ds.size()), rng);
  std::vector<Dataset> parts;
  parts.reserve(static_cast<std::size_t>(num_clients));
  const std::size_t per = perm.size() / static_cast<std::size_t>(num_clients);
  std::size_t cursor = 0;
  for (long c = 0; c < num_clients; ++c) {
    const std::size_t take =
        (c == num_clients - 1) ? perm.size() - cursor : per;
    std::vector<std::size_t> idx(perm.begin() + static_cast<long>(cursor),
                                 perm.begin() +
                                     static_cast<long>(cursor + take));
    parts.push_back(ds.subset(idx));
    cursor += take;
  }
  return parts;
}

std::vector<Dataset> partition_heterogeneous(const Dataset& ds,
                                             long num_clients,
                                             const HeteroOptions& opt,
                                             Rng& rng) {
  GOLDFISH_CHECK(num_clients > 0, "need at least one client");
  GOLDFISH_CHECK(ds.size() >= num_clients * opt.min_per_client,
                 "dataset too small for the per-client minimum");

  // Draw heavy-tailed size weights.
  std::vector<double> w(static_cast<std::size_t>(num_clients));
  double total = 0.0;
  for (double& x : w) {
    x = std::pow(double(rng.uniform()) + 1e-6, double(opt.size_skew));
    total += x;
  }
  const long budget = ds.size() - num_clients * opt.min_per_client;
  std::vector<long> sizes(static_cast<std::size_t>(num_clients));
  long assigned = 0;
  for (long c = 0; c < num_clients; ++c) {
    const long extra = static_cast<long>(
        std::floor(budget * w[static_cast<std::size_t>(c)] / total));
    sizes[static_cast<std::size_t>(c)] = opt.min_per_client + extra;
    assigned += sizes[static_cast<std::size_t>(c)];
  }
  // Distribute rounding leftovers.
  long leftover = ds.size() - assigned;
  for (long c = 0; leftover > 0; c = (c + 1) % num_clients, --leftover)
    ++sizes[static_cast<std::size_t>(c)];

  // Build per-class pools for label skew.
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(ds.num_classes));
  for (std::size_t i = 0; i < ds.labels.size(); ++i)
    by_class[static_cast<std::size_t>(ds.labels[i])].push_back(i);
  for (auto& pool : by_class) rng.shuffle(pool);

  std::vector<std::size_t> flat = random_permutation(
      static_cast<std::size_t>(ds.size()), rng);
  std::vector<bool> taken(static_cast<std::size_t>(ds.size()), false);

  std::vector<Dataset> parts;
  parts.reserve(static_cast<std::size_t>(num_clients));
  std::size_t flat_cursor = 0;
  for (long c = 0; c < num_clients; ++c) {
    std::vector<std::size_t> idx;
    const long want = sizes[static_cast<std::size_t>(c)];
    idx.reserve(static_cast<std::size_t>(want));
    if (opt.label_skew) {
      // Half the classes (chosen per client) supply ~80% of its samples.
      std::vector<long> classes(static_cast<std::size_t>(ds.num_classes));
      for (long k = 0; k < ds.num_classes; ++k)
        classes[static_cast<std::size_t>(k)] = k;
      rng.shuffle(classes);
      const std::size_t favored = static_cast<std::size_t>(
          std::max(1L, ds.num_classes / 2));
      const long from_favored = static_cast<long>(0.8f * float(want));
      long got = 0;
      for (std::size_t f = 0; f < favored && got < from_favored; ++f) {
        auto& pool = by_class[static_cast<std::size_t>(
            classes[f])];
        while (!pool.empty() && got < from_favored) {
          const std::size_t i = pool.back();
          pool.pop_back();
          if (taken[i]) continue;
          taken[i] = true;
          idx.push_back(i);
          ++got;
        }
      }
    }
    // Fill the remainder (or everything, in the no-skew case) uniformly.
    while (static_cast<long>(idx.size()) < want &&
           flat_cursor < flat.size()) {
      const std::size_t i = flat[flat_cursor++];
      if (taken[i]) continue;
      taken[i] = true;
      idx.push_back(i);
    }
    parts.push_back(ds.subset(idx));
  }
  return parts;
}

PartitionStats partition_stats(const std::vector<Dataset>& parts) {
  GOLDFISH_CHECK(!parts.empty(), "no partitions");
  PartitionStats st;
  double mean = 0.0;
  st.min_size = parts[0].size();
  st.max_size = parts[0].size();
  for (const Dataset& p : parts) {
    mean += p.size();
    st.min_size = std::min(st.min_size, p.size());
    st.max_size = std::max(st.max_size, p.size());
  }
  mean /= double(parts.size());
  for (const Dataset& p : parts) {
    const double d = double(p.size()) - mean;
    st.size_variance += d * d;
  }
  st.size_variance /= double(parts.size());
  return st;
}

std::vector<std::vector<std::size_t>> shard_indices(long dataset_size,
                                                    long num_shards,
                                                    Rng& rng) {
  GOLDFISH_CHECK(num_shards > 0, "need at least one shard");
  GOLDFISH_CHECK(dataset_size >= num_shards, "fewer samples than shards");
  auto perm = random_permutation(static_cast<std::size_t>(dataset_size), rng);
  std::vector<std::vector<std::size_t>> shards(
      static_cast<std::size_t>(num_shards));
  for (std::size_t i = 0; i < perm.size(); ++i)
    shards[i % static_cast<std::size_t>(num_shards)].push_back(perm[i]);
  return shards;
}

}  // namespace goldfish::data
