// Bounded lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA'05;
// memory orderings after Lê et al., "Correct and Efficient Work-Stealing
// for Weak Memory Models", PPoPP'13 — rewritten fence-free with seq_cst
// operations on `top_`/`bottom_` so ThreadSanitizer, which does not model
// standalone fences, can verify the algorithm).
//
// One thread — the *owner* — pushes and pops at the bottom (LIFO, so the
// hottest task stays in the owner's cache); any other thread steals from
// the top (FIFO, so thieves take the oldest, coldest work). The ring is
// fixed-capacity: `push` returns false when full and the caller overflows
// elsewhere (the Scheduler's injection queue). Elements are raw pointers;
// whoever pops or steals an element owns it.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>

#include "tensor/annotations.h"

namespace goldfish::runtime {

template <typename T, std::size_t kCapacity>
class TaskDeque {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");
  static_assert(std::is_pointer_v<T>, "elements are owning raw pointers");

 public:
  /// Owner only. False when the ring is full (caller must overflow).
  GOLDFISH_HOT bool push(T item) {
    const long b = bottom_.load(std::memory_order_relaxed);
    const long t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<long>(kCapacity)) return false;
    // Release on the cell itself publishes the task's contents to a thief
    // that acquires this exact cell value — independent of the top_/bottom_
    // protocol, which only guarantees *which* cell each side touches.
    cell(b).store(item, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. nullptr when empty (or a thief won the last element).
  GOLDFISH_HOT T pop() {
    const long b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    long t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T item = cell(b).load(std::memory_order_relaxed);
    if (t < b) return item;  // >1 element left: no thief can reach cell b
    // Single element: race the thieves for it via top_.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      item = nullptr;  // a thief got there first
    bottom_.store(b + 1, std::memory_order_relaxed);
    return item;
  }

  /// Any thread. nullptr when empty or when losing a race (the caller's
  /// sweep just moves on to the next victim and comes back around).
  GOLDFISH_HOT T steal() {
    long t = top_.load(std::memory_order_seq_cst);
    const long b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    T item = cell(t).load(std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;  // lost to the owner's pop or another thief
    return item;
  }

  /// Racy size hint for "is there anything to do" sweeps; never used for
  /// correctness decisions (push/pop/steal re-validate under seq_cst).
  bool empty() const {
    return top_.load(std::memory_order_seq_cst) >=
           bottom_.load(std::memory_order_seq_cst);
  }

 private:
  std::atomic<T>& cell(long i) {
    return cells_[static_cast<std::size_t>(i) & (kCapacity - 1)];
  }

  // top_ and bottom_ on separate cache lines: thieves hammer top_ with CAS
  // while the owner bumps bottom_ on every push/pop.
  alignas(64) std::atomic<long> top_{0};
  alignas(64) std::atomic<long> bottom_{0};
  alignas(64) std::array<std::atomic<T>, kCapacity> cells_{};
};

}  // namespace goldfish::runtime
