#include "fl/simulation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <queue>
#include <tuple>

#include "runtime/gemm.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace goldfish::fl {

FederatedSim::FederatedSim(nn::Model global,
                           std::vector<data::Dataset> client_data,
                           data::Dataset server_test, FlConfig cfg)
    : global_(std::move(global)),
      replica_template_(global_),
      clients_(std::move(client_data)),
      test_(std::move(server_test)),
      cfg_(std::move(cfg)),
      aggregator_(make_aggregator(cfg_.aggregator)),
      sched_(&runtime::scheduler_for(cfg_.threads, owned_sched_)),
      eval_(test_, cfg_.eval_batch) {
  GOLDFISH_CHECK(!clients_.empty(), "simulation needs clients");
  GOLDFISH_CHECK(!test_.empty(), "simulation needs a server test set");
  if (cfg_.async.staleness_alpha > 0.0)
    staleness_aggregator_ = std::make_unique<StalenessAggregator>(
        make_aggregator(cfg_.aggregator), cfg_.async.staleness_alpha);
  stackable_ = stackable_mlp();
  // Default behaviour: Algorithm 1's LocalTraining. Each (client, round)
  // pair gets its own RNG stream via the collision-free splitmix mix.
  update_fn_ = [this](std::size_t cid, nn::Model& model,
                      const data::Dataset& ds, long round) {
    TrainOptions opts = cfg_.local;
    opts.seed = mix_seed(cfg_.seed, cid, static_cast<std::uint64_t>(round));
    train_local(model, ds, opts);
  };
}

FederatedSim::ModelLease::ModelLease(FederatedSim& sim) : sim_(sim) {
  {
    std::lock_guard<std::mutex> lock(sim_.pool_mu_);
    if (!sim_.pool_.empty()) {
      model_ = std::move(sim_.pool_.back());
      sim_.pool_.pop_back();
      return;
    }
    ++sim_.pool_total_;
  }
  // First time this concurrency depth is reached (at most the scheduler's
  // parallelism): seed a fresh replica. Every later lease reuses it. Cloned
  // from the immutable template, not global_: run_async writes global_
  // while worker-thread leases may still be growing the pool.
  model_ = std::make_unique<nn::Model>(sim_.replica_template_);
}

FederatedSim::ModelLease::~ModelLease() {
  std::lock_guard<std::mutex> lock(sim_.pool_mu_);
  sim_.pool_.push_back(std::move(model_));
}

void FederatedSim::set_client_data(std::size_t c, data::Dataset ds) {
  GOLDFISH_CHECK(c < clients_.size(), "client id out of range");
  clients_[c] = std::move(ds);
}

bool FederatedSim::stackable_mlp() const {
  // The `mlp<h>` factory family: Sequential[Linear → ReLU → Linear], whose
  // parameters are exactly [W1 (h,D), b1 (h), W2 (K,h), b2 (K)]. Anything
  // else (conv nets, deeper stacks) evaluates per client through the pool.
  if (global_.arch_name().rfind("mlp", 0) != 0) return false;
  const auto ps = global_.params();
  if (ps.size() != 4) return false;
  return ps[0].value->rank() == 2 && ps[1].value->rank() == 1 &&
         ps[2].value->rank() == 2 && ps[3].value->rank() == 1 &&
         ps[0].value->dim(0) == ps[1].value->dim(0) &&
         ps[2].value->dim(1) == ps[0].value->dim(0) &&
         ps[2].value->dim(0) == ps[3].value->dim(0);
}

void FederatedSim::stacked_local_accuracy(
    const std::vector<ClientUpdate>& updates, std::vector<double>& local_acc) {
  const long n = static_cast<long>(updates.size());
  const long h = updates[0].params[0].dim(0);   // hidden width per client
  const long d = updates[0].params[0].dim(1);   // input features
  const long k = updates[0].params[2].dim(0);   // classes
  const long nh = n * h;

  // Concatenate every client's hidden layer: rows [c·h, (c+1)·h) of the
  // stacked weight matrix are client c's W1.
  stacked_w_.resize_uninit({nh, d});
  stacked_b_.resize_uninit({nh});
  for (long c = 0; c < n; ++c) {
    const Tensor& w1 = updates[static_cast<std::size_t>(c)].params[0];
    const Tensor& b1 = updates[static_cast<std::size_t>(c)].params[1];
    std::memcpy(stacked_w_.data() + c * h * d, w1.data(),
                static_cast<std::size_t>(h * d) * sizeof(float));
    std::memcpy(stacked_b_.data() + c * h, b1.data(),
                static_cast<std::size_t>(h) * sizeof(float));
  }

  const long rows_total = test_.size();
  // Bound the stacked activation block (chunk × C·h floats) when no explicit
  // evaluation batch is configured.
  long chunk = cfg_.eval_batch;
  if (chunk == 0 && rows_total * nh > (1L << 24))
    chunk = std::max(256L, (1L << 24) / nh);
  if (chunk == 0 || chunk > rows_total) chunk = rows_total;

  std::vector<long> correct(static_cast<std::size_t>(n), 0);
  for (long lo = 0; lo < rows_total; lo += chunk) {
    const long hi = std::min(rows_total, lo + chunk);
    const long rows = hi - lo;
    const bool whole = lo == 0 && hi == rows_total;
    Tensor x_chunk;
    const long* y;
    if (whole) {
      y = test_.labels.data();
    } else {
      auto view = test_.batch_view(lo, hi);
      x_chunk = std::move(view.first);
      y = view.second;
    }
    const Tensor& x = whole ? test_.features : x_chunk;
    // All clients' hidden activations in one fused GEMM: relu(x·Wᵀ + b),
    // exactly the peepholed Linear→ReLU forward, column block c = client c.
    gemm_fused_into(stacked_y_, x, stacked_w_, false, true,
                    runtime::Epilogue::kBiasColRelu, stacked_b_);
    // Each client's logits head reads its strided slice of the block.
    sched_->parallel_map(static_cast<std::size_t>(n), [&](std::size_t c) {
      const Tensor& w2 = updates[c].params[2];
      const Tensor& b2 = updates[c].params[3];
      Tensor logits = Tensor::uninit({rows, k});
      runtime::sgemm(false, true, rows, k, h,
                     stacked_y_.data() + static_cast<long>(c) * h, nh,
                     w2.data(), h, logits.data(), k, /*beta=*/0.0f,
                     runtime::Epilogue::kBiasCol, b2.data());
      correct[c] += metrics::correct_predictions(logits, y, rows);
    });
  }
  for (long c = 0; c < n; ++c)
    local_acc[static_cast<std::size_t>(c)] =
        100.0 * double(correct[static_cast<std::size_t>(c)]) /
        double(rows_total);
}

RoundResult FederatedSim::run_round() {
  const std::size_t n = clients_.size();
  std::vector<ClientUpdate> updates(n);
  std::vector<double> local_acc(n, 0.0);
  std::atomic<std::size_t> bytes{0};
  const bool stacked = stackable_;

  sched_->parallel_map(n, [&](std::size_t c) {
    ModelLease lease(*this);
    nn::Model& local = lease.get();
    local.copy_from(global_);  // broadcast: in-place copy over pooled storage
    update_fn_(c, local, clients_[c], round_);
    // Upload path: serialize → wire → deserialize, counting bytes.
    std::size_t wire = 0;
    updates[c].params = roundtrip_through_bytes(local.snapshot(), &wire);
    updates[c].dataset_size = clients_[c].size();
    bytes.fetch_add(wire, std::memory_order_relaxed);
    // Batched client evaluation happens after the barrier when the family
    // supports weight stacking; otherwise evaluate with the leased model.
    if (!stacked) local_acc[c] = eval_.accuracy(local);
  });

  if (stacked) stacked_local_accuracy(updates, local_acc);

  // Server-side MSE scoring (Eq. 12 operates on the server's test set).
  if (aggregator_->needs_mse()) {
    sched_->parallel_map(n, [&](std::size_t c) {
      ModelLease lease(*this);
      nn::Model& scratch = lease.get();
      scratch.load(updates[c].params);  // load covers every parameter
      updates[c].mse = eval_.mse(scratch);
    });
  }

  global_.load(aggregator_->aggregate(updates));

  RoundResult r;
  r.round = round_++;
  r.global_accuracy = eval_.accuracy(global_);
  r.bytes_uplinked = bytes.load();
  r.min_local_accuracy = *std::min_element(local_acc.begin(), local_acc.end());
  r.max_local_accuracy = *std::max_element(local_acc.begin(), local_acc.end());
  double mean = 0.0;
  for (double a : local_acc) mean += a;
  r.mean_local_accuracy = mean / double(n);
  return r;
}

std::vector<RoundResult> FederatedSim::run(long rounds) {
  std::vector<RoundResult> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (long i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

// -- buffered-asynchronous execution ---------------------------------------

namespace {

/// Salt separating the virtual-duration RNG streams from the training ones
/// (both hash (seed, client, index) through mix_seed).
constexpr std::uint64_t kDurationSalt = 0x517CC1B727220A95ull;

/// One planned local-training execution on the virtual timeline.
struct TaskPlan {
  std::size_t client = 0;
  long index = 0;         ///< per-client sequence number (RNG stream step)
  long from_version = 0;  ///< server version the client downloaded
  int epoch = 0;          ///< which of the client's datasets it trains on
  double finish = 0.0;
  long staleness = 0;     ///< server lag when consumed
  long consumed_by = -1;  ///< aggregation index; -1 = dropped / never used
};

/// One planned buffer aggregation: the K task ids it consumes, in arrival
/// order (virtual time, client id).
struct AggPlan {
  double time = 0.0;
  std::vector<std::size_t> tasks;
  long dropped_so_far = 0;
};

struct AsyncSchedule {
  std::vector<TaskPlan> tasks;
  std::vector<AggPlan> aggs;
  /// Max tasks any one client started: how many (client, round) RNG steps
  /// the run consumed. Fast clients lap the aggregation count, so advancing
  /// the sim's round counter by less than this would hand later rounds
  /// already-used training streams.
  long rounds_consumed = 0;
};

/// Phase A: simulate the virtual clock. Durations depend only on the seeded
/// RNG — never on training results — so the complete event order (which
/// updates fill which buffer, every staleness value, every deletion
/// eviction) is fixed here, before any training runs. Execution then only
/// has to respect the data dependencies this plan encodes, which is what
/// makes the asynchronous mode bit-identical at any thread count.
AsyncSchedule build_async_schedule(std::size_t n, long aggregations, long k,
                                   const FlConfig& cfg,
                                   const std::vector<AsyncDeletion>& dels) {
  AsyncSchedule plan;
  std::vector<long> next_index(n, 0);
  std::vector<int> epoch(n, 0);
  // A client has at most one task in flight; `poisoned` marks an in-flight
  // task whose training data has since had rows deleted.
  std::vector<bool> poisoned(n, false);
  std::vector<bool> in_flight(n, false);
  std::vector<std::size_t> buffer;
  long server_version = 0;
  long dropped = 0;

  // Min-heap of completions keyed (finish time, client id, task id); the
  // client id breaks virtual-time ties deterministically.
  using Event = std::tuple<double, std::size_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  const auto start_task = [&](std::size_t c, double now) {
    TaskPlan tp;
    tp.client = c;
    tp.index = next_index[c]++;
    tp.from_version = server_version;
    tp.epoch = epoch[c];
    Rng rng(mix_seed(cfg.seed ^ kDurationSalt, c,
                     static_cast<std::uint64_t>(tp.index)));
    tp.finish = now + cfg.async.mean_duration *
                          std::exp(cfg.async.duration_log_jitter *
                                   double(rng.normal()));
    in_flight[c] = true;
    events.emplace(tp.finish, c, plan.tasks.size());
    plan.tasks.push_back(tp);
  };

  for (std::size_t c = 0; c < n; ++c) start_task(c, 0.0);

  std::size_t next_del = 0;
  const auto apply_deletion = [&](const AsyncDeletion& d) {
    ++epoch[d.client];
    // Evict the client's buffered updates: they trained on deleted rows.
    auto evicted = std::remove_if(
        buffer.begin(), buffer.end(), [&](std::size_t id) {
          return plan.tasks[id].client == d.client;
        });
    dropped += buffer.end() - evicted;
    buffer.erase(evicted, buffer.end());
    // Its in-flight task (if any) is void on arrival.
    if (in_flight[d.client]) poisoned[d.client] = true;
  };

  while (static_cast<long>(plan.aggs.size()) < aggregations) {
    GOLDFISH_CHECK(!events.empty(), "async schedule ran out of events");
    const double now = std::get<0>(events.top());
    // A deletion at time T takes effect before any completion at ≥ T.
    while (next_del < dels.size() && dels[next_del].time <= now)
      apply_deletion(dels[next_del++]);
    // Same-timestamp completions are buffered as a batch (client-id order)
    // before any of those clients re-downloads; this is the tie-break that
    // makes the jitter-free K = n schedule identical to synchronous rounds.
    std::vector<std::size_t> batch;
    while (!events.empty() && std::get<0>(events.top()) == now) {
      batch.push_back(std::get<2>(events.top()));
      events.pop();
    }
    for (std::size_t id : batch) {
      TaskPlan& tp = plan.tasks[id];
      in_flight[tp.client] = false;
      if (poisoned[tp.client]) {
        poisoned[tp.client] = false;
        ++dropped;
        continue;
      }
      buffer.push_back(id);
      if (static_cast<long>(buffer.size()) == k) {
        AggPlan ap;
        ap.time = now;
        for (std::size_t bid : buffer) {
          plan.tasks[bid].staleness =
              server_version - plan.tasks[bid].from_version;
          plan.tasks[bid].consumed_by =
              static_cast<long>(plan.aggs.size());
        }
        ap.tasks = std::move(buffer);
        buffer.clear();
        ap.dropped_so_far = dropped;
        ++server_version;
        plan.aggs.push_back(std::move(ap));
        if (static_cast<long>(plan.aggs.size()) == aggregations) break;
      }
    }
    if (static_cast<long>(plan.aggs.size()) == aggregations) break;
    // Every completed client re-downloads the current model and trains on.
    for (std::size_t id : batch)
      if (!in_flight[plan.tasks[id].client])
        start_task(plan.tasks[id].client, now);
  }
  // Deletions beyond the run's horizon still replace the client's data
  // before run_async returns (there is no later virtual time to wait for).
  while (next_del < dels.size()) apply_deletion(dels[next_del++]);
  plan.rounds_consumed =
      *std::max_element(next_index.begin(), next_index.end());
  return plan;
}

}  // namespace

std::vector<AsyncRoundResult> FederatedSim::run_async(
    long aggregations, std::vector<AsyncDeletion> deletions) {
  GOLDFISH_CHECK(aggregations >= 0, "negative aggregation count");
  const std::size_t n = clients_.size();
  long k = cfg_.async.buffer_size;
  if (k <= 0) k = static_cast<long>(n);
  GOLDFISH_CHECK(cfg_.async.mean_duration > 0.0,
                 "async mean_duration must be positive");
  std::vector<bool> has_deletion(n, false);
  for (const AsyncDeletion& d : deletions) {
    GOLDFISH_CHECK(d.client < n, "deletion for unknown client");
    GOLDFISH_CHECK(!d.new_data.empty(),
                   "deletion would leave a client without data");
    // Each event carries the client's *entire* remaining dataset, split from
    // the pre-run data (core::make_async_deletion): a second event for the
    // same client would have been split from that same pre-run data too and
    // silently resurrect the first event's deleted rows. Issue follow-up
    // deletions in a later run_async, where the split sees the shrunk data.
    GOLDFISH_CHECK(!has_deletion[d.client],
                   "multiple deletions for one client in a single "
                   "run_async; split them across runs");
    has_deletion[d.client] = true;
  }
  std::stable_sort(deletions.begin(), deletions.end(),
                   [](const AsyncDeletion& a, const AsyncDeletion& b) {
                     return a.time != b.time ? a.time < b.time
                                             : a.client < b.client;
                   });

  const AsyncSchedule plan =
      build_async_schedule(n, aggregations, k, cfg_, deletions);

  // Per-client dataset epochs: 0 = the current data, 1.. = post-deletion.
  std::vector<std::vector<const data::Dataset*>> epoch_data(n);
  for (std::size_t c = 0; c < n; ++c) epoch_data[c].push_back(&clients_[c]);
  for (const AsyncDeletion& d : deletions)
    epoch_data[d.client].push_back(&d.new_data);

  // Group the *consumed* tasks by the server version they download;
  // everything else (deletion-voided or past the horizon) never executes.
  const std::size_t num_tasks = plan.tasks.size();
  std::vector<std::vector<std::size_t>> by_version(
      static_cast<std::size_t>(aggregations) + 1);
  std::vector<std::atomic<long>> version_refs(
      static_cast<std::size_t>(aggregations) + 1);
  for (std::size_t id = 0; id < num_tasks; ++id) {
    const TaskPlan& tp = plan.tasks[id];
    if (tp.consumed_by < 0) continue;
    by_version[static_cast<std::size_t>(tp.from_version)].push_back(id);
    version_refs[static_cast<std::size_t>(tp.from_version)].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Version v's parameters live until the last task downloading them has
  // broadcast (the releasing task parks the storage back in the recycler).
  std::vector<std::vector<Tensor>> version_params(
      static_cast<std::size_t>(aggregations) + 1);
  std::vector<std::future<void>> futures(num_tasks);
  std::vector<ClientUpdate> task_updates(num_tasks);
  std::vector<std::size_t> wire_bytes(num_tasks, 0);
  const long round_base = round_;

  const auto submit_version = [&](std::size_t v) {
    if (version_refs[v].load(std::memory_order_relaxed) == 0) {
      version_params[v].clear();  // nobody downloads this version
      return;
    }
    for (std::size_t id : by_version[v]) {
      futures[id] = sched_->submit([this, id, &plan, &epoch_data,
                                    &version_params, &version_refs,
                                    &task_updates, &wire_bytes, round_base] {
        const TaskPlan& tp = plan.tasks[id];
        const std::size_t v = static_cast<std::size_t>(tp.from_version);
        ModelLease lease(*this);
        nn::Model& local = lease.get();
        // Broadcast: load version v's parameters and zero the gradient
        // accumulators (exactly what copy_from does in the sync round).
        local.load(version_params[v]);
        local.zero_grad();
        if (version_refs[v].fetch_sub(1, std::memory_order_acq_rel) == 1)
          version_params[v].clear();
        const data::Dataset& ds =
            *epoch_data[tp.client][static_cast<std::size_t>(tp.epoch)];
        update_fn_(tp.client, local, ds, round_base + tp.index);
        std::size_t wire = 0;
        task_updates[id].params =
            roundtrip_through_bytes(local.snapshot(), &wire);
        task_updates[id].dataset_size = ds.size();
        task_updates[id].staleness = tp.staleness;
        wire_bytes[id] = wire;
      });
    }
  };

  const Aggregator& agg =
      staleness_aggregator_ ? *staleness_aggregator_ : *aggregator_;
  std::vector<AsyncRoundResult> out;
  out.reserve(static_cast<std::size_t>(aggregations));
  version_params[0] = global_.snapshot();
  submit_version(0);

  try {
    for (long a = 0; a < aggregations; ++a) {
      const AggPlan& ap = plan.aggs[static_cast<std::size_t>(a)];
      // Consume the buffer in its deterministic arrival order. Draining
      // participates in the scheduler's queue, so this never deadlocks —
      // even at parallelism 1 the waiter executes the tasks itself.
      std::vector<ClientUpdate> updates;
      updates.reserve(ap.tasks.size());
      AsyncRoundResult r;
      for (std::size_t id : ap.tasks) {
        sched_->drain_until_ready(futures[id]);
        futures[id].get();  // rethrows task failures
        updates.push_back(std::move(task_updates[id]));
        r.bytes_uplinked += wire_bytes[id];
        r.mean_staleness += double(plan.tasks[id].staleness);
        r.max_staleness = std::max(r.max_staleness, plan.tasks[id].staleness);
      }
      if (agg.needs_mse()) {
        sched_->parallel_map(updates.size(), [&](std::size_t i) {
          ModelLease lease(*this);
          nn::Model& scratch = lease.get();
          scratch.load(updates[i].params);
          updates[i].mse = eval_.mse(scratch);
        });
      }
      std::vector<Tensor> merged = agg.aggregate(updates);
      global_.load(merged);
      version_params[static_cast<std::size_t>(a) + 1] = std::move(merged);
      submit_version(static_cast<std::size_t>(a) + 1);

      r.agg = a;
      r.virtual_time = ap.time;
      r.global_accuracy = eval_.accuracy(global_);
      r.mean_staleness /= double(ap.tasks.size());
      r.updates_consumed = static_cast<long>(ap.tasks.size());
      r.dropped_updates = ap.dropped_so_far;
      out.push_back(r);
    }
  } catch (...) {
    // A failed client task must not leave siblings running against local
    // state that is about to be destroyed; wait them out, then rethrow.
    for (std::future<void>& f : futures)
      if (f.valid()) {
        sched_->drain_until_ready(f);
        try {
          f.get();
        } catch (...) {
        }
      }
    throw;
  }

  // Subsequent rounds (and their RNG streams) continue after every stream
  // this run touched — fast clients consume more task indices than there
  // were aggregations, so the aggregation count alone would under-advance.
  round_ += plan.rounds_consumed;
  // Deletions take durable effect: later rounds train on the remaining
  // data. Applied in (time, client) order, so a client's last deletion wins.
  for (AsyncDeletion& d : deletions)
    clients_[d.client] = std::move(d.new_data);
  return out;
}

}  // namespace goldfish::fl
