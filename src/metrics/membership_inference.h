// Membership-inference probe: an independent verifier of unlearning.
//
// The paper motivates unlearning with membership-inference risk (§I, citing
// ML-Leaks): a model that memorized a sample answers it with conspicuously
// high confidence. This module implements the standard confidence-threshold
// attack — useful both as an *audit* (did unlearning actually scrub D_f?)
// and as an extra evaluation axis beyond backdoor ASR.
//
// Protocol: score every candidate sample by the model's confidence in its
// true label; sweep a threshold; report the attack's best balanced accuracy
// and its AUC over (members = training rows, non-members = held-out rows).
// 0.5 = cannot distinguish (perfectly forgotten); ≫ 0.5 = memorized.
#pragma once

#include "data/dataset.h"
#include "nn/model.h"

namespace goldfish::metrics {

struct MiaResult {
  /// Area under the ROC of the confidence attack, in [0, 1]; 0.5 = chance.
  double auc = 0.5;
  /// Best balanced accuracy over all thresholds, in [0.5, 1].
  double best_accuracy = 0.5;
  /// Mean true-label confidence on members / non-members (diagnostic).
  double member_confidence = 0.0;
  double nonmember_confidence = 0.0;
};

/// Run the confidence-threshold membership inference attack.
/// `members` are samples that were (or may have been) trained on;
/// `nonmembers` are drawn from the same distribution but never trained on.
MiaResult membership_inference(nn::Model& model, const data::Dataset& members,
                               const data::Dataset& nonmembers,
                               long batch_size = 256);

/// Per-sample true-label confidences (exposed for tests and custom audits).
std::vector<double> true_label_confidences(nn::Model& model,
                                           const data::Dataset& ds,
                                           long batch_size = 256);

}  // namespace goldfish::metrics
