#include "losses/distillation.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace goldfish::losses {

LossResult distillation_loss(const Tensor& teacher_logits,
                             const Tensor& student_logits,
                             float temperature) {
  GOLDFISH_CHECK(teacher_logits.same_shape(student_logits),
                 "teacher/student logit shape mismatch");
  GOLDFISH_CHECK(student_logits.rank() == 2, "expected (N, classes)");
  GOLDFISH_CHECK(temperature > 0.0f, "temperature must be positive");
  const long n = student_logits.dim(0), c = student_logits.dim(1);

  const Tensor pt = softmax_rows(teacher_logits, temperature);
  const Tensor log_ps = log_softmax_rows(student_logits, temperature);
  const Tensor ps = softmax_rows(student_logits, temperature);

  LossResult r;
  r.grad_logits = Tensor({n, c});
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  const float grad_scale = inv_n / temperature;
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < c; ++j) {
      total -= double(pt.at(i, j)) * log_ps.at(i, j);
      // ∂/∂z_j of −Σ_k P_T,k·log P_S,k = (P_S,j − P_T,j)/T.
      r.grad_logits.at(i, j) = (ps.at(i, j) - pt.at(i, j)) * grad_scale;
    }
  }
  r.value = static_cast<float>(total / n);
  return r;
}

LossResult confusion_loss(const Tensor& student_logits) {
  GOLDFISH_CHECK(student_logits.rank() == 2, "expected (N, classes)");
  const long n = student_logits.dim(0), c = student_logits.dim(1);
  const Tensor p = softmax_rows(student_logits);
  const std::vector<float> var = row_variance(p);

  LossResult r;
  r.grad_logits = Tensor({n, c});
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  const float inv_c = 1.0f / static_cast<float>(c);
  for (long i = 0; i < n; ++i) {
    const float v = var[static_cast<std::size_t>(i)];
    const float sd = std::sqrt(std::max(v, 0.0f));
    total += sd;
    if (sd < 1e-8f) continue;  // at the uniform minimum the gradient is 0
    // mean of the probability row
    float mean = 0.0f;
    for (long j = 0; j < c; ++j) mean += p.at(i, j);
    mean *= inv_c;
    // d√V/dp_j = (p_j − mean)/(C·√V); then chain through the softmax
    // Jacobian: dL/dz_k = Σ_j dL/dp_j · p_j(δ_jk − p_k).
    float dot = 0.0f;  // Σ_j dL/dp_j · p_j
    std::vector<float> dL_dp(static_cast<std::size_t>(c));
    for (long j = 0; j < c; ++j) {
      dL_dp[std::size_t(j)] = (p.at(i, j) - mean) * inv_c / sd;
      dot += dL_dp[std::size_t(j)] * p.at(i, j);
    }
    for (long k = 0; k < c; ++k)
      r.grad_logits.at(i, k) =
          (dL_dp[std::size_t(k)] * p.at(i, k) - p.at(i, k) * dot) * inv_n;
  }
  r.value = static_cast<float>(total / n);
  return r;
}

}  // namespace goldfish::losses
