// Tests for the verification/integration extensions: membership-inference
// auditing, the sharded federated client fleet, and architecture-sweep
// training smoke tests.
#include <gtest/gtest.h>

#include "core/sharded_client.h"
#include "core/unlearner.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluation.h"
#include "metrics/membership_inference.h"
#include "nn/models.h"

namespace goldfish {
namespace {

// -- membership inference -----------------------------------------------------

struct MiaFixture {
  data::TrainTest tt;
  nn::Model overfit;  // trained hard on a small member set
  data::Dataset members;

  MiaFixture()
      : tt(data::make_synthetic(
            data::default_spec(data::DatasetKind::Mnist, 151, 300, 200))) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < 100; ++i) idx.push_back(i);
    members = tt.train.subset(idx);
    Rng rng(152);
    overfit = nn::make_mlp({1, 28, 28}, 64, 10, rng);
    fl::TrainOptions opts;
    opts.epochs = 40;  // deliberate memorization
    opts.batch_size = 50;
    opts.lr = 0.05f;
    fl::train_local(overfit, members, opts);
  }
};

MiaFixture& mia_fixture() {
  static MiaFixture f;
  return f;
}

TEST(MembershipInference, DetectsMemorization) {
  auto& f = mia_fixture();
  const auto r =
      metrics::membership_inference(f.overfit, f.members, f.tt.test);
  EXPECT_GT(r.auc, 0.75);
  EXPECT_GT(r.best_accuracy, 0.65);
  EXPECT_GT(r.member_confidence, r.nonmember_confidence);
}

TEST(MembershipInference, ChanceOnFreshModel) {
  auto& f = mia_fixture();
  Rng rng(153);
  nn::Model fresh = nn::make_mlp({1, 28, 28}, 64, 10, rng);
  const auto r =
      metrics::membership_inference(fresh, f.members, f.tt.test);
  EXPECT_NEAR(r.auc, 0.5, 0.12);
}

TEST(MembershipInference, AucBounds) {
  auto& f = mia_fixture();
  const auto r =
      metrics::membership_inference(f.overfit, f.members, f.tt.test);
  EXPECT_GE(r.auc, 0.0);
  EXPECT_LE(r.auc, 1.0);
  EXPECT_GE(r.best_accuracy, 0.5);
  EXPECT_LE(r.best_accuracy, 1.0);
}

TEST(MembershipInference, ConfidencesPerSample) {
  auto& f = mia_fixture();
  const auto conf = metrics::true_label_confidences(f.overfit, f.members);
  EXPECT_EQ(conf.size(), static_cast<std::size_t>(f.members.size()));
  for (double c : conf) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(MembershipInference, UnlearningReducesAttack) {
  // Memorize a member set federatedly, unlearn half of client 0's rows,
  // and check the attack on exactly those rows weakens.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 154, 400, 200));
  Rng rng(155);
  auto parts = data::partition_iid(tt.train, 2, rng);
  Rng mrng(156);
  nn::Model fresh = nn::make_mlp({1, 28, 28}, 64, 10, mrng);
  nn::Model global = fresh;
  fl::FlConfig cfg;
  cfg.local.epochs = 10;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  fl::FederatedSim sim(global, parts, tt.test, cfg);
  sim.run(3);
  global = sim.global_model();

  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 60; ++i) rows.push_back(i);
  data::Dataset removed = parts[0].subset(rows);

  const auto before = metrics::membership_inference(global, removed, tt.test);

  core::UnlearnConfig ucfg;
  ucfg.distill.max_epochs = 4;
  ucfg.distill.batch_size = 50;
  ucfg.distill.lr = 0.05f;
  ucfg.distill.use_early_termination = false;
  core::GoldfishUnlearner ul(global, fresh, parts, tt.test, ucfg);
  ul.request_deletion({{0, rows}});
  ul.run(2);
  const auto after =
      metrics::membership_inference(ul.global_model(), removed, tt.test);

  EXPECT_LT(after.auc, before.auc);
  EXPECT_LT(after.member_confidence, before.member_confidence);
}

// -- sharded client fleet -----------------------------------------------------

TEST(ShardedFleet, IntegratesWithFederatedSim) {
  // 750 rows per client / 250 per shard: enough for shard models to train
  // (see the Fig. 6 sizing rationale).
  auto spec = data::default_spec(data::DatasetKind::Mnist, 161, 1500, 200);
  spec.noise_scale = 0.6f;
  auto tt = data::make_synthetic(spec);
  Rng rng(162);
  auto parts = data::partition_iid(tt.train, 2, rng);
  Rng mrng(163);
  nn::Model init = nn::make_mlp({1, 28, 28}, 32, 10, mrng);

  Rng frng(164);
  core::ShardedClientFleet fleet(init, parts, 3, frng);
  ASSERT_EQ(fleet.num_clients(), 2u);

  fl::FlConfig cfg;
  fl::FederatedSim sim(init, parts, tt.test, cfg);
  fl::TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 50;
  opts.lr = 0.05f;
  sim.set_client_update(fleet.update_fn(opts));
  const auto rounds = sim.run(3);
  EXPECT_GT(rounds.back().global_accuracy, 55.0);
}

TEST(ShardedFleet, DeletionTouchesOneClientOnly) {
  auto spec = data::default_spec(data::DatasetKind::Mnist, 165, 600, 100);
  spec.noise_scale = 0.6f;
  auto tt = data::make_synthetic(spec);
  Rng rng(166);
  auto parts = data::partition_iid(tt.train, 2, rng);
  Rng mrng(167);
  nn::Model init = nn::make_mlp({1, 28, 28}, 16, 10, mrng);
  Rng frng(168);
  core::ShardedClientFleet fleet(init, parts, 3, frng);

  fl::TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 50;
  opts.lr = 0.05f;
  fleet.manager(0).train_all(opts);
  fleet.manager(1).train_all(opts);
  const auto before_other = fleet.manager(1).aggregate();

  const std::vector<std::size_t> doomed{fleet.manager(0).shard_row_ids(0)[0]};
  const auto report = fleet.delete_rows(0, doomed, opts);
  EXPECT_EQ(report.rows_deleted, 1);
  // Client 1's shards must be bit-identical.
  EXPECT_NEAR(nn::snapshot_distance_sq(before_other,
                                       fleet.manager(1).aggregate()),
              0.0f, 1e-10f);
}

TEST(ShardedFleet, OutOfRangeClientThrows) {
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 169, 60, 20));
  Rng rng(170);
  auto parts = data::partition_iid(tt.train, 2, rng);
  Rng mrng(171);
  nn::Model init = nn::make_mlp({1, 28, 28}, 8, 10, mrng);
  Rng frng(172);
  core::ShardedClientFleet fleet(init, parts, 2, frng);
  fl::TrainOptions opts;
  EXPECT_THROW(fleet.delete_rows(7, {0}, opts), CheckError);
  EXPECT_THROW(fleet.manager(9), CheckError);
}

// -- architecture sweep: every factory model trains end to end -----------------

class ArchSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ArchSweep, OneTrainingStepChangesParamsAndKeepsShape) {
  const std::string arch = GetParam();
  // Keep geometry small so conv/resnet variants stay fast.
  const nn::InputGeom geom =
      arch == "lenet5" ? nn::InputGeom{1, 28, 28} : nn::InputGeom{3, 16, 16};
  Rng rng(180);
  nn::Model m = nn::make_model(arch, geom, 10, rng);
  const auto before = m.snapshot();

  Rng drng(181);
  Tensor x = Tensor::randn({4, geom.flat()}, drng);
  const std::vector<long> y{0, 1, 2, 3};
  losses::CrossEntropyLoss ce;
  nn::Sgd sgd;
  const Tensor logits = m.forward(x, true);
  ASSERT_EQ(logits.dim(0), 4);
  ASSERT_EQ(logits.dim(1), 10);
  auto r = ce.eval(logits, y);
  m.backward(r.grad_logits);
  sgd.step(m);
  EXPECT_GT(nn::snapshot_distance_sq(before, m.snapshot()), 0.0f);

  // Clone + snapshot/load round-trips hold for every architecture.
  nn::Model copy = m;
  copy.load(m.snapshot());
  EXPECT_NEAR(nn::snapshot_distance_sq(copy.snapshot(), m.snapshot()), 0.0f,
              1e-12f);
}

INSTANTIATE_TEST_SUITE_P(Factories, ArchSweep,
                         ::testing::Values("mlp32", "lenet5",
                                           "modified_lenet5", "resnet8"));

}  // namespace
}  // namespace goldfish
