// Quickstart: the smallest end-to-end Goldfish unlearning run.
//
//   1. Synthesize an MNIST-like federated dataset across 3 clients.
//   2. Train a global model with FedAvg.
//   3. Client 0 requests deletion of part of its data.
//   4. Goldfish unlearns: the old global model becomes the teacher, the
//      re-initialized student distills only on the remaining data.
//   5. Compare accuracy before/after and show that predictions on the
//      removed data lose their confidence.
//
// Both FederatedSim::run and GoldfishUnlearner::run are canned synchronous
// scenarios over the event-driven fl::Engine; richer server regimes
// (sampling, buffered aggregation, mid-run deletions, joins/leaves) compose
// on the same engine — see examples/scenario_stream.cpp.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/unlearner.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluation.h"
#include "metrics/report.h"
#include "nn/models.h"

int main() {
  using namespace goldfish;
  std::cout << "== Goldfish quickstart ==\n";

  // 1. Data: synthetic MNIST-like (784 features, 10 classes), 3 clients.
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, /*seed=*/42,
                         /*train=*/600, /*test=*/200));
  Rng rng(43);
  auto clients = data::partition_iid(tt.train, 3, rng);
  std::cout << "dataset: " << tt.train.size() << " train / "
            << tt.test.size() << " test, 3 clients\n";

  // 2. Federated training (FedAvg, paper hyperparameters scaled down).
  Rng mrng(44);
  nn::Model fresh = nn::make_mlp(tt.train.geom, 64, 10, mrng);
  nn::Model global = fresh;
  fl::FlConfig flcfg;
  flcfg.local.epochs = 3;
  flcfg.local.batch_size = 50;
  flcfg.local.lr = 0.05f;
  fl::FederatedSim sim(global, clients, tt.test, flcfg);
  for (const auto& round : sim.run(5))
    std::cout << "  train round " << round.round + 1
              << ": accuracy = " << metrics::fmt(round.global_accuracy) << "%"
              << "\n";
  global = sim.global_model();

  // 3. Deletion request: client 0 wants its first 30 samples forgotten.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 30; ++i) rows.push_back(i);

  // 4. Goldfish unlearning.
  core::UnlearnConfig cfg;
  cfg.distill.max_epochs = 4;
  cfg.distill.batch_size = 50;
  cfg.distill.lr = 0.05f;
  cfg.distill.delta = 0.05f;  // early termination threshold (Eq. 7)
  core::GoldfishUnlearner unlearner(global, fresh, clients, tt.test, cfg);
  unlearner.request_deletion({{/*client_id=*/0, rows}});
  for (const auto& round : unlearner.run(3))
    std::cout << "  unlearn round " << round.round + 1
              << ": accuracy = " << metrics::fmt(round.global_accuracy) << "%"
              << ", adaptive T = " << round.mean_temperature
            << ", epochs run = " << round.total_epochs_run << "\n";

  // 5. Inspect the removed data's predictions: confidence should be low.
  nn::Model& unlearned = unlearner.global_model();
  const auto conf =
      metrics::confidence_series(unlearned, unlearner.removed_data(0));
  double mean_conf = 0.0;
  for (double c : conf) mean_conf += c;
  mean_conf /= double(conf.size());
  std::cout << "accuracy after unlearning: "
            << metrics::fmt(metrics::accuracy(unlearned, tt.test)) << "%"
            << "\nmean confidence on removed samples: " << mean_conf
            << " (1/num_classes = 0.10 would be fully forgotten)\n";
  return 0;
}
