// 2-D convolution via im2col lowering.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace goldfish::nn {

/// Convolution with square kernels, He init. Weight layout is
/// (out_channels, in_channels·K·K) so forward is a single matmul against the
/// im2col matrix.
class Conv2d final : public Layer {
 public:
  Conv2d(long in_channels, long out_channels, long kernel, long stride,
         long pad, long in_h, long in_w, Rng& rng);

  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;
  // flat product, packed output, unpacked grad, grad_cols, input grad
  std::size_t local_slots() const override { return 5; }

  long out_channels() const { return out_channels_; }
  long out_h() const { return geom_.out_h(); }
  long out_w() const { return geom_.out_w(); }

 private:
  Conv2dGeom geom_;
  long out_channels_ = 0;
  Tensor weight_;  // (outC, inC·K·K)
  Tensor bias_;    // (outC)
  Tensor grad_weight_, grad_bias_;
  Tensor cached_cols_;  // im2col of the last input
  long cached_batch_ = 0;

  /// (outC, N·oh·ow) matmul output → (N, outC, oh, ow) image layout, into
  /// the layer's output slot.
  Tensor& pack_output(const Tensor& flat, long batch);
  /// Inverse of pack_output for the incoming gradient, into a slot.
  Tensor& unpack_grad(const Tensor& grad_img);
};

}  // namespace goldfish::nn
