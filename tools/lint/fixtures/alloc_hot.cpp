// ALLOC fixture: a GOLDFISH_HOT function may not allocate — no direct new /
// make_unique / make_shared (ALLOC001), no growing container ops
// (ALLOC002). The same code outside an annotated function is not flagged:
// the contract is scoped to declared fast paths, not the whole tree.
#include <cstddef>
#include <memory>
#include <vector>

#ifndef GOLDFISH_HOT
#define GOLDFISH_HOT __attribute__((hot))
#endif

struct Update {
  std::vector<float> values;
};

GOLDFISH_HOT float hot_aggregate(std::vector<Update>& buffer,
                                 const Update& incoming) {
  buffer.push_back(incoming);                     // EXPECT: ALLOC002
  auto scratch = std::make_unique<Update>();      // EXPECT: ALLOC001
  scratch->values.resize(incoming.values.size()); // EXPECT: ALLOC002
  float* raw = new float[4];                      // EXPECT: ALLOC001
  delete[] raw;
  float s = 0.0f;
  for (const Update& u : buffer)
    for (float v : u.values) s += v;
  return s;
}

// Identical body, not annotated: setup/cold paths may allocate freely.
// No finding expected.
float cold_aggregate(std::vector<Update>& buffer, const Update& incoming) {
  buffer.push_back(incoming);
  auto scratch = std::make_unique<Update>();
  scratch->values.resize(incoming.values.size());
  float* raw = new float[4];
  delete[] raw;
  float s = 0.0f;
  for (const Update& u : buffer)
    for (float v : u.values) s += v;
  return s;
}

// An annotated *declaration* has no body to check; the definition is where
// enforcement happens. No finding expected.
GOLDFISH_HOT float declared_elsewhere(const Update& u);

GOLDFISH_HOT float hot_clean(const Update& u) {
  float s = 0.0f;
  for (float v : u.values) s += v;
  return s;
}
