// Negative fixture: determinism-respecting idioms that must NOT be flagged.
// A linter that cries wolf here would push people toward blanket allows.
#include <algorithm>
#include <cstddef>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

#ifndef GOLDFISH_HOT
#define GOLDFISH_HOT __attribute__((hot))
#endif

// Seeded stream: reproducible per scenario seed.
float seeded_noise(unsigned seed) {
  std::mt19937_64 gen(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  return dist(gen);
}

// Unordered containers as lookup structures (no iteration) are fine.
float lookup(const std::unordered_map<int, float>& weights, int id) {
  auto it = weights.find(id);
  return it == weights.end() ? 0.0f : it->second;
}

// Iterating a sorted, value-keyed map is deterministic.
float sum_sorted(const std::map<int, float>& weights) {
  float s = 0.0f;
  for (const auto& [id, w] : weights) {
    (void)id;
    s += w;
  }
  return s;
}

// Sorting by value (never by pointer) is deterministic.
void order_ids(std::vector<std::size_t>& ids) {
  std::sort(ids.begin(), ids.end());
}

// Hot path writing through preallocated storage: the contract holds.
GOLDFISH_HOT void scale_into(const std::vector<float>& src, float k,
                             std::vector<float>& dst) {
  for (std::size_t i = 0; i < src.size() && i < dst.size(); ++i)
    dst[i] = src[i] * k;
}
