// Scenario example: the extension module's adaptive-weight aggregation
// (Eq. 12–13) against FedAvg on heterogeneous clients — the paper's Fig. 8
// setting as a standalone application.
//
// Clients receive wildly different amounts of (and label mixes of) data, so
// their local models vary from near-random to strong. FedAvg averages them
// by size; the adaptive aggregator weighs them by server-side test MSE and
// recovers a good global model faster in early rounds.
//
// Run: ./build/examples/heterogeneous_aggregation
#include <iostream>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "metrics/evaluation.h"
#include "metrics/report.h"
#include "nn/models.h"

int main() {
  using namespace goldfish;
  std::cout << "== Heterogeneous aggregation demo (5 clients) ==\n";

  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 50, 700, 200));
  Rng rng(51);
  data::HeteroOptions opt;
  opt.size_skew = 3.0f;
  opt.label_skew = true;
  auto clients = data::partition_heterogeneous(tt.train, 5, opt, rng);
  const auto stats = data::partition_stats(clients);
  std::cout << "client sizes: ";
  for (const auto& c : clients) std::cout << c.size() << " ";
  std::cout << "(variance " << metrics::fmt(stats.size_variance, 1)
            << ")\n\n";

  Rng mrng(52);
  nn::Model init = nn::make_mlp(tt.train.geom, 64, 10, mrng);

  for (const char* agg : {"fedavg", "adaptive"}) {
    fl::FlConfig cfg;
    cfg.aggregator = agg;
    cfg.local.epochs = 3;
    cfg.local.batch_size = 50;
    cfg.local.lr = 0.05f;
    fl::FederatedSim sim(init, clients, tt.test, cfg);
    std::cout << "aggregator = " << agg << ":\n";
    for (const auto& round : sim.run(5)) {
      std::cout << "  round " << round.round + 1 << ": global "
                << metrics::fmt(round.global_accuracy) << "%  (locals "
                << metrics::fmt(round.min_local_accuracy) << "–"
                << metrics::fmt(round.max_local_accuracy) << "%)\n";
    }
  }

  // The same comparison as one engine run: an AggregatorSwapEvent switches
  // the server to adaptive weighting mid-stream, no second simulation
  // needed. Rounds before the swap are bit-identical to the fedavg run.
  {
    fl::FlConfig cfg;
    cfg.aggregator = "fedavg";
    cfg.local.epochs = 3;
    cfg.local.batch_size = 50;
    cfg.local.lr = 0.05f;
    fl::FederatedSim sim(init, clients, tt.test, cfg);
    fl::Scenario s = sim.engine().sync_scenario(5);
    s.aggregator_swaps.push_back({/*time=*/2.5, "adaptive"});
    std::cout << "aggregator = fedavg with swap->adaptive after round 2:\n";
    sim.engine().run(std::move(s), [](const fl::StepResult& r) {
      std::cout << "  round " << r.step + 1 << " [" << r.aggregator
                << "]: global " << metrics::fmt(r.global_accuracy)
                << "%  (locals " << metrics::fmt(r.min_local_accuracy)
                << "–" << metrics::fmt(r.max_local_accuracy) << "%)\n";
    });
  }
  std::cout << "\nexpected shape: adaptive pulls ahead of FedAvg in the "
               "first rounds by weighting the strong local models up; the "
               "swapped run changes course the round the event fires.\n";
  return 0;
}
