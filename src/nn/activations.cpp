#include "nn/activations.h"

namespace goldfish::nn {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  mask_ = Tensor(x.shape());
  Tensor y = x;
  float* yd = y.data();
  float* md = mask_.data();
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (yd[i] > 0.0f) {
      md[i] = 1.0f;
    } else {
      yd[i] = 0.0f;
      md[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(grad_output.same_shape(mask_), "relu grad shape");
  Tensor g = grad_output;
  float* gd = g.data();
  const float* md = mask_.data();
  for (std::size_t i = 0; i < g.numel(); ++i) gd[i] *= md[i];
  return g;
}

std::unique_ptr<Layer> ReLU::clone() const {
  auto copy = std::make_unique<ReLU>(*this);
  copy->mask_ = Tensor();
  return copy;
}

Tensor Unflatten::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() == 4) return x;  // already image-shaped
  GOLDFISH_CHECK(x.rank() == 2 && x.dim(1) == c_ * h_ * w_,
                 "unflatten input shape " + x.shape_str());
  return x.reshaped({x.dim(0), c_, h_, w_});
}

Tensor Unflatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped({grad_output.dim(0), c_ * h_ * w_});
}

std::unique_ptr<Layer> Unflatten::clone() const {
  return std::make_unique<Unflatten>(*this);
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  cached_shape_ = x.shape();
  GOLDFISH_CHECK(x.rank() >= 2, "flatten needs a batch dimension");
  long features = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) features *= x.dim(i);
  return x.reshaped({x.dim(0), features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>(*this);
}

}  // namespace goldfish::nn
