// Per-channel batch normalization for (N,C,H,W) tensors.
#pragma once

#include "nn/layer.h"

namespace goldfish::nn {

/// Standard batch-norm with learnable scale/shift and running statistics.
/// Training mode normalizes with batch statistics and updates the running
/// estimates; eval mode uses the running estimates (so a cloned teacher model
/// evaluates deterministically regardless of student batch composition).
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(long channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;
  std::size_t local_slots() const override { return 3; }  // out, x̂, dx

 private:
  long channels_ = 0;
  float momentum_ = 0.1f;
  float eps_ = 1e-5f;
  Tensor gamma_, beta_;            // learnable (C)
  Tensor grad_gamma_, grad_beta_;  // accumulators (C)
  Tensor running_mean_, running_var_;
  // Backward caches (training batches only); x̂ lives in slot 1.
  Tensor cached_inv_std_;  // (C)
  Shape in_shape_;
  bool has_train_cache_ = false;  // a training forward populated slot 1
};

}  // namespace goldfish::nn
