// Parameterized property suites: invariants swept across a parameter range
// (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive_temperature.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/aggregation.h"
#include "losses/distillation.h"
#include "losses/goldfish_loss.h"
#include "nn/models.h"
#include "tensor/ops.h"

namespace goldfish {
namespace {

// -- softmax properties across temperatures ---------------------------------

class SoftmaxTemperature : public ::testing::TestWithParam<float> {};

TEST_P(SoftmaxTemperature, RowsAreDistributions) {
  Rng rng(1);
  Tensor logits = Tensor::randn({6, 10}, rng, 0.0f, 5.0f);
  Tensor p = softmax_rows(logits, GetParam());
  for (long i = 0; i < p.dim(0); ++i) {
    double s = 0.0;
    for (long j = 0; j < p.dim(1); ++j) {
      EXPECT_GE(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-4);
  }
}

TEST_P(SoftmaxTemperature, PreservesArgmax) {
  Rng rng(2);
  Tensor logits = Tensor::randn({6, 10}, rng, 0.0f, 5.0f);
  const auto base = argmax_rows(softmax_rows(logits, 1.0f));
  const auto scaled = argmax_rows(softmax_rows(logits, GetParam()));
  EXPECT_EQ(base, scaled);
}

TEST_P(SoftmaxTemperature, EntropyGrowsWithTemperature) {
  Rng rng(3);
  Tensor logits = Tensor::randn({4, 8}, rng, 0.0f, 4.0f);
  const auto entropy = [](const Tensor& p, long row) {
    double h = 0.0;
    for (long j = 0; j < p.dim(1); ++j) {
      const double v = p.at(row, j);
      if (v > 0) h -= v * std::log(v);
    }
    return h;
  };
  const float t = GetParam();
  Tensor cool = softmax_rows(logits, t);
  Tensor hot = softmax_rows(logits, t * 2.0f);
  for (long i = 0; i < 4; ++i)
    EXPECT_GE(entropy(hot, i) + 1e-7, entropy(cool, i));
}

INSTANTIATE_TEST_SUITE_P(Temperatures, SoftmaxTemperature,
                         ::testing::Values(0.5f, 1.0f, 2.0f, 3.0f, 5.0f,
                                           10.0f));

// -- adaptive temperature monotone in deletion fraction ----------------------

class AdaptiveTempSweep : public ::testing::TestWithParam<long> {};

TEST_P(AdaptiveTempSweep, MonotoneInRemovedSize) {
  core::AdaptiveTemperature at;
  const long removed = GetParam();
  const long total = 1000;
  const float t_now = at(total - removed, removed);
  const float t_less = at(total - removed / 2, removed / 2);
  EXPECT_GE(t_now + 1e-6f, t_less);
  EXPECT_GE(t_now, at.min_temperature);
  EXPECT_LE(t_now, at.alpha * at.t0 + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(DeletionSizes, AdaptiveTempSweep,
                         ::testing::Values(20L, 40L, 60L, 80L, 100L, 120L,
                                           200L, 400L));

// -- aggregation properties across client counts -----------------------------

class AggregationSweep : public ::testing::TestWithParam<int> {};

TEST_P(AggregationSweep, FedAvgOfIdenticalModelsIsIdentity) {
  const int clients = GetParam();
  Rng rng(4);
  nn::Model m = nn::make_mlp({1, 2, 2}, 4, 3, rng);
  std::vector<fl::ClientUpdate> updates;
  for (int c = 0; c < clients; ++c)
    updates.push_back({m.snapshot(), 10 + c, 0.0});
  fl::FedAvgAggregator agg;
  const auto avg = agg.aggregate(updates);
  EXPECT_NEAR(nn::snapshot_distance_sq(avg, m.snapshot()), 0.0f, 1e-8f);
}

TEST_P(AggregationSweep, AdaptiveWeightsArePositiveAndOrdered) {
  const int clients = GetParam();
  std::vector<double> mses;
  for (int c = 0; c < clients; ++c) mses.push_back(0.01 * (c + 1));
  const auto w = fl::AdaptiveAggregator::weights_from_mse(mses);
  for (int c = 0; c + 1 < clients; ++c) {
    EXPECT_GT(w[static_cast<std::size_t>(c)], 0.0f);
    EXPECT_GT(w[static_cast<std::size_t>(c)],
              w[static_cast<std::size_t>(c) + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, AggregationSweep,
                         ::testing::Values(2, 3, 5, 8, 15, 25));

// -- partition properties across client counts -------------------------------

class PartitionSweep : public ::testing::TestWithParam<long> {};

TEST_P(PartitionSweep, IidCoversAllRowsDisjointly) {
  const long clients = GetParam();
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 5, 30 * clients, 10));
  Rng rng(6);
  auto parts = data::partition_iid(tt.train, clients, rng);
  long total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, tt.train.size());
  for (const auto& p : parts) EXPECT_EQ(p.size(), 30);
}

TEST_P(PartitionSweep, HeterogeneousPreservesRowsAndMinimum) {
  const long clients = GetParam();
  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, 7, 60 * clients, 10));
  Rng rng(8);
  data::HeteroOptions opt;
  auto parts = data::partition_heterogeneous(tt.train, clients, opt, rng);
  long total = 0;
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), opt.min_per_client);
    total += p.size();
  }
  EXPECT_EQ(total, tt.train.size());
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, PartitionSweep,
                         ::testing::Values(2L, 5L, 15L, 25L));

// -- shard counts from the paper's sweep --------------------------------------

class ShardSweep : public ::testing::TestWithParam<long> {};

TEST_P(ShardSweep, ShardIndicesPartitionEvenly) {
  const long shards = GetParam();
  Rng rng(9);
  const long n = 18 * 20;  // divisible by every paper shard count
  auto idx = data::shard_indices(n, shards, rng);
  ASSERT_EQ(static_cast<long>(idx.size()), shards);
  std::size_t total = 0;
  for (const auto& s : idx) {
    EXPECT_EQ(static_cast<long>(s.size()), n / shards);
    total += s.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(PaperShardCounts, ShardSweep,
                         ::testing::Values(1L, 3L, 6L, 9L, 12L, 15L, 18L));

// -- distillation loss invariants across temperatures ------------------------

class DistillSweep : public ::testing::TestWithParam<float> {};

TEST_P(DistillSweep, GradientVanishesAtMatch) {
  Rng rng(10);
  Tensor t = Tensor::randn({3, 7}, rng, 0.0f, 3.0f);
  const auto r = losses::distillation_loss(t, t, GetParam());
  EXPECT_NEAR(r.grad_logits.squared_norm(), 0.0f, 1e-8f);
}

TEST_P(DistillSweep, LossIsLowerBoundedByTeacherEntropy) {
  // −Σ P_T log P_S ≥ −Σ P_T log P_T (Gibbs' inequality).
  Rng rng(11);
  Tensor t = Tensor::randn({3, 7}, rng, 0.0f, 3.0f);
  Tensor s = Tensor::randn({3, 7}, rng, 0.0f, 3.0f);
  const float temp = GetParam();
  const float match = losses::distillation_loss(t, t, temp).value;
  const float mismatch = losses::distillation_loss(t, s, temp).value;
  EXPECT_GE(mismatch + 1e-5f, match);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, DistillSweep,
                         ::testing::Values(1.0f, 2.0f, 3.0f, 5.0f, 8.0f));


// -- composite-loss weight sweeps ---------------------------------------------

class LossWeightSweep : public ::testing::TestWithParam<float> {};

TEST_P(LossWeightSweep, TotalIsLinearInConfusionWeight) {
  const float mu = GetParam();
  Rng rng(12);
  Tensor sf = Tensor::randn({3, 6}, rng, 0.0f, 2.0f);
  const std::vector<long> yf{0, 1, 2};
  losses::GoldfishLossConfig base;
  base.mu_c = 0.0f;
  losses::GoldfishLossConfig weighted = base;
  weighted.mu_c = mu;
  const auto r0 = losses::GoldfishLoss(base).eval_forget(sf, yf);
  const auto r1 = losses::GoldfishLoss(weighted).eval_forget(sf, yf);
  // total(µ) = total(0) + µ·L_c — exact linearity in the weight.
  EXPECT_NEAR(r1.total, r0.total + mu * r1.confusion, 1e-5f);
}

TEST_P(LossWeightSweep, TotalIsLinearInDistillationWeight) {
  const float mu = GetParam();
  Rng rng(13);
  Tensor sr = Tensor::randn({3, 6}, rng, 0.0f, 2.0f);
  Tensor tr = Tensor::randn({3, 6}, rng, 0.0f, 2.0f);
  const std::vector<long> yr{0, 1, 2};
  losses::GoldfishLossConfig base;
  base.mu_d = 0.0f;
  base.use_distillation = false;
  losses::GoldfishLossConfig weighted;
  weighted.mu_d = mu;
  const auto r0 = losses::GoldfishLoss(base).eval_remaining(sr, yr, tr);
  const auto r1 = losses::GoldfishLoss(weighted).eval_remaining(sr, yr, tr);
  EXPECT_NEAR(r1.total, r0.total + mu * r1.distillation, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Weights, LossWeightSweep,
                         ::testing::Values(0.1f, 0.25f, 0.5f, 1.0f, 2.0f));

// -- im2col/col2im adjoint across geometries ----------------------------------

struct ConvGeomParam {
  long channels, size, kernel, stride, pad;
};

class ConvGeomSweep : public ::testing::TestWithParam<ConvGeomParam> {};

TEST_P(ConvGeomSweep, Im2colCol2imAreAdjoint) {
  const auto p = GetParam();
  Conv2dGeom g{p.channels, p.size, p.size, p.kernel, p.stride, p.pad};
  ASSERT_GT(g.out_h(), 0);
  Rng rng(14);
  Tensor x = Tensor::randn({2, p.channels, p.size, p.size}, rng);
  Tensor cx = im2col(x, g);
  Tensor y = Tensor::randn(cx.shape(), rng);
  Tensor ay = col2im(y, 2, g);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cx.numel(); ++i) lhs += double(cx[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += double(x[i]) * ay[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 + 1e-4 * std::fabs(lhs));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeomSweep,
    ::testing::Values(ConvGeomParam{1, 6, 3, 1, 0},
                      ConvGeomParam{3, 8, 3, 1, 1},
                      ConvGeomParam{2, 9, 5, 2, 2},
                      ConvGeomParam{4, 7, 1, 1, 0},
                      ConvGeomParam{1, 10, 3, 3, 1}));

// -- hard losses agree on direction across batch sizes -------------------------

class HardLossSweep : public ::testing::TestWithParam<long> {};

TEST_P(HardLossSweep, AllLossesDecreaseUnderGradientStep) {
  const long batch = GetParam();
  Rng rng(15);
  Tensor z = Tensor::randn({batch, 5}, rng, 0.0f, 2.0f);
  std::vector<long> y;
  for (long i = 0; i < batch; ++i) y.push_back(i % 5);
  for (const char* name : {"cross_entropy", "focal", "nll"}) {
    const auto loss = losses::make_hard_loss(name);
    const auto r0 = loss->eval(z, y);
    Tensor z2 = z;
    z2.add_scaled(r0.grad_logits, -1.0f);
    const auto r1 = loss->eval(z2, y);
    EXPECT_LT(r1.value, r0.value) << name << " batch " << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, HardLossSweep,
                         ::testing::Values(1L, 2L, 7L, 32L, 100L));

}  // namespace
}  // namespace goldfish
