// Sequential container and the residual block used by the ResNet models.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace goldfish::nn {

/// Ordered chain of layers; forward runs left→right, backward right→left.
/// Linear→ReLU pairs are peepholed into one fused GEMM (bias + ReLU applied
/// in the writeback) with the standalone ReLU skipped in both passes;
/// results are bit-identical to the unfused chain.
class Sequential final : public Layer {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer);
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;
  void attach_workspace(Workspace* ws, std::size_t& next_key) override;

 private:
  /// True when layers_[i] is a Linear immediately followed by a ReLU — the
  /// pair the forward/backward peephole fuses.
  bool fused_pair_at(std::size_t i) const;

  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Pre-activation-free classic residual block:
///   y = relu( bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x) )
/// where shortcut is identity, or 1×1 strided conv + bn when the shape
/// changes (stage transitions in ResNet-32/56).
class ResidualBlock final : public Layer {
 public:
  /// in_h/in_w are the spatial dims entering the block.
  ResidualBlock(long in_channels, long out_channels, long stride, long in_h,
                long in_w, Rng& rng);
  ResidualBlock(const ResidualBlock& other);
  ResidualBlock& operator=(const ResidualBlock& other);

  const Tensor& forward(const Tensor& x, bool train) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;
  void attach_workspace(Workspace* ws, std::size_t& next_key) override;
  std::size_t local_slots() const override { return 2; }  // mask, masked g

 private:
  std::unique_ptr<Layer> conv1_, bn1_, relu1_, conv2_, bn2_;
  std::unique_ptr<Layer> short_conv_, short_bn_;  // null for identity
  Shape out_shape_;  // shape of the last forward's output / relu mask
  bool has_projection_ = false;
};

}  // namespace goldfish::nn
