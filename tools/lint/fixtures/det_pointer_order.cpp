// DET004 fixture: ordered containers keyed by raw pointer value. std::map /
// std::set iterate in key order, and for pointer keys that is allocation
// address order — which varies run to run (ASLR, allocator history). Key by
// a stable id instead.
#include <map>
#include <set>

struct Client {
  int id = 0;
};

int sum_by_address_order() {
  std::map<Client*, int> scores;           // EXPECT: DET004
  int total = 0;
  for (const auto& [c, s] : scores) {
    (void)c;
    total += s;
  }
  return total;
}

bool track(const Client* c) {
  static std::set<const Client*> seen;     // EXPECT: DET004
  return seen.insert(c).second;
}

// Value keys iterate in a run-independent order. No finding expected.
int sum_by_id(const std::map<int, int>& scores) {
  int total = 0;
  for (const auto& [id, s] : scores) {
    (void)id;
    total += s;
  }
  return total;
}
