// Workspace: the per-model activation arena behind zero-allocation
// forward/backward passes.
//
// Every layer of a model claims a fixed number of slots at attach time
// (Layer::attach_workspace walks the tree once, assigning consecutive keys)
// and writes its outputs, masks and scratch tensors into those slots instead
// of returning freshly allocated tensors. Slot storage is created on first
// use, reused across batches, steps and rounds, and regrown in place when a
// shape changes (a batch-size change mid-run just revalidates and regrows).
//
// Contract (see src/nn/README.md):
//  * acquire(key, shape) with the slot's current shape returns the slot with
//    its contents intact — backward passes rely on this to read caches their
//    forward wrote (ReLU masks, batch-norm x̂).
//  * acquire with a different shape resizes the slot and leaves its contents
//    undefined, exactly like Tensor::uninit; callers must fully overwrite
//    (or explicitly zero, for scatter-add outputs like col2im).
//  * Slots are owned by the workspace; layers hand out `const Tensor&` views
//    of them from forward/backward. A slot stays valid until the same layer
//    runs the same pass again, which is exactly the lifetime the layer
//    chaining in Sequential/Model needs.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace goldfish::nn {

class Workspace {
 public:
  /// Grow the slot table to at least `count` entries. Called once per
  /// attach, *never* between acquires: references handed out by acquire
  /// must stay stable for a whole forward/backward chain, so the table may
  /// not reallocate mid-pass.
  void ensure(std::size_t count) {
    if (slots_.size() < count) slots_.resize(count);
  }

  /// Storage slot `key`, reshaped to `shape` (see the contract above). The
  /// key must have been claimed at attach time (ensure'd), so the returned
  /// reference is stable across later acquires of other slots.
  Tensor& acquire(std::size_t key, const Shape& shape) {
    GOLDFISH_CHECK(key < slots_.size(), "unclaimed workspace slot");
    Tensor& t = slots_[key];
    t.resize_uninit(shape);
    return t;
  }

  std::size_t size() const { return slots_.size(); }

  /// Drop slot storage (the table itself keeps its size; shapes revalidate
  /// and storage regrows on next acquire).
  void clear() {
    for (Tensor& t : slots_) t = Tensor();
  }

 private:
  std::vector<Tensor> slots_;
};

}  // namespace goldfish::nn
