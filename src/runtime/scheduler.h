// Unified parallel runtime: one process-wide worker pool shared by every
// layer of the library, from kernel-level `parallel_for` inside GEMM up to
// the FL engine's "foreach client in parallel" loops and its buffered-async
// submit() tasks.
//
// The previous substrate was split in two — spawn-per-call std::threads for
// tensor kernels and a blocking fixed pool (`fl::ThreadPool`) for client
// tasks — which oversubscribed the machine whenever a client task hit a
// parallel kernel. The Scheduler fixes this with *caller participation*:
// a thread that opens a parallel region claims and executes chunks itself
// while idle workers help. Nested regions therefore never deadlock and
// never spawn threads; at worst they run inline on the calling worker.
//
// Scheduling is *work-stealing*: every worker thread — and every external
// thread that calls in — owns a bounded lock-free Chase–Lev deque
// (task_deque.h). Owners push and pop LIFO at the bottom for cache
// locality; a thread whose own deque runs dry steals FIFO from a
// randomized sweep of the other deques. External submissions that cannot
// claim a deque slot land in a small mutex-guarded injection queue (the
// overflow path, not the hot path). Idle workers spin briefly, then park
// on a condition variable; producers wake them only when someone is
// actually asleep, so back-to-back parallel regions run entirely in
// userspace. See src/runtime/README.md for the full design.
//
// Determinism: chunk *assignment* to threads is dynamic, but chunk contents
// and the per-chunk execution order are fixed independent of the thread
// count, so any data-race-free body whose chunks touch disjoint state
// produces identical results with 1 or N threads (the GEMM backbone relies
// on this; see runtime/gemm.h).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/task_deque.h"

namespace goldfish::runtime {

class Scheduler {
 public:
  /// `parallelism == 0` → GOLDFISH_THREADS env var, else the process CPU
  /// affinity mask (cgroup/taskset aware), else hardware concurrency. A
  /// parallelism of p spawns p−1 workers; the thread that opens a parallel
  /// region is always the p-th lane. `Scheduler(1)` spawns no threads at
  /// all and runs everything inline (the serial baseline for determinism
  /// tests). With GOLDFISH_PIN_THREADS=1 workers are pinned round-robin to
  /// the CPUs of the affinity mask (Linux only).
  explicit Scheduler(std::size_t parallelism = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Degree of parallelism (worker threads + the participating caller).
  std::size_t parallelism() const { return workers_.size() + 1; }

  /// The process-wide scheduler every layer shares by default.
  static Scheduler& global();

  /// Run fn(begin, end) over [0, n) split into contiguous chunks of at
  /// least `grain` indices. The caller executes chunks too, so calling this
  /// from inside a worker task is safe and deadlock-free. Blocks until all
  /// chunks finish; the first exception thrown by fn is rethrown here.
  void parallel_for(long n, const std::function<void(long, long)>& fn,
                    long grain = 1);

  /// Apply fn(i) for i in [0, n); task-level parallelism for coarse work
  /// (FL clients, shard retraining). Same nesting and exception rules as
  /// parallel_for. `grain` is the number of consecutive indices one chunk
  /// claim covers: 0 picks a cost-aware default of n / (4 · parallelism)
  /// (min 1) that amortizes the per-chunk claim for cheap bodies; pass 1
  /// explicitly when each body is coarse (a whole client training run) so
  /// load balancing stays per-item.
  void parallel_map(std::size_t n, const std::function<void(std::size_t)>& fn,
                    long grain = 0);

  /// Enqueue a standalone task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Pop one pending task (own deque first, then a steal sweep, then the
  /// injection queue) and run it on the calling thread; false when nothing
  /// is pending. The caller-participation primitive for submit(): threads
  /// waiting on futures execute pending work instead of blocking.
  bool try_run_one();

  /// Block until `fut` is ready, draining pending tasks on this thread
  /// while waiting. This is how a consumer collects submit() futures in its
  /// own completion order (the async FL loop drains them in virtual-clock
  /// order): deadlock-free at any parallelism, because the waiter is itself
  /// a worker lane — even at parallelism 1, where no worker threads exist.
  template <typename T>
  void drain_until_ready(const std::future<T>& fut) {
    while (fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      // Nothing runnable here: the task is mid-flight on another worker.
      // A short timed wait bounds the latency of noticing completion.
      if (!try_run_one()) fut.wait_for(std::chrono::microseconds(200));
    }
  }

 private:
  /// Shared bookkeeping of one parallel region.
  struct Region {
    const std::function<void(long, long)>* fn = nullptr;
    long n = 0;
    long chunk = 1;
    long nchunks = 0;
    std::atomic<long> next{0};
    std::atomic<long> completed{0};
    std::atomic<bool> abort{false};
    // Dekker pair with `completed`: the opener announces itself before
    // sleeping on done_cv; chunk completers only take the lock and notify
    // when an opener is (or may be) asleep.
    std::atomic<bool> waiting{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };

  /// A unit of pending work: either a submit() payload or a helper handle
  /// on a parallel region (helpers claim chunks until the region's shared
  /// counter is exhausted, so a stale helper for a finished region is a
  /// cheap no-op).
  struct Task {
    std::function<void()> fn;
    std::shared_ptr<Region> region;
  };

  static constexpr std::size_t kDequeCapacity = 1024;
  /// Deque slots claimable by non-worker threads (the main thread, or a
  /// worker of *another* Scheduler calling into this one). More concurrent
  /// external callers than this overflow to the injection queue.
  static constexpr std::size_t kExternalSlots = 8;

  struct alignas(64) Slot {
    TaskDeque<Task*, kDequeCapacity> deque;
  };

  /// Which Scheduler (if any) the current thread holds a deque slot of.
  /// Workers bind their slot for life; external threads bind per call via
  /// CallerSlot and restore the previous binding on exit, so nesting
  /// across schedulers (worker of pool A calling into pool B) works.
  struct TlsBinding {
    Scheduler* sched = nullptr;
    Slot* slot = nullptr;
  };
  class CallerSlot;  // RAII claim of an external slot, defined in the .cpp

  void enqueue(std::function<void()> fn);
  void push_task(Task* task);
  void inject(Task* task);
  Task* pop_injection();
  Task* acquire_task(Slot* own, std::uint64_t& rng_state);
  void run_task(Task* task);
  bool has_pending_work();
  void wake_one();
  void worker_loop(std::size_t slot_index);
  void wait_region(Region& region);
  static void run_chunks(const std::shared_ptr<Region>& region);

  static thread_local TlsBinding tls_binding_;

  std::vector<std::thread> workers_;
  // Slots [0, workers) belong to the workers; [workers, workers +
  // kExternalSlots) are claimable by external callers.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint32_t> external_claimed_{0};

  // Overflow/injection queue: external submits with no free slot, and
  // deque-full overflow. Cold path by construction.
  std::mutex injection_mu_;
  std::deque<Task*> injection_;
  std::atomic<long> injection_size_{0};

  // Sleep protocol (see README): producers push (seq_cst) then read
  // sleepers_; parking workers bump sleepers_ (seq_cst) then re-sweep the
  // queues before waiting, so one side always sees the other.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> sleepers_{0};
  int wake_signals_ = 0;  // guarded by sleep_mu_
  std::atomic<bool> stopping_{false};
};

/// Resolve a config's thread-count knob: 0 → the shared global Scheduler,
/// non-zero → a private pool with that parallelism, kept alive in `owned`.
/// Shared by every component exposing a `threads` field (FlConfig,
/// UnlearnConfig) so their selection semantics cannot drift apart.
inline Scheduler& scheduler_for(std::size_t threads,
                                std::unique_ptr<Scheduler>& owned) {
  if (threads != 0) {
    owned = std::make_unique<Scheduler>(threads);
    return *owned;
  }
  return Scheduler::global();
}

}  // namespace goldfish::runtime

namespace goldfish {

/// Kernel-level data parallelism on the shared global scheduler. The grain
/// default suits elementwise/rowwise loops: regions smaller than one grain
/// run inline with zero scheduling cost.
inline void parallel_for(long n, const std::function<void(long, long)>& fn,
                         long grain = 1024) {
  runtime::Scheduler::global().parallel_for(n, fn, grain);
}

}  // namespace goldfish
