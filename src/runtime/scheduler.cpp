#include "runtime/scheduler.h"

#include <algorithm>
#include <cstdlib>

namespace goldfish::runtime {

namespace {

std::size_t default_parallelism() {
  if (const char* env = std::getenv("GOLDFISH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

Scheduler::Scheduler(std::size_t parallelism) {
  if (parallelism == 0) parallelism = default_parallelism();
  workers_.reserve(parallelism - 1);
  for (std::size_t i = 0; i + 1 < parallelism; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

Scheduler& Scheduler::global() {
  static Scheduler instance;
  return instance;
}

void Scheduler::enqueue(std::function<void()> task) {
  // A zero-worker scheduler has no consumer for the queue; run the task
  // inline so submit() futures complete instead of blocking forever.
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("submit on stopped scheduler");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool Scheduler::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void Scheduler::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void Scheduler::run_chunks(const std::shared_ptr<Region>& region) {
  Region& r = *region;
  for (;;) {
    const long c = r.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= r.nchunks) return;
    if (!r.abort.load(std::memory_order_relaxed)) {
      const long lo = c * r.chunk;
      const long hi = std::min(r.n, lo + r.chunk);
      try {
        (*r.fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(r.mu);
        if (!r.error) r.error = std::current_exception();
        r.abort.store(true, std::memory_order_relaxed);
      }
    }
    // Even aborted chunks count as completed so the opener's wait ends.
    if (r.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        r.nchunks) {
      std::lock_guard<std::mutex> lock(r.mu);
      r.done_cv.notify_all();
    }
  }
}

void Scheduler::parallel_for(long n,
                             const std::function<void(long, long)>& fn,
                             long grain) {
  if (n <= 0) return;
  grain = std::max(1L, grain);
  if (workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }
  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->n = n;
  region->chunk = grain;
  region->nchunks = (n + grain - 1) / grain;

  // Helpers beyond the chunk count would only spin on an exhausted counter;
  // don't enqueue them. The caller is one of the lanes.
  const std::size_t helpers = std::min<std::size_t>(
      workers_.size(), static_cast<std::size_t>(region->nchunks - 1));
  for (std::size_t h = 0; h < helpers; ++h)
    enqueue([region] { run_chunks(region); });

  run_chunks(region);
  {
    std::unique_lock<std::mutex> lock(region->mu);
    region->done_cv.wait(lock, [&] {
      return region->completed.load(std::memory_order_acquire) ==
             region->nchunks;
    });
  }
  if (region->error) std::rethrow_exception(region->error);
}

void Scheduler::parallel_map(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  parallel_for(
      static_cast<long>(n),
      [&fn](long lo, long hi) {
        for (long i = lo; i < hi; ++i)
          fn(static_cast<std::size_t>(i));
      },
      /*grain=*/1);
}

}  // namespace goldfish::runtime
