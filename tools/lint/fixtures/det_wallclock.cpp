// DET002 fixture: wall-clock reads. Schedules are built on the virtual
// clock (fl::VirtualClock) or replayed traces (fl::TraceClock); reading a
// real clock makes task ordering — and therefore the aggregation stream —
// machine- and load-dependent.
#include <chrono>
#include <ctime>

double now_seconds() {
  auto t = std::chrono::steady_clock::now();     // EXPECT: DET002
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long unix_time() {
  return static_cast<long>(time(nullptr));       // EXPECT: DET002
}

long std_qualified_time() {
  return static_cast<long>(std::time(nullptr));  // EXPECT: DET002
}

long epoch_ms() {
  using clk = std::chrono::system_clock;         // EXPECT: DET002
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             clk::now().time_since_epoch())
      .count();
}

// Durations without a clock read are fine (scheduler wait timeouts): the
// wait length never feeds a result. No finding expected.
long timeout_only() {
  return std::chrono::milliseconds(2).count();
}

// Member calls named `time` are not the libc call. No finding expected.
struct Telemetry {
  double time() const { return 0.0; }
};
double member_time(const Telemetry& t) { return t.time(); }
