// The event-driven federated execution engine: ONE server loop under every
// regime the library supports — synchronous barrier rounds, FedBuff-style
// buffered aggregation, mid-stream deletions, clients joining and leaving,
// aggregator swaps — parameterized by small policy objects (fl/policies.h)
// and driven by a typed Scenario event timeline.
//
// Execution is split in two phases. Phase A builds the complete event
// schedule on a virtual clock (which tasks run, which aggregation consumes
// each update, every staleness value, every eviction) *before any training
// runs*: durations and policies depend only on seeded RNG streams, never on
// training results. Phase B then executes the plan, respecting only its
// data dependencies — a task training from server version v is submitted
// once version v is published, and the aggregation loop drains futures in
// the planned (virtual time, client id) order. Results are therefore
// bit-identical at any thread count.
//
// The steady state is allocation-free: client models come from a pooled
// replica set (broadcast is an in-place load over pooled storage), layers
// write into per-model Workspace arenas, the wire path reuses per-thread
// buffers, and remaining tensor temporaries recycle through a
// BufferPoolScope held for the engine's lifetime.
//
// FederatedSim (fl/simulation.h) keeps the familiar run_round/run/run_async
// entry points as thin facades: each is a canned Scenario + policy bundle
// over this engine, bit-identical to the historical implementations.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/backdoor.h"
#include "fl/aggregation.h"
#include "fl/policies.h"
#include "fl/population/population.h"
#include "fl/trainer.h"
#include "metrics/evaluation.h"
#include "runtime/scheduler.h"
#include "tensor/buffer_pool.h"

namespace goldfish::fl {

/// Buffered-asynchronous execution knobs: the default parameter source for
/// buffered scenarios (Engine::async_scenario / FederatedSim::run_async).
struct AsyncFlConfig {
  /// Updates buffered before the server aggregates (K). 0 → num_clients.
  long buffer_size = 0;
  /// Staleness decay exponent α: an update s server-versions stale is
  /// weighted by (1+s)^−α on top of the base aggregator's weight (composes
  /// with fedavg/uniform/adaptive). 0 disables decay.
  double staleness_alpha = 0.5;
  /// Mean virtual duration of one local-training task.
  double mean_duration = 1.0;
  /// Log-normal spread of task durations: duration = mean·exp(j·N(0,1)),
  /// drawn from the seeded RNG per (client, task). 0 → every task takes
  /// exactly mean_duration, which reproduces the synchronous schedule.
  double duration_log_jitter = 0.25;
};

struct FlConfig {
  TrainOptions local;                ///< per-round local training options
  /// "fedavg" | "uniform" | "adaptive" | "krum" | "multi-krum" |
  /// "trimmed-mean" | "median" | "norm-clip" — optionally prefixed "hier+"
  /// for two-tier hierarchical reduction (e.g. "hier+fedavg"; edge width
  /// from robust.hier_edge, output bit-identical to the flat base).
  std::string aggregator = "fedavg";
  /// Knobs for the Byzantine-robust strategies (configured or hot-swapped);
  /// inert for the weight-based ones.
  RobustConfig robust;
  /// 0 → share the process-wide runtime Scheduler (the normal case; client
  /// tasks and the kernels inside them draw from one pool). Non-zero → a
  /// private Scheduler with that parallelism for *client-level* tasks only;
  /// kernels inside them still use the global pool, so to pin the whole
  /// process set GOLDFISH_THREADS instead.
  std::size_t threads = 0;
  /// Rows per server-side evaluation batch; 0 (default) auto-bounds the
  /// chunk (~2^21 input floats; sets below that run as one fused forward
  /// pass per model). Accuracy/MSE are bit-identical for any value.
  long eval_batch = 0;
  std::uint64_t seed = 7;
  /// Buffered-asynchronous mode parameters (defaults for async scenarios).
  AsyncFlConfig async;
};

// -- scenario timeline events ----------------------------------------------
//
// Events are merged onto the virtual timeline and applied in (time, kind,
// declaration index) order, always *before* any task completion at the same
// or a later time.

/// An unlearning request arriving mid-run: at `time`, the client's local
/// data is replaced by `new_data` (its remaining rows D_r), any of its
/// updates still sitting in the server's buffer are evicted, and its
/// in-flight task is voided on completion — both were trained on data that
/// now includes deleted rows, and must never reach an aggregation. Updates
/// aggregated *before* `time` are history; undoing their influence is the
/// unlearner's job (core/unlearner.h builds these events).
struct DeletionEvent {
  double time = 0.0;
  std::size_t client = 0;
  data::Dataset new_data;
};

/// A new client joining the federation at `time` with its local dataset.
/// It is assigned the next free client id (ids are dense and stable) and
/// starts training immediately, subject to the participation policy. Joins
/// are durable: after the run the engine's federation includes the client.
struct ClientJoinEvent {
  double time = 0.0;
  data::Dataset dataset;
};

/// A client leaving the federation at `time`: it never starts another task
/// and its in-flight task (if any) is voided on completion — the device is
/// gone, the upload never arrives. Updates it already uploaded to the
/// server's buffer remain valid and aggregate normally. Leaves are durable:
/// the client stays registered (its data is kept) but inactive.
struct ClientLeaveEvent {
  double time = 0.0;
  std::size_t client = 0;
};

/// Swap the server's aggregation strategy at `time`: every aggregation at
/// or after `time` uses the named strategy (any name make_aggregator
/// accepts, robust families included — the knobs come from FlConfig's
/// RobustConfig), wrapped in the scenario's staleness discounting like the
/// base strategy. Scenario-scoped: the engine's configured aggregator is
/// restored for the next run.
struct AggregatorSwapEvent {
  double time = 0.0;
  std::string aggregator;
};

// -- adversarial events (docs/threat-model.md) -----------------------------

/// A client turns hostile at `time`: its local dataset's labels are flipped
/// in place (y → num_classes−1−y) for every task it *starts* after the
/// event. Updates already buffered and the in-flight task trained on the
/// honest data and stay valid — the device poisons what it trains next, it
/// cannot rewrite uploads the server already holds. Durable: the flipped
/// dataset is the client's data after the run.
struct LabelFlipEvent {
  double time = 0.0;
  std::size_t client = 0;
};

/// A client starts backdooring at `time`: `fraction` of its current dataset
/// is trigger-stamped and relabeled to the spec's target via
/// data::poison_dataset (row choice drawn from a seeded per-event RNG
/// stream — deterministic at any thread count). Same epoch semantics as
/// LabelFlipEvent: only tasks started after the event train poisoned.
struct BackdoorInjectEvent {
  double time = 0.0;
  std::size_t client = 0;
  data::BackdoorSpec spec;
  /// Fraction of the client's rows to poison, in (0, 1].
  float fraction = 0.5f;
};

/// A sybil burst: `count` colluding clients join at `time`, every one
/// training on its own copy of the shared `dataset` (typically poisoned).
/// Sugar over ClientJoinEvent — the engine expands the burst into `count`
/// ordinary joins (after all declared joins at the same instant), so ids
/// are dense, joins stay durable, and DeletionEvent / ClientLeaveEvent can
/// target each sybil individually for the cleanup phase.
struct SybilJoinEvent {
  double time = 0.0;
  std::size_t count = 0;
  data::Dataset dataset;
};

/// Switch on per-step auditing at `time`: every aggregation at or after it
/// measures the freshly aggregated global model against this event's probe
/// sets and records the result in its StepResult — attack_success_rate on
/// `probe` (a trigger set from data::make_trigger_probe), and, when
/// `members` is non-empty, the membership-inference attack over
/// (members = rows the attacker may have trained on, nonmembers = held-out
/// rows). A later AuditEvent replaces the probe sets from its time on.
struct AuditEvent {
  double time = 0.0;
  data::Dataset probe;
  data::Dataset members;     ///< optional; empty disables the MIA block
  data::Dataset nonmembers;  ///< required iff members is non-empty
};

/// A complete execution scenario: the horizon, the four policies (null →
/// the legacy defaults derived from FlConfig), and the event timeline.
/// Move-only; consumed by Engine::run (stateful policies such as
/// AdaptiveBuffer are single-use by design).
struct Scenario {
  /// Number of buffer aggregations to run (the horizon).
  long aggregations = 0;
  std::unique_ptr<ParticipationPolicy> participation;  ///< null → full
  std::unique_ptr<BufferPolicy> buffer;  ///< null → FixedBuffer(cfg.async)
  std::unique_ptr<ClockPolicy> clock;    ///< null → VirtualClock(cfg.async)
  /// How uploads travel: each client task encodes its trained parameters to
  /// actual bytes and the server decodes them before aggregation, so
  /// StepResult byte counts are real and lossy wires genuinely perturb the
  /// aggregate. Null → DenseWire (byte-true GFT1, bit-identical to the
  /// pre-WirePolicy engine). The engine announces the encoded upload size
  /// to the clock policy (ClockPolicy::set_upload_bytes) before Phase A.
  std::unique_ptr<WirePolicy> wire;
  std::vector<DeletionEvent> deletions;
  std::vector<ClientJoinEvent> joins;
  std::vector<ClientLeaveEvent> leaves;
  std::vector<AggregatorSwapEvent> aggregator_swaps;
  std::vector<LabelFlipEvent> label_flips;
  std::vector<BackdoorInjectEvent> backdoors;
  std::vector<SybilJoinEvent> sybil_joins;
  std::vector<AuditEvent> audits;
  /// Staleness decay exponent for this run; negative → cfg.async value.
  double staleness_alpha = -1.0;
  /// Compute per-client local accuracies for every aggregation (the
  /// synchronous round's telemetry; costs one evaluation per update).
  bool local_accuracy = false;
};

/// Unified per-aggregation telemetry, emitted through the Engine's sink.
/// Supersedes the legacy RoundResult / AsyncRoundResult split: synchronous
/// rounds are simply steps whose staleness is 0 and whose local-accuracy
/// block is populated.
struct StepResult {
  long step = 0;              ///< aggregation index within this run
  double virtual_time = 0.0;  ///< virtual clock when the buffer filled
  double global_accuracy = 0.0;
  long updates_consumed = 0;  ///< buffer size K of this step
  double mean_staleness = 0.0;
  long max_staleness = 0;
  long dropped_updates = 0;   ///< cumulative evictions (deletions, leaves)
  /// Encoded wire bytes of the consumed updates, summed — byte-true under
  /// the scenario's WirePolicy (identical to the historical dense count
  /// when no wire policy is set).
  std::size_t bytes_uplinked = 0;
  /// Encoded bytes of a single upload under the scenario's WirePolicy
  /// (constant within a run: encoded size is a pure function of shapes).
  std::size_t upload_bytes = 0;
  /// Mean relative L2 reconstruction error ‖decoded − trained‖/‖trained‖
  /// over the consumed updates: the per-step loss the wire encoding
  /// injected (0 for lossless wires). The accuracy-vs-bytes axis pairs this
  /// with global_accuracy.
  double encode_error = 0.0;
  std::size_t active_clients = 0;  ///< federation size after joins/leaves
  std::string aggregator;          ///< strategy that produced this step
  /// Per-client local accuracy over the consumed updates; populated only
  /// when Scenario::local_accuracy is set.
  bool has_local_accuracy = false;
  double min_local_accuracy = 0.0;
  double max_local_accuracy = 0.0;
  double mean_local_accuracy = 0.0;
  /// Audit block; populated for every step at or after an AuditEvent.
  bool has_audit = false;
  /// Backdoor attack success rate (%) of the post-aggregation global model
  /// on the active audit's trigger probe.
  double attack_success = 0.0;
  /// Membership-inference attack over the audit's member/nonmember sets;
  /// 0.5 = chance (forgotten), → 1 = memorized. Stay at 0.5 when the audit
  /// carries no member rows.
  double mia_auc = 0.5;
  double mia_accuracy = 0.5;
};

/// The single federated server loop. Owns the federation state (global
/// model, client datasets, pooled client replicas, the server evaluator)
/// and executes Scenarios against it.
class Engine {
 public:
  /// The per-client update: receives a local model already initialized from
  /// the downloaded server version, trains it, and returns nothing (the
  /// engine snapshots the model afterwards). `round` is the client's global
  /// RNG-stream index — unique per (client, round) across runs.
  using ClientUpdateFn = std::function<void(
      std::size_t client_id, nn::Model& local_model,
      const data::Dataset& local_data, long round)>;

  /// Telemetry sink: called once per aggregation, in order.
  using StepSink = std::function<void(const StepResult&)>;

  /// Validates `cfg` up front (unknown aggregator string, buffer_size out
  /// of range, negative staleness_alpha / mean_duration, ...) and throws
  /// std::invalid_argument with a specific message instead of misbehaving
  /// later.
  Engine(nn::Model global, std::vector<data::Dataset> client_data,
         data::Dataset server_test, FlConfig cfg);

  /// Population-scale construction: the federation lives in a
  /// population::Population (cold client-state store + content-addressed
  /// snapshot store, fl/population/) instead of resident datasets. Clients
  /// are materialized into pooled slots only while they participate, so a
  /// run's resident memory is O(cohort), not O(registered clients) — see
  /// docs/population.md. Semantics are otherwise identical: the same
  /// Scenarios run, and the same data produces bit-identical StepResults.
  Engine(nn::Model global, population::Population pop,
         data::Dataset server_test, FlConfig cfg);

  /// Replace the default (plain LocalTraining) client update. Rejected
  /// while a run is in flight.
  void set_client_update(ClientUpdateFn fn);

  /// Execute a scenario, emitting one StepResult per aggregation. The
  /// scenario is consumed. Not reentrant; throws std::logic_error if a run
  /// is already in flight on another thread.
  void run(Scenario scenario, const StepSink& sink);

  /// run() collecting the telemetry stream into a vector.
  std::vector<StepResult> collect(Scenario scenario);

  // -- canned scenario bundles (the legacy entry points) -------------------

  /// `rounds` synchronous barrier rounds: full participation, K = all
  /// active clients, constant task durations, no staleness decay. With
  /// `local_accuracy` this is exactly FederatedSim::run_round's regime.
  Scenario sync_scenario(long rounds, bool local_accuracy = true) const;

  /// FedBuff-style buffered-asynchronous execution from the FlConfig's
  /// async block, with optional mid-run deletions — exactly
  /// FederatedSim::run_async's regime.
  Scenario async_scenario(long aggregations,
                          std::vector<DeletionEvent> deletions = {}) const;

  // -- federation state ----------------------------------------------------

  nn::Model& global_model() { return global_; }
  const data::Dataset& server_test() const { return test_; }
  /// Resident-mode dataset access; throws in population mode (cold records
  /// are reached through population()->clients instead).
  const data::Dataset& client_data(std::size_t c) const;
  /// The population stores, or null for a resident-mode engine.
  population::Population* population() { return pop_.get(); }
  const population::Population* population() const { return pop_.get(); }
  /// Registered clients, inactive (departed) ones included.
  std::size_t num_clients() const {
    return pop_ ? pop_->clients.num_clients() : clients_.size();
  }
  /// Clients currently participating in new runs (joins − leaves).
  std::size_t active_clients() const;
  /// True while a run is in flight (mutating accessors are rejected).
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Global round counter: the next unused (client, round) RNG-stream step.
  long rounds_completed() const { return round_; }
  const FlConfig& config() const { return cfg_; }

  /// Number of pooled client-model replicas currently alive (grows on
  /// demand, bounded by the scheduler's parallelism).
  std::size_t pool_size() const { return pool_total_; }

  /// Replace one client's dataset. Rejected (std::logic_error) while a run
  /// is in flight — a leased replica's training task may be reading the
  /// dataset concurrently; mid-run data changes are what DeletionEvent is
  /// for.
  void set_client_data(std::size_t c, data::Dataset ds);

 private:
  friend class FederatedSim;
  struct Schedule;
  struct EpochTable;

  /// RAII lease of a pooled model replica: pops a free replica (cloning the
  /// global model only when the pool has never been this deep — i.e. the
  /// first run), returns it on destruction. Leases never outlive the
  /// engine.
  class ModelLease {
   public:
    explicit ModelLease(Engine& eng);
    ~ModelLease();
    nn::Model& get() { return *model_; }

   private:
    Engine& eng_;
    std::unique_ptr<nn::Model> model_;
  };

  void validate_scenario(const Scenario& s) const;
  Schedule build_schedule(const Scenario& s) const;
  /// Replay the data-mutating events (deletions, label flips, backdoor
  /// injections) in merged timeline order, materializing every dataset
  /// version each client trains on during the run.
  EpochTable materialize_epochs(const Scenario& s, const Schedule& plan) const;
  void execute(const Scenario& scenario, const Schedule& plan,
               const EpochTable& epochs, const StepSink& sink);

  /// True when the global model is a two-layer MLP (the `mlp<h>` family),
  /// whose per-client evaluation can be stacked into one wide GEMM.
  bool stackable_mlp() const;
  /// Batched client evaluation: concatenate every update's hidden-layer
  /// weights into one (K·h, D) matrix so a single fused GEMM per test chunk
  /// computes all clients' hidden activations, then run each client's
  /// logits head on its strided slice. Bit-identical to evaluating the
  /// clients one at a time.
  void stacked_local_accuracy(const std::vector<ClientUpdate>& updates,
                              std::vector<double>& local_acc);

  // Declared first so it is destroyed last: models returning to the pool on
  // teardown park their storage here before the scope drains it.
  BufferPoolScope recycle_;
  nn::Model global_;
  /// Structural template for pool replicas. Never written after
  /// construction: a cold-pool lease clones *this* (its values are always
  /// overwritten by load before use), so growing the pool from a worker
  /// thread never races the main thread's writes to global_ — which the
  /// aggregation loop performs while client tasks are still in flight.
  nn::Model replica_template_;
  std::vector<data::Dataset> clients_;  ///< resident mode; empty when pop_
  /// Population mode: the cold client-state + snapshot stores. Null for the
  /// resident-mode constructor — every population branch in the engine is
  /// behind `if (pop_)`, so resident-mode behaviour (and its golden
  /// schedules) is untouched byte for byte.
  std::unique_ptr<population::Population> pop_;
  std::vector<bool> active_;  ///< false once a ClientLeaveEvent committed
  data::Dataset test_;
  FlConfig cfg_;
  std::unique_ptr<runtime::Scheduler> owned_sched_;  // only when cfg.threads
  runtime::Scheduler* sched_;  // the pool client tasks run on
  metrics::BatchedEvaluator eval_;
  ClientUpdateFn update_fn_;
  long round_ = 0;
  std::atomic<bool> running_{false};

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<nn::Model>> pool_;  // free replicas
  std::size_t pool_total_ = 0;                    // replicas ever created

  // Stacked-evaluation scratch, reused across rounds.
  Tensor stacked_w_, stacked_b_, stacked_y_;
  bool stackable_ = false;  // computed once: the architecture never changes

  // Population-mode run scratch: filled by execute(), committed (telemetry,
  // reference snapshots) and cleared by run(). Index = server version /
  // plan task id respectively.
  std::vector<population::SnapshotStore::Handle> run_version_handles_;
  std::vector<std::size_t> run_wire_bytes_;
};

}  // namespace goldfish::fl
