// Console + CSV table reporting used by every bench binary so that output
// matches the row/column structure of the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace goldfish::metrics {

/// Accumulates rows and renders an aligned console table; optionally dumps
/// the same content as CSV (one file per paper table/figure).
class TableReporter {
 public:
  TableReporter(std::string title, std::vector<std::string> columns);

  /// Add one row; cells are preformatted strings (use fmt helpers below).
  void add_row(std::vector<std::string> cells);

  /// Render to stdout.
  void print() const;

  /// Write CSV to the given path (creates/truncates).
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals.
std::string fmt(double value, int decimals = 2);

/// Environment-driven experiment scale: "quick" (default) or "full".
/// Benches multiply their sample counts / rounds by scale_factor().
bool full_scale();
/// 1 for quick, 4 for full.
long scale_factor();

}  // namespace goldfish::metrics
